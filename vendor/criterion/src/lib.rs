//! Offline stand-in for the subset of `criterion` this workspace uses.
//!
//! Provides [`Criterion`], [`Bencher`], [`BenchmarkGroup`],
//! [`BenchmarkId`] and the `criterion_group!`/`criterion_main!` macros
//! with the same call shapes as the real crate. Instead of criterion's
//! statistical engine, it runs each benchmark for the configured sample
//! count and reports the mean wall-clock time per iteration — enough to
//! compare hot paths while the real dependency is unavailable offline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for a parameterised benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Creates an id from a parameter value alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing harness passed to each benchmark closure.
pub struct Bencher {
    samples: usize,
    elapsed: Duration,
    iterations: u64,
}

impl Bencher {
    /// Times `routine`, running it `samples` times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed warm-up iteration.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iterations = self.samples as u64;
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; the stub keys everything off
    /// [`Criterion::sample_size`].
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Accepted for API compatibility (see [`Criterion::measurement_time`]).
    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(None, id.into(), self.sample_size, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; has no effect in the stub.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(Some(&self.name), id.into(), self.sample_size, f);
        self
    }

    /// Finishes the group (formatting no-op in the stub).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(group: Option<&str>, id: BenchmarkId, samples: usize, mut f: F) {
    let mut bencher = Bencher {
        samples,
        elapsed: Duration::ZERO,
        iterations: 0,
    };
    f(&mut bencher);
    let label = match group {
        Some(g) => format!("{g}/{}", id.id),
        None => id.id,
    };
    if bencher.iterations > 0 {
        let per_iter = bencher.elapsed.as_secs_f64() / bencher.iterations as f64;
        println!("bench {label:<48} {:>12.3} µs/iter", per_iter * 1e6);
    } else {
        println!("bench {label:<48} (no measurement)");
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark `main` entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
