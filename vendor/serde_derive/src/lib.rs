//! Offline stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on plain data types
//! but never actually serializes anything through serde (report output
//! is hand-rolled JSON). These derives therefore expand to nothing,
//! which keeps the `#[derive(Serialize, Deserialize)]` annotations
//! compiling without the real (network-only) dependency.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
