//! Offline stand-in for the subset of `crossbeam` this workspace uses:
//! `crossbeam::thread::scope` with `Scope::spawn(|_| ...)`. Implemented
//! on top of `std::thread::scope` (stable since Rust 1.63), preserving
//! crossbeam's `Result`-returning surface where a child panic surfaces
//! as `Err` instead of unwinding through the caller.

#![warn(missing_docs)]

/// Scoped threads with crossbeam's API shape.
pub mod thread {
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Result of a [`scope`] call; `Err` carries the payload of a
    /// panicked child thread.
    pub type Result<T> = std::result::Result<T, Box<dyn std::any::Any + Send + 'static>>;

    /// Handle for spawning scoped threads; mirrors
    /// `crossbeam::thread::Scope`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }

    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope handle
        /// (crossbeam passes it so children can spawn grandchildren).
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let handle = *self;
            self.inner.spawn(move || f(&handle))
        }
    }

    /// Creates a scope in which threads borrowing from the environment
    /// can be spawned; joins them all before returning. A panic in any
    /// child is reported as `Err`.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| {
                let scope = Scope { inner: s };
                f(&scope)
            })
        }))
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn spawn_borrows_and_joins() {
            let mut counts = vec![0u64; 4];
            super::scope(|s| {
                for slot in counts.iter_mut() {
                    s.spawn(move |_| {
                        *slot = 1;
                    });
                }
            })
            .unwrap();
            assert_eq!(counts, vec![1; 4]);
        }

        #[test]
        fn child_panic_becomes_err() {
            let r = super::scope(|s| {
                s.spawn(|_| panic!("boom"));
            });
            assert!(r.is_err());
        }
    }
}
