//! Offline stand-in for the subset of `parking_lot` this workspace uses:
//! a [`Mutex`] whose `lock()` returns the guard directly (no poison
//! `Result`). Internally this wraps `std::sync::Mutex` and recovers from
//! poisoning, which matches parking_lot's "no poisoning" semantics for
//! the workloads here.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::PoisonError;

/// A mutual-exclusion primitive with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(3);
        *m.lock() += 4;
        assert_eq!(m.into_inner(), 7);
    }
}
