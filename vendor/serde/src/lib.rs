//! Offline stand-in for the subset of `serde` this workspace touches.
//!
//! The workspace only *derives* `Serialize`/`Deserialize` as forward-
//! looking annotations; no code path performs serde-based (de)serialization
//! (JSON emitted by tools is hand-rolled). The traits here are empty
//! markers and the derives (see the vendored `serde_derive`) expand to
//! nothing, so the annotations compile without network access.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
