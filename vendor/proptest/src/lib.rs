//! Offline mini property-testing harness, API-compatible with the
//! subset of `proptest` this workspace uses.
//!
//! The real `proptest` is unavailable in the offline build environment,
//! so this crate reimplements the pieces the test suites call:
//! the [`strategy::Strategy`] trait with `prop_map`, ranges, tuples,
//! [`strategy::Just`] and unions; `prop::collection::vec` and
//! `prop::option::of`; `any::<T>()`; `ProptestConfig::with_cases`;
//! [`test_runner::TestCaseError`]; and the `proptest!`, `prop_assert!`,
//! `prop_assert_eq!`, `prop_assume!` and `prop_oneof!` macros.
//!
//! Differences from upstream: no shrinking (a failing case reports its
//! case index and seed so it can be replayed deterministically), and
//! generation is driven by a fixed xoshiro256++ stream per test name so
//! runs are reproducible without a persistence file.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Pseudo-random generation driving the strategies.
pub mod rng {
    /// Deterministic generator (xoshiro256++) used to drive value
    /// generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl TestRng {
        /// Creates a generator from a 64-bit seed.
        pub fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for word in &mut s {
                *word = splitmix64(&mut state);
            }
            TestRng { s }
        }

        /// Next 64 pseudo-random bits.
        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform draw from `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform draw from `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }
}

/// Strategies: composable random-value generators.
pub mod strategy {
    use super::rng::TestRng;
    use std::ops::Range;

    /// A generator of values of type [`Strategy::Value`].
    ///
    /// Unlike upstream proptest there is no shrinking; `generate` draws
    /// one value directly.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (needed by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                gen: std::rc::Rc::new(move |rng: &mut TestRng| self.generate(rng)),
            }
        }
    }

    /// A type-erased [`Strategy`].
    #[derive(Clone)]
    pub struct BoxedStrategy<T> {
        #[allow(clippy::type_complexity)]
        gen: std::rc::Rc<dyn Fn(&mut TestRng) -> T>,
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.gen)(rng)
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        variants: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Creates a union over `variants`; must be non-empty.
        pub fn new(variants: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!variants.is_empty(), "prop_oneof! needs at least one arm");
            Union { variants }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.variants.len() as u64) as usize;
            self.variants[idx].generate(rng)
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty f64 strategy range");
            let v = self.start + (self.end - self.start) * rng.unit_f64();
            v.min(self.end - (self.end - self.start) * 1e-16)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            (Range {
                start: self.start as f64,
                end: self.end as f64,
            })
            .generate(rng) as f32
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty integer strategy range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty inclusive strategy range");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    let draw = ((rng.next_u64() as u128 * span) >> 64) as u64;
                    start.wrapping_add(draw as $t)
                }
            }
        )*};
    }

    int_range_strategy!(usize, u64, u32, u16, u8, i64, i32, i16, i8);

    macro_rules! tuple_strategy {
        ($(($($s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

/// `prop::collection` — strategies over containers.
pub mod collection {
    use super::rng::TestRng;
    use super::strategy::Strategy;
    use std::ops::Range;

    /// Strategy producing `Vec`s with lengths drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generates vectors of values from `element` with length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty vec length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.len.clone().generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `prop::option` — strategies over `Option`.
pub mod option {
    use super::rng::TestRng;
    use super::strategy::Strategy;

    /// Strategy producing `Some` values roughly three times out of four.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Wraps `inner` so it sometimes yields `None`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.unit_f64() < 0.25 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use super::rng::TestRng;
    use super::strategy::Strategy;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// The strategy type returned by [`any`].
        type Strategy: Strategy<Value = Self>;
        /// The canonical full-range strategy for `Self`.
        fn arbitrary() -> Self::Strategy;
    }

    /// Full-range strategy for primitive types.
    #[derive(Debug, Clone, Default)]
    pub struct FullRange<T> {
        _marker: std::marker::PhantomData<T>,
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Strategy for FullRange<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
            impl Arbitrary for $t {
                type Strategy = FullRange<$t>;
                fn arbitrary() -> Self::Strategy {
                    FullRange::default()
                }
            }
        )*};
    }

    arbitrary_int!(u64, u32, u16, u8, usize, i64, i32);

    impl Strategy for FullRange<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for bool {
        type Strategy = FullRange<bool>;
        fn arbitrary() -> Self::Strategy {
            FullRange::default()
        }
    }

    /// Returns the canonical strategy for `T` (`any::<u64>()` etc.).
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }
}

/// Test-case execution: configuration, errors, and the case loop.
pub mod test_runner {
    use super::rng::TestRng;

    /// Runner configuration (`ProptestConfig` in the prelude).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
        /// Upper bound on `prop_assume!` rejections before giving up.
        pub max_global_rejects: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config {
                cases: 256,
                max_global_rejects: 65_536,
            }
        }
    }

    impl Config {
        /// A default configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config {
                cases,
                ..Config::default()
            }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum TestCaseError {
        /// The case failed an assertion; the test fails.
        Fail(String),
        /// The case was rejected by `prop_assume!`; another is drawn.
        Reject(String),
    }

    impl TestCaseError {
        /// A failing result with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// A rejected (filtered-out) case.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
                TestCaseError::Reject(m) => write!(f, "test case rejected: {m}"),
            }
        }
    }

    impl std::error::Error for TestCaseError {}

    fn name_seed(name: &str) -> u64 {
        // FNV-1a over the test name: stable across runs and platforms.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            hash ^= u64::from(*b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    }

    /// Runs the case loop for one `proptest!` test. `body` generates its
    /// inputs from the provided RNG and returns `Err` to fail or reject.
    pub fn run_cases<F>(config: &Config, name: &str, mut body: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let base = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or_else(|| name_seed(name));
        let mut passed = 0u32;
        let mut rejected = 0u32;
        let mut case = 0u64;
        while passed < config.cases {
            let seed = base ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let mut rng = TestRng::seed_from_u64(seed);
            match body(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    assert!(
                        rejected <= config.max_global_rejects,
                        "proptest '{name}': too many prop_assume! rejections \
                         ({rejected} after {passed} passing cases)"
                    );
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest '{name}' failed at case {case} \
                         (replay with PROPTEST_SEED={base}): {msg}"
                    );
                }
            }
            case += 1;
        }
    }
}

/// Namespace mirror of upstream's `prop::` paths.
pub mod prop {
    pub use super::{collection, option};
}

/// The glob-import surface used by test files.
pub mod prelude {
    pub use super::arbitrary::{any, Arbitrary};
    pub use super::strategy::{BoxedStrategy, Just, Strategy};
    pub use super::test_runner::Config as ProptestConfig;
    pub use super::test_runner::TestCaseError;
    pub use super::{prop, prop_assert, prop_assert_eq, prop_assert_ne};
    pub use super::{prop_assume, prop_oneof, proptest};
}

/// Declares property tests; see the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:pat in $strat:expr ),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            $crate::test_runner::run_cases(&config, stringify!($name), |prop_rng| {
                $( let $arg = $crate::strategy::Strategy::generate(&($strat), prop_rng); )+
                #[allow(unused_mut)]
                let mut prop_case = move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                };
                prop_case()
            });
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// `assert!` that fails the current case instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// `assert_eq!` that fails the current case instead of panicking.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {:?} == {:?}: {}", l, r, format!($($fmt)+)
        );
    }};
}

/// `assert_ne!` that fails the current case instead of panicking.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

/// Rejects the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Uniform choice between strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($strat) ),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn ranges_stay_in_bounds(x in 3usize..9, y in -2.0f64..2.0, s in any::<u64>()) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
            let _ = s;
        }

        #[test]
        fn vec_lengths_respect_range(xs in prop::collection::vec(0u64..10, 2..5)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 5);
            prop_assert!(xs.iter().all(|&x| x < 10));
        }

        #[test]
        fn oneof_and_map_compose(v in prop_oneof![
            (0usize..3, 0f64..1.0).prop_map(|(a, _b)| a),
            Just(7usize),
        ]) {
            prop_assert!(v < 3 || v == 7);
        }

        #[test]
        fn option_of_produces_both(o in prop::option::of(0u32..5)) {
            if let Some(v) = o {
                prop_assert!(v < 5);
            }
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_case_panics_with_replay_info() {
        // No #[test] meta on the inner fn: it is called by hand below
        // (and rustc forbids unnameable inner test items anyway).
        proptest! {
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100);
            }
        }
        always_fails();
    }
}
