//! Offline, API-compatible stand-in for the subset of the `rand` crate
//! (0.9 series) that this workspace uses.
//!
//! The container this repository builds in has no network access to a
//! crates.io mirror, so the real `rand` cannot be downloaded. This stub
//! provides the same public surface for the calls the workspace makes:
//!
//! - [`RngCore`] / [`Rng`] with `random::<f64>()`, `random::<u64>()` and
//!   `random_range(a..b)` over float and integer ranges;
//! - [`SeedableRng::seed_from_u64`];
//! - [`rngs::SmallRng`], implemented as xoshiro256++ (the same family the
//!   real crate uses on 64-bit targets) seeded via SplitMix64.
//!
//! Statistical quality matches the upstream algorithms; streams are NOT
//! bit-for-bit identical to upstream `rand`, which is fine for this
//! workspace (nothing asserts on absolute random streams, only on
//! reproducibility for a fixed seed).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::ops::Range;

/// Low-level source of randomness: a stream of `u32`/`u64` words.
pub trait RngCore {
    /// Returns the next pseudo-random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next pseudo-random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with pseudo-random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that can be sampled uniformly "at random" by [`Rng::random`].
pub trait StandardUniformSample: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardUniformSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision (upstream's method).
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniformSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardUniformSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl StandardUniformSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl StandardUniformSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 sample range");
        let u = f64::sample_standard(rng);
        let v = self.start + (self.end - self.start) * u;
        // Guard against rounding up to the exclusive endpoint.
        if v >= self.end {
            self.start.max(prev_down(self.end))
        } else {
            v
        }
    }
}

fn prev_down(x: f64) -> f64 {
    // Largest representable value strictly below finite positive `x`;
    // adequate for range endpoints used in this workspace.
    if x > 0.0 {
        f64::from_bits(x.to_bits() - 1)
    } else {
        x - f64::EPSILON * x.abs().max(1.0)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer sample range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                // Lemire-style widening multiply without the rejection
                // step; bias is < 2^-64 for the spans this repo uses.
                let hi = ((rng.next_u64() as u128).wrapping_mul(span) >> 64) as u128;
                (self.start as u128).wrapping_add(hi) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty inclusive sample range");
                if start == <$t>::MIN && end == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                (start..end + 1).sample_single(rng)
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, u16, u8, i64, i32);

/// High-level convenience methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution.
    fn random<T: StandardUniformSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range`.
    fn random_range<T, Rr: SampleRange<T>>(&mut self, range: Rr) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability outside [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates an RNG from a single `u64` seed (SplitMix64-expanded).
    fn seed_from_u64(seed: u64) -> Self;

    /// Creates an RNG seeded from another RNG.
    fn from_rng<R: RngCore + ?Sized>(source: &mut R) -> Self {
        Self::seed_from_u64(source.next_u64())
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// A small, fast generator: xoshiro256++.
    ///
    /// Mirrors the role of `rand::rngs::SmallRng` on 64-bit targets.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for word in &mut s {
                *word = splitmix64(&mut state);
            }
            // A xoshiro state of all zeros is a fixed point; SplitMix64
            // cannot produce four zero outputs in a row, but keep the
            // guard for clarity.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias: the workspace only needs deterministic seeding, so the
    /// "standard" RNG is the same generator as [`SmallRng`].
    pub type StdRng = SmallRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn unit_interval_and_ranges() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            let y = rng.random_range(3.0f64..4.0);
            assert!((3.0..4.0).contains(&y));
            let k = rng.random_range(0usize..7);
            assert!(k < 7);
        }
    }

    #[test]
    fn range_through_mut_ref() {
        // `&mut SmallRng` must itself satisfy `Rng` bounds.
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.random_range(f64::MIN_POSITIVE..1.0)
        }
        let mut rng = SmallRng::seed_from_u64(1);
        let v = draw(&mut rng);
        assert!(v > 0.0 && v < 1.0);
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut rng = SmallRng::seed_from_u64(11);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.random::<f64>()).sum();
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }
}
