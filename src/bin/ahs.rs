//! `ahs` — command-line front end for the AHS safety library.
//!
//! ```text
//! ahs evaluate [--n N] [--lambda L] [--strategy DD|DC|CD|CC]
//!              [--platoons P] [--horizon H] [--points K]
//!              [--reps R | --paper] [--seed S] [--threads T] [--plain]
//!              [--manifest PATH | --no-manifest] [--telemetry PATH] [--progress]
//!              [--checkpoint PATH [--checkpoint-every N]] [--resume PATH]
//!              [--quarantine-budget B] [--watchdog-events E] [--watchdog-seconds W]
//! ahs check [--n N] [--platoons P] [--strategy S | --all] [--max-states S]
//!           [--capacity C] [--allow PATTERN]... [--no-default-allow]
//!           [--cross-check] [--format text|json] [--report PATH]
//!           [--failpoints SPEC]
//! ahs serve [--addr HOST:PORT] [--state-dir DIR] [--workers W]
//!           [--queue-capacity Q] [--restart-budget R]
//!           [--checkpoint-every N] [--checkpoint-generations G]
//!           [--max-reps R] [--max-threads T] [--quarantine-cap B]
//!           [--max-connections C] [--isolation process|thread]
//!           [--mem-limit MB] [--cpu-limit SECS]
//!           [--watchdog-events E] [--watchdog-seconds W]
//!           [--failpoints SPEC]
//! ahs durations [--samples N] [--seed S]
//! ahs involved [--n N]
//! ahs dot [--n N] [--platoons P]
//! ahs help
//! ```
//!
//! `evaluate` and `serve` install a SIGINT/SIGTERM handler: the first
//! signal requests a graceful stop, studies drain in-flight chunks,
//! flush a final checkpoint (when checkpointing is configured) and the
//! manifest, and the process exits with code 75 (`EX_TEMPFAIL`,
//! "interrupted but resumable") whenever resumable work remains.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;

use ahs_safety::core::{
    involved_vehicles, study_checkpoint_path, AhsModel, BiasMode, Params, Strategy,
    UnsafetyEvaluator, MANEUVERS,
};
use ahs_safety::des::Watchdog;
use ahs_safety::obs::{interrupt_flag, Metrics, ProgressSink, RunOutcome};
use ahs_safety::platoon::DurationModel;
use ahs_safety::stats::{StoppingRule, TimeGrid};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match command.as_str() {
        "evaluate" => cmd_evaluate(rest),
        "check" => cmd_check(rest),
        "serve" => cmd_serve(rest),
        // Hidden: the process-isolation mode `ahs serve` re-execs for
        // each job attempt. Not for direct use.
        "serve-worker" => cmd_serve_worker(rest),
        "durations" => cmd_durations(rest).map(|()| ExitCode::SUCCESS),
        "involved" => cmd_involved(rest).map(|()| ExitCode::SUCCESS),
        "dot" => cmd_dot(rest).map(|()| ExitCode::SUCCESS),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
ahs — safety evaluation of Automated Highway Systems (DSN 2009 reproduction)

commands:
  evaluate    estimate the unsafety curve S(t) for a configuration
  check       exhaustively model-check a composed SAN (absorption, escalation
              soundness, dead activities, boundedness) with counterexample replay
  serve       run the supervised evaluation service (HTTP job API)
  durations   estimate end-to-end maneuver durations from the kinematic substrate
  involved    show per-strategy maneuver involvement counts
  dot         export the composed SAN model as Graphviz DOT
  help        show this message

evaluate flags:
  --n N           max vehicles per platoon        (default 10)
  --lambda L      base failure rate per hour      (default 1e-5)
  --strategy S    DD | DC | CD | CC               (default DD)
  --platoons P    number of platoons, 2..=8       (default 2)
  --horizon H     longest trip duration in hours  (default 10)
  --points K      number of grid points           (default 5)
  --reps R        fixed replication count         (default: paper rule)
  --paper         the paper's stopping rule (>=10k reps, 95%/0.1 rel.)
  --seed S        master seed                     (default 2009)
  --threads T     worker threads                  (default: all cores)
  --plain         plain Monte Carlo instead of dynamic importance sampling
  --manifest P    where to write the run manifest (default results/ahs-evaluate.manifest.json)
  --no-manifest   skip writing the run manifest
  --telemetry P   append JSON-lines progress events to file P
  --progress      emit JSON-lines progress events to stderr

robustness flags (evaluate):
  --checkpoint P        write crash-safe study checkpoints to P; when P is a
                        directory (or ends with /), the file is namespaced
                        per study as study-<seed>-<params digest>.checkpoint
                        .json, so simultaneous runs never clobber each other
                        (the default manifest moves there too)
  --checkpoint-every N  replications between checkpoints (default 100000)
  --checkpoint-generations G
                        checkpoint generations to retain / consult on
                        resume (default 2: latest + one fallback)
  --resume P            resume from the checkpoint at P (bitwise-identical
                        result; falls back to the newest valid retained
                        generation when the latest is corrupt); accepts the
                        same per-study directory form as --checkpoint
  --quarantine-budget B tolerate up to B panicking replications (default 0)
  --watchdog-events E   fail any replication exceeding E events
  --watchdog-seconds W  fail any replication exceeding W seconds wall-clock
  --failpoints SPEC     arm deterministic fault injection (builds with the
                        `inject` feature only; also read from AHS_FAILPOINTS;
                        see docs/robustness.md for the failpoint catalog)

check flags:
  --n N             vehicles per platoon             (default 1: exhaustive)
  --platoons P      number of platoons, 2..=8        (default 2)
  --strategy S      DD | DC | CD | CC                (default DD)
  --all             check all four strategies
  --max-states S    exploration state budget         (default 524288)
  --capacity C      boundedness token capacity       (default 64)
  --allow PATTERN   extra allowlisted sink place-name substring
  --no-default-allow  drop the built-in v_KO/KO_total sink allowlist
  --cross-check     also cross-validate states/transitions against ahs-ctmc
  --format F        text (default) or json (ahs-check-report/v1, one per line)
  --report PATH     also write the JSON report(s) to PATH (one per line)
  --failpoints SPEC arm deterministic fault injection (inject builds only)

check exits 0 when every property is proved on every requested model, 1 on
violations, truncation, or a cross-check mismatch; on SIGINT/SIGTERM it
stops and exits with code 75

serve flags:
  --addr A            bind address                       (default 127.0.0.1:2009)
  --state-dir D       persisted job state root           (default results/serve)
  --workers W         concurrent supervised jobs         (default 2)
  --queue-capacity Q  queued jobs before 429 shedding    (default 16)
  --restart-budget R  restarts per job before failure    (default 2)
  --checkpoint-every N   replications between job checkpoints (default 10000)
  --checkpoint-generations G  checkpoint generations per job   (default 2)
  --max-reps R        admission cap on reps per job      (default 2000000)
  --max-threads T     admission clamp on threads per job (default: all cores)
  --quarantine-cap B  admission cap on quarantine budget (default 1000)
  --max-connections C concurrent connection handlers; beyond C connections
                      are shed with a 503                (default 64)
  --isolation MODE    process (default on unix) runs each job attempt in a
                      re-execed `ahs serve-worker` child so crashes and
                      resource-limit kills stay contained; thread (default
                      elsewhere) runs attempts in the server process
  --mem-limit MB      RLIMIT_AS budget each worker process applies to
                      itself (process isolation only)
  --cpu-limit SECS    RLIMIT_CPU budget each worker process applies to
                      itself (process isolation only)
  --watchdog-events E, --watchdog-seconds W
                      watchdog applied to every job (server policy)
  --failpoints SPEC   arm deterministic fault injection (inject builds only)

serve exposes POST/GET /v1/jobs, GET /v1/jobs/{id}[/manifest], and
GET /v1/healthz (schemas in tests/serve-api.schema.json, API guide in
docs/serving.md); on SIGINT/SIGTERM it drains in-flight jobs at chunk
boundaries and exits 75 while any accepted job is unfinished — a restart
over the same --state-dir resumes every one of them bitwise

on SIGINT/SIGTERM, evaluate stops gracefully, flushes the checkpoint and
manifest, and exits with code 75 (resumable)";

/// Pulls `--key value` pairs and bare flags out of `args`.
struct Flags<'a> {
    args: &'a [String],
}

impl<'a> Flags<'a> {
    fn new(args: &'a [String]) -> Self {
        Flags { args }
    }

    fn has(&self, flag: &str) -> bool {
        self.args.iter().any(|a| a == flag)
    }

    fn value(&self, flag: &str) -> Result<Option<&'a str>, String> {
        match self.args.iter().position(|a| a == flag) {
            None => Ok(None),
            Some(i) => match self.args.get(i + 1) {
                Some(v) => Ok(Some(v)),
                None => Err(format!("flag {flag} expects a value")),
            },
        }
    }

    fn parse<T: std::str::FromStr>(&self, flag: &str, default: T) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        match self.value(flag)? {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|e| format!("invalid value `{v}` for {flag}: {e}")),
        }
    }

    /// Every occurrence of a repeatable `--key value` flag, in order.
    fn values(&self, flag: &str) -> Result<Vec<String>, String> {
        let mut out = Vec::new();
        for (i, a) in self.args.iter().enumerate() {
            if a == flag {
                match self.args.get(i + 1) {
                    Some(v) => out.push(v.clone()),
                    None => return Err(format!("flag {flag} expects a value")),
                }
            }
        }
        Ok(out)
    }
}

/// Parses `--watchdog-events` / `--watchdog-seconds` into an armed
/// watchdog, or `None` when neither flag is present.
fn parse_watchdog(f: &Flags<'_>) -> Result<Option<Watchdog>, String> {
    let mut watchdog = Watchdog::new();
    if let Some(e) = f.value("--watchdog-events")? {
        let e: u64 = e
            .parse()
            .map_err(|err| format!("invalid value `{e}` for --watchdog-events: {err}"))?;
        if e == 0 {
            return Err("--watchdog-events must be positive".into());
        }
        watchdog = watchdog.with_max_events(e);
    }
    if let Some(w) = f.value("--watchdog-seconds")? {
        let w: f64 = w
            .parse()
            .map_err(|err| format!("invalid value `{w}` for --watchdog-seconds: {err}"))?;
        if !(w.is_finite() && w > 0.0) {
            return Err("--watchdog-seconds must be positive and finite".into());
        }
        watchdog = watchdog.with_max_wall_seconds(w);
    }
    Ok(watchdog.is_armed().then_some(watchdog))
}

/// Parses an optional positive-integer flag (rejecting zero).
fn parse_positive(f: &Flags<'_>, flag: &str) -> Result<Option<u64>, String> {
    match f.value(flag)? {
        None => Ok(None),
        Some(v) => {
            let n: u64 = v
                .parse()
                .map_err(|e| format!("invalid value `{v}` for {flag}: {e}"))?;
            if n == 0 {
                return Err(format!("{flag} must be positive"));
            }
            Ok(Some(n))
        }
    }
}

fn parse_params(f: &Flags<'_>) -> Result<Params, String> {
    let strategy = match f.value("--strategy")?.unwrap_or("DD") {
        "DD" | "dd" => Strategy::Dd,
        "DC" | "dc" => Strategy::Dc,
        "CD" | "cd" => Strategy::Cd,
        "CC" | "cc" => Strategy::Cc,
        other => return Err(format!("unknown strategy `{other}` (use DD/DC/CD/CC)")),
    };
    Params::builder()
        .n(f.parse("--n", 10usize)?)
        .lambda(f.parse("--lambda", 1e-5)?)
        .platoons(f.parse("--platoons", 2usize)?)
        .strategy(strategy)
        .build()
        .map_err(|e| e.to_string())
}

/// Arms fault injection from `--failpoints` / `AHS_FAILPOINTS`. The
/// flag wins over the environment; on a build without the `inject`
/// feature a non-empty spec is a loud error, never a silent no-op.
fn configure_failpoints(f: &Flags<'_>) -> Result<(), String> {
    match f.value("--failpoints")? {
        Some(spec) => {
            ahs_inject::configure_from_spec(spec).map_err(|e| format!("--failpoints: {e}"))
        }
        None => ahs_inject::configure_from_env()
            .map(|_| ())
            .map_err(|e| format!("{}: {e}", ahs_inject::ENV_VAR)),
    }
}

fn cmd_evaluate(args: &[String]) -> Result<ExitCode, String> {
    let f = Flags::new(args);
    configure_failpoints(&f)?;
    let params = parse_params(&f)?;
    let horizon: f64 = f.parse("--horizon", 10.0)?;
    let points: usize = f.parse("--points", 5usize)?;
    if horizon <= 0.0 || points < 1 {
        return Err("need a positive horizon and at least one grid point".into());
    }
    let grid = if points == 1 {
        TimeGrid::new(vec![horizon])
    } else {
        TimeGrid::linspace(horizon / points as f64, horizon, points)
    };

    let seed: u64 = f.parse("--seed", 2009u64)?;
    let metrics = Arc::new(Metrics::new());
    let mut eval = UnsafetyEvaluator::new(params.clone())
        .with_seed(seed)
        .with_metrics(metrics.clone());
    if f.has("--plain") {
        eval = eval.with_bias(BiasMode::None);
    }
    if let Some(t) = f.value("--threads")? {
        let t: usize = t
            .parse()
            .map_err(|e| format!("invalid value `{t}` for --threads: {e}"))?;
        eval = eval.with_threads(t);
    }
    if let Some(path) = f.value("--telemetry")? {
        let sink = ProgressSink::file(std::path::Path::new(path)).map_err(|e| e.to_string())?;
        eval = eval.with_progress(Arc::new(sink));
    } else if f.has("--progress") {
        eval = eval.with_progress(Arc::new(ProgressSink::stderr()));
    }
    eval = eval.with_interrupt(interrupt_flag());
    // `--checkpoint DIR/` (or any existing directory) namespaces the
    // checkpoint per study — seed plus parameter digest — so
    // simultaneous runs sharing one directory can never clobber each
    // other's generations. The default manifest moves into the same
    // directory under the same study name.
    let mut study_dir: Option<PathBuf> = None;
    let mut checkpoint_file: Option<PathBuf> = None;
    if let Some(path) = f.value("--checkpoint")? {
        let every: u64 = f.parse("--checkpoint-every", 100_000u64)?;
        if every == 0 {
            return Err("--checkpoint-every must be positive".into());
        }
        let target = if path.ends_with('/') || Path::new(path).is_dir() {
            let dir = Path::new(path);
            std::fs::create_dir_all(dir)
                .map_err(|e| format!("creating checkpoint dir {path}: {e}"))?;
            study_dir = Some(dir.to_path_buf());
            study_checkpoint_path(dir, seed, &params)
        } else {
            PathBuf::from(path)
        };
        eval = eval.with_checkpoint(&target, every);
        checkpoint_file = Some(target);
    }
    let generations: u32 = f.parse("--checkpoint-generations", 2u32)?;
    if generations == 0 {
        return Err("--checkpoint-generations must be positive".into());
    }
    eval = eval.with_checkpoint_generations(generations);
    if let Some(path) = f.value("--resume")? {
        let target = if path.ends_with('/') || Path::new(path).is_dir() {
            study_checkpoint_path(Path::new(path), seed, &params)
        } else {
            PathBuf::from(path)
        };
        eval = eval.with_resume(target);
    }
    eval = eval.with_quarantine_budget(f.parse("--quarantine-budget", 0u64)?);
    if let Some(watchdog) = parse_watchdog(&f)? {
        eval = eval.with_watchdog(watchdog);
    }
    eval = if f.has("--paper") {
        eval.with_rule(
            StoppingRule::relative_precision(0.95, 0.1)
                .with_min_samples(10_000)
                .with_max_samples(2_000_000),
        )
    } else {
        eval.with_replications(f.parse("--reps", 20_000u64)?)
    };

    println!(
        "AHS: {} platoons × up to {} vehicles, lambda={:.1e}/hr, strategy {}",
        params.platoons, params.n, params.lambda, params.strategy
    );
    if !f.has("--plain") {
        println!(
            "dynamic importance sampling: x{:.0} healthy / x{:.0} during recovery",
            eval.first_level_boost(grid.horizon()),
            eval.second_level_boost()
        );
    }
    let start = std::time::Instant::now();
    let curve = eval.evaluate(&grid).map_err(|e| e.to_string())?;
    let wall = start.elapsed().as_secs_f64();
    println!("\ntrip (h)     S(t)         95% half-width");
    for p in curve.points() {
        println!("{:>7.2}   {:.4e}    {:.2e}", p.x, p.y, p.half_width);
    }
    println!(
        "\n{} replications, precision target {}",
        curve.replications(),
        if curve.converged() {
            "reached"
        } else {
            "not evaluated (fixed budget)"
        }
    );
    if !curve.resume_lineage().is_empty() {
        println!(
            "resumed from checkpoint watermark(s) {:?}",
            curve.resume_lineage()
        );
    }
    if let Some(generation) = curve.resume_fallback() {
        eprintln!(
            "warning: latest checkpoint was corrupt; resumed from retained \
             generation {generation}"
        );
    }
    if curve.quarantined() > 0 {
        eprintln!(
            "warning: {} replication(s) panicked and were quarantined",
            curve.quarantined()
        );
    }
    if !f.has("--no-manifest") {
        // In per-study checkpoint mode the default manifest is
        // namespaced alongside the checkpoint, so simultaneous runs
        // write distinct manifests too.
        let study_manifest = match (&study_dir, &checkpoint_file) {
            (Some(dir), Some(cp)) => {
                let name = cp
                    .file_name()
                    .map_or_else(String::new, |n| n.to_string_lossy().into_owned())
                    .replace(".checkpoint.json", ".manifest.json");
                Some(dir.join(name))
            }
            _ => None,
        };
        let path = match f.value("--manifest")? {
            Some(p) => PathBuf::from(p),
            None => study_manifest
                .unwrap_or_else(|| PathBuf::from("results/ahs-evaluate.manifest.json")),
        };
        let manifest = eval.manifest("ahs evaluate", &curve, wall);
        manifest
            .write(&path)
            .map_err(|e| format!("writing manifest {}: {e}", path.display()))?;
        eprintln!("wrote {}", path.display());
    }
    if curve.interrupted() {
        eprintln!(
            "interrupted: study stopped after {} replications{}",
            curve.replications(),
            if checkpoint_file.is_some() {
                "; resume with --resume <checkpoint>"
            } else {
                " (no --checkpoint configured, progress is lost)"
            }
        );
        return Ok(RunOutcome::Interrupted.exit_code());
    }
    Ok(RunOutcome::Success.exit_code())
}

fn cmd_serve(args: &[String]) -> Result<ExitCode, String> {
    use ahs_safety::serve::{AdmissionPolicy, Isolation, ProcessIsolation, ServeConfig, Server};

    let f = Flags::new(args);
    configure_failpoints(&f)?;
    let mut config = ServeConfig::new(f.value("--state-dir")?.unwrap_or("results/serve"));
    if let Some(addr) = f.value("--addr")? {
        config.addr = addr.to_owned();
    }
    config.workers = f.parse("--workers", config.workers)?;
    if config.workers == 0 {
        return Err("--workers must be positive".into());
    }
    config.queue_capacity = f.parse("--queue-capacity", config.queue_capacity)?;
    config.restart_budget = f.parse("--restart-budget", config.restart_budget)?;
    config.checkpoint_every = f.parse("--checkpoint-every", config.checkpoint_every)?;
    if config.checkpoint_every == 0 {
        return Err("--checkpoint-every must be positive".into());
    }
    config.checkpoint_generations =
        f.parse("--checkpoint-generations", config.checkpoint_generations)?;
    if config.checkpoint_generations == 0 {
        return Err("--checkpoint-generations must be positive".into());
    }

    let mut policy = AdmissionPolicy::default();
    policy.max_replications = f.parse("--max-reps", policy.max_replications)?;
    if policy.max_replications == 0 {
        return Err("--max-reps must be positive".into());
    }
    policy.max_threads = f.parse("--max-threads", policy.max_threads)?;
    if policy.max_threads == 0 {
        return Err("--max-threads must be positive".into());
    }
    policy.quarantine_cap = f.parse("--quarantine-cap", policy.quarantine_cap)?;
    policy.watchdog = parse_watchdog(&f)?;
    config.policy = policy;

    config.max_connections = f.parse("--max-connections", config.max_connections)?;
    if config.max_connections == 0 {
        return Err("--max-connections must be positive".into());
    }
    // Process isolation is the default wherever rlimits (and POSIX
    // signals) exist; elsewhere the in-process thread mode remains.
    let default_isolation = if cfg!(unix) { "process" } else { "thread" };
    config.isolation = match f.value("--isolation")?.unwrap_or(default_isolation) {
        "thread" => Isolation::Thread,
        "process" => {
            let worker_exe = std::env::current_exe()
                .map_err(|e| format!("resolving the worker binary for --isolation process: {e}"))?;
            let mut isolation = ProcessIsolation::new(worker_exe);
            isolation.mem_limit_mb = parse_positive(&f, "--mem-limit")?;
            isolation.cpu_limit_secs = parse_positive(&f, "--cpu-limit")?;
            Isolation::Process(isolation)
        }
        other => {
            return Err(format!(
                "unknown isolation `{other}` (use process or thread)"
            ))
        }
    };
    if matches!(config.isolation, Isolation::Thread)
        && (f.has("--mem-limit") || f.has("--cpu-limit"))
    {
        return Err("--mem-limit/--cpu-limit require --isolation process".into());
    }

    let state_dir = config.state_dir.clone();
    let (workers, queue_capacity) = (config.workers, config.queue_capacity);
    let isolation_name = match &config.isolation {
        Isolation::Thread => "thread",
        Isolation::Process(_) => "process",
    };
    let server =
        Server::start(config, interrupt_flag()).map_err(|e| format!("starting server: {e}"))?;
    // The CI smoke job parses this line to discover the bound port.
    println!("ahs-serve listening on http://{}", server.local_addr());
    println!(
        "state dir {}; {workers} worker(s); queue capacity {queue_capacity}; \
         {isolation_name} isolation; stop with SIGINT/SIGTERM (drains, exit 75 \
         while jobs are resumable)",
        state_dir.display()
    );
    let report = server.join();
    eprintln!(
        "drained: {} finished, {} failed, {} unfinished{}",
        report.finished,
        report.failed,
        report.unfinished,
        if report.unfinished > 0 {
            " (restart over the same --state-dir to resume them)"
        } else {
            ""
        }
    );
    Ok(report.outcome().exit_code())
}

/// The hidden process-isolation mode: evaluates one job attempt from
/// its state directory and exits 0 (finished), 75 (drained on
/// SIGTERM), or 1 (typed failure); the supervising `ahs serve` parent
/// maps anything else — signals, rlimit kills, aborts — to a restart
/// from the latest good checkpoint generation.
fn cmd_serve_worker(args: &[String]) -> Result<ExitCode, String> {
    use ahs_safety::serve::{run_worker, WorkerOptions};

    let f = Flags::new(args);
    // Failpoints arm from AHS_FAILPOINTS, which the supervisor's
    // environment passes straight through — so a chaos sweep reaches
    // inside worker processes too.
    configure_failpoints(&f)?;
    let Some(job_dir) = f.value("--job-dir")? else {
        return Err("serve-worker requires --job-dir (internal mode; use `ahs serve`)".into());
    };
    let expect_fingerprint = match f.value("--expect-fingerprint")? {
        None => None,
        Some(hex) => Some(
            u64::from_str_radix(hex, 16)
                .map_err(|e| format!("invalid value `{hex}` for --expect-fingerprint: {e}"))?,
        ),
    };
    let options = WorkerOptions {
        job_dir: PathBuf::from(job_dir),
        checkpoint_every: f.parse("--checkpoint-every", 10_000u64)?,
        checkpoint_generations: f.parse("--checkpoint-generations", 2u32)?,
        heartbeat_interval: std::time::Duration::from_millis(f.parse("--heartbeat-ms", 200u64)?),
        mem_limit_mb: parse_positive(&f, "--mem-limit")?,
        cpu_limit_secs: parse_positive(&f, "--cpu-limit")?,
        watchdog: parse_watchdog(&f)?,
        expect_fingerprint,
    };
    Ok(ExitCode::from(run_worker(&options)))
}

fn cmd_check(args: &[String]) -> Result<ExitCode, String> {
    use ahs_safety::check::{
        cross_validate, render_text, report_json, CheckConfig, CheckError, Checker,
    };

    let f = Flags::new(args);
    configure_failpoints(&f)?;
    let n: usize = f.parse("--n", 1usize)?;
    let platoons: usize = f.parse("--platoons", 2usize)?;
    let strategies: Vec<Strategy> = if f.has("--all") {
        Strategy::ALL.to_vec()
    } else {
        match f.value("--strategy")?.unwrap_or("DD") {
            "DD" | "dd" => vec![Strategy::Dd],
            "DC" | "dc" => vec![Strategy::Dc],
            "CD" | "cd" => vec![Strategy::Cd],
            "CC" | "cc" => vec![Strategy::Cc],
            other => return Err(format!("unknown strategy `{other}` (use DD/DC/CD/CC)")),
        }
    };
    let json_format = match f.value("--format")?.unwrap_or("text") {
        "text" => false,
        "json" => true,
        other => return Err(format!("unknown format `{other}` (use text or json)")),
    };
    let mut allowlist = f.values("--allow")?;
    if !f.has("--no-default-allow") {
        allowlist.push("v_KO".to_owned());
        allowlist.push("KO_total".to_owned());
    }
    let config = CheckConfig {
        max_states: f.parse("--max-states", 1usize << 19)?,
        capacity: f.parse("--capacity", 64u64)?,
        absorbing_allowlist: allowlist,
    };
    let checker = Checker::with_config(config.clone());
    let interrupt = interrupt_flag();

    let mut all_proved = true;
    let mut report_lines = Vec::new();
    for strategy in strategies {
        let params = Params::builder()
            .n(n)
            .platoons(platoons)
            .strategy(strategy)
            .build()
            .map_err(|e| e.to_string())?;
        let (san, _) = AhsModel::build(&params)
            .map_err(|e| e.to_string())?
            .into_san();
        let mut outcome = match checker.check_interruptible(&san, Some(interrupt.as_ref())) {
            Ok(outcome) => outcome,
            Err(CheckError::Interrupted { states }) => {
                eprintln!(
                    "interrupted while exploring `{}` after {states} states; nothing proved",
                    strategy.name()
                );
                return Ok(RunOutcome::Interrupted.exit_code());
            }
            Err(e) => return Err(e.to_string()),
        };
        // All four strategies build a SAN named "ahs"; label each
        // report with its CLI key so `--all` output stays tellable
        // apart.
        outcome.model = strategy.name().to_ascii_lowercase();
        let cross = if f.has("--cross-check") {
            Some(
                cross_validate(&san, &outcome.graph, config.max_states)
                    .map_err(|e| format!("cross-check `{}`: {e}", outcome.model))?,
            )
        } else {
            None
        };
        all_proved &= outcome.proved() && cross.as_ref().is_none_or(|c| c.matches());
        let json = report_json(&outcome, &config, cross.as_ref()).render();
        if json_format {
            println!("{json}");
        } else {
            print!("{}", render_text(&outcome, &config, cross.as_ref()));
        }
        report_lines.push(json);
    }
    if let Some(path) = f.value("--report")? {
        let mut text = report_lines.join("\n");
        text.push('\n');
        std::fs::write(path, text).map_err(|e| format!("writing report {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    Ok(if all_proved {
        RunOutcome::Success.exit_code()
    } else {
        RunOutcome::Failure.exit_code()
    })
}

fn cmd_durations(args: &[String]) -> Result<(), String> {
    let f = Flags::new(args);
    let samples: u32 = f.parse("--samples", 400u32)?;
    let seed: u64 = f.parse("--seed", 42u64)?;
    let model = DurationModel::default();
    println!("maneuver   mean (s)   std (s)   rate (/hr)");
    for (m, stats) in model.estimate_all(samples, seed) {
        println!(
            "{:<8} {:>9.1} {:>9.1} {:>11.1}",
            m.abbreviation(),
            stats.mean_seconds,
            stats.std_seconds,
            stats.rate_per_hour()
        );
    }
    Ok(())
}

fn cmd_involved(args: &[String]) -> Result<(), String> {
    let f = Flags::new(args);
    let n: usize = f.parse("--n", 10usize)?;
    println!("vehicles involved per maneuver (platoons of {n} + {n}):\n");
    print!("{:<8}", "");
    for s in Strategy::ALL {
        print!("{:>6}", s.name());
    }
    println!();
    for m in MANEUVERS {
        print!("{:<8}", m.abbreviation());
        for s in Strategy::ALL {
            print!("{:>6}", involved_vehicles(m, s, n, n));
        }
        println!();
    }
    Ok(())
}

fn cmd_dot(args: &[String]) -> Result<(), String> {
    let f = Flags::new(args);
    let params = parse_params(&f)?;
    let model = AhsModel::build(&params).map_err(|e| e.to_string())?;
    print!("{}", model.san().to_dot());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| (*x).to_owned()).collect()
    }

    #[test]
    fn flags_parse_values_and_switches() {
        let a = args(&["--n", "6", "--paper", "--lambda", "2e-4"]);
        let f = Flags::new(&a);
        assert!(f.has("--paper"));
        assert!(!f.has("--plain"));
        assert_eq!(f.parse("--n", 10usize).unwrap(), 6);
        assert_eq!(f.parse("--lambda", 1e-5).unwrap(), 2e-4);
        assert_eq!(f.parse("--seed", 7u64).unwrap(), 7);
    }

    #[test]
    fn missing_value_is_an_error() {
        let a = args(&["--n"]);
        let f = Flags::new(&a);
        assert!(f.value("--n").is_err());
    }

    #[test]
    fn bad_value_is_an_error() {
        let a = args(&["--n", "many"]);
        let f = Flags::new(&a);
        assert!(f.parse("--n", 1usize).is_err());
    }

    #[test]
    fn strategies_parse_case_insensitively() {
        for (txt, expect) in [
            ("DD", Strategy::Dd),
            ("dc", Strategy::Dc),
            ("CD", Strategy::Cd),
            ("cc", Strategy::Cc),
        ] {
            let a = args(&["--strategy", txt]);
            let p = parse_params(&Flags::new(&a)).unwrap();
            assert_eq!(p.strategy, expect);
        }
        let a = args(&["--strategy", "XY"]);
        assert!(parse_params(&Flags::new(&a)).is_err());
    }

    #[test]
    fn invalid_params_surface_as_errors() {
        let a = args(&["--platoons", "1"]);
        assert!(parse_params(&Flags::new(&a)).is_err());
        let a = args(&["--lambda", "-1"]);
        assert!(parse_params(&Flags::new(&a)).is_err());
    }
}
