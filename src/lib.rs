//! # AHS Safety — safety modeling and evaluation of Automated Highway Systems
//!
//! A from-scratch Rust reproduction of Hamouda, Kaâniche & Kanoun,
//! *Safety modeling and evaluation of Automated Highway Systems*
//! (DSN 2009): compositional stochastic-activity-network models of
//! platoon-based automated highways, evaluated by (rare-event)
//! simulation and validated against exact CTMC solutions and an
//! independent agent-level simulator.
//!
//! This umbrella crate re-exports the workspace layers:
//!
//! | Module | Crate | What it provides |
//! |---|---|---|
//! | [`san`] | `ahs-san` | the SAN formalism: places, activities, gates, Rep/Join composition |
//! | [`des`] | `ahs-des` | simulation engines, importance sampling, parallel replication studies |
//! | [`stats`] | `ahs-stats` | estimators, confidence intervals, stopping rules, curves |
//! | [`ctmc`] | `ahs-ctmc` | state-space exploration and uniformization solvers |
//! | [`platoon`] | `ahs-platoon` | kinematic platoon substrate and maneuver-duration models |
//! | [`core`] | `ahs-core` | the paper's models: failure modes, maneuvers, strategies, `S(t)` |
//! | [`obs`] | `ahs-obs` | telemetry: metrics sinks, run manifests, JSON-lines progress |
//! | [`inject`] | `ahs-inject` | deterministic failpoints for chaos/robustness testing |
//! | [`check`] | `ahs-check` | exhaustive model checking: absorption, escalation soundness, boundedness, counterexample replay |
//! | [`serve`] | `ahs-serve` | supervised evaluation service: HTTP job API, admission control, graceful drain |
//!
//! # Quickstart
//!
//! Evaluate the unsafety of a 2×8-vehicle AHS over a 2–10 hour trip:
//!
//! ```no_run
//! use ahs_safety::core::{Params, UnsafetyEvaluator};
//! use ahs_safety::stats::TimeGrid;
//!
//! let params = Params::builder().n(8).lambda(1e-5).build()?;
//! let curve = UnsafetyEvaluator::new(params)
//!     .with_seed(42)
//!     .evaluate(&TimeGrid::linspace(2.0, 10.0, 5))?;
//! for p in curve.points() {
//!     println!("S({:>4.1} h) = {:.3e} ± {:.1e}", p.x, p.y, p.half_width);
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! See the `examples/` directory for runnable scenarios and the
//! `ahs-bench` crate for the full reproduction of every table and
//! figure in the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ahs_check as check;
pub use ahs_core as core;
pub use ahs_ctmc as ctmc;
pub use ahs_des as des;
pub use ahs_inject as inject;
pub use ahs_obs as obs;
pub use ahs_platoon as platoon;
pub use ahs_san as san;
pub use ahs_serve as serve;
pub use ahs_stats as stats;
