//! Compares the four coordination strategies of Table 3 (the study
//! behind the paper's Figures 14–15): decentralized/centralized
//! inter- and intra-platoon coordination.
//!
//! ```text
//! cargo run --release --example strategy_tradeoff
//! ```

use ahs_safety::core::{involved_vehicles, Params, Strategy, UnsafetyEvaluator};
use ahs_safety::platoon::RecoveryManeuver;
use ahs_safety::stats::TimeGrid;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The mechanism: centralized coordination involves more vehicles
    // per maneuver (paper §2.2.1's TIE-E example).
    println!("vehicles involved in TIE-E for platoons of 10 + 10:");
    for s in Strategy::ALL {
        println!(
            "  {}: {}",
            s,
            involved_vehicles(RecoveryManeuver::TakeImmediateExitEscorted, s, 10, 10)
        );
    }

    // The consequence: unsafety ordering DD <= DC <= CD <= CC, with a
    // modest gap (the paper's Figure 14). λ is raised above the
    // paper's 1e-5 so a quick run has tight intervals.
    println!("\nS(6h) per strategy (n = 10, lambda = 1e-4/hr):");
    let grid = TimeGrid::new(vec![6.0]);
    for s in Strategy::ALL {
        let params = Params::builder().n(10).lambda(1e-4).strategy(s).build()?;
        let curve = UnsafetyEvaluator::new(params)
            .with_seed(14)
            .with_replications(30_000)
            .evaluate(&grid)?;
        let p = curve.points()[0];
        println!("  {}: {:.4e} ± {:.1e}", s, p.y, p.half_width);
    }
    println!("\nexpected shape: DD safest, CC least safe; the inter-platoon");
    println!("choice (D_ vs C_) moves the curve more than the intra choice.");
    Ok(())
}
