//! Exercises the kinematic substrate: simulates each of the six
//! recovery maneuvers of Table 1 on an 8-vehicle platoon and derives
//! the end-to-end duration statistics that justify the paper's
//! 15–30 /hr maneuver rates (durations of 2–4 minutes).
//!
//! ```text
//! cargo run --release --example platoon_kinematics
//! ```

use ahs_safety::platoon::{
    DurationModel, ManeuverOutcomeKind, ManeuverSimulator, RecoveryManeuver, SpacingPolicy,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let policy = SpacingPolicy::nominal();
    policy.validate().map_err(std::io::Error::other)?;
    println!(
        "spacing policy: intra {} m, inter {} m, cruise {} m/s",
        policy.intra_gap, policy.inter_gap, policy.cruise_speed
    );
    println!(
        "platooning capacity gain for n=10: x{:.2}\n",
        policy.capacity_ratio(10, 5.0)
    );

    // Pure kinematics: the physical part of each maneuver.
    println!("kinematic phase only (8-vehicle platoon, faulty vehicle #4):");
    let sim = ManeuverSimulator::new(policy).with_exit_distance(1000.0);
    for m in RecoveryManeuver::ALL {
        let ManeuverOutcomeKind::Completed { duration, min_gap } = sim.simulate(m, 8, 4)?;
        println!(
            "  {:<6} {:6.1} s   (smallest gap observed: {:5.2} m)",
            m.abbreviation(),
            duration,
            min_gap
        );
    }

    // End-to-end: kinematics + coordination rounds + highway clearing.
    println!("\nend-to-end durations (coordination + kinematics + clearing):");
    let model = DurationModel::default();
    println!("  maneuver   mean     std      rate");
    for (m, stats) in model.estimate_all(300, 42) {
        println!(
            "  {:<6} {:7.1} s {:6.1} s  {:5.1}/hr",
            m.abbreviation(),
            stats.mean_seconds,
            stats.std_seconds,
            stats.rate_per_hour()
        );
    }
    println!("\nall means fall in the paper's 2-4 minute window (15-30/hr),");
    println!("which is where ahs-core's default maneuver rates come from.");
    Ok(())
}
