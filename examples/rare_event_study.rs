//! Demonstrates why importance sampling is load-bearing: at the
//! paper's λ = 1e-5/hr the unsafety is ~1e-8 and plain Monte Carlo
//! sees nothing, while balanced failure biasing with likelihood-ratio
//! weighting estimates it with a usable confidence interval from the
//! same replication budget.
//!
//! ```text
//! cargo run --release --example rare_event_study
//! ```

use ahs_safety::core::{BiasMode, Params, UnsafetyEvaluator};
use ahs_safety::stats::TimeGrid;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = Params::builder().n(8).lambda(1e-5).build()?;
    let grid = TimeGrid::new(vec![6.0]);
    let budget = 20_000;

    println!("S(6h) for n = 8, lambda = 1e-5/hr, {budget} replications each:\n");

    // Plain Monte Carlo: expect zero hits.
    let plain = UnsafetyEvaluator::new(params.clone())
        .with_seed(1)
        .with_replications(budget)
        .with_bias(BiasMode::None)
        .evaluate(&grid)?;
    let p = plain.points()[0];
    println!(
        "plain MC:             {:.4e} ± {:.1e}  (hits are ~impossible)",
        p.y, p.half_width
    );

    // Dynamic two-level importance sampling (the default).
    let eval = UnsafetyEvaluator::new(params.clone())
        .with_seed(2)
        .with_replications(budget);
    println!(
        "dynamic boosts:       x{:.0} while healthy, x{:.0} while a recovery runs",
        eval.first_level_boost(grid.horizon()),
        eval.second_level_boost()
    );
    let biased = eval.evaluate(&grid)?;
    let b = biased.points()[0];
    println!("dynamic IS:           {:.4e} ± {:.1e}", b.y, b.half_width);

    // A constant boost, for comparison: also unbiased, but its weights
    // collapse over long horizons (see ahs-bench --bin is_diagnostics).
    let fixed = UnsafetyEvaluator::new(params)
        .with_seed(3)
        .with_replications(budget)
        .with_bias(BiasMode::Fixed(2_000.0))
        .evaluate(&grid)?;
    let f = fixed.points()[0];
    println!(
        "constant x2000 boost: {:.4e} ± {:.1e}  (late-horizon mass undersampled)",
        f.y, f.half_width
    );

    println!("\nboth biased estimators use exact likelihood ratios; the dynamic");
    println!("scheme boosts hard only while a maneuver window is open, which is");
    println!("when the concurrent second failure of Table 2 can actually occur.");
    Ok(())
}
