//! Mean time to unsafety (MTTU) — an MTTF-style counterpart of the
//! paper's `S(t)`, computed *exactly* on a small AHS configuration by
//! enumerating the composed SAN's CTMC, and cross-checked against the
//! simulated unsafety slope (`S(t) ≈ t / MTTU` for `t ≪ MTTU`).
//!
//! ```text
//! cargo run --release --example mean_time_to_unsafety
//! ```

use ahs_safety::core::{AhsModel, Params, UnsafetyEvaluator};
use ahs_safety::ctmc::{expected_hitting_time_from_start, SanMarkovModel, StateSpace};
use ahs_safety::stats::TimeGrid;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two single-vehicle platoons with fast failures: small enough to
    // enumerate exactly.
    let params = Params::builder().n(1).lambda(0.05).build()?;
    let model = AhsModel::build(&params)?;
    let ko = model.handles().ko_total;

    let adapter = SanMarkovModel::new(model.san())?;
    let space = StateSpace::explore(&adapter, 500_000)?;
    println!(
        "composed SAN for n=1: {} places, {} activities, {} reachable stable markings",
        model.san().num_places(),
        model.san().num_activities(),
        space.len()
    );

    let mttu = expected_hitting_time_from_start(&space, |m| m.is_marked(ko), 1e-10, 1_000_000)?;
    println!("exact mean time to unsafety: {mttu:.1} hours");

    // Short-horizon check: S(t) ~ t / MTTU while t << MTTU.
    let grid = TimeGrid::new(vec![2.0, 6.0]);
    let curve = UnsafetyEvaluator::new(params)
        .with_seed(3)
        .with_replications(40_000)
        .evaluate(&grid)?;
    println!("\n t (h)   simulated S(t)   t / MTTU");
    for p in curve.points() {
        println!("{:>5.1}   {:.4e}       {:.4e}", p.x, p.y, p.x / mttu);
    }
    println!("\nthe linearized hazard matches the simulated unsafety while");
    println!("t remains far below the mean time to unsafety.");
    Ok(())
}
