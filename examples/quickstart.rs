//! Quickstart: evaluate the unsafety S(t) of a two-platoon AHS.
//!
//! Reproduces one curve of the paper's Figure 10 (n = 8, λ = 1e-5/hr)
//! at a reduced replication budget so it finishes in seconds:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ahs_safety::core::{Params, UnsafetyEvaluator};
use ahs_safety::stats::TimeGrid;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's §4.1 defaults: λ = 1e-5/hr, failure-mode rates
    // [λ, 2λ, 2λ, 2λ, 3λ, 4λ], maneuver rates 15-30/hr, join 12/hr,
    // leave 4/hr, platoon changes 6/hr, strategy DD.
    let params = Params::builder().n(8).lambda(1e-5).build()?;
    println!(
        "AHS with 2 platoons of up to {} vehicles, lambda = {:.0e}/hr, strategy {}",
        params.n, params.lambda, params.strategy
    );
    println!(
        "total per-vehicle failure rate: {:.2e}/hr\n",
        params.total_failure_rate()
    );

    // S(t) = P(catastrophic situation of Table 2 by trip time t).
    // At this λ the event is rare (~1e-8), so the evaluator applies
    // balanced failure biasing automatically and reports unbiased,
    // likelihood-ratio-weighted estimates.
    let evaluator = UnsafetyEvaluator::new(params)
        .with_seed(42)
        .with_replications(20_000);
    let grid = TimeGrid::linspace(2.0, 10.0, 5);
    let curve = evaluator.evaluate(&grid)?;

    println!("trip (h)   S(t)          95% half-width   replications");
    for p in curve.points() {
        println!(
            "{:>7.1}   {:.4e}    {:.2e}         {}",
            p.x, p.y, p.half_width, p.samples
        );
    }
    println!(
        "\n{} replications total, precision target {}",
        curve.replications(),
        if curve.converged() {
            "reached"
        } else {
            "not reached (fixed budget)"
        }
    );
    Ok(())
}
