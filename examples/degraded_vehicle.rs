//! Walks a single vehicle through the paper's failure-and-recovery
//! state machine (Figure 2) inside the composed SAN model, narrating
//! every transition: a failure mode fires, its maneuver runs, failures
//! escalate along TIE-N → TIE → GS → CS → AS, and the severity
//! counters feed the Table 2 catastrophe detector.
//!
//! ```text
//! cargo run --release --example degraded_vehicle
//! ```

use ahs_safety::core::{AhsModel, Params};
use ahs_safety::des::{MarkovSimulator, Observer};
use ahs_safety::san::{ActivityId, Marking};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Prints each event with the live severity counters.
struct Narrator<'m> {
    model: &'m AhsModel,
    events: u32,
}

impl Observer for Narrator<'_> {
    fn on_event(&mut self, time: f64, activity: ActivityId, marking: &Marking) {
        let name = self.model.san().activity(activity).name();
        // Only narrate the safety-relevant events, not platoon churn.
        if name.contains(".L") || name.contains("maneuver") || name.contains("to_KO") {
            let h = self.model.handles();
            println!(
                "t = {:7.4} h  {:<32} classes A/B/C = {}/{}/{}{}",
                time,
                name,
                marking.tokens(h.class_a),
                marking.tokens(h.class_b),
                marking.tokens(h.class_c),
                if marking.is_marked(h.ko_total) {
                    "  << KO_total: catastrophic! >>"
                } else {
                    ""
                }
            );
            self.events += 1;
        }
    }

    fn should_stop(&mut self, _time: f64, marking: &Marking) -> bool {
        marking.is_marked(self.model.handles().ko_total)
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Deliberately extreme rates so one short run shows the whole
    // machinery: frequent failures, failure-prone maneuvers.
    let params = Params::builder()
        .n(4)
        .lambda(2.0)
        .maneuver_base_failure(0.5)
        .impairment_penalty(0.3)
        .build()?;
    let model = AhsModel::build(&params)?;
    println!(
        "composed SAN: {} places, {} activities ({} vehicles)\n",
        model.san().num_places(),
        model.san().num_activities(),
        params.total_vehicles()
    );

    let sim = MarkovSimulator::new(model.san())?;
    let mut rng = SmallRng::seed_from_u64(7);
    let mut narrator = Narrator {
        model: &model,
        events: 0,
    };
    let end = sim.run_with_observer(2.0, &mut rng, &mut narrator)?;

    println!(
        "\nrun ended at t = {end:.4} h after {} safety events",
        narrator.events
    );
    Ok(())
}
