//! Property-based tests of the deterministic retry backoff schedule
//! (`RetryPolicy`): delays are bounded, monotone up to the cap, and a
//! bitwise-pure function of the policy; non-transient error kinds are
//! never retried.

use ahs_obs::{retry_io, RetryPolicy};
use proptest::prelude::*;

fn policy_strategy() -> impl Strategy<Value = RetryPolicy> {
    (0u32..16, 0u64..1000, 0u64..10_000, any::<u64>()).prop_map(
        |(max_retries, base_delay_ms, max_delay_ms, seed)| RetryPolicy {
            max_retries,
            base_delay_ms,
            max_delay_ms,
            seed,
        },
    )
}

proptest! {
    #[test]
    fn delays_are_bounded_by_cap(policy in policy_strategy(), attempt in 0u32..200) {
        prop_assert!(policy.delay_ms(attempt) <= policy.max_delay_ms);
    }

    #[test]
    fn delays_are_monotone_nondecreasing(policy in policy_strategy()) {
        // min(cap, base·2^i + jitter_i) with jitter_i < base is provably
        // nondecreasing; the property must hold for *every* policy, not
        // just the default, or a CLI-tuned policy could oscillate.
        let delays: Vec<u64> = (0..80).map(|i| policy.delay_ms(i)).collect();
        for pair in delays.windows(2) {
            prop_assert!(pair[0] <= pair[1], "schedule not monotone: {:?}", delays);
        }
    }

    #[test]
    fn schedule_is_bitwise_reproducible_for_fixed_seed(
        policy in policy_strategy(),
        attempts in prop::collection::vec(0u32..100, 1..20),
    ) {
        let first: Vec<u64> = attempts.iter().map(|&i| policy.delay_ms(i)).collect();
        let second: Vec<u64> = attempts.iter().map(|&i| policy.delay_ms(i)).collect();
        prop_assert_eq!(first, second);
        // And a copy of the policy produces the same stream — nothing
        // hides behind interior mutability or a global RNG.
        let copy = policy;
        let third: Vec<u64> = attempts.iter().map(|&i| copy.delay_ms(i)).collect();
        let first: Vec<u64> = attempts.iter().map(|&i| policy.delay_ms(i)).collect();
        prop_assert_eq!(first, third);
    }

    #[test]
    fn different_seeds_only_jitter_within_base(
        mut policy in policy_strategy(),
        other_seed in any::<u64>(),
    ) {
        // Jitter must stay inside [0, base): two policies differing only
        // by seed can never disagree by a full base step (pre-cap).
        policy.max_delay_ms = u64::MAX;
        let mut other = policy;
        other.seed = other_seed;
        for attempt in 0..40 {
            let (a, b) = (policy.delay_ms(attempt), other.delay_ms(attempt));
            prop_assert!(a.abs_diff(b) < policy.base_delay_ms.max(1));
        }
    }

    #[test]
    fn non_transient_kinds_are_never_retried(policy in policy_strategy(), which in 0usize..6) {
        use std::io::ErrorKind as K;
        let kind = [
            K::InvalidInput,
            K::NotFound,
            K::PermissionDenied,
            K::AlreadyExists,
            K::InvalidData,
            K::UnexpectedEof,
        ][which];
        prop_assert!(!RetryPolicy::is_transient(kind));
        let mut calls = 0u32;
        let err = retry_io(&policy, || -> std::io::Result<()> {
            calls += 1;
            Err(std::io::Error::new(kind, "permanent"))
        })
        .unwrap_err();
        prop_assert_eq!(err.kind(), kind);
        prop_assert_eq!(calls, 1, "a non-transient error must fail on the first attempt");
    }

    #[test]
    fn transient_kinds_consume_exactly_the_retry_budget(
        mut policy in policy_strategy(),
        which in 0usize..6,
    ) {
        use std::io::ErrorKind as K;
        policy.base_delay_ms = 0; // no real sleeping inside a proptest loop
        policy.max_delay_ms = 0;
        let kind = [
            K::Interrupted,
            K::WouldBlock,
            K::TimedOut,
            K::StorageFull,
            K::ResourceBusy,
            K::QuotaExceeded,
        ][which];
        prop_assert!(RetryPolicy::is_transient(kind));
        let mut calls = 0u32;
        let err = retry_io(&policy, || -> std::io::Result<()> {
            calls += 1;
            Err(std::io::Error::new(kind, "transient"))
        })
        .unwrap_err();
        prop_assert_eq!(err.kind(), kind);
        prop_assert_eq!(calls, policy.max_retries + 1);
    }
}
