//! Process containment primitives: resource limits and signalling for
//! isolated worker processes.
//!
//! `ahs serve --isolation process` re-execs each job into a child
//! process; the child calls [`limit_memory_bytes`] /
//! [`limit_cpu_seconds`] on itself at startup so a runaway allocation
//! or CPU spin dies *inside its own address space*, and the supervisor
//! uses [`send_sigterm`] to request a graceful drain (`std`'s
//! `Child::kill` only delivers SIGKILL).
//!
//! Like `interrupt`, the workspace vendors no `libc`, so both calls go
//! through minimal FFI declarations of POSIX `setrlimit(2)` and
//! `kill(2)` — the only other `unsafe` in the workspace, confined to
//! this module behind the crate's `deny(unsafe_code)`. On non-Unix
//! targets every function returns [`std::io::ErrorKind::Unsupported`]
//! and [`rlimit_supported`] is `false`, which is the signal for callers
//! to fall back to thread isolation.
#![allow(unsafe_code)]

/// Whether this platform can apply `setrlimit`-based budgets (and
/// deliver SIGTERM). False on non-Unix targets, where process
/// isolation falls back to thread mode.
#[must_use]
pub fn rlimit_supported() -> bool {
    cfg!(unix)
}

#[cfg(unix)]
mod sys {
    use std::os::raw::c_int;

    // Resource numbers from the POSIX/Linux and macOS ABIs. RLIMIT_CPU
    // is 0 everywhere; RLIMIT_AS (total virtual address space) is 9 on
    // Linux and 5 (RLIMIT_RSS alias) on the BSDs/macOS.
    const RLIMIT_CPU: c_int = 0;
    #[cfg(target_os = "linux")]
    const RLIMIT_AS: c_int = 9;
    #[cfg(not(target_os = "linux"))]
    const RLIMIT_AS: c_int = 5;

    const SIGTERM: c_int = 15;

    /// `struct rlimit`: soft and hard limits, `rlim_t` is 64-bit on
    /// every supported target.
    #[repr(C)]
    struct RLimit {
        rlim_cur: u64,
        rlim_max: u64,
    }

    extern "C" {
        fn setrlimit(resource: c_int, rlim: *const RLimit) -> c_int;
        /// POSIX `kill(2)`; `pid_t` is a plain `int` on every
        /// supported Unix target.
        fn kill(pid: c_int, sig: c_int) -> c_int;
    }

    fn apply(resource: c_int, limit: u64) -> std::io::Result<()> {
        let rlim = RLimit {
            rlim_cur: limit,
            rlim_max: limit,
        };
        if unsafe { setrlimit(resource, &rlim) } == 0 {
            Ok(())
        } else {
            Err(std::io::Error::last_os_error())
        }
    }

    pub(super) fn limit_memory(bytes: u64) -> std::io::Result<()> {
        apply(RLIMIT_AS, bytes)
    }

    pub(super) fn limit_cpu(seconds: u64) -> std::io::Result<()> {
        apply(RLIMIT_CPU, seconds)
    }

    pub(super) fn sigterm(pid: u32) -> std::io::Result<()> {
        // Never let a pid wrap into the negative range: negative pids
        // address whole process *groups* in kill(2).
        let pid = c_int::try_from(pid).map_err(|_| {
            std::io::Error::new(std::io::ErrorKind::InvalidInput, "pid out of range")
        })?;
        if unsafe { kill(pid, SIGTERM) } == 0 {
            Ok(())
        } else {
            Err(std::io::Error::last_os_error())
        }
    }
}

#[cfg(not(unix))]
mod sys {
    fn unsupported() -> std::io::Error {
        std::io::Error::new(
            std::io::ErrorKind::Unsupported,
            "process resource limits need a Unix target",
        )
    }

    pub(super) fn limit_memory(_bytes: u64) -> std::io::Result<()> {
        Err(unsupported())
    }

    pub(super) fn limit_cpu(_seconds: u64) -> std::io::Result<()> {
        Err(unsupported())
    }

    pub(super) fn sigterm(_pid: u32) -> std::io::Result<()> {
        Err(unsupported())
    }
}

/// Caps this process's total address space (`RLIMIT_AS`) at `bytes`.
/// An allocation beyond the cap fails, which Rust's allocator turns
/// into an abort — the contained process dies, nothing else does.
///
/// # Errors
///
/// The OS error from `setrlimit(2)`; `Unsupported` off Unix.
pub fn limit_memory_bytes(bytes: u64) -> std::io::Result<()> {
    sys::limit_memory(bytes)
}

/// Caps this process's CPU time (`RLIMIT_CPU`) at `seconds`; exceeding
/// it delivers SIGXCPU (default: termination).
///
/// # Errors
///
/// The OS error from `setrlimit(2)`; `Unsupported` off Unix.
pub fn limit_cpu_seconds(seconds: u64) -> std::io::Result<()> {
    sys::limit_cpu(seconds)
}

/// Delivers SIGTERM to `pid` — the graceful-drain request for an
/// isolated worker (its interrupt handler raises the stop flag, the
/// study drains at a chunk boundary, and the process exits 75).
///
/// # Errors
///
/// The OS error from `kill(2)`; `Unsupported` off Unix.
pub fn send_sigterm(pid: u32) -> std::io::Result<()> {
    sys::sigterm(pid)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg(unix)]
    fn sigterm_to_a_dead_pid_is_an_error_not_a_panic() {
        // A pid beyond any real pid_max: ESRCH, and a pid that would
        // wrap negative (process-group addressing) is rejected before
        // the syscall.
        assert!(send_sigterm(i32::MAX as u32 - 1).is_err());
        assert!(send_sigterm(u32::MAX).is_err());
    }

    #[test]
    fn support_flag_matches_target_family() {
        assert_eq!(rlimit_supported(), cfg!(unix));
    }
}
