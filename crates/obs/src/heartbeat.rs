//! Heartbeat files: liveness a supervisor can read across a process
//! boundary.
//!
//! An isolated worker writes a monotonically increasing beat counter
//! to a file at a fixed cadence; its supervisor watches the *content*
//! (not the mtime, which has filesystem-dependent granularity) and
//! treats a beat that stops advancing as a wedged worker. The file is
//! plain `fs::write` on purpose — a heartbeat must stay cheap, and a
//! torn write simply reads as a non-advancing (or unparseable) beat,
//! which is exactly the stale signal.

use std::path::Path;

/// Writes beat number `beat` to `path`, overwriting the previous one.
///
/// # Errors
///
/// The underlying `fs::write` error; callers treat a failed beat as a
/// skipped beat (counted, never fatal — the worker's real work is not
/// gated on its own liveness signal).
pub fn heartbeat_write(path: &Path, beat: u64) -> std::io::Result<()> {
    std::fs::write(path, format!("{beat}\n"))
}

/// Reads the current beat from `path`. `None` when the file is
/// missing, unreadable, or torn — indistinguishable from "no beat
/// yet", which is what a staleness watcher should assume.
#[must_use]
pub fn heartbeat_read(path: &Path) -> Option<u64> {
    std::fs::read_to_string(path).ok()?.trim().parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beats_roundtrip_and_tears_read_as_none() {
        let path = std::env::temp_dir().join(format!("ahs-heartbeat-{}", std::process::id()));
        assert_eq!(heartbeat_read(&path), None);
        heartbeat_write(&path, 0).unwrap();
        assert_eq!(heartbeat_read(&path), Some(0));
        heartbeat_write(&path, 41).unwrap();
        assert_eq!(heartbeat_read(&path), Some(41));
        std::fs::write(&path, b"41\n7").unwrap();
        assert_eq!(heartbeat_read(&path), None, "torn beat must read stale");
        std::fs::remove_file(&path).ok();
    }
}
