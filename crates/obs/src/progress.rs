//! JSON-lines progress reporting.

use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::json::Json;

/// A sink for JSON-lines progress events.
///
/// Each [`emit`](ProgressSink::emit) call writes one line:
///
/// ```json
/// {"event":"study_started","elapsed_s":0.01,"seed":2009,"threads":4}
/// ```
///
/// The `elapsed_s` field is seconds since the sink was created. Writes
/// are serialized through a mutex so workers may share one sink; a
/// failed write is dropped — progress must never abort a study — but
/// *counted*, so a run that lost telemetry says so in its manifest
/// (`telemetry_dropped`) instead of silently looking healthy.
pub struct ProgressSink {
    out: Mutex<Box<dyn Write + Send>>,
    start: Instant,
    dropped: AtomicU64,
}

impl std::fmt::Debug for ProgressSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProgressSink")
            .field("elapsed_s", &self.start.elapsed().as_secs_f64())
            .finish()
    }
}

impl ProgressSink {
    /// A sink writing to an arbitrary writer.
    pub fn to_writer(out: Box<dyn Write + Send>) -> Self {
        ProgressSink {
            out: Mutex::new(out),
            start: Instant::now(),
            dropped: AtomicU64::new(0),
        }
    }

    /// A sink appending to the file at `path` (created if missing,
    /// parent directories included).
    pub fn file(path: &Path) -> std::io::Result<Self> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        Ok(Self::to_writer(Box::new(file)))
    }

    /// A sink writing to stderr.
    pub fn stderr() -> Self {
        Self::to_writer(Box::new(std::io::stderr()))
    }

    /// Emits one event line with the given name and extra fields. A
    /// failed (or injected-to-fail) write increments the dropped
    /// counter instead of propagating.
    pub fn emit(&self, event: &str, fields: Vec<(&str, Json)>) {
        let mut obj = vec![
            ("event", Json::str(event)),
            ("elapsed_s", self.start.elapsed().as_secs_f64().into()),
        ];
        obj.extend(fields);
        let mut line = Json::obj(obj).render();
        line.push('\n');
        let wrote = ahs_inject::fire_io("obs::progress::emit").is_ok()
            && match self.out.lock() {
                Ok(mut out) => out
                    .write_all(line.as_bytes())
                    .and_then(|()| out.flush())
                    .is_ok(),
                Err(_) => false,
            };
        if !wrote {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// How many telemetry events this sink has dropped because the
    /// underlying writer failed.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_append_as_json_lines() {
        let dir = std::env::temp_dir().join(format!(
            "ahs-obs-progress-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let path = dir.join("telemetry.jsonl");
        {
            let sink = ProgressSink::file(&path).expect("open sink");
            sink.emit("study_started", vec![("seed", Json::UInt(7))]);
            sink.emit("chunk_done", vec![("replications", Json::UInt(500))]);
        }
        let body = std::fs::read_to_string(&path).expect("readable");
        let lines: Vec<&str> = body.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"event\":\"study_started\""));
        assert!(lines[0].contains("\"seed\":7"));
        assert!(lines[1].contains("\"replications\":500"));
        for line in lines {
            assert!(line.contains("\"elapsed_s\":"));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failing_writer_counts_drops_instead_of_aborting() {
        struct Broken;
        impl Write for Broken {
            fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::new(std::io::ErrorKind::StorageFull, "full"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let sink = ProgressSink::to_writer(Box::new(Broken));
        assert_eq!(sink.dropped(), 0);
        sink.emit("tick", vec![]);
        sink.emit("tick", vec![]);
        assert_eq!(sink.dropped(), 2, "every failed emit is counted");
    }

    #[test]
    fn shared_sink_serializes_writers() {
        let sink = std::sync::Arc::new(ProgressSink::to_writer(Box::new(Vec::new())));
        std::thread::scope(|s| {
            for i in 0..4 {
                let sink = sink.clone();
                s.spawn(move || {
                    for _ in 0..50 {
                        sink.emit("tick", vec![("worker", Json::UInt(i))]);
                    }
                });
            }
        });
    }
}
