//! A minimal JSON value tree, writer, and parser.
//!
//! The build environment vendors a no-op `serde`, so every tool in this
//! workspace emits machine-readable output by hand (see
//! `ahs-lint::diag` for the same idiom). This module centralizes the
//! escaping and rendering rules so manifests, metrics snapshots, and
//! progress events all produce valid RFC 8259 documents — and, since
//! checkpoint/resume needs to read its own artifacts back, a small
//! recursive-descent parser ([`Json::parse`]) that round-trips
//! everything the writer emits.

/// A JSON value.
///
/// # Example
///
/// ```
/// use ahs_obs::Json;
///
/// let v = Json::obj(vec![
///     ("seed", Json::UInt(2009)),
///     ("lambda", Json::Num(1e-5)),
///     ("tags", Json::Arr(vec![Json::str("is"), Json::str("des")])),
/// ]);
/// assert_eq!(
///     v.render(),
///     r#"{"seed":2009,"lambda":0.00001,"tags":["is","des"]}"#
/// );
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer (seeds and counters need all 64 bits).
    UInt(u64),
    /// A floating-point number; non-finite values render as `null`
    /// (JSON has no NaN/Infinity).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Shorthand for a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Shorthand for an object from `(&str, Json)` pairs.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Renders the value as a compact JSON document.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Parses a JSON document.
    ///
    /// Integers without a fraction or exponent parse as [`Json::UInt`]
    /// (or [`Json::Int`] when negative); everything else numeric parses
    /// as [`Json::Num`]. Trailing non-whitespace after the top-level
    /// value is an error.
    ///
    /// # Example
    ///
    /// ```
    /// use ahs_obs::Json;
    ///
    /// let v = Json::parse(r#"{"seed":2009,"ok":true}"#).unwrap();
    /// assert_eq!(v.get("seed").and_then(Json::as_u64), Some(2009));
    /// assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
    /// ```
    pub fn parse(text: &str) -> Result<Json, JsonParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after top-level value"));
        }
        Ok(value)
    }

    /// Looks up `key` in an object (`None` for other variants or a
    /// missing key; first occurrence wins).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The boolean value, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(u) => Some(*u),
            Json::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            Json::UInt(u) => i64::try_from(*u).ok(),
            _ => None,
        }
    }

    /// The value as an `f64` (accepts any numeric variant; `null`
    /// yields `None`, not NaN).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            Json::Int(i) => Some(*i as f64),
            Json::UInt(u) => Some(*u as f64),
            _ => None,
        }
    }

    /// The string slice, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The element slice, if this is an `Arr`.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The field slice, if this is an `Obj`.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::UInt(u) => out.push_str(&u.to_string()),
            Json::Num(v) => {
                if v.is_finite() {
                    out.push_str(&v.to_string());
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => push_json_string(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    push_json_string(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::UInt(v)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::UInt(v as u64)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Self {
        Json::Int(v)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Num(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_owned())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}

/// Appends `value` to `out` as a quoted, RFC 8259-escaped JSON string.
pub fn push_json_string(out: &mut String, value: &str) {
    out.push('"');
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure from [`Json::parse`], with the byte offset of the
/// offending input.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonParseError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for JsonParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonParseError {
        JsonParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Consume a run of plain (unescaped) bytes at once.
            while !matches!(self.peek(), None | Some(b'"' | b'\\')) {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                None => return Err(self.err("unterminated string")),
                _ => unreachable!(),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), JsonParseError> {
        let c = self.peek().ok_or_else(|| self.err("dangling escape"))?;
        self.pos += 1;
        match c {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{8}'),
            b'f' => out.push('\u{c}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let hi = self.hex4()?;
                let code = if (0xD800..0xDC00).contains(&hi) {
                    // Surrogate pair: expect `\uXXXX` low half.
                    if self.peek() == Some(b'\\') {
                        self.pos += 1;
                        self.expect(b'u')?;
                        let lo = self.hex4()?;
                        if !(0xDC00..0xE000).contains(&lo) {
                            return Err(self.err("invalid low surrogate"));
                        }
                        0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                    } else {
                        return Err(self.err("unpaired high surrogate"));
                    }
                } else {
                    hi
                };
                out.push(char::from_u32(code).ok_or_else(|| self.err("invalid unicode escape"))?);
            }
            _ => return Err(self.err(format!("invalid escape `\\{}`", c as char))),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, JsonParseError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("non-ASCII \\u escape"))?;
        let code = u32::from_str_radix(text, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut fractional = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    fractional = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII digits");
        if !fractional {
            if let Some(rest) = text.strip_prefix('-') {
                if let Ok(v) = rest.parse::<u64>() {
                    if let Ok(i) = i64::try_from(v) {
                        return Ok(Json::Int(-i));
                    }
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::UInt(v));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::Int(-3).render(), "-3");
        assert_eq!(Json::UInt(u64::MAX).render(), "18446744073709551615");
        assert_eq!(Json::Num(1.5).render(), "1.5");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(
            Json::str("a\"b\\c\nd\u{1}").render(),
            "\"a\\\"b\\\\c\\nd\\u0001\""
        );
    }

    #[test]
    fn nested_structures_render_compactly() {
        let v = Json::obj(vec![
            ("a", Json::Arr(vec![Json::UInt(1), Json::Null])),
            ("b", Json::obj(vec![("c", Json::Bool(false))])),
        ]);
        assert_eq!(v.render(), r#"{"a":[1,null],"b":{"c":false}}"#);
    }

    #[test]
    fn float_rendering_round_trips_typical_rates() {
        for v in [1e-5, 1e-13, 0.1, 12.0, 6.02e23] {
            let rendered = Json::Num(v).render();
            let back: f64 = rendered.parse().expect("parses as f64");
            assert_eq!(back, v, "{rendered}");
        }
    }

    #[test]
    fn parse_round_trips_writer_output() {
        let v = Json::obj(vec![
            ("seed", Json::UInt(u64::MAX)),
            ("offset", Json::Int(-42)),
            ("rate", Json::Num(1e-5)),
            ("label", Json::str("a\"b\\c\nd\u{1}")),
            ("flags", Json::Arr(vec![Json::Bool(true), Json::Null])),
            ("nested", Json::obj(vec![("x", Json::Num(0.5))])),
        ]);
        let back = Json::parse(&v.render()).expect("round-trips");
        assert_eq!(back, v);
    }

    #[test]
    fn parse_accepts_whitespace_and_accessors_work() {
        let v = Json::parse(" { \"a\" : [ 1 , 2.5 , \"x\" ] , \"b\" : false } ").unwrap();
        let arr = v.get("a").and_then(Json::as_array).unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert_eq!(arr[2].as_str(), Some("x"));
        assert_eq!(v.get("b").and_then(Json::as_bool), Some(false));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn parse_handles_unicode_escapes() {
        // `\u` escapes, including a surrogate pair, and raw UTF-8.
        assert_eq!(
            Json::parse("\"\\u0041\\u00e9\\ud83d\\ude00\"").unwrap(),
            Json::str("Aé\u{1F600}")
        );
        assert_eq!(Json::parse("\"é😀\"").unwrap(), Json::str("é😀"));
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "\"unterminated",
            "1 2",
            "nul",
            "{\"a\" 1}",
            r#""\q""#,
        ] {
            assert!(Json::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn parse_preserves_integer_width() {
        assert_eq!(
            Json::parse("18446744073709551615").unwrap(),
            Json::UInt(u64::MAX)
        );
        assert_eq!(Json::parse("-7").unwrap(), Json::Int(-7));
        assert_eq!(Json::parse("1e3").unwrap(), Json::Num(1000.0));
    }

    #[test]
    fn numeric_accessors_convert_between_widths() {
        assert_eq!(Json::UInt(7).as_f64(), Some(7.0));
        assert_eq!(Json::Int(7).as_u64(), Some(7));
        assert_eq!(Json::Int(-7).as_u64(), None);
        assert_eq!(Json::UInt(7).as_i64(), Some(7));
        assert_eq!(Json::Null.as_f64(), None);
    }
}
