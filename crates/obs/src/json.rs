//! A minimal JSON value tree and writer.
//!
//! The build environment vendors a no-op `serde`, so every tool in this
//! workspace emits machine-readable output by hand (see
//! `ahs-lint::diag` for the same idiom). This module centralizes the
//! escaping and rendering rules so manifests, metrics snapshots, and
//! progress events all produce valid RFC 8259 documents.

/// A JSON value.
///
/// # Example
///
/// ```
/// use ahs_obs::Json;
///
/// let v = Json::obj(vec![
///     ("seed", Json::UInt(2009)),
///     ("lambda", Json::Num(1e-5)),
///     ("tags", Json::Arr(vec![Json::str("is"), Json::str("des")])),
/// ]);
/// assert_eq!(
///     v.render(),
///     r#"{"seed":2009,"lambda":0.00001,"tags":["is","des"]}"#
/// );
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer (seeds and counters need all 64 bits).
    UInt(u64),
    /// A floating-point number; non-finite values render as `null`
    /// (JSON has no NaN/Infinity).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Shorthand for a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Shorthand for an object from `(&str, Json)` pairs.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Renders the value as a compact JSON document.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::UInt(u) => out.push_str(&u.to_string()),
            Json::Num(v) => {
                if v.is_finite() {
                    out.push_str(&v.to_string());
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => push_json_string(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    push_json_string(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::UInt(v)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::UInt(v as u64)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Self {
        Json::Int(v)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Num(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_owned())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}

/// Appends `value` to `out` as a quoted, RFC 8259-escaped JSON string.
pub fn push_json_string(out: &mut String, value: &str) {
    out.push('"');
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::Int(-3).render(), "-3");
        assert_eq!(Json::UInt(u64::MAX).render(), "18446744073709551615");
        assert_eq!(Json::Num(1.5).render(), "1.5");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(
            Json::str("a\"b\\c\nd\u{1}").render(),
            "\"a\\\"b\\\\c\\nd\\u0001\""
        );
    }

    #[test]
    fn nested_structures_render_compactly() {
        let v = Json::obj(vec![
            ("a", Json::Arr(vec![Json::UInt(1), Json::Null])),
            ("b", Json::obj(vec![("c", Json::Bool(false))])),
        ]);
        assert_eq!(v.render(), r#"{"a":[1,null],"b":{"c":false}}"#);
    }

    #[test]
    fn float_rendering_round_trips_typical_rates() {
        for v in [1e-5, 1e-13, 0.1, 12.0, 6.02e23] {
            let rendered = Json::Num(v).render();
            let back: f64 = rendered.parse().expect("parses as f64");
            assert_eq!(back, v, "{rendered}");
        }
    }
}
