//! Run manifests: JSON provenance records for studies and benchmarks.

use std::path::Path;

use crate::fsio::write_with_retry;
use crate::json::Json;
use crate::metrics::MetricsSnapshot;

/// Schema identifier embedded in every manifest (see
/// `tests/run-manifest.schema.json` for the field catalog).
pub const MANIFEST_SCHEMA: &str = "ahs-run-manifest/v1";

/// The revision of the source tree that produced a run.
///
/// Prefers the `AHS_GIT_REVISION` environment variable (for builds
/// outside a checkout), then asks `git rev-parse HEAD`, and falls back
/// to `"unknown"`.
pub fn git_revision() -> String {
    if let Ok(rev) = std::env::var("AHS_GIT_REVISION") {
        let rev = rev.trim().to_owned();
        if !rev.is_empty() {
            return rev;
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_owned())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_owned())
}

/// The stopping rule a study ran under, in manifest form.
#[derive(Debug, Clone, PartialEq)]
pub struct StoppingSpec {
    /// Confidence level of the interval test (e.g. 0.95).
    pub confidence: f64,
    /// Target relative half-width, if the run used a precision rule.
    pub relative_half_width: Option<f64>,
    /// Minimum replications before the rule may fire.
    pub min_samples: u64,
    /// Replication budget cap, if any.
    pub max_samples: Option<u64>,
}

impl StoppingSpec {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("confidence", self.confidence.into()),
            (
                "relative_half_width",
                self.relative_half_width.map_or(Json::Null, Json::Num),
            ),
            ("min_samples", self.min_samples.into()),
            (
                "max_samples",
                self.max_samples.map_or(Json::Null, Json::UInt),
            ),
        ])
    }
}

/// One estimated point: a `(series, x)` coordinate with its value and
/// confidence half-width.
#[derive(Debug, Clone, PartialEq)]
pub struct EstimatePoint {
    /// Which series the point belongs to (e.g. a figure curve label).
    pub series: String,
    /// The x coordinate (time bound, vehicle count, …).
    pub x: f64,
    /// The point estimate.
    pub y: f64,
    /// Confidence-interval half-width at the manifest's confidence.
    pub half_width: f64,
    /// Effective samples behind the estimate.
    pub samples: u64,
}

impl EstimatePoint {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("series", Json::str(&self.series)),
            ("x", self.x.into()),
            ("y", self.y.into()),
            ("half_width", self.half_width.into()),
            ("samples", self.samples.into()),
        ])
    }
}

/// A complete provenance record for one study or benchmark run.
///
/// Written as `<result>.manifest.json` next to every result the
/// workspace produces; re-running the named tool with the recorded
/// seed and thread count reproduces the recorded estimates exactly
/// (see the determinism test tier).
#[derive(Debug, Clone, PartialEq)]
pub struct RunManifest {
    /// The producing tool (e.g. `"ahs evaluate"`, `"ahs-bench fig10"`).
    pub tool: String,
    /// Human-readable model/figure identifier.
    pub model: String,
    /// Master seed of the run.
    pub seed: u64,
    /// Worker threads used.
    pub threads: usize,
    /// Confidence level of the reported half-widths.
    pub confidence: f64,
    /// The stopping rule, if the run used adaptive stopping.
    pub stopping: Option<StoppingSpec>,
    /// Full model parameters as a JSON object.
    pub params: Json,
    /// Git revision of the producing tree.
    pub git_revision: String,
    /// Wall-clock duration of the run in seconds.
    pub wall_seconds: f64,
    /// Total replications executed.
    pub replications: u64,
    /// Whether every adaptive stopping rule reported convergence.
    pub converged: bool,
    /// Final estimates with confidence half-widths.
    pub estimates: Vec<EstimatePoint>,
    /// Telemetry snapshot, when a sink was attached.
    pub metrics: Option<MetricsSnapshot>,
    /// Tool-specific extra fields, merged into the top-level object.
    pub extra: Vec<(String, Json)>,
}

impl RunManifest {
    /// Creates a manifest with required identity fields; everything
    /// else starts empty and is filled in by the caller.
    pub fn new(tool: impl Into<String>, model: impl Into<String>, seed: u64) -> Self {
        RunManifest {
            tool: tool.into(),
            model: model.into(),
            seed,
            threads: 1,
            confidence: 0.95,
            stopping: None,
            params: Json::Obj(Vec::new()),
            git_revision: git_revision(),
            wall_seconds: 0.0,
            replications: 0,
            converged: true,
            estimates: Vec::new(),
            metrics: None,
            extra: Vec::new(),
        }
    }

    /// Replications per wall-clock second (0 when the clock is 0).
    pub fn throughput(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.replications as f64 / self.wall_seconds
        } else {
            0.0
        }
    }

    /// Serializes the manifest as a [`Json`] object.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("schema".to_owned(), Json::str(MANIFEST_SCHEMA)),
            ("tool".to_owned(), Json::str(&self.tool)),
            ("model".to_owned(), Json::str(&self.model)),
            ("seed".to_owned(), self.seed.into()),
            ("threads".to_owned(), self.threads.into()),
            ("confidence".to_owned(), self.confidence.into()),
            (
                "stopping".to_owned(),
                self.stopping
                    .as_ref()
                    .map_or(Json::Null, StoppingSpec::to_json),
            ),
            ("params".to_owned(), self.params.clone()),
            ("git_revision".to_owned(), Json::str(&self.git_revision)),
            ("wall_seconds".to_owned(), self.wall_seconds.into()),
            ("replications".to_owned(), self.replications.into()),
            (
                "replications_per_second".to_owned(),
                self.throughput().into(),
            ),
            ("converged".to_owned(), self.converged.into()),
            (
                "estimates".to_owned(),
                Json::Arr(self.estimates.iter().map(EstimatePoint::to_json).collect()),
            ),
            (
                "metrics".to_owned(),
                self.metrics
                    .as_ref()
                    .map_or(Json::Null, MetricsSnapshot::to_json),
            ),
        ];
        for (k, v) in &self.extra {
            fields.push((k.clone(), v.clone()));
        }
        Json::Obj(fields)
    }

    /// Renders the manifest as a pretty-enough single-line JSON
    /// document terminated by a newline.
    pub fn render(&self) -> String {
        let mut s = self.to_json().render();
        s.push('\n');
        s
    }

    /// Writes the manifest to `path` atomically (temp file + rename,
    /// with bounded retry on transient errors; see
    /// [`crate::write_with_retry`]), creating parent directories as
    /// needed. A crash mid-write can never leave a truncated manifest
    /// at `path`.
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        write_with_retry(path, self.render().as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Metrics;

    fn sample() -> RunManifest {
        let mut m = RunManifest::new("ahs evaluate", "ahs-n4", 2009);
        m.threads = 4;
        m.confidence = 0.95;
        m.stopping = Some(StoppingSpec {
            confidence: 0.95,
            relative_half_width: Some(0.1),
            min_samples: 1000,
            max_samples: Some(100_000),
        });
        m.params = Json::obj(vec![("lambda", Json::Num(1e-5)), ("n", Json::UInt(4))]);
        m.wall_seconds = 2.0;
        m.replications = 10_000;
        m.estimates.push(EstimatePoint {
            series: "unsafety".to_owned(),
            x: 1.0,
            y: 1.2e-6,
            half_width: 1.1e-7,
            samples: 10_000,
        });
        m
    }

    #[test]
    fn manifest_contains_required_fields() {
        let json = sample().render();
        for needle in [
            "\"schema\":\"ahs-run-manifest/v1\"",
            "\"tool\":\"ahs evaluate\"",
            "\"seed\":2009",
            "\"threads\":4",
            "\"relative_half_width\":0.1",
            "\"lambda\":0.00001",
            "\"replications\":10000",
            "\"replications_per_second\":5000",
            "\"series\":\"unsafety\"",
            "\"half_width\":0.00000011",
            "\"git_revision\":",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
        assert!(json.ends_with('\n'));
    }

    #[test]
    fn throughput_handles_zero_clock() {
        let mut m = sample();
        m.wall_seconds = 0.0;
        assert_eq!(m.throughput(), 0.0);
    }

    #[test]
    fn extra_fields_merge_at_top_level() {
        let mut m = sample();
        m.extra
            .push(("bias_scheme".to_owned(), Json::str("two-level")));
        assert!(m.render().contains("\"bias_scheme\":\"two-level\""));
    }

    #[test]
    fn metrics_snapshot_embeds() {
        let metrics = Metrics::new();
        metrics.add_replications(7);
        let mut m = sample();
        m.metrics = Some(metrics.snapshot());
        assert!(m.render().contains("\"metrics\":{\"replications\":7"));
    }

    #[test]
    fn write_creates_parent_directories() {
        let dir = std::env::temp_dir().join(format!(
            "ahs-obs-manifest-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let path = dir.join("nested/run.manifest.json");
        sample().write(&path).expect("write succeeds");
        let body = std::fs::read_to_string(&path).expect("readable");
        assert!(body.contains("ahs-run-manifest/v1"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn git_revision_prefers_env() {
        // Serialize against other tests touching the var via a lock on
        // a process-wide mutex.
        static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        let _guard = ENV_LOCK.lock().unwrap();
        std::env::set_var("AHS_GIT_REVISION", "deadbeef");
        let rev = git_revision();
        std::env::remove_var("AHS_GIT_REVISION");
        assert_eq!(rev, "deadbeef");
    }
}
