//! Observability for the AHS safety workspace: metrics, run manifests,
//! and progress reporting.
//!
//! The paper's results come from simulation campaigns of at least 10⁴
//! replications per point; this crate records *how* each number was
//! produced so that every figure can be regenerated bit-for-bit and
//! every performance regression is visible. Three pieces:
//!
//! * [`Metrics`] — a thread-safe sink of atomic counters, gauges, and
//!   log-scale histograms (events fired, activities completed by kind,
//!   instantaneous-activity cascades, importance-sampling weight
//!   min/max/ESS, replications per second per worker, event-queue
//!   depth). Instrumented code holds an `Option<Arc<Metrics>>`; the
//!   `None` default costs nothing.
//! * [`RunManifest`] — a JSON provenance record written next to every
//!   study or bench result: full parameters, master seed, thread
//!   count, stopping rule, git revision, wall-clock time, throughput,
//!   and the final estimates with confidence half-widths.
//! * [`ProgressSink`] — JSON-lines progress events (to a file via
//!   `--telemetry <path>`, or to stderr via `--progress`) emitted while
//!   a study runs.
//!
//! Robustness plumbing lives here too: [`atomic_write`] makes every
//! artifact crash-safe (temp file + rename + parent-dir fsync),
//! [`write_with_retry`] adds deterministic exponential backoff for
//! transient failures ([`RetryPolicy`]), [`Json::parse`] reads
//! artifacts back (checkpoint resume), and [`interrupt_flag`] installs
//! the SIGINT/SIGTERM handler behind graceful interruption (see
//! `docs/robustness.md`). The IO paths evaluate `obs::*` failpoints
//! from `ahs-inject` — live only under the `inject` feature — so the
//! chaos tier can fail any of these steps deterministically.
//!
//! The crate is intentionally dependency-free: JSON is emitted through
//! the small [`Json`] value tree (the build environment vendors a
//! no-op `serde`, so all machine-readable output in this workspace is
//! hand-rolled).
//!
//! # Example
//!
//! ```
//! use ahs_obs::{Metrics, MetricsSnapshot};
//! use std::sync::Arc;
//!
//! let metrics = Arc::new(Metrics::new());
//! metrics.add_replications(100);
//! metrics.record_run(12, 3, true);
//! metrics.record_weight(0.5);
//! let snap: MetricsSnapshot = metrics.snapshot();
//! assert_eq!(snap.replications, 100);
//! assert_eq!(snap.timed_completions, 12);
//! assert_eq!(snap.cascades, 1);
//! assert!((snap.weight_min - 0.5).abs() < 1e-12);
//! ```

// `deny` rather than `forbid`: the `interrupt` and `process` modules
// carry the only allowed `unsafe` in the workspace (FFI declarations of
// POSIX `signal(2)`, `setrlimit(2)` and `kill(2)` — no libc crate is
// vendored) behind module-level allows.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod exit;
mod fsio;
mod hash;
mod heartbeat;
mod interrupt;
mod json;
mod manifest;
mod metrics;
mod process;
mod progress;

pub use exit::RunOutcome;
pub use fsio::{atomic_write, dir_sync_failures, retry_io, write_with_retry, RetryPolicy};
pub use hash::fnv1a_64;
pub use heartbeat::{heartbeat_read, heartbeat_write};
pub use interrupt::{interrupt_flag, interrupted, EXIT_INTERRUPTED};
pub use json::{push_json_string, Json, JsonParseError};
pub use manifest::{git_revision, EstimatePoint, RunManifest, StoppingSpec, MANIFEST_SCHEMA};
pub use metrics::{Metrics, MetricsSnapshot, WorkerStats};
pub use process::{limit_cpu_seconds, limit_memory_bytes, rlimit_supported, send_sigterm};
pub use progress::ProgressSink;
