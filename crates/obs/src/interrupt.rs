//! Graceful interruption: a process-wide SIGINT/SIGTERM flag.
//!
//! Long studies must survive preemption: on the first SIGINT or
//! SIGTERM the handler only raises an [`AtomicBool`]; the replication
//! driver notices it at the next chunk boundary, drains in-flight
//! work, flushes a final checkpoint and manifest, and exits with
//! [`EXIT_INTERRUPTED`] so callers can distinguish "interrupted but
//! resumable" from success and from hard failure.
//!
//! The workspace vendors no `libc`/`signal-hook`, so installation goes
//! through a minimal FFI declaration of POSIX `signal(2)` — the one
//! place in the workspace that needs `unsafe` (the crate root demotes
//! `forbid(unsafe_code)` to `deny` solely for this module). The
//! handler body is async-signal-safe: a single relaxed store into a
//! static flag, no allocation, no locks.
#![allow(unsafe_code)]

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::sync::OnceLock;

/// Process exit code for "interrupted by SIGINT/SIGTERM, final
/// checkpoint flushed, resume possible" (BSD `EX_TEMPFAIL`).
pub const EXIT_INTERRUPTED: u8 = 75;

/// The flag shared between the signal handler and the rest of the
/// process. The handler can only touch statics, so the `Arc` handed to
/// studies is parked here once.
static FLAG: OnceLock<Arc<AtomicBool>> = OnceLock::new();

#[cfg(unix)]
mod sys {
    use super::FLAG;
    use std::os::raw::c_int;
    use std::sync::atomic::Ordering;

    const SIGINT: c_int = 2;
    const SIGTERM: c_int = 15;

    extern "C" {
        /// POSIX `signal(2)`; `sighandler_t` is a plain function
        /// pointer, declared as `usize` here (we never pass
        /// SIG_IGN/SIG_DFL and ignore the previous handler).
        fn signal(signum: c_int, handler: usize) -> usize;
    }

    /// Async-signal-safe: one relaxed atomic store, nothing else.
    extern "C" fn on_signal(_signum: c_int) {
        if let Some(flag) = FLAG.get() {
            flag.store(true, Ordering::Relaxed);
        }
    }

    pub(super) fn install() {
        let handler = on_signal as extern "C" fn(c_int) as *const () as usize;
        unsafe {
            signal(SIGINT, handler);
            signal(SIGTERM, handler);
        }
    }
}

#[cfg(not(unix))]
mod sys {
    pub(super) fn install() {}
}

/// Returns the process-wide interrupt flag, installing SIGINT/SIGTERM
/// handlers on first call (idempotent; on non-Unix targets the flag
/// exists but no handler is installed).
///
/// Hand clones of the returned `Arc` to `Study::with_interrupt` and
/// poll it in driver loops; raise it manually to request a graceful
/// stop without a signal.
pub fn interrupt_flag() -> Arc<AtomicBool> {
    let flag = FLAG
        .get_or_init(|| Arc::new(AtomicBool::new(false)))
        .clone();
    sys::install();
    flag
}

/// Whether the process has been asked to stop (false when no handler
/// was ever installed).
pub fn interrupted() -> bool {
    FLAG.get().is_some_and(|f| f.load(Ordering::Relaxed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_is_shared_and_idempotent() {
        let a = interrupt_flag();
        let b = interrupt_flag();
        assert!(Arc::ptr_eq(&a, &b));
        // NOTE: not raised here — other tests in this process may
        // consult `interrupted()`; raising is exercised end-to-end by
        // the CLI crash-recovery smoke test.
        assert_eq!(interrupted(), a.load(Ordering::Relaxed));
    }
}
