//! The workspace's shared process exit-code policy.
//!
//! Three binaries used to carry private copies of the same mapping
//! (`ahs`, `ahs-lint`, and the bench figure binaries); they now share
//! this one. The codes are part of the CLI contract documented in
//! `docs/robustness.md` and asserted by the CI crash-recovery and
//! serve smoke jobs:
//!
//! * [`RunOutcome::Success`] → `0`: the run completed; results are
//!   final.
//! * [`RunOutcome::Interrupted`] → [`EXIT_INTERRUPTED`] (75, BSD
//!   `EX_TEMPFAIL`): stopped on SIGINT/SIGTERM with all resumable
//!   state flushed; rerunning with `--resume` (or restarting the
//!   server over the same state directory) continues bitwise.
//! * [`RunOutcome::Failure`] → `1`: the run failed or produced error
//!   findings.
//!
//! Usage errors (bad flags) are *not* an outcome of a run and keep
//! their conventional per-binary code (`ahs-lint` uses `2`).

use std::process::ExitCode;

use crate::interrupt::EXIT_INTERRUPTED;

/// How a process run ended, for exit-code purposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// Completed successfully: exit `0`.
    Success,
    /// Stopped gracefully on an interrupt with resumable state
    /// flushed: exit [`EXIT_INTERRUPTED`].
    Interrupted,
    /// Failed, or completed with error findings: exit `1`.
    Failure,
}

impl RunOutcome {
    /// [`Interrupted`](RunOutcome::Interrupted) when `interrupted`,
    /// else [`Success`](RunOutcome::Success) — the shape every
    /// study-running binary needs after a successful evaluation.
    #[must_use]
    pub fn of_interrupted(interrupted: bool) -> Self {
        if interrupted {
            RunOutcome::Interrupted
        } else {
            RunOutcome::Success
        }
    }

    /// The raw exit code: 0, 75, or 1.
    #[must_use]
    pub fn code(self) -> u8 {
        match self {
            RunOutcome::Success => 0,
            RunOutcome::Interrupted => EXIT_INTERRUPTED,
            RunOutcome::Failure => 1,
        }
    }

    /// The [`ExitCode`] to return from `main`.
    #[must_use]
    pub fn exit_code(self) -> ExitCode {
        ExitCode::from(self.code())
    }
}

impl From<RunOutcome> for ExitCode {
    fn from(outcome: RunOutcome) -> ExitCode {
        outcome.exit_code()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_match_contract() {
        assert_eq!(RunOutcome::Success.code(), 0);
        assert_eq!(RunOutcome::Interrupted.code(), 75);
        assert_eq!(RunOutcome::Interrupted.code(), EXIT_INTERRUPTED);
        assert_eq!(RunOutcome::Failure.code(), 1);
    }

    #[test]
    fn of_interrupted_maps_both_ways() {
        assert_eq!(RunOutcome::of_interrupted(true), RunOutcome::Interrupted);
        assert_eq!(RunOutcome::of_interrupted(false), RunOutcome::Success);
    }
}
