//! Atomic metrics sink and its point-in-time snapshot.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::json::Json;

/// Number of log₂ buckets in each histogram; bucket `i` covers
/// `[2^(i - HIST_ZERO), 2^(i - HIST_ZERO + 1))`.
const HIST_BUCKETS: usize = 64;
/// Bucket index of `[1, 2)`.
const HIST_ZERO: i32 = 32;

/// A lock-free log₂-bucketed histogram (importance-sampling weights
/// span hundreds of orders of magnitude; linear buckets are useless).
struct LogHistogram {
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl LogHistogram {
    fn new() -> Self {
        LogHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    fn record(&self, value: f64) {
        let idx = if value.is_finite() && value > 0.0 {
            (value.log2().floor() as i64 + i64::from(HIST_ZERO)).clamp(0, HIST_BUCKETS as i64 - 1)
                as usize
        } else {
            0
        };
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Non-empty buckets as `(log2 of the lower bound, count)`.
    fn snapshot(&self) -> Vec<(i32, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, c)| {
                let n = c.load(Ordering::Relaxed);
                (n > 0).then_some((i as i32 - HIST_ZERO, n))
            })
            .collect()
    }
}

/// Adds `v` to an `f64` stored as bits in an `AtomicU64`.
fn atomic_f64_add(cell: &AtomicU64, v: f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let new = (f64::from_bits(cur) + v).to_bits();
        match cell.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(c) => cur = c,
        }
    }
}

/// Lowers (`min = true`) or raises the `f64` stored in `cell` to `v`.
fn atomic_f64_extreme(cell: &AtomicU64, v: f64, min: bool) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let old = f64::from_bits(cur);
        let improves = if min { v < old } else { v > old };
        if !improves {
            return;
        }
        match cell.compare_exchange_weak(cur, v.to_bits(), Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(c) => cur = c,
        }
    }
}

/// Throughput of one worker thread over one study.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkerStats {
    /// Replications this worker executed.
    pub replications: u64,
    /// Wall-clock seconds the worker was active.
    pub seconds: f64,
}

impl WorkerStats {
    /// Replications per second (0 for an instantaneous worker).
    pub fn rate(&self) -> f64 {
        if self.seconds > 0.0 {
            self.replications as f64 / self.seconds
        } else {
            0.0
        }
    }
}

/// A thread-safe telemetry sink for simulation studies.
///
/// All counters are atomic with relaxed ordering: recording is a handful
/// of uncontended atomic adds per *replication* (never per event — the
/// simulators tally locally and flush once per run), so an attached
/// sink costs well under 1% of study time. Instrumented code holds an
/// `Option<Arc<Metrics>>` whose `None` default costs nothing at all.
///
/// The floating-point aggregates (weight sum, per-worker throughput)
/// depend on thread interleaving and are **diagnostics only**; the
/// simulation estimates themselves are deterministic (see
/// `docs/observability.md`).
#[derive(Debug)]
pub struct Metrics {
    replications: AtomicU64,
    quarantined: AtomicU64,
    timed_completions: AtomicU64,
    instantaneous_completions: AtomicU64,
    cascades: AtomicU64,
    chunk_merges: AtomicU64,
    queue_depth_max: AtomicU64,
    weight_count: AtomicU64,
    weight_min_bits: AtomicU64,
    weight_max_bits: AtomicU64,
    weight_sum_bits: AtomicU64,
    weight_sq_sum_bits: AtomicU64,
    events_hist: LogHistogram,
    weight_hist: LogHistogram,
    workers: Mutex<Vec<WorkerStats>>,
}

impl std::fmt::Debug for LogHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogHistogram")
            .field("nonzero", &self.snapshot().len())
            .finish()
    }
}

impl Metrics {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Metrics {
            replications: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            timed_completions: AtomicU64::new(0),
            instantaneous_completions: AtomicU64::new(0),
            cascades: AtomicU64::new(0),
            chunk_merges: AtomicU64::new(0),
            queue_depth_max: AtomicU64::new(0),
            weight_count: AtomicU64::new(0),
            weight_min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            weight_max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
            weight_sum_bits: AtomicU64::new(0.0_f64.to_bits()),
            weight_sq_sum_bits: AtomicU64::new(0.0_f64.to_bits()),
            events_hist: LogHistogram::new(),
            weight_hist: LogHistogram::new(),
            workers: Mutex::new(Vec::new()),
        }
    }

    /// Records one finished simulation run: how many timed and
    /// instantaneous activity completions it executed and whether any
    /// stabilization fired an instantaneous *cascade* (two or more
    /// instantaneous completions at one instant).
    pub fn record_run(&self, timed: u64, instantaneous: u64, cascaded: bool) {
        self.timed_completions.fetch_add(timed, Ordering::Relaxed);
        self.instantaneous_completions
            .fetch_add(instantaneous, Ordering::Relaxed);
        if cascaded {
            self.cascades.fetch_add(1, Ordering::Relaxed);
        }
        self.events_hist.record((timed + instantaneous) as f64);
    }

    /// Records one likelihood-ratio weight (1.0 under plain Monte
    /// Carlo; the importance-sampling diagnostics min/max/ESS come from
    /// these).
    pub fn record_weight(&self, w: f64) {
        self.weight_count.fetch_add(1, Ordering::Relaxed);
        atomic_f64_extreme(&self.weight_min_bits, w, true);
        atomic_f64_extreme(&self.weight_max_bits, w, false);
        atomic_f64_add(&self.weight_sum_bits, w);
        atomic_f64_add(&self.weight_sq_sum_bits, w * w);
        self.weight_hist.record(w);
    }

    /// Raises the event-queue depth high-water mark to `depth`.
    pub fn record_queue_depth(&self, depth: usize) {
        self.queue_depth_max
            .fetch_max(depth as u64, Ordering::Relaxed);
    }

    /// Adds `n` completed replications.
    pub fn add_replications(&self, n: u64) {
        self.replications.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one quarantined (panicked) replication.
    pub fn record_quarantined(&self) {
        self.quarantined.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one worker-chunk merge into the global estimator.
    pub fn record_chunk_merge(&self) {
        self.chunk_merges.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one worker thread's total throughput for a study.
    pub fn record_worker(&self, replications: u64, seconds: f64) {
        self.workers
            .lock()
            .expect("metrics worker list is never poisoned")
            .push(WorkerStats {
                replications,
                seconds,
            });
    }

    /// Takes a consistent-enough point-in-time snapshot (individual
    /// counters are exact; cross-counter consistency is best-effort
    /// while workers are still running).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let weight_count = self.weight_count.load(Ordering::Relaxed);
        MetricsSnapshot {
            replications: self.replications.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            timed_completions: self.timed_completions.load(Ordering::Relaxed),
            instantaneous_completions: self.instantaneous_completions.load(Ordering::Relaxed),
            cascades: self.cascades.load(Ordering::Relaxed),
            chunk_merges: self.chunk_merges.load(Ordering::Relaxed),
            queue_depth_max: self.queue_depth_max.load(Ordering::Relaxed),
            weight_count,
            weight_min: if weight_count > 0 {
                f64::from_bits(self.weight_min_bits.load(Ordering::Relaxed))
            } else {
                f64::NAN
            },
            weight_max: if weight_count > 0 {
                f64::from_bits(self.weight_max_bits.load(Ordering::Relaxed))
            } else {
                f64::NAN
            },
            weight_sum: f64::from_bits(self.weight_sum_bits.load(Ordering::Relaxed)),
            weight_sq_sum: f64::from_bits(self.weight_sq_sum_bits.load(Ordering::Relaxed)),
            events_histogram: self.events_hist.snapshot(),
            weight_histogram: self.weight_hist.snapshot(),
            workers: self
                .workers
                .lock()
                .expect("metrics worker list is never poisoned")
                .clone(),
        }
    }
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics::new()
    }
}

/// A point-in-time copy of a [`Metrics`] sink, serializable to JSON.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Completed replications.
    pub replications: u64,
    /// Replications whose body panicked and was quarantined (excluded
    /// from the estimates; see `docs/robustness.md`).
    pub quarantined: u64,
    /// Timed activity completions across all runs.
    pub timed_completions: u64,
    /// Instantaneous activity completions across all runs.
    pub instantaneous_completions: u64,
    /// Stabilizations that fired ≥ 2 instantaneous activities at one
    /// instant.
    pub cascades: u64,
    /// Worker chunks merged into the global estimator.
    pub chunk_merges: u64,
    /// Event-queue depth high-water mark (event-driven backend only).
    pub queue_depth_max: u64,
    /// Number of recorded likelihood-ratio weights.
    pub weight_count: u64,
    /// Smallest recorded weight (NaN when none were recorded).
    pub weight_min: f64,
    /// Largest recorded weight (NaN when none were recorded).
    pub weight_max: f64,
    /// Sum of recorded weights (its mean should be ≈ 1 for a proper
    /// change of measure).
    pub weight_sum: f64,
    /// Sum of squared weights (for the Kish effective sample size).
    pub weight_sq_sum: f64,
    /// Non-empty log₂ buckets of events-per-replication:
    /// `(log2 of bucket lower bound, count)`.
    pub events_histogram: Vec<(i32, u64)>,
    /// Non-empty log₂ buckets of recorded weights.
    pub weight_histogram: Vec<(i32, u64)>,
    /// Per-worker throughput.
    pub workers: Vec<WorkerStats>,
}

impl MetricsSnapshot {
    /// Total activity completions (timed + instantaneous).
    pub fn events_total(&self) -> u64 {
        self.timed_completions + self.instantaneous_completions
    }

    /// Mean recorded weight (NaN when none were recorded).
    pub fn mean_weight(&self) -> f64 {
        if self.weight_count > 0 {
            self.weight_sum / self.weight_count as f64
        } else {
            f64::NAN
        }
    }

    /// Kish effective sample size `(Σw)² / Σw²` of the recorded
    /// weights (NaN when none were recorded).
    pub fn effective_sample_size(&self) -> f64 {
        if self.weight_count > 0 && self.weight_sq_sum > 0.0 {
            self.weight_sum * self.weight_sum / self.weight_sq_sum
        } else {
            f64::NAN
        }
    }

    /// Summed replications-per-second across workers.
    pub fn replications_per_second(&self) -> f64 {
        self.workers.iter().map(WorkerStats::rate).sum()
    }

    /// Folds another snapshot into this one (summing counters, taking
    /// extreme min/max, concatenating worker lists).
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        self.replications += other.replications;
        self.quarantined += other.quarantined;
        self.timed_completions += other.timed_completions;
        self.instantaneous_completions += other.instantaneous_completions;
        self.cascades += other.cascades;
        self.chunk_merges += other.chunk_merges;
        self.queue_depth_max = self.queue_depth_max.max(other.queue_depth_max);
        if other.weight_count > 0 {
            if self.weight_count == 0 {
                self.weight_min = other.weight_min;
                self.weight_max = other.weight_max;
            } else {
                self.weight_min = self.weight_min.min(other.weight_min);
                self.weight_max = self.weight_max.max(other.weight_max);
            }
        }
        self.weight_count += other.weight_count;
        self.weight_sum += other.weight_sum;
        self.weight_sq_sum += other.weight_sq_sum;
        merge_histogram(&mut self.events_histogram, &other.events_histogram);
        merge_histogram(&mut self.weight_histogram, &other.weight_histogram);
        self.workers.extend_from_slice(&other.workers);
    }

    /// An empty snapshot, usable as a merge accumulator.
    pub fn empty() -> Self {
        Metrics::new().snapshot()
    }

    /// Serializes the snapshot as a [`Json`] object.
    pub fn to_json(&self) -> Json {
        let hist = |h: &[(i32, u64)]| {
            Json::Arr(
                h.iter()
                    .map(|&(exp, n)| {
                        Json::obj(vec![
                            ("log2", Json::Int(i64::from(exp))),
                            ("count", n.into()),
                        ])
                    })
                    .collect(),
            )
        };
        Json::obj(vec![
            ("replications", self.replications.into()),
            ("quarantined", self.quarantined.into()),
            ("timed_completions", self.timed_completions.into()),
            (
                "instantaneous_completions",
                self.instantaneous_completions.into(),
            ),
            ("cascades", self.cascades.into()),
            ("chunk_merges", self.chunk_merges.into()),
            ("queue_depth_max", self.queue_depth_max.into()),
            ("weight_count", self.weight_count.into()),
            ("weight_min", self.weight_min.into()),
            ("weight_max", self.weight_max.into()),
            ("weight_mean", self.mean_weight().into()),
            ("weight_ess", self.effective_sample_size().into()),
            ("events_histogram", hist(&self.events_histogram)),
            ("weight_histogram", hist(&self.weight_histogram)),
            (
                "replications_per_second",
                self.replications_per_second().into(),
            ),
            (
                "workers",
                Json::Arr(
                    self.workers
                        .iter()
                        .map(|w| {
                            Json::obj(vec![
                                ("replications", w.replications.into()),
                                ("seconds", w.seconds.into()),
                                ("rate", w.rate().into()),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

fn merge_histogram(into: &mut Vec<(i32, u64)>, other: &[(i32, u64)]) {
    for &(exp, n) in other {
        match into.binary_search_by_key(&exp, |&(e, _)| e) {
            Ok(i) => into[i].1 += n,
            Err(i) => into.insert(i, (exp, n)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = Metrics::new();
        m.add_replications(10);
        m.add_replications(5);
        m.record_run(100, 7, true);
        m.record_run(50, 0, false);
        m.record_chunk_merge();
        m.record_queue_depth(4);
        m.record_queue_depth(2);
        let s = m.snapshot();
        assert_eq!(s.replications, 15);
        assert_eq!(s.timed_completions, 150);
        assert_eq!(s.instantaneous_completions, 7);
        assert_eq!(s.cascades, 1);
        assert_eq!(s.chunk_merges, 1);
        assert_eq!(s.queue_depth_max, 4);
        assert_eq!(s.events_total(), 157);
    }

    #[test]
    fn quarantined_counter_accumulates_and_serializes() {
        let m = Metrics::new();
        m.record_quarantined();
        m.record_quarantined();
        let mut s = m.snapshot();
        assert_eq!(s.quarantined, 2);
        let other = Metrics::new();
        other.record_quarantined();
        s.merge(&other.snapshot());
        assert_eq!(s.quarantined, 3);
        assert!(s.to_json().render().contains("\"quarantined\":3"));
    }

    #[test]
    fn weight_diagnostics_min_max_ess() {
        let m = Metrics::new();
        for w in [0.5, 2.0, 1.0, 1.0] {
            m.record_weight(w);
        }
        let s = m.snapshot();
        assert_eq!(s.weight_count, 4);
        assert_eq!(s.weight_min, 0.5);
        assert_eq!(s.weight_max, 2.0);
        assert!((s.mean_weight() - 1.125).abs() < 1e-12);
        // ESS = (4.5)^2 / 6.25 = 3.24.
        assert!((s.effective_sample_size() - 3.24).abs() < 1e-12);
    }

    #[test]
    fn unit_weights_give_full_ess() {
        let m = Metrics::new();
        for _ in 0..1000 {
            m.record_weight(1.0);
        }
        let s = m.snapshot();
        assert!((s.effective_sample_size() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn empty_snapshot_has_nan_weight_stats() {
        let s = Metrics::new().snapshot();
        assert!(s.weight_min.is_nan());
        assert!(s.weight_max.is_nan());
        assert!(s.mean_weight().is_nan());
        assert!(s.effective_sample_size().is_nan());
    }

    #[test]
    fn histogram_buckets_weights_by_magnitude() {
        let m = Metrics::new();
        m.record_weight(1.5); // log2 in [0, 1)
        m.record_weight(1e-10); // log2 ≈ -33.2 → clamped/bucketed low
        m.record_weight(3.0); // log2 in [1, 2)
        let s = m.snapshot();
        let total: u64 = s.weight_histogram.iter().map(|&(_, n)| n).sum();
        assert_eq!(total, 3);
        assert!(s.weight_histogram.iter().any(|&(e, _)| e == 0));
        assert!(s.weight_histogram.iter().any(|&(e, _)| e == 1));
    }

    #[test]
    fn merge_combines_snapshots() {
        let a = Metrics::new();
        a.add_replications(10);
        a.record_weight(0.25);
        a.record_worker(10, 1.0);
        let b = Metrics::new();
        b.add_replications(20);
        b.record_weight(4.0);
        b.record_worker(20, 2.0);
        let mut s = a.snapshot();
        s.merge(&b.snapshot());
        assert_eq!(s.replications, 30);
        assert_eq!(s.weight_min, 0.25);
        assert_eq!(s.weight_max, 4.0);
        assert_eq!(s.workers.len(), 2);
        assert!((s.replications_per_second() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn merge_into_empty_adopts_extremes() {
        let b = Metrics::new();
        b.record_weight(2.0);
        let mut s = MetricsSnapshot::empty();
        s.merge(&b.snapshot());
        assert_eq!(s.weight_min, 2.0);
        assert_eq!(s.weight_max, 2.0);
    }

    #[test]
    fn snapshot_serializes_to_json() {
        let m = Metrics::new();
        m.add_replications(3);
        m.record_weight(1.0);
        let json = m.snapshot().to_json().render();
        assert!(json.contains("\"replications\":3"));
        assert!(json.contains("\"weight_ess\":1"));
        assert!(json.contains("\"weight_histogram\""));
    }

    #[test]
    fn concurrent_recording_is_consistent() {
        let m = std::sync::Arc::new(Metrics::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = m.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        m.add_replications(1);
                        m.record_weight(1.0);
                    }
                });
            }
        });
        let s = m.snapshot();
        assert_eq!(s.replications, 4000);
        assert_eq!(s.weight_count, 4000);
        assert!((s.weight_sum - 4000.0).abs() < 1e-9);
    }
}
