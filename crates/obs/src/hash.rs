//! Stable, dependency-free digests for artifact naming and cache keys.
//!
//! Several layers need a cheap digest whose value must never change
//! across releases: the bench runner keys per-point checkpoint files
//! by a digest of the parameter JSON, `ahs evaluate --checkpoint
//! <dir>` names per-study checkpoint files the same way, and
//! `ahs-serve` uses the digest to index its shared model cache. They
//! all call this one implementation so the names agree across layers.

/// FNV-1a 64-bit hash of `bytes`.
///
/// The same function (and constants) as the structural model
/// fingerprint in `ahs-des`, applied here to serialized artifacts
/// rather than SAN structure.
#[must_use]
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325_u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn distinct_inputs_distinct_digests() {
        assert_ne!(fnv1a_64(b"lambda=1e-5"), fnv1a_64(b"lambda=2e-5"));
    }
}
