//! Crash-safe artifact writes.
//!
//! Every JSON artifact the workspace produces (manifests, checkpoints,
//! bench CSVs) goes through [`atomic_write`]: the bytes land in
//! `<path>.tmp` first and are published with a single `rename`, so a
//! crash mid-write can truncate only the temporary file — a reader
//! never observes a partial document at the final path.

use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Serial number making every temporary name unique within the
/// process; combined with the pid it is unique across concurrent
/// writers of the same artifact (two simultaneous `atomic_write`s to
/// one path must not race on a shared temporary, or the loser's
/// `rename` fails with `ENOENT`).
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// The temporary sibling `<path>.<pid>.<seq>.tmp` used by
/// [`atomic_write`].
fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    name.push(format!(
        ".{}.{}.tmp",
        std::process::id(),
        TMP_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    path.with_file_name(name)
}

/// Writes `contents` to `path` atomically: parent directories are
/// created, the bytes are written and synced to `<path>.tmp`, and the
/// temporary is renamed over `path`. On any error the temporary is
/// removed and `path` is left as it was.
pub fn atomic_write(path: &Path, contents: &[u8]) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let tmp = tmp_path(path);
    let result = (|| {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(contents)?;
        // Flush to disk before publishing, so the rename can never
        // expose a file whose bytes are still in flight.
        file.sync_all()
    })();
    match result.and_then(|()| std::fs::rename(&tmp, path)) {
        Ok(()) => Ok(()),
        Err(e) => {
            std::fs::remove_file(&tmp).ok();
            Err(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "ahs-obs-fsio-{}-{:?}-{name}",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    #[test]
    fn writes_and_replaces() {
        let dir = scratch("replace");
        let path = dir.join("nested/out.json");
        atomic_write(&path, b"{\"v\":1}\n").expect("first write");
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"v\":1}\n");
        atomic_write(&path, b"{\"v\":2}\n").expect("overwrite");
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"v\":2}\n");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn leaves_no_temporary_behind() {
        let dir = scratch("tmpfile");
        let path = dir.join("out.json");
        atomic_write(&path, b"x").expect("write");
        let names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec!["out.json"], "temporary must be renamed away");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn concurrent_writers_to_one_path_never_fail() {
        let dir = scratch("race");
        let path = dir.join("contended.json");
        std::thread::scope(|s| {
            for i in 0..8 {
                let path = &path;
                s.spawn(move || {
                    for j in 0..50 {
                        atomic_write(path, format!("{i}:{j}\n").as_bytes())
                            .expect("no writer may lose the temp-file race");
                    }
                });
            }
        });
        // Whatever write won last, the file is a complete document.
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.ends_with('\n') && body.contains(':'), "{body:?}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
