//! Crash-safe artifact writes.
//!
//! Every JSON artifact the workspace produces (manifests, checkpoints,
//! bench CSVs) goes through [`atomic_write`]: the bytes land in
//! `<path>.tmp` first and are published with a single `rename`, so a
//! crash mid-write can truncate only the temporary file — a reader
//! never observes a partial document at the final path. After the
//! rename the parent directory is fsynced (best-effort), so a power
//! loss cannot silently undo a published artifact either.
//!
//! On top of atomicity, [`write_with_retry`] makes the write *robust*:
//! transient failures (`ENOSPC`, `EINTR`, timeouts…) are retried under
//! a bounded, deterministic exponential backoff ([`RetryPolicy`]),
//! while permanent errors surface immediately.
//!
//! Each fallible step evaluates an `obs::fsio::*` failpoint
//! (`ahs-inject`), so the chaos tier can tear writes, fill the disk,
//! or break the rename at will; without the `inject` feature the
//! evaluations compile to nothing.

use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Serial number making every temporary name unique within the
/// process; combined with the pid it is unique across concurrent
/// writers of the same artifact (two simultaneous `atomic_write`s to
/// one path must not race on a shared temporary, or the loser's
/// `rename` fails with `ENOENT`).
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// How many best-effort parent-directory fsyncs have failed
/// process-wide (filesystems without directory fsync, or injected
/// faults). Degradation, not failure: the artifact is still published.
static DIR_SYNC_FAILURES: AtomicU64 = AtomicU64::new(0);

/// Process-wide count of failed best-effort directory fsyncs; see
/// [`atomic_write`].
pub fn dir_sync_failures() -> u64 {
    DIR_SYNC_FAILURES.load(Ordering::Relaxed)
}

/// The temporary sibling `<path>.<pid>.<seq>.tmp` used by
/// [`atomic_write`].
fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    name.push(format!(
        ".{}.{}.tmp",
        std::process::id(),
        TMP_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    path.with_file_name(name)
}

/// Best-effort fsync of `path`'s parent directory, so the rename that
/// published `path` itself reaches the disk. Directory fsync is not
/// supported everywhere (and is where injected `dir-sync` faults
/// land); failure is counted, never propagated.
fn sync_parent_dir(path: &Path) {
    let result: std::io::Result<()> = (|| {
        ahs_inject::fire_io("obs::fsio::dir-sync")?;
        let parent = match path.parent() {
            Some(p) if !p.as_os_str().is_empty() => p,
            _ => Path::new("."),
        };
        std::fs::File::open(parent)?.sync_all()
    })();
    if result.is_err() {
        DIR_SYNC_FAILURES.fetch_add(1, Ordering::Relaxed);
    }
}

/// Writes `contents` to `path` atomically: parent directories are
/// created, the bytes are written and synced to `<path>.tmp`, the
/// temporary is renamed over `path`, and the parent directory is
/// fsynced (best-effort — see [`dir_sync_failures`]). On any error the
/// temporary is removed and `path` is left as it was.
pub fn atomic_write(path: &Path, contents: &[u8]) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let tmp = tmp_path(path);
    let result = (|| {
        ahs_inject::fire_io("obs::fsio::create")?;
        let mut file = std::fs::File::create(&tmp)?;
        match ahs_inject::fire_io("obs::fsio::write")? {
            Some(ahs_inject::Fault::TornWrite(n)) => {
                // Land a truncated prefix on disk, then fail the write
                // — exactly what a crash mid-write leaves behind.
                let n = n.min(contents.len());
                file.write_all(&contents[..n])?;
                file.sync_all().ok();
                return Err(ahs_inject::Fault::TornWrite(n)
                    .to_io_error("obs::fsio::write")
                    .expect("torn write maps to an io error"));
            }
            _ => file.write_all(contents)?,
        }
        ahs_inject::fire_io("obs::fsio::sync")?;
        // Flush to disk before publishing, so the rename can never
        // expose a file whose bytes are still in flight.
        file.sync_all()
    })();
    let published = result.and_then(|()| {
        ahs_inject::fire_io("obs::fsio::rename")?;
        std::fs::rename(&tmp, path)
    });
    match published {
        Ok(()) => {
            sync_parent_dir(path);
            Ok(())
        }
        Err(e) => {
            std::fs::remove_file(&tmp).ok();
            Err(e)
        }
    }
}

/// Bounded, deterministic exponential backoff for transient IO
/// failures.
///
/// Attempt `i` (zero-based) sleeps
/// `min(max_delay_ms, base_delay_ms * 2^i + jitter_i)` where
/// `jitter_i ∈ [0, base_delay_ms)` comes from a splitmix64 stream over
/// `(seed, i)` — so the whole schedule is a pure function of the
/// policy, bitwise-reproducible run to run, and provably monotone
/// nondecreasing up to the cap
/// (`raw_{i+1} = 2·raw_i ≥ raw_i + base > raw_i + jitter_i`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first attempt (total attempts = `1 + max_retries`).
    pub max_retries: u32,
    /// First-retry delay and the jitter modulus, in milliseconds.
    pub base_delay_ms: u64,
    /// Hard cap on any single delay, in milliseconds.
    pub max_delay_ms: u64,
    /// Seed for the jitter stream.
    pub seed: u64,
}

impl RetryPolicy {
    /// The default policy for artifact writes (checkpoints, manifests,
    /// CSVs): 4 retries, 10 ms base, capped at 500 ms — worst case
    /// under a quarter second of waiting before the error surfaces.
    pub fn default_artifact() -> Self {
        RetryPolicy {
            max_retries: 4,
            base_delay_ms: 10,
            max_delay_ms: 500,
            seed: 0x4148_535f_4941_4f21, // "AHS_IAO!"
        }
    }

    /// The backoff delay before retry `attempt` (zero-based), in
    /// milliseconds. Pure and total: no clock, no global RNG.
    pub fn delay_ms(&self, attempt: u32) -> u64 {
        let raw = self
            .base_delay_ms
            .saturating_mul(1u64.checked_shl(attempt).unwrap_or(u64::MAX));
        let jitter = if self.base_delay_ms == 0 {
            0
        } else {
            splitmix64(self.seed ^ u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15))
                % self.base_delay_ms
        };
        raw.saturating_add(jitter).min(self.max_delay_ms)
    }

    /// Whether an error of this kind is worth retrying: conditions
    /// that can clear on their own (disk pressure, interruption,
    /// timeouts, busy resources). Programming errors and permanent
    /// conditions (`InvalidInput`, `NotFound`, `PermissionDenied`, …)
    /// are not.
    pub fn is_transient(kind: std::io::ErrorKind) -> bool {
        use std::io::ErrorKind as K;
        matches!(
            kind,
            K::Interrupted
                | K::WouldBlock
                | K::TimedOut
                | K::StorageFull
                | K::ResourceBusy
                | K::QuotaExceeded
        )
    }
}

/// The splitmix64 mix function — the workspace's standard seed
/// scrambler (see `ahs-des::rng`), reused here so jitter needs no RNG
/// dependency.
fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs `op`, retrying transient failures under `policy`'s backoff
/// schedule. The first non-transient error, or the last error once
/// retries are exhausted, is returned as-is.
pub fn retry_io<T>(
    policy: &RetryPolicy,
    mut op: impl FnMut() -> std::io::Result<T>,
) -> std::io::Result<T> {
    let mut attempt = 0;
    loop {
        match op() {
            Ok(v) => return Ok(v),
            Err(e) if attempt < policy.max_retries && RetryPolicy::is_transient(e.kind()) => {
                std::thread::sleep(std::time::Duration::from_millis(policy.delay_ms(attempt)));
                attempt += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

/// [`atomic_write`] under the default artifact retry policy: transient
/// failures anywhere in the temp-write-sync-rename sequence are
/// retried (each attempt with a fresh temporary), permanent ones
/// surface immediately.
pub fn write_with_retry(path: &Path, contents: &[u8]) -> std::io::Result<()> {
    retry_io(&RetryPolicy::default_artifact(), || {
        atomic_write(path, contents)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "ahs-obs-fsio-{}-{:?}-{name}",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    #[test]
    fn writes_and_replaces() {
        let dir = scratch("replace");
        let path = dir.join("nested/out.json");
        atomic_write(&path, b"{\"v\":1}\n").expect("first write");
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"v\":1}\n");
        atomic_write(&path, b"{\"v\":2}\n").expect("overwrite");
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"v\":2}\n");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn leaves_no_temporary_behind() {
        let dir = scratch("tmpfile");
        let path = dir.join("out.json");
        atomic_write(&path, b"x").expect("write");
        let names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec!["out.json"], "temporary must be renamed away");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn concurrent_writers_to_one_path_never_fail() {
        let dir = scratch("race");
        let path = dir.join("contended.json");
        std::thread::scope(|s| {
            for i in 0..8 {
                let path = &path;
                s.spawn(move || {
                    for j in 0..50 {
                        atomic_write(path, format!("{i}:{j}\n").as_bytes())
                            .expect("no writer may lose the temp-file race");
                    }
                });
            }
        });
        // Whatever write won last, the file is a complete document.
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.ends_with('\n') && body.contains(':'), "{body:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn retry_succeeds_after_transient_failures() {
        let mut failures_left = 3;
        let policy = RetryPolicy {
            base_delay_ms: 0, // no real sleeping in unit tests
            ..RetryPolicy::default_artifact()
        };
        let out = retry_io(&policy, || {
            if failures_left > 0 {
                failures_left -= 1;
                Err(std::io::Error::new(std::io::ErrorKind::StorageFull, "full"))
            } else {
                Ok(42)
            }
        })
        .expect("transient failures within budget are absorbed");
        assert_eq!(out, 42);
    }

    #[test]
    fn retry_gives_up_after_budget_and_on_permanent_errors() {
        let policy = RetryPolicy {
            max_retries: 2,
            base_delay_ms: 0,
            ..RetryPolicy::default_artifact()
        };
        let mut calls = 0;
        let err = retry_io(&policy, || -> std::io::Result<()> {
            calls += 1;
            Err(std::io::Error::new(std::io::ErrorKind::TimedOut, "slow"))
        })
        .unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::TimedOut);
        assert_eq!(calls, 3, "1 attempt + 2 retries");

        let mut calls = 0;
        let err = retry_io(&policy, || -> std::io::Result<()> {
            calls += 1;
            Err(std::io::Error::new(std::io::ErrorKind::InvalidInput, "bad"))
        })
        .unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
        assert_eq!(calls, 1, "permanent errors are never retried");
    }

    #[test]
    fn backoff_schedule_is_deterministic_bounded_and_monotone() {
        let policy = RetryPolicy::default_artifact();
        let delays: Vec<u64> = (0..12).map(|i| policy.delay_ms(i)).collect();
        let again: Vec<u64> = (0..12).map(|i| policy.delay_ms(i)).collect();
        assert_eq!(delays, again, "pure function of (policy, attempt)");
        for pair in delays.windows(2) {
            assert!(pair[0] <= pair[1], "monotone nondecreasing: {delays:?}");
        }
        for &d in &delays {
            assert!(d <= policy.max_delay_ms);
        }
        assert_eq!(*delays.last().unwrap(), policy.max_delay_ms, "cap reached");
        // Shift overflow at extreme attempt counts saturates at the cap.
        assert_eq!(policy.delay_ms(u32::MAX), policy.max_delay_ms);
    }
}

/// Tests that only exist when injection is armed: the failure paths of
/// `atomic_write` under injected create/write/sync/rename faults.
#[cfg(all(test, feature = "inject"))]
mod inject_tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard};

    /// The failpoint registry is process-global; serialize these tests
    /// (cargo runs `#[test]`s of one binary concurrently).
    pub(crate) fn serial() -> MutexGuard<'static, ()> {
        static GUARD: Mutex<()> = Mutex::new(());
        GUARD.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn scratch(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("ahs-obs-fsio-inject-{}-{name}", std::process::id()))
    }

    /// Satellite: rename/sync/write/create faults must leave the target
    /// byte-identical to its prior contents and the directory free of
    /// `.tmp` orphans — `leaves_no_temporary_behind`, under fire.
    #[test]
    fn injected_faults_leave_target_intact_and_no_orphans() {
        let _g = serial();
        let dir = scratch("fault-matrix");
        let path = dir.join("out.json");
        std::fs::remove_dir_all(&dir).ok();
        atomic_write(&path, b"{\"generation\":0}\n").expect("seed write");
        for spec in [
            "obs::fsio::create=1*return(enospc)",
            "obs::fsio::write=1*return(enospc)",
            "obs::fsio::write=1*torn-write(4)",
            "obs::fsio::sync=1*return(interrupted)",
            "obs::fsio::rename=1*return(busy)",
        ] {
            ahs_inject::configure_from_spec(spec).expect("valid spec");
            let err = atomic_write(&path, b"{\"generation\":1}\n")
                .expect_err("injected fault must surface");
            assert!(err.to_string().contains("injected"), "{spec}: {err}");
            assert_eq!(
                std::fs::read_to_string(&path).unwrap(),
                "{\"generation\":0}\n",
                "{spec}: target must be byte-identical to its prior contents"
            );
            let names: Vec<String> = std::fs::read_dir(&dir)
                .unwrap()
                .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
                .collect();
            assert_eq!(names, vec!["out.json"], "{spec}: no .tmp orphans");
        }
        ahs_inject::clear();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn write_with_retry_absorbs_transient_injected_faults() {
        let _g = serial();
        let dir = scratch("retry");
        let path = dir.join("out.json");
        std::fs::remove_dir_all(&dir).ok();
        // Two transient failures (ENOSPC, then a torn write surfacing
        // as EINTR), then clean: the retry wrapper must succeed.
        ahs_inject::configure_from_spec("obs::fsio::write=1*return(enospc)->1*torn-write(2)")
            .expect("valid spec");
        write_with_retry(&path, b"persistent\n").expect("retries absorb transient faults");
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "persistent\n");
        assert!(
            ahs_inject::hits("obs::fsio::write") >= 3,
            "two failures + one success"
        );
        ahs_inject::clear();

        // A permanent fault is not retried.
        ahs_inject::configure_from_spec("obs::fsio::create=return(permission-denied)")
            .expect("valid spec");
        let err = write_with_retry(&path, b"nope\n").expect_err("permanent fault surfaces");
        assert_eq!(err.kind(), std::io::ErrorKind::PermissionDenied);
        assert_eq!(
            ahs_inject::hits("obs::fsio::create"),
            1,
            "permanent errors must not burn the retry budget"
        );
        ahs_inject::clear();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dir_sync_fault_degrades_with_counter_not_error() {
        let _g = serial();
        let dir = scratch("dirsync");
        let path = dir.join("out.json");
        std::fs::remove_dir_all(&dir).ok();
        let before = dir_sync_failures();
        ahs_inject::configure_from_spec("obs::fsio::dir-sync=1*return(enospc)")
            .expect("valid spec");
        atomic_write(&path, b"published\n").expect("dir-sync failure must not fail the write");
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "published\n");
        assert_eq!(dir_sync_failures(), before + 1, "degradation is counted");
        ahs_inject::clear();
        std::fs::remove_dir_all(&dir).ok();
    }
}
