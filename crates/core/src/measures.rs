//! Secondary dependability measures of the AHS, built on the reward
//! formalism.
//!
//! The paper evaluates only the unsafety `S(t)`; an operator adopting
//! the model would also want throughput-adjacent measures: how often
//! recovery maneuvers run, how much of a trip the system spends with a
//! degraded vehicle, and how many vehicles are lost (`v_KO`). These
//! are interval-of-time reward variables over the same composed SAN.

use ahs_des::{Backend, RewardSpec, RewardStudy};
use ahs_stats::RunningStats;
use serde::{Deserialize, Serialize};

use crate::error::AhsError;
use crate::model::AhsModel;
use crate::params::Params;

/// Expected-value measures of one AHS configuration over a trip.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TripMeasures {
    /// Trip duration, hours.
    pub horizon_hours: f64,
    /// Expected number of recovery maneuvers *started* (failure-mode
    /// occurrences plus escalations) per trip, fleet-wide.
    pub expected_maneuvers: f64,
    /// Confidence half-width (95%) on `expected_maneuvers`.
    pub expected_maneuvers_hw: f64,
    /// Expected fraction of the trip during which at least one vehicle
    /// is recovering.
    pub recovery_time_fraction: f64,
    /// Confidence half-width (95%) on `recovery_time_fraction`.
    pub recovery_time_fraction_hw: f64,
    /// Expected number of vehicles lost to `v_KO` per trip.
    pub expected_vehicles_lost: f64,
    /// Confidence half-width (95%) on `expected_vehicles_lost`.
    pub expected_vehicles_lost_hw: f64,
    /// Replications behind each estimate.
    pub replications: u64,
}

/// Estimates [`TripMeasures`] for `params` over `horizon_hours`, using
/// `replications` plain Monte-Carlo runs (rewards do not support
/// importance sampling; these measures are not rare, so plain sampling
/// converges quickly even at the paper's λ).
///
/// # Errors
///
/// Returns [`AhsError`] for invalid parameters or simulation failures.
pub fn trip_measures(
    params: &Params,
    horizon_hours: f64,
    replications: u64,
    seed: u64,
) -> Result<TripMeasures, AhsError> {
    let build = || -> Result<_, AhsError> {
        let model = AhsModel::build(params)?;
        Ok(model.into_san())
    };

    // Maneuver starts: every firing of a failure activity L_i starts (or
    // escalates into) a maneuver; escalations are maneuver-failure cases
    // and counted through the maneuver activities' firing with failure
    // outcome — here we count maneuver-activity completions instead,
    // which equals the number of maneuver executions.
    let (san, handles) = build()?;
    let maneuver_set: std::collections::HashSet<usize> = handles
        .maneuver_activities
        .iter()
        .map(|a| a.index())
        .collect();
    let spec =
        RewardSpec::impulse(move |a, _| f64::from(u8::from(maneuver_set.contains(&a.index()))));
    let maneuvers = RewardStudy::new(san)
        .with_seed(seed)
        .with_replications(replications)
        .estimate(&spec, horizon_hours, Backend::Markov)?;

    // Fraction of time with >= 1 vehicle recovering.
    let (san, handles) = build()?;
    let (ca, cb, cc) = (handles.class_a, handles.class_b, handles.class_c);
    let spec = RewardSpec::rate(move |m| {
        f64::from(u8::from(m.tokens(ca) + m.tokens(cb) + m.tokens(cc) > 0))
    });
    let recovery = RewardStudy::new(san)
        .with_seed(seed ^ 1)
        .with_replications(replications)
        .estimate(&spec, horizon_hours, Backend::Markov)?;

    // Vehicles lost: firings of the AS maneuver's failure case mark
    // v_KO; count tokens entering the v_KO places via a rate-less
    // impulse on back_to_ko? Simpler and exact: impulse 1 whenever a
    // marking transition newly marks any v_ko place — here approximated
    // by counting back_to_ko firings (every lost vehicle passes through
    // exactly one such firing, at rate back_rate after the loss).
    let (san, handles) = build()?;
    let ko_backs: std::collections::HashSet<usize> = (0..params.total_vehicles())
        .map(|v| {
            san.find_activity(&format!("vehicle[{v}].back_to_ko"))
                .expect("model defines back_to_ko per vehicle")
                .index()
        })
        .collect();
    let _ = handles;
    let spec = RewardSpec::impulse(move |a, _| f64::from(u8::from(ko_backs.contains(&a.index()))));
    let lost = RewardStudy::new(san)
        .with_seed(seed ^ 2)
        .with_replications(replications)
        .estimate(&spec, horizon_hours, Backend::Markov)?;

    let hw = |s: &RunningStats| s.confidence_interval(0.95).half_width();
    Ok(TripMeasures {
        horizon_hours,
        expected_maneuvers: maneuvers.mean(),
        expected_maneuvers_hw: hw(&maneuvers),
        recovery_time_fraction: recovery.mean() / horizon_hours,
        recovery_time_fraction_hw: hw(&recovery) / horizon_hours,
        expected_vehicles_lost: lost.mean(),
        expected_vehicles_lost_hw: hw(&lost),
        replications,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_scale_with_lambda() {
        let lo = trip_measures(
            &Params::builder().lambda(1e-3).n(3).build().unwrap(),
            10.0,
            2_000,
            7,
        )
        .unwrap();
        let hi = trip_measures(
            &Params::builder().lambda(1e-2).n(3).build().unwrap(),
            10.0,
            2_000,
            7,
        )
        .unwrap();
        assert!(hi.expected_maneuvers > lo.expected_maneuvers * 5.0);
        assert!(hi.recovery_time_fraction > lo.recovery_time_fraction);
        // Fleet of 6 at 14λ = 0.084/hr for 10h ≈ 0.84 failures expected,
        // nearly all resolved by one maneuver (base failure 5%).
        let expected = 6.0 * 14.0 * 1e-2 * 10.0;
        assert!(
            (hi.expected_maneuvers - expected).abs() / expected < 0.25,
            "maneuvers {} vs first-order {expected}",
            hi.expected_maneuvers
        );
    }

    #[test]
    fn vehicles_lost_requires_full_escalation_chain() {
        // With maneuvers that almost never fail, v_KO is essentially
        // impossible; with maneuvers that almost always fail, every
        // failure cascades to v_KO.
        let reliable = trip_measures(
            &Params::builder()
                .lambda(5e-2)
                .n(2)
                .maneuver_base_failure(0.001)
                .impairment_penalty(0.001)
                .build()
                .unwrap(),
            10.0,
            1_500,
            9,
        )
        .unwrap();
        assert!(reliable.expected_vehicles_lost < 0.05);

        let fragile = trip_measures(
            &Params::builder()
                .lambda(5e-2)
                .n(2)
                .maneuver_base_failure(0.9)
                .impairment_penalty(0.05)
                .build()
                .unwrap(),
            10.0,
            1_500,
            9,
        )
        .unwrap();
        assert!(
            fragile.expected_vehicles_lost > reliable.expected_vehicles_lost * 5.0,
            "fragile {} vs reliable {}",
            fragile.expected_vehicles_lost,
            reliable.expected_vehicles_lost
        );
    }

    #[test]
    fn recovery_fraction_is_a_probability() {
        let m = trip_measures(
            &Params::builder().lambda(1e-2).n(3).build().unwrap(),
            6.0,
            1_000,
            11,
        )
        .unwrap();
        assert!(m.recovery_time_fraction >= 0.0 && m.recovery_time_fraction <= 1.0);
        assert_eq!(m.replications, 1_000);
    }
}
