//! Table 1: failure modes, severities, and their recovery maneuvers.

use ahs_platoon::RecoveryManeuver;
use serde::{Deserialize, Serialize};

/// The six failure modes of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum FailureMode {
    /// FM1 — e.g. no brakes (severity A3, recovered by Aided Stop).
    Fm1,
    /// FM2 — e.g. inability to detect vehicles in adjacent lanes
    /// (severity A2, Crash Stop).
    Fm2,
    /// FM3 — e.g. inter-vehicle communication failure (severity A1,
    /// Gentle Stop).
    Fm3,
    /// FM4 — e.g. transmission failure (severity B2, Take Immediate
    /// Exit-Escorted).
    Fm4,
    /// FM5 — e.g. reduced steering capability (severity B1, Take
    /// Immediate Exit).
    Fm5,
    /// FM6 — e.g. single failure in a redundant sensor set (severity C,
    /// Take Immediate Exit-Normal).
    Fm6,
}

/// Severity levels of Table 1, ordered by decreasing criticality:
/// A3 > A2 > A1 > B1 = B2 > C.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Severity {
    /// Most critical class-A level (no brakes).
    A3,
    /// Middle class-A level.
    A2,
    /// Least critical class-A level.
    A1,
    /// Class-B level recovered without stopping, equal priority to B2.
    B1,
    /// Class-B level recovered with escort, equal priority to B1.
    B2,
    /// Class C — minor failures.
    C,
}

/// The three severity classes used by the catastrophic-situation rules
/// of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SeverityClass {
    /// Failures that require stopping the vehicle on the highway.
    A,
    /// Failures recovered by exiting, possibly with assistance.
    B,
    /// Minor failures.
    C,
}

impl FailureMode {
    /// All six failure modes in Table 1 order.
    pub const ALL: [FailureMode; 6] = [
        FailureMode::Fm1,
        FailureMode::Fm2,
        FailureMode::Fm3,
        FailureMode::Fm4,
        FailureMode::Fm5,
        FailureMode::Fm6,
    ];

    /// The example cause given in Table 1.
    pub fn example_cause(self) -> &'static str {
        match self {
            FailureMode::Fm1 => "no brakes",
            FailureMode::Fm2 => "inability to detect vehicles in adjacent lanes",
            FailureMode::Fm3 => "inter-vehicle communication failure",
            FailureMode::Fm4 => "transmission failure",
            FailureMode::Fm5 => "reduced steering capability",
            FailureMode::Fm6 => "single failure in a redundant sensor set",
        }
    }

    /// Severity level (Table 1).
    pub fn severity(self) -> Severity {
        match self {
            FailureMode::Fm1 => Severity::A3,
            FailureMode::Fm2 => Severity::A2,
            FailureMode::Fm3 => Severity::A1,
            FailureMode::Fm4 => Severity::B2,
            FailureMode::Fm5 => Severity::B1,
            FailureMode::Fm6 => Severity::C,
        }
    }

    /// Recovery maneuver (Table 1).
    pub fn maneuver(self) -> RecoveryManeuver {
        match self {
            FailureMode::Fm1 => RecoveryManeuver::AidedStop,
            FailureMode::Fm2 => RecoveryManeuver::CrashStop,
            FailureMode::Fm3 => RecoveryManeuver::GentleStop,
            FailureMode::Fm4 => RecoveryManeuver::TakeImmediateExitEscorted,
            FailureMode::Fm5 => RecoveryManeuver::TakeImmediateExit,
            FailureMode::Fm6 => RecoveryManeuver::TakeImmediateExitNormal,
        }
    }

    /// Failure-rate multiplier over the base rate λ (paper §4.1:
    /// λ₁=λ, λ₂=2λ, λ₃=2λ, λ₄=2λ, λ₅=3λ, λ₆=4λ).
    pub fn rate_multiplier(self) -> f64 {
        match self {
            FailureMode::Fm1 => 1.0,
            FailureMode::Fm2 | FailureMode::Fm3 | FailureMode::Fm4 => 2.0,
            FailureMode::Fm5 => 3.0,
            FailureMode::Fm6 => 4.0,
        }
    }

    /// Index 0..6, the `i` of FMᵢ₊₁.
    pub fn index(self) -> usize {
        match self {
            FailureMode::Fm1 => 0,
            FailureMode::Fm2 => 1,
            FailureMode::Fm3 => 2,
            FailureMode::Fm4 => 3,
            FailureMode::Fm5 => 4,
            FailureMode::Fm6 => 5,
        }
    }
}

impl std::fmt::Display for FailureMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "FM{}", self.index() + 1)
    }
}

impl Severity {
    /// The class (A, B, or C) of this level.
    pub fn class(self) -> SeverityClass {
        match self {
            Severity::A1 | Severity::A2 | Severity::A3 => SeverityClass::A,
            Severity::B1 | Severity::B2 => SeverityClass::B,
            Severity::C => SeverityClass::C,
        }
    }

    /// Numeric priority (higher = more critical): A3=5, A2=4, A1=3,
    /// B1=B2=2, C=1 (paper §2.1.1: within class A, A3 highest; B1 and
    /// B2 equal; class order A > B > C).
    pub fn priority(self) -> u8 {
        match self {
            Severity::A3 => 5,
            Severity::A2 => 4,
            Severity::A1 => 3,
            Severity::B1 | Severity::B2 => 2,
            Severity::C => 1,
        }
    }
}

/// The six maneuvers in a canonical order used for indexing model
/// structures (ascending priority).
pub const MANEUVERS: [RecoveryManeuver; 6] = [
    RecoveryManeuver::TakeImmediateExitNormal,
    RecoveryManeuver::TakeImmediateExitEscorted,
    RecoveryManeuver::TakeImmediateExit,
    RecoveryManeuver::GentleStop,
    RecoveryManeuver::CrashStop,
    RecoveryManeuver::AidedStop,
];

/// Selection priority of a maneuver (higher preempts lower): AS=5,
/// CS=4, GS=3, TIE=TIE-E=2, TIE-N=1 — the maneuver priorities induced
/// by the severities they recover.
pub fn maneuver_priority(m: RecoveryManeuver) -> u8 {
    match m {
        RecoveryManeuver::AidedStop => 5,
        RecoveryManeuver::CrashStop => 4,
        RecoveryManeuver::GentleStop => 3,
        RecoveryManeuver::TakeImmediateExit | RecoveryManeuver::TakeImmediateExitEscorted => 2,
        RecoveryManeuver::TakeImmediateExitNormal => 1,
    }
}

/// The maneuver recovering a failure mode (Table 1 mapping).
pub fn maneuver_for(fm: FailureMode) -> RecoveryManeuver {
    fm.maneuver()
}

/// Severity class contributed while a maneuver is in progress (used by
/// the Severity submodel's shared counters).
pub fn class_of_maneuver(m: RecoveryManeuver) -> SeverityClass {
    match m {
        RecoveryManeuver::AidedStop
        | RecoveryManeuver::CrashStop
        | RecoveryManeuver::GentleStop => SeverityClass::A,
        RecoveryManeuver::TakeImmediateExit | RecoveryManeuver::TakeImmediateExitEscorted => {
            SeverityClass::B
        }
        RecoveryManeuver::TakeImmediateExitNormal => SeverityClass::C,
    }
}

/// The maneuver attempted when `m` fails (§2.1.1: "the maneuver failure
/// leads the vehicle to start the next higher priority maneuver").
/// `None` for Aided Stop — its failure marks `v_KO`.
pub fn escalation_of(m: RecoveryManeuver) -> Option<RecoveryManeuver> {
    match m {
        RecoveryManeuver::TakeImmediateExitNormal => Some(RecoveryManeuver::TakeImmediateExit),
        RecoveryManeuver::TakeImmediateExit | RecoveryManeuver::TakeImmediateExitEscorted => {
            Some(RecoveryManeuver::GentleStop)
        }
        RecoveryManeuver::GentleStop => Some(RecoveryManeuver::CrashStop),
        RecoveryManeuver::CrashStop => Some(RecoveryManeuver::AidedStop),
        RecoveryManeuver::AidedStop => None,
    }
}

/// Position of a maneuver in [`MANEUVERS`].
pub(crate) fn maneuver_slot(m: RecoveryManeuver) -> usize {
    MANEUVERS
        .iter()
        .position(|&x| x == m)
        .expect("every maneuver appears in MANEUVERS")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_mapping_is_complete_and_consistent() {
        // Reproduces Table 1 row by row.
        let rows = [
            (FailureMode::Fm1, Severity::A3, "AS"),
            (FailureMode::Fm2, Severity::A2, "CS"),
            (FailureMode::Fm3, Severity::A1, "GS"),
            (FailureMode::Fm4, Severity::B2, "TIE-E"),
            (FailureMode::Fm5, Severity::B1, "TIE"),
            (FailureMode::Fm6, Severity::C, "TIE-N"),
        ];
        for (fm, sev, abbr) in rows {
            assert_eq!(fm.severity(), sev, "{fm}");
            assert_eq!(fm.maneuver().abbreviation(), abbr, "{fm}");
        }
    }

    #[test]
    fn rate_multipliers_match_section_4_1() {
        let mults: Vec<f64> = FailureMode::ALL
            .iter()
            .map(|f| f.rate_multiplier())
            .collect();
        assert_eq!(mults, vec![1.0, 2.0, 2.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn severity_priorities_are_strictly_ordered_except_b() {
        assert!(Severity::A3.priority() > Severity::A2.priority());
        assert!(Severity::A2.priority() > Severity::A1.priority());
        assert!(Severity::A1.priority() > Severity::B1.priority());
        assert_eq!(Severity::B1.priority(), Severity::B2.priority());
        assert!(Severity::B2.priority() > Severity::C.priority());
    }

    #[test]
    fn classes_group_correctly() {
        assert_eq!(Severity::A3.class(), SeverityClass::A);
        assert_eq!(Severity::A1.class(), SeverityClass::A);
        assert_eq!(Severity::B1.class(), SeverityClass::B);
        assert_eq!(Severity::B2.class(), SeverityClass::B);
        assert_eq!(Severity::C.class(), SeverityClass::C);
    }

    #[test]
    fn escalation_chain_terminates_at_aided_stop() {
        // From the bottom of the ladder every chain reaches AS then None.
        let mut m = RecoveryManeuver::TakeImmediateExitNormal;
        let mut seen = vec![m];
        while let Some(next) = escalation_of(m) {
            assert!(
                maneuver_priority(next) > maneuver_priority(m),
                "escalation must strictly increase priority: {m} -> {next}"
            );
            m = next;
            seen.push(m);
            assert!(seen.len() <= 6, "escalation chain too long");
        }
        assert_eq!(m, RecoveryManeuver::AidedStop);
    }

    #[test]
    fn maneuver_slots_are_bijective() {
        for (i, &m) in MANEUVERS.iter().enumerate() {
            assert_eq!(maneuver_slot(m), i);
        }
    }

    #[test]
    fn maneuver_class_matches_recovered_severity_class() {
        for fm in FailureMode::ALL {
            assert_eq!(
                class_of_maneuver(fm.maneuver()),
                fm.severity().class(),
                "{fm}"
            );
        }
    }

    #[test]
    fn priorities_follow_severity_of_recovered_failure() {
        // A maneuver recovering a more critical failure preempts one
        // recovering a less critical failure.
        for a in FailureMode::ALL {
            for b in FailureMode::ALL {
                if a.severity().priority() > b.severity().priority() {
                    assert!(
                        maneuver_priority(a.maneuver()) >= maneuver_priority(b.maneuver()),
                        "{a} vs {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(FailureMode::Fm1.to_string(), "FM1");
        assert_eq!(FailureMode::Fm6.to_string(), "FM6");
    }
}
