//! Safety models of Automated Highway Systems.
//!
//! This crate is the primary contribution of the reproduced paper
//! (Hamouda, Kaâniche, Kanoun, *Safety modeling and evaluation of
//! Automated Highway Systems*, DSN 2009): a compositional stochastic
//! activity network model of a two-lane AHS running platoons of
//! automated vehicles, from which the system *unsafety*
//! `S(t) = P(catastrophic situation by time t)` is evaluated.
//!
//! The model layers:
//!
//! * the **failure-mode taxonomy** of Table 1 — six failure modes
//!   FM1–FM6 with severities A3 > A2 > A1 > B1 = B2 > C, each recovered
//!   by a dedicated maneuver ([`FailureMode`], [`Severity`],
//!   [`maneuver_priority`]);
//! * the **catastrophic situations** of Table 2 ([`is_catastrophic`]);
//! * the **coordination strategies** of Table 3 — DD, DC, CD, CC — whose
//!   effect is the number of vehicles involved in each recovery maneuver
//!   ([`Strategy`], [`involved_vehicles`]);
//! * the four **SAN submodels** of Figures 5–8 (`One_vehicle`,
//!   `Severity`, `Dynamicity`, `Configuration`) composed per Figure 9
//!   ([`AhsModel`]);
//! * the **evaluator** producing `S(t)` curves by importance-sampled
//!   simulation ([`UnsafetyEvaluator`]), plus an independent
//!   **agent-level simulator** used to cross-validate the SAN model
//!   ([`AgentSimulator`]).
//!
//! # Example
//!
//! ```no_run
//! use ahs_core::{Params, UnsafetyEvaluator};
//! use ahs_stats::TimeGrid;
//!
//! let params = Params::builder().n(8).lambda(1e-4).build()?;
//! let eval = UnsafetyEvaluator::new(params)
//!     .with_seed(1)
//!     .with_replications(20_000);
//! let curve = eval.evaluate(&TimeGrid::linspace(2.0, 10.0, 5))?;
//! for p in curve.points() {
//!     println!("S({:>4.1} h) = {:.3e}", p.x, p.y);
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod agent;
mod error;
mod evaluator;
mod failure;
mod measures;
mod model;
mod params;
mod severity;
mod strategy;

pub use agent::AgentSimulator;
pub use error::AhsError;
pub use evaluator::{
    study_checkpoint_path, BiasMode, CompiledModel, UnsafetyCurve, UnsafetyEvaluator, UnsafetyPoint,
};
pub use failure::{
    class_of_maneuver, escalation_of, maneuver_for, maneuver_priority, FailureMode, Severity,
    SeverityClass, MANEUVERS,
};
pub use measures::{trip_measures, TripMeasures};
pub use model::{AhsModel, ModelHandles};
pub use params::{ManeuverRates, Params, ParamsBuilder};
pub use severity::{is_catastrophic, CatastrophicSituation, SeverityCount};
pub use strategy::{involved_vehicles, CoordinationModel, Strategy};

pub use ahs_platoon::RecoveryManeuver;
