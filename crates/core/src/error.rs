//! Error type of the AHS core crate.

use ahs_des::SimError;
use ahs_san::SanError;

/// Errors from model construction and evaluation.
#[derive(Debug)]
#[non_exhaustive]
pub enum AhsError {
    /// A parameter failed validation.
    InvalidParameter {
        /// Field name.
        name: &'static str,
        /// What was wrong.
        reason: String,
    },
    /// An error bubbled up from the SAN layer during model
    /// construction.
    San(SanError),
    /// An error bubbled up from the simulation layer during
    /// evaluation.
    Sim(SimError),
}

impl std::fmt::Display for AhsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AhsError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            AhsError::San(e) => write!(f, "{e}"),
            AhsError::Sim(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for AhsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AhsError::San(e) => Some(e),
            AhsError::Sim(e) => Some(e),
            AhsError::InvalidParameter { .. } => None,
        }
    }
}

impl From<SanError> for AhsError {
    fn from(e: SanError) -> Self {
        AhsError::San(e)
    }
}

impl From<SimError> for AhsError {
    fn from(e: SimError) -> Self {
        AhsError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        let e = AhsError::InvalidParameter {
            name: "lambda",
            reason: "must be positive".into(),
        };
        assert_eq!(
            e.to_string(),
            "invalid parameter `lambda`: must be positive"
        );
        assert!(std::error::Error::source(&e).is_none());

        let e: AhsError = SanError::EmptyModel.into();
        assert!(std::error::Error::source(&e).is_some());

        let e: AhsError = SimError::EventBudgetExceeded { budget: 1 }.into();
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<AhsError>();
    }
}
