//! An independent agent-level simulator of the same AHS semantics.
//!
//! This simulator shares **no code path** with the SAN model: it keeps
//! explicit per-vehicle state machines and runs the continuous-time
//! dynamics directly (Gillespie over the agent states). Agreement
//! between this simulator and the SAN model is the workspace's primary
//! end-to-end validation of the model construction (DESIGN.md,
//! validation step 5).

use ahs_platoon::RecoveryManeuver;
use ahs_stats::{Curve, TimeGrid};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::failure::{class_of_maneuver, escalation_of, maneuver_priority, FailureMode};
use crate::params::Params;
use crate::severity::{is_catastrophic, SeverityCount};
use crate::strategy::involved_vehicles;
use crate::SeverityClass;

/// Per-vehicle state of the agent simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
enum AgentState {
    /// On the highway, healthy, in platoon 1 or 2.
    Operating(u8),
    /// Executing a recovery maneuver in platoon 1 or 2.
    Recovering(u8, RecoveryManeuver),
    /// Exited (safely or as v_KO); slot waits for `back_to`.
    Done,
    /// Off the highway, eligible to join.
    Out,
}

/// Direct agent-level Monte-Carlo simulator of the AHS.
///
/// Uses plain (unbiased) sampling, so it is only practical in regimes
/// where failures are not too rare — exactly the regimes the
/// integration tests use to cross-validate the SAN model.
#[derive(Debug, Clone)]
pub struct AgentSimulator {
    params: Params,
}

impl AgentSimulator {
    /// Creates a simulator for `params`.
    ///
    /// # Errors
    ///
    /// Returns [`AhsError::InvalidParameter`](crate::AhsError) if the
    /// parameters fail validation.
    pub fn new(params: Params) -> Result<Self, crate::AhsError> {
        params.validate()?;
        Ok(AgentSimulator { params })
    }

    /// The parameters in use.
    pub fn params(&self) -> &Params {
        &self.params
    }

    /// Runs one replication; returns the first time a catastrophic
    /// situation arises, if within `horizon_hours`.
    pub fn run_first_passage(&self, horizon_hours: f64, rng: &mut SmallRng) -> Option<f64> {
        let p = &self.params;
        let n = p.n;
        let total = p.total_vehicles();
        let mut agents: Vec<AgentState> = (0..total)
            .map(|v| AgentState::Operating((v / n + 1) as u8))
            .collect();
        let mut t = 0.0_f64;

        loop {
            // Enumerate every possible event with its rate.
            let counts = platoon_counts(&agents, p.platoons);
            let operating_p1 = agents
                .iter()
                .filter(|a| matches!(a, AgentState::Operating(1)))
                .count();
            let out_count = agents.iter().filter(|a| **a == AgentState::Out).count();

            let mut events: Vec<(f64, Event)> = Vec::new();
            for (v, agent) in agents.iter().enumerate() {
                match *agent {
                    AgentState::Operating(platoon) => {
                        for fm in FailureMode::ALL {
                            events.push((p.failure_rate(fm), Event::Fail(v, fm)));
                        }
                        if platoon == 1 && operating_p1 > 0 {
                            events.push((p.leave_rate / operating_p1 as f64, Event::Leave(v)));
                        }
                        if adjacent(platoon, p.platoons)
                            .iter()
                            .any(|&k| counts[k as usize] < n)
                        {
                            events.push((p.change_rate, Event::Change(v)));
                        }
                    }
                    AgentState::Recovering(_, active) => {
                        // Higher-priority failures preempt.
                        for fm in FailureMode::ALL {
                            if maneuver_priority(fm.maneuver()) > maneuver_priority(active) {
                                events.push((p.failure_rate(fm), Event::Fail(v, fm)));
                            }
                        }
                        events.push((p.maneuver_rates.rate(active), Event::Complete(v)));
                    }
                    AgentState::Done => {
                        events.push((p.back_rate, Event::Back(v)));
                    }
                    AgentState::Out => {
                        if out_count > 0 && (1..=p.platoons).any(|k| counts[k] < n) {
                            events.push((p.join_rate / out_count as f64, Event::Join(v)));
                        }
                    }
                }
            }

            let total_rate: f64 = events.iter().map(|(r, _)| r).sum();
            if total_rate <= 0.0 {
                return None;
            }
            t += sample_exp(total_rate, rng);
            if t > horizon_hours {
                return None;
            }

            let event = pick(&events, total_rate, rng);
            self.apply(event, &mut agents, rng);

            if is_catastrophic(severity_counts(&agents)) {
                return Some(t);
            }
        }
    }

    fn apply(&self, event: Event, agents: &mut [AgentState], rng: &mut SmallRng) {
        let p = &self.params;
        let n = p.n;
        match event {
            Event::Fail(v, fm) => {
                let platoon = match agents[v] {
                    AgentState::Operating(pl) | AgentState::Recovering(pl, _) => pl,
                    _ => unreachable!("failures only target on-highway vehicles"),
                };
                agents[v] = AgentState::Recovering(platoon, fm.maneuver());
            }
            Event::Complete(v) => {
                let AgentState::Recovering(platoon, m) = agents[v] else {
                    unreachable!("completion only targets recovering vehicles");
                };
                let p_fail = self.failure_probability(agents, v, platoon, m);
                if rng.random::<f64>() < p_fail {
                    match escalation_of(m) {
                        Some(next) => agents[v] = AgentState::Recovering(platoon, next),
                        None => agents[v] = AgentState::Done, // v_KO
                    }
                } else {
                    agents[v] = AgentState::Done; // v_OK
                }
            }
            Event::Leave(v) => agents[v] = AgentState::Out,
            Event::Change(v) => {
                let AgentState::Operating(platoon) = agents[v] else {
                    unreachable!("changes only target operating vehicles");
                };
                let counts = platoon_counts(agents, p.platoons);
                let open: Vec<u8> = adjacent(platoon, p.platoons)
                    .into_iter()
                    .filter(|&k| counts[k as usize] < n)
                    .collect();
                let to = open[rng.random_range(0..open.len())];
                agents[v] = AgentState::Operating(to);
            }
            Event::Back(v) => agents[v] = AgentState::Out,
            Event::Join(v) => {
                let counts = platoon_counts(agents, p.platoons);
                let open: Vec<u8> = (1..=p.platoons as u8)
                    .filter(|&k| counts[k as usize] < n)
                    .collect();
                assert!(!open.is_empty(), "join is gated on free space");
                let to = open[rng.random_range(0..open.len())];
                agents[v] = AgentState::Operating(to);
            }
        }
    }

    /// Identical formula to the SAN model's maneuver-outcome gate.
    fn failure_probability(
        &self,
        agents: &[AgentState],
        v: usize,
        platoon: u8,
        maneuver: RecoveryManeuver,
    ) -> f64 {
        let p = &self.params;
        let counts = platoon_counts(agents, p.platoons);
        let own = counts[platoon as usize].max(1);
        let neighbor = if platoon > 1 { platoon - 1 } else { 2 };
        let other = counts[neighbor as usize];
        let involved = involved_vehicles(maneuver, p.strategy, own, other);

        let present = agents
            .iter()
            .filter(|a| matches!(a, AgentState::Operating(_) | AgentState::Recovering(..)))
            .count();
        let recovering = agents
            .iter()
            .filter(|a| matches!(a, AgentState::Recovering(..)))
            .count();
        let present_others = present.saturating_sub(1).max(1);
        let impaired_others =
            recovering.saturating_sub(usize::from(matches!(agents[v], AgentState::Recovering(..))));
        let frac = impaired_others as f64 / present_others as f64;
        (p.maneuver_base_failure + p.impairment_penalty * involved.saturating_sub(1) as f64 * frac)
            .clamp(0.0, 0.95)
    }

    /// Estimates `S(t)` over `grid` from `replications` plain
    /// Monte-Carlo runs.
    pub fn estimate(&self, grid: &TimeGrid, replications: u64, seed: u64) -> Curve {
        let mut curve = Curve::new(grid.clone());
        for rep in 0..replications {
            let mut rng = SmallRng::seed_from_u64(ahs_des::split_seed(seed, rep));
            let hit = self.run_first_passage(grid.horizon(), &mut rng);
            curve.record_first_passage(hit, 1.0);
        }
        curve
    }
}

#[derive(Debug, Clone, Copy)]
enum Event {
    Fail(usize, FailureMode),
    Complete(usize),
    Leave(usize),
    Change(usize),
    Back(usize),
    Join(usize),
}

/// `counts[k]` = vehicles currently in platoon `k` (index 0 unused).
fn platoon_counts(agents: &[AgentState], platoons: usize) -> Vec<usize> {
    let mut counts = vec![0usize; platoons + 1];
    for a in agents {
        match a {
            AgentState::Operating(p) | AgentState::Recovering(p, _) => {
                counts[*p as usize] += 1;
            }
            _ => {}
        }
    }
    counts
}

/// Adjacent platoons of `which` on a `platoons`-lane highway.
fn adjacent(which: u8, platoons: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(2);
    if which > 1 {
        out.push(which - 1);
    }
    if (which as usize) < platoons {
        out.push(which + 1);
    }
    out
}

fn severity_counts(agents: &[AgentState]) -> SeverityCount {
    let mut sc = SeverityCount::new();
    for a in agents {
        if let AgentState::Recovering(_, m) = a {
            match class_of_maneuver(*m) {
                SeverityClass::A => sc.a += 1,
                SeverityClass::B => sc.b += 1,
                SeverityClass::C => sc.c += 1,
            }
        }
    }
    sc
}

fn sample_exp(rate: f64, rng: &mut SmallRng) -> f64 {
    let u: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    -u.ln() / rate
}

fn pick(events: &[(f64, Event)], total: f64, rng: &mut SmallRng) -> Event {
    let mut u: f64 = rng.random::<f64>() * total;
    for &(r, e) in events {
        if u < r {
            return e;
        }
        u -= r;
    }
    events
        .last()
        .expect("total rate positive implies non-empty")
        .1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_failures_without_failure_events() {
        // λ so small nothing happens over the horizon.
        let p = Params::builder().lambda(1e-300).n(3).build().unwrap();
        let sim = AgentSimulator::new(p).unwrap();
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..50 {
            assert_eq!(sim.run_first_passage(10.0, &mut rng), None);
        }
    }

    #[test]
    fn very_high_lambda_hits_quickly() {
        let p = Params::builder().lambda(10.0).n(5).build().unwrap();
        let sim = AgentSimulator::new(p).unwrap();
        let mut rng = SmallRng::seed_from_u64(2);
        let hits = (0..100)
            .filter(|_| sim.run_first_passage(10.0, &mut rng).is_some())
            .count();
        assert!(hits > 90, "only {hits}/100 hits at λ=10");
    }

    #[test]
    fn estimate_curve_is_monotone() {
        let p = Params::builder().lambda(0.05).n(4).build().unwrap();
        let sim = AgentSimulator::new(p).unwrap();
        let grid = TimeGrid::new(vec![2.0, 6.0, 10.0]);
        let curve = sim.estimate(&grid, 3_000, 42);
        let pts = curve.points(0.95);
        assert!(pts[0].y <= pts[1].y && pts[1].y <= pts[2].y);
        assert!(pts[0].y > 0.0);
        assert!(pts[2].y < 1.0);
    }

    #[test]
    fn unsafety_increases_with_lambda() {
        let grid = TimeGrid::new(vec![6.0]);
        let lo = AgentSimulator::new(Params::builder().lambda(0.01).n(4).build().unwrap())
            .unwrap()
            .estimate(&grid, 4_000, 1)
            .points(0.95)[0]
            .y;
        let hi = AgentSimulator::new(Params::builder().lambda(0.05).n(4).build().unwrap())
            .unwrap()
            .estimate(&grid, 4_000, 1)
            .points(0.95)[0]
            .y;
        assert!(hi > lo, "S(6h): λ=0.05 gives {hi}, λ=0.01 gives {lo}");
    }

    #[test]
    fn severity_counting_matches_taxonomy() {
        let agents = vec![
            AgentState::Recovering(1, RecoveryManeuver::AidedStop),
            AgentState::Recovering(1, RecoveryManeuver::TakeImmediateExit),
            AgentState::Recovering(2, RecoveryManeuver::TakeImmediateExitNormal),
            AgentState::Operating(2),
            AgentState::Out,
        ];
        let sc = severity_counts(&agents);
        assert_eq!((sc.a, sc.b, sc.c), (1, 1, 1));
        assert_eq!(platoon_counts(&agents, 2), vec![0, 2, 2]);
    }
}
