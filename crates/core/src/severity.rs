//! Table 2: catastrophic situations.

use serde::{Deserialize, Serialize};

/// Counts of concurrently active failure severities among adjacent
/// vehicles (one unit per distinct vehicle in recovery).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SeverityCount {
    /// Vehicles currently recovering from a class-A failure.
    pub a: u64,
    /// Vehicles currently recovering from a class-B failure.
    pub b: u64,
    /// Vehicles currently recovering from a class-C failure.
    pub c: u64,
}

impl SeverityCount {
    /// A zeroed counter.
    pub fn new() -> Self {
        SeverityCount::default()
    }

    /// Total vehicles in recovery.
    pub fn total(&self) -> u64 {
        self.a + self.b + self.c
    }
}

/// The three catastrophic situations of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CatastrophicSituation {
    /// ST1 — at least two class-A failures.
    St1,
    /// ST2 — at least one class-A failure AND (two class-B, or one
    /// class-B and one class-C, or three class-C failures).
    St2,
    /// ST3 — at least four failures of class B or C.
    St3,
}

impl CatastrophicSituation {
    /// Whether this situation holds for the given counts.
    pub fn holds(self, counts: SeverityCount) -> bool {
        match self {
            CatastrophicSituation::St1 => counts.a >= 2,
            CatastrophicSituation::St2 => {
                counts.a >= 1
                    && (counts.b >= 2 || (counts.b >= 1 && counts.c >= 1) || counts.c >= 3)
            }
            CatastrophicSituation::St3 => counts.b + counts.c >= 4,
        }
    }

    /// The Table 2 description.
    pub fn description(self) -> &'static str {
        match self {
            CatastrophicSituation::St1 => "at least two Class A failures",
            CatastrophicSituation::St2 => {
                "at least one Class A failure AND {(two Class B failures) OR \
                 (one Class B AND one Class C failures) OR (three Class C failures)}"
            }
            CatastrophicSituation::St3 => {
                "at least four failures whose severities correspond to Class B or Class C"
            }
        }
    }

    /// All three situations.
    pub const ALL: [CatastrophicSituation; 3] = [
        CatastrophicSituation::St1,
        CatastrophicSituation::St2,
        CatastrophicSituation::St3,
    ];
}

impl std::fmt::Display for CatastrophicSituation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CatastrophicSituation::St1 => f.write_str("ST1"),
            CatastrophicSituation::St2 => f.write_str("ST2"),
            CatastrophicSituation::St3 => f.write_str("ST3"),
        }
    }
}

/// Whether any catastrophic situation of Table 2 holds — the predicate
/// behind the Severity submodel's `to_KO` activity.
///
/// # Example
///
/// ```
/// use ahs_core::{is_catastrophic, SeverityCount};
///
/// // One class-A recovery alone is survivable...
/// assert!(!is_catastrophic(SeverityCount { a: 1, b: 0, c: 0 }));
/// // ...two concurrent class-A failures are ST1.
/// assert!(is_catastrophic(SeverityCount { a: 2, b: 0, c: 0 }));
/// ```
pub fn is_catastrophic(counts: SeverityCount) -> bool {
    CatastrophicSituation::ALL.iter().any(|s| s.holds(counts))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sc(a: u64, b: u64, c: u64) -> SeverityCount {
        SeverityCount { a, b, c }
    }

    #[test]
    fn st1_two_class_a() {
        assert!(CatastrophicSituation::St1.holds(sc(2, 0, 0)));
        assert!(CatastrophicSituation::St1.holds(sc(3, 1, 1)));
        assert!(!CatastrophicSituation::St1.holds(sc(1, 5, 5)));
    }

    #[test]
    fn st2_requires_class_a_plus_combination() {
        // one A + two B
        assert!(CatastrophicSituation::St2.holds(sc(1, 2, 0)));
        // one A + one B + one C
        assert!(CatastrophicSituation::St2.holds(sc(1, 1, 1)));
        // one A + three C
        assert!(CatastrophicSituation::St2.holds(sc(1, 0, 3)));
        // no A
        assert!(!CatastrophicSituation::St2.holds(sc(0, 2, 3)));
        // A but insufficient B/C
        assert!(!CatastrophicSituation::St2.holds(sc(1, 1, 0)));
        assert!(!CatastrophicSituation::St2.holds(sc(1, 0, 2)));
    }

    #[test]
    fn st3_four_b_or_c() {
        assert!(CatastrophicSituation::St3.holds(sc(0, 4, 0)));
        assert!(CatastrophicSituation::St3.holds(sc(0, 0, 4)));
        assert!(CatastrophicSituation::St3.holds(sc(0, 2, 2)));
        assert!(!CatastrophicSituation::St3.holds(sc(5, 2, 1)));
    }

    #[test]
    fn safe_boundary_states() {
        // The largest non-catastrophic configurations.
        for counts in [
            sc(0, 0, 0),
            sc(1, 0, 0),
            sc(1, 1, 0),
            sc(1, 0, 2),
            sc(0, 3, 0),
            sc(0, 1, 2),
        ] {
            assert!(!is_catastrophic(counts), "{counts:?} should be safe");
        }
    }

    #[test]
    fn catastrophic_is_monotone() {
        // Adding failures can never make a catastrophic state safe.
        for a in 0..4u64 {
            for b in 0..5u64 {
                for c in 0..5u64 {
                    if is_catastrophic(sc(a, b, c)) {
                        assert!(is_catastrophic(sc(a + 1, b, c)));
                        assert!(is_catastrophic(sc(a, b + 1, c)));
                        assert!(is_catastrophic(sc(a, b, c + 1)));
                    }
                }
            }
        }
    }

    #[test]
    fn total_counts() {
        assert_eq!(sc(1, 2, 3).total(), 6);
        assert_eq!(SeverityCount::new().total(), 0);
    }

    #[test]
    fn descriptions_mention_classes() {
        for s in CatastrophicSituation::ALL {
            assert!(s.description().contains("Class"));
        }
        assert_eq!(CatastrophicSituation::St1.to_string(), "ST1");
    }
}
