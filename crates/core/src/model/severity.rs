//! The `Severity` submodel (Figure 6): catastrophic-situation
//! detection.

use ahs_san::{Marking, SanBuilder, SanError};

use crate::model::Refs;
use crate::severity::is_catastrophic;

/// Adds the instantaneous `to_KO` activity: as soon as the shared
/// severity counters satisfy any catastrophic situation of Table 2
/// (predicate of the `KO_allocation` input gate), `KO_total` is marked
/// through the `OG_KO` output gate and the system enters its absorbing
/// unsafe state.
pub(crate) fn add_to_ko(b: &mut SanBuilder, refs: &Refs) -> Result<(), SanError> {
    let gate_refs = refs.clone();
    let ko_allocation = b.predicate_gate_touching(
        "KO_allocation",
        [refs.ko_total, refs.class_a, refs.class_b, refs.class_c],
        move |m: &Marking| {
            !m.is_marked(gate_refs.ko_total) && is_catastrophic(gate_refs.severity_counts(m))
        },
    );
    let ko_total = refs.ko_total;
    let og_ko = b.output_gate_touching("OG_KO", [ko_total], move |m: &mut Marking| {
        m.add_tokens(ko_total, 1);
    });
    b.instant_activity("to_KO", 100, 1.0)?
        .input_gate(ko_allocation)
        .output_gate(og_ko)
        .build()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use crate::model::AhsModel;
    use crate::params::Params;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn two_class_a_failures_trigger_ko_total() {
        let params = Params::builder().n(3).build().unwrap();
        let model = AhsModel::build(&params).unwrap();
        let san = model.san();
        let h = model.handles();
        let mut m = san.initial_marking().clone();
        let mut rng = SmallRng::seed_from_u64(1);

        // One class-A failure: still safe.
        let l1v0 = san.find_activity("vehicle[0].L1").unwrap();
        san.fire(l1v0, 0, &mut m);
        san.stabilize(&mut m, &mut rng).unwrap();
        assert!(!m.is_marked(h.ko_total));

        // Second class-A failure on an adjacent vehicle: ST1.
        let l2v1 = san.find_activity("vehicle[1].L2").unwrap();
        san.fire(l2v1, 0, &mut m);
        san.stabilize(&mut m, &mut rng).unwrap();
        assert!(m.is_marked(h.ko_total), "ST1 must mark KO_total");
        assert!(model.is_unsafe(&m));
    }

    #[test]
    fn st3_four_minor_failures_trigger_ko_total() {
        let params = Params::builder().n(3).build().unwrap();
        let model = AhsModel::build(&params).unwrap();
        let san = model.san();
        let h = model.handles();
        let mut m = san.initial_marking().clone();
        let mut rng = SmallRng::seed_from_u64(2);

        for v in 0..4 {
            assert!(!m.is_marked(h.ko_total), "safe before failure #{v}");
            let l6 = san.find_activity(&format!("vehicle[{v}].L6")).unwrap();
            san.fire(l6, 0, &mut m);
            san.stabilize(&mut m, &mut rng).unwrap();
        }
        assert!(m.is_marked(h.ko_total), "four class-C failures are ST3");
    }

    #[test]
    fn mixed_st2_combination_triggers() {
        let params = Params::builder().n(3).build().unwrap();
        let model = AhsModel::build(&params).unwrap();
        let san = model.san();
        let h = model.handles();
        let mut m = san.initial_marking().clone();
        let mut rng = SmallRng::seed_from_u64(3);

        // One A (FM3→GS), one B (FM5→TIE), one C (FM6→TIE-N) on three
        // distinct vehicles: ST2.
        for (v, l) in [(0, "L3"), (1, "L5"), (2, "L6")] {
            let a = san.find_activity(&format!("vehicle[{v}].{l}")).unwrap();
            san.fire(a, 0, &mut m);
            san.stabilize(&mut m, &mut rng).unwrap();
        }
        assert!(m.is_marked(h.ko_total));
    }

    #[test]
    fn recovery_before_second_failure_stays_safe() {
        let params = Params::builder().n(3).build().unwrap();
        let model = AhsModel::build(&params).unwrap();
        let san = model.san();
        let h = model.handles();
        let mut m = san.initial_marking().clone();
        let mut rng = SmallRng::seed_from_u64(4);

        // A failure fully recovered (success case) no longer counts.
        let l1 = san.find_activity("vehicle[0].L1").unwrap();
        san.fire(l1, 0, &mut m);
        let man = san.find_activity("vehicle[0].maneuver_AS").unwrap();
        san.fire(man, 0, &mut m); // success
        san.stabilize(&mut m, &mut rng).unwrap();

        let l2 = san.find_activity("vehicle[1].L2").unwrap();
        san.fire(l2, 0, &mut m);
        san.stabilize(&mut m, &mut rng).unwrap();
        assert!(
            !m.is_marked(h.ko_total),
            "non-overlapping failures must not be catastrophic"
        );
    }
}
