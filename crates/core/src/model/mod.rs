//! The composed SAN model of the two-lane AHS (paper Figures 4–9).
//!
//! The paper composes `2n` replicas of a `One_vehicle` submodel with
//! three singleton submodels — `Severity`, `Dynamicity`, and
//! `Configuration` — through shared places (`Rep`/`Join` in Möbius).
//! Here each submodel is a builder module contributing places and
//! activities to one [`SanBuilder`]; sharing is by place handle, the
//! exact state-sharing semantics of the Möbius operators.
//!
//! Two documented foldings relative to the paper's figures:
//!
//! * the per-failure-mode places `CC₁…CC₆` of Figure 5 all receive
//!   their token together when the vehicle enters (place `IN` marked),
//!   so they are folded into the single `present` place — failure
//!   activities are gated on it;
//! * the `Configuration` submodel (Figure 8) performs initialization —
//!   ids, platoon assignment — which in this implementation is the
//!   deterministic computation of the initial marking
//!   ([`configuration`]).

pub(crate) mod configuration;
pub(crate) mod dynamicity;
pub(crate) mod one_vehicle;
pub(crate) mod severity;

use std::sync::Arc;

use ahs_san::{ActivityId, Marking, PlaceId, SanBuilder, SanModel};

use crate::error::AhsError;
use crate::failure::MANEUVERS;
use crate::params::Params;
use crate::severity::SeverityCount;

/// Place handles of one vehicle replica.
#[derive(Debug, Clone, Copy)]
pub struct VehiclePlaces {
    /// Marked while the vehicle is on the highway (operating or
    /// recovering) — the folded `IN`/`CCᵢ` of Figure 5.
    pub present: PlaceId,
    /// Token count 1 or 2 = current platoon; 0 = not on the highway.
    pub platoon: PlaceId,
    /// Maneuver-in-progress places, indexed by
    /// [`MANEUVERS`](crate::MANEUVERS) slot (the `SMᵢ` of Figure 5).
    pub maneuvers: [PlaceId; 6],
    /// Marked when the vehicle exited safely (`v_OK`).
    pub ok: PlaceId,
    /// Marked when every recovery failed (`v_KO`).
    pub ko: PlaceId,
    /// Marked while the vehicle's slot waits to be refilled (`OUT`).
    pub out: PlaceId,
}

/// Handles into the composed model needed by evaluators and tests.
#[derive(Debug, Clone)]
pub struct ModelHandles {
    /// The absorbing unsafe-state flag (`KO_total` of Figure 6).
    pub ko_total: PlaceId,
    /// Count of vehicles recovering from class-A failures.
    pub class_a: PlaceId,
    /// Count of vehicles recovering from class-B failures.
    pub class_b: PlaceId,
    /// Count of vehicles recovering from class-C failures.
    pub class_c: PlaceId,
    /// Occupancy arrays, one per platoon (extended places,
    /// vehicle-id+1 entries, 0 = empty slot). Index 0 = platoon 1, the
    /// exit lane.
    pub platoon_arrays: Vec<PlaceId>,
    /// Per-vehicle place handles.
    pub vehicles: Vec<VehiclePlaces>,
    /// Every failure activity `L_{i,v}` — the target set for
    /// importance-sampling bias schemes.
    pub failure_activities: Vec<ActivityId>,
    /// Every maneuver-execution activity.
    pub maneuver_activities: Vec<ActivityId>,
}

/// Shared references used by gate closures (cheap to clone; the vehicle
/// table is behind an [`Arc`]).
#[derive(Debug, Clone)]
pub(crate) struct Refs {
    pub vehicles: Arc<Vec<VehiclePlaces>>,
    pub ko_total: PlaceId,
    pub class_a: PlaceId,
    pub class_b: PlaceId,
    pub class_c: PlaceId,
    /// Occupancy arrays, index 0 = platoon 1.
    pub platoon_arrays: Vec<PlaceId>,
    pub capacity: usize,
}

impl Refs {
    /// Index of the marked maneuver place of vehicle `v`, if any.
    /// Invariant maintained by the model: at most one is marked.
    pub fn active_slot(&self, m: &Marking, v: usize) -> Option<usize> {
        self.vehicles[v]
            .maneuvers
            .iter()
            .position(|&p| m.is_marked(p))
    }

    /// Priority of vehicle `v`'s active maneuver (0 when idle).
    pub fn active_priority(&self, m: &Marking, v: usize) -> u8 {
        self.active_slot(m, v)
            .map_or(0, |s| crate::failure::maneuver_priority(MANEUVERS[s]))
    }

    /// Number of vehicles currently in platoon `which` (1 or 2).
    pub fn platoon_size(&self, m: &Marking, which: u64) -> usize {
        self.vehicles
            .iter()
            .filter(|vp| m.tokens(vp.platoon) == which)
            .count()
    }

    /// Vehicles on the highway (present).
    pub fn present_count(&self, m: &Marking) -> usize {
        self.vehicles
            .iter()
            .filter(|vp| m.is_marked(vp.present))
            .count()
    }

    /// Vehicles currently executing a recovery maneuver.
    pub fn recovering_count(&self, m: &Marking) -> usize {
        (0..self.vehicles.len())
            .filter(|&v| self.active_slot(m, v).is_some())
            .count()
    }

    /// Vehicles operating (present, not recovering) in platoon `which`.
    pub fn operating_in(&self, m: &Marking, which: u64) -> usize {
        (0..self.vehicles.len())
            .filter(|&v| {
                let vp = &self.vehicles[v];
                m.is_marked(vp.present)
                    && m.tokens(vp.platoon) == which
                    && self.active_slot(m, v).is_none()
            })
            .count()
    }

    /// Vehicles waiting off the highway (`OUT` marked).
    pub fn out_count(&self, m: &Marking) -> usize {
        self.vehicles
            .iter()
            .filter(|vp| m.is_marked(vp.out))
            .count()
    }

    /// Number of platoons.
    pub fn num_platoons(&self) -> usize {
        self.platoon_arrays.len()
    }

    /// Every vehicle's platoon-indicator place — the read set of the
    /// platoon-size helpers, used in gate `touches` declarations.
    pub fn platoon_indicators(&self) -> impl Iterator<Item = PlaceId> + '_ {
        self.vehicles.iter().map(|vp| vp.platoon)
    }

    /// The occupancy-array place of platoon `which` (1-based).
    ///
    /// # Panics
    ///
    /// Panics if `which` is not a valid platoon number.
    pub fn array_place(&self, which: u64) -> PlaceId {
        self.platoon_arrays[which as usize - 1]
    }

    /// The platoon whose leader coordinates with the faulty vehicle's
    /// platoon during inter-platoon maneuvers: the exit-side neighbour
    /// when it exists, otherwise the other side.
    pub fn neighbor_platoon(&self, which: u64) -> u64 {
        if which > 1 {
            which - 1
        } else {
            2
        }
    }

    /// The shared severity counters.
    pub fn severity_counts(&self, m: &Marking) -> SeverityCount {
        SeverityCount {
            a: m.tokens(self.class_a),
            b: m.tokens(self.class_b),
            c: m.tokens(self.class_c),
        }
    }

    /// The class-counter place for a severity class.
    pub fn class_place(&self, class: crate::SeverityClass) -> PlaceId {
        match class {
            crate::SeverityClass::A => self.class_a,
            crate::SeverityClass::B => self.class_b,
            crate::SeverityClass::C => self.class_c,
        }
    }
}

/// Removes `val` from an occupancy array, compacting the remaining
/// entries forward (the paper's position management after leave
/// events).
pub(crate) fn array_remove(arr: &mut [i64], val: i64) {
    if let Some(pos) = arr.iter().position(|&x| x == val) {
        for i in pos..arr.len() - 1 {
            arr[i] = arr[i + 1];
        }
        if let Some(last) = arr.last_mut() {
            *last = 0;
        }
    }
}

/// Appends `val` at the first free slot — "each time a vehicle joins a
/// platoon it occupies the last position" (paper §3.2.3).
pub(crate) fn array_append(arr: &mut [i64], val: i64) {
    if let Some(slot) = arr.iter_mut().find(|x| **x == 0) {
        *slot = val;
    }
}

/// The composed AHS safety model: the paper's Figure 9 tree flattened
/// into one executable SAN plus the handles needed to define measures.
///
/// # Example
///
/// ```
/// use ahs_core::{AhsModel, Params};
///
/// let params = Params::builder().n(4).build()?;
/// let model = AhsModel::build(&params)?;
/// // 2n One_vehicle replicas (17 activities each) + the Severity
/// // submodel's to_KO.
/// assert_eq!(model.san().num_activities(), 8 * 17 + 1);
/// assert!(!model.is_unsafe(model.san().initial_marking()));
/// # Ok::<(), ahs_core::AhsError>(())
/// ```
pub struct AhsModel {
    san: SanModel,
    handles: ModelHandles,
    params: Params,
}

impl AhsModel {
    /// Builds the composed model for `params`.
    ///
    /// # Errors
    ///
    /// Returns [`AhsError::InvalidParameter`] if the parameters fail
    /// validation, or a wrapped [`SanError`](ahs_san::SanError) if
    /// assembly fails (which would be a bug in this crate).
    pub fn build(params: &Params) -> Result<Self, AhsError> {
        params.validate()?;
        let mut b = SanBuilder::new("ahs");
        // Every gate carries a `touches` declaration, so the builder's
        // strict checks (and the linter's gate-purity pass) can verify
        // the model instead of trusting it.
        b.validate_strict();

        // Configuration: all places and the initial marking.
        let (refs, vehicles) = configuration::build_places(&mut b, params)?;

        // Severity submodel (Figure 6).
        severity::add_to_ko(&mut b, &refs)?;

        // One_vehicle replicas (Figure 5) and Dynamicity (Figure 7).
        let mut failure_activities = Vec::new();
        let mut maneuver_activities = Vec::new();
        let total = params.total_vehicles();
        b.replicate("vehicle", total, |b, v| {
            let (fails, mans) = one_vehicle::add_activities(b, v, &refs, params)?;
            failure_activities.extend(fails);
            maneuver_activities.extend(mans);
            dynamicity::add_activities(b, v, &refs, params)?;
            Ok(())
        })?;

        let san = b.build()?;
        let handles = ModelHandles {
            ko_total: refs.ko_total,
            class_a: refs.class_a,
            class_b: refs.class_b,
            class_c: refs.class_c,
            platoon_arrays: refs.platoon_arrays.clone(),
            vehicles,
            failure_activities,
            maneuver_activities,
        };
        Ok(AhsModel {
            san,
            handles,
            params: params.clone(),
        })
    }

    /// The underlying SAN.
    pub fn san(&self) -> &SanModel {
        &self.san
    }

    /// Consumes the wrapper, returning the SAN (needed by
    /// [`Study`](ahs_des::Study), which owns its model).
    pub fn into_san(self) -> (SanModel, ModelHandles) {
        (self.san, self.handles)
    }

    /// Handles into the model's places and activities.
    pub fn handles(&self) -> &ModelHandles {
        &self.handles
    }

    /// The parameters the model was built for.
    pub fn params(&self) -> &Params {
        &self.params
    }

    /// The unsafety target predicate: `KO_total` marked.
    pub fn is_unsafe(&self, marking: &Marking) -> bool {
        marking.is_marked(self.handles.ko_total)
    }
}

impl std::fmt::Debug for AhsModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AhsModel")
            .field("n", &self.params.n)
            .field("places", &self.san.num_places())
            .field("activities", &self.san.num_activities())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Params;

    #[test]
    fn array_remove_compacts() {
        let mut a = [1, 2, 3, 0];
        array_remove(&mut a, 2);
        assert_eq!(a, [1, 3, 0, 0]);
        array_remove(&mut a, 9); // absent: no-op
        assert_eq!(a, [1, 3, 0, 0]);
        array_remove(&mut a, 1);
        array_remove(&mut a, 3);
        assert_eq!(a, [0, 0, 0, 0]);
    }

    #[test]
    fn array_append_takes_last_position() {
        let mut a = [5, 0, 0];
        array_append(&mut a, 7);
        assert_eq!(a, [5, 7, 0]);
        array_append(&mut a, 9);
        array_append(&mut a, 11); // full: dropped
        assert_eq!(a, [5, 7, 9]);
    }

    #[test]
    fn model_builds_with_expected_structure() {
        let params = Params::builder().n(3).build().unwrap();
        let model = AhsModel::build(&params).unwrap();
        let total = params.total_vehicles();
        // Per vehicle: 6 failure + 6 maneuver + 2 back_to + join +
        // leave + change = 17 activities, plus the severity to_KO.
        assert_eq!(model.san().num_activities(), total * 17 + 1);
        assert_eq!(model.handles().failure_activities.len(), total * 6);
        assert_eq!(model.handles().maneuver_activities.len(), total * 6);
        assert!(model.san().is_markovian());
    }

    #[test]
    fn initial_marking_is_two_full_platoons() {
        let params = Params::builder().n(4).build().unwrap();
        let model = AhsModel::build(&params).unwrap();
        let m = model.san().initial_marking();
        let h = model.handles();
        assert!(!m.is_marked(h.ko_total));
        assert_eq!(m.tokens(h.class_a), 0);
        for (v, vp) in h.vehicles.iter().enumerate() {
            assert!(m.is_marked(vp.present), "vehicle {v} should be present");
            let expect = if v < 4 { 1 } else { 2 };
            assert_eq!(m.tokens(vp.platoon), expect, "vehicle {v}");
            assert!(!m.is_marked(vp.out));
        }
        assert_eq!(m.array(h.platoon_arrays[0]), &[1, 2, 3, 4]);
        assert_eq!(m.array(h.platoon_arrays[1]), &[5, 6, 7, 8]);
        assert!(model.san().is_stable(m), "initial marking must be stable");
    }

    #[test]
    fn model_is_structurally_clean() {
        let params = Params::builder().n(2).build().unwrap();
        let model = AhsModel::build(&params).unwrap();
        let report = model.san().analyze();
        assert!(
            report.always_enabled_activities.is_empty(),
            "{:?}",
            report.always_enabled_activities
        );
    }
}
