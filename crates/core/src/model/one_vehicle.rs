//! The `One_vehicle` submodel (Figure 5): failure modes, maneuver
//! selection with priorities, escalation, and outcome.

use std::sync::Arc;

use ahs_san::{ActivityId, Delay, Marking, SanBuilder, SanError};

use crate::failure::{
    class_of_maneuver, escalation_of, maneuver_priority, maneuver_slot, FailureMode, MANEUVERS,
};
use crate::model::{array_remove, Refs};
use crate::params::Params;
use crate::strategy::involved_vehicles;

/// Adds the failure activities `L₁…L₆` and the six maneuver-execution
/// activities for vehicle `v`. Returns `(failure activities, maneuver
/// activities)`.
pub(crate) fn add_activities(
    b: &mut SanBuilder,
    v: usize,
    refs: &Refs,
    params: &Params,
) -> Result<(Vec<ActivityId>, Vec<ActivityId>), SanError> {
    let mut failures = Vec::with_capacity(6);
    let mut maneuvers = Vec::with_capacity(6);

    for fm in FailureMode::ALL {
        failures.push(add_failure_mode(b, v, fm, refs, params)?);
    }
    for m in MANEUVERS {
        maneuvers.push(add_maneuver(b, v, m, refs, params)?);
    }
    add_back_to(b, v, refs, params)?;
    Ok((failures, maneuvers))
}

/// The failure activity `Lᵢ`: fires while the vehicle is present and no
/// maneuver of equal or higher priority is active; on completion the
/// recovery maneuver of Table 1 starts, preempting any lower-priority
/// maneuver (paper §2.1.1: "when a higher priority maneuver is
/// activated, all lower priority maneuvers associated with the same
/// vehicle are inhibited").
fn add_failure_mode(
    b: &mut SanBuilder,
    v: usize,
    fm: FailureMode,
    refs: &Refs,
    params: &Params,
) -> Result<ActivityId, SanError> {
    let maneuver = fm.maneuver();
    let prio = maneuver_priority(maneuver);
    let slot = maneuver_slot(maneuver);
    let vp = refs.vehicles[v];
    let rate = params.failure_rate(fm);

    // Enabling: present, system not yet frozen in KO_total, and the new
    // maneuver would outrank whatever is active. Reads and writes are
    // declared separately: the predicate never consults the shared
    // severity-class counters, and folding them into the read-set (as a
    // plain `touches` declaration would) couples every vehicle's
    // triggers to every other's in the dependency graph.
    let guard_refs = refs.clone();
    let gate_reads: Vec<_> = [refs.ko_total, vp.present]
        .into_iter()
        .chain(vp.maneuvers)
        .collect();
    let gate_writes: Vec<_> = [refs.class_a, refs.class_b, refs.class_c]
        .into_iter()
        .chain(vp.maneuvers)
        .collect();
    let gate = b.input_gate_touching_split(
        &format!("f{}", fm.index() + 1),
        gate_reads,
        gate_writes,
        move |m: &Marking| {
            !m.is_marked(guard_refs.ko_total)
                && m.is_marked(vp.present)
                && prio > guard_refs.active_priority(m, v)
        },
        // Marking function: demote the currently active lower-priority
        // maneuver, if any (its severity contribution moves to the new
        // class in the output gate).
        {
            let demote_refs = refs.clone();
            move |m: &mut Marking| {
                if let Some(old) = demote_refs.active_slot(m, v) {
                    m.remove_tokens(vp.maneuvers[old], 1);
                    let old_class = class_of_maneuver(MANEUVERS[old]);
                    m.remove_tokens(demote_refs.class_place(old_class), 1);
                }
            }
        },
    );

    // Output: start the maneuver and account its severity class.
    let out_refs = refs.clone();
    let og = b.output_gate_touching(
        &format!("fm{}", fm.index() + 1),
        [
            vp.maneuvers[slot],
            refs.class_place(class_of_maneuver(MANEUVERS[slot])),
        ],
        move |m: &mut Marking| {
            m.add_tokens(vp.maneuvers[slot], 1);
            m.add_tokens(out_refs.class_place(class_of_maneuver(MANEUVERS[slot])), 1);
        },
    );

    b.timed_activity(&format!("L{}", fm.index() + 1), Delay::exponential(rate))?
        .input_gate(gate)
        .output_gate(og)
        .build()
}

/// Probability that an attempt of `maneuver` by vehicle `v` fails,
/// given the current marking: a base probability plus a penalty
/// proportional to the expected number of *impaired* vehicles among the
/// maneuver's involved set (whose size is the coordination-strategy
/// mechanism of §2.2).
fn failure_probability(
    refs: &Refs,
    params: &Params,
    v: usize,
    maneuver: ahs_platoon::RecoveryManeuver,
    m: &Marking,
) -> f64 {
    let vp = &refs.vehicles[v];
    let own_platoon = m.tokens(vp.platoon);
    let (own, other) = if own_platoon == 0 {
        // Not in a platoon (shouldn't happen mid-maneuver): minimal set.
        (1, 0)
    } else {
        let neighbor = refs.neighbor_platoon(own_platoon);
        (
            refs.platoon_size(m, own_platoon),
            refs.platoon_size(m, neighbor),
        )
    };
    let involved = involved_vehicles(maneuver, params.strategy, own.max(1), other);
    let present_others = refs.present_count(m).saturating_sub(1).max(1);
    let impaired_others = refs.recovering_count(m).saturating_sub(1);
    let frac_impaired = impaired_others as f64 / present_others as f64;
    let p = params.maneuver_base_failure
        + params.impairment_penalty * (involved.saturating_sub(1)) as f64 * frac_impaired;
    p.clamp(0.0, 0.95)
}

/// The maneuver-execution activity: exponential with the maneuver's
/// rate, enabled while `SMᵢ` is marked. Success releases the vehicle
/// from the highway (`v_OK`); failure escalates to the next
/// higher-priority maneuver, or marks `v_KO` when the Aided Stop — the
/// last resort — fails.
fn add_maneuver(
    b: &mut SanBuilder,
    v: usize,
    maneuver: ahs_platoon::RecoveryManeuver,
    refs: &Refs,
    params: &Params,
) -> Result<ActivityId, SanError> {
    let slot = maneuver_slot(maneuver);
    let vp = refs.vehicles[v];
    let rate = params.maneuver_rates.rate(maneuver);
    let class = class_of_maneuver(maneuver);

    let p_fail: Arc<dyn Fn(&Marking) -> f64 + Send + Sync> = {
        let refs = refs.clone();
        let params = params.clone();
        Arc::new(move |m: &Marking| failure_probability(&refs, &params, v, maneuver, m))
    };

    // Success: the vehicle exits the highway safely.
    let ok_refs = refs.clone();
    let ok_touches: Vec<_> = [refs.class_place(class), vp.present, vp.ok, vp.platoon]
        .into_iter()
        .chain(refs.platoon_arrays.iter().copied())
        .collect();
    let og_ok = b.output_gate_touching(
        &format!("og_ok_{}", maneuver.abbreviation()),
        ok_touches,
        move |m: &mut Marking| {
            m.remove_tokens(ok_refs.class_place(class), 1);
            m.set_tokens(vp.present, 0);
            m.add_tokens(vp.ok, 1);
            release_platoon_slot(&ok_refs, m, v);
        },
    );

    // Failure: escalate, or v_KO after a failed Aided Stop. The touch
    // set depends statically on whether the maneuver escalates.
    let fail_refs = refs.clone();
    let mut fail_touches = vec![refs.class_place(class)];
    match escalation_of(maneuver) {
        Some(next) => {
            fail_touches.push(vp.maneuvers[maneuver_slot(next)]);
            fail_touches.push(refs.class_place(class_of_maneuver(next)));
        }
        None => {
            fail_touches.extend([vp.present, vp.ko, vp.platoon]);
            fail_touches.extend(refs.platoon_arrays.iter().copied());
        }
    }
    let og_fail = b.output_gate_touching(
        &format!("og_fail_{}", maneuver.abbreviation()),
        fail_touches,
        {
            move |m: &mut Marking| {
                m.remove_tokens(fail_refs.class_place(class), 1);
                match escalation_of(maneuver) {
                    Some(next) => {
                        let next_slot = maneuver_slot(next);
                        m.add_tokens(vp.maneuvers[next_slot], 1);
                        m.add_tokens(fail_refs.class_place(class_of_maneuver(next)), 1);
                    }
                    None => {
                        // The vehicle becomes a stopped free agent; the
                        // platoons continue without it (paper §3.2.1).
                        m.set_tokens(vp.present, 0);
                        m.add_tokens(vp.ko, 1);
                        release_platoon_slot(&fail_refs, m, v);
                    }
                }
            }
        },
    );

    let p_fail_success = Arc::clone(&p_fail);
    let freeze = freeze_gate(b, &format!("freeze_{}", maneuver.abbreviation()), refs);
    b.timed_activity(
        &format!("maneuver_{}", maneuver.abbreviation()),
        Delay::exponential(rate),
    )?
    .input_place(vp.maneuvers[slot])
    .input_gate(freeze)
    .case_fn(move |m| 1.0 - p_fail_success(m))
    .output_gate(og_ok)
    .case_fn(move |m| p_fail(m))
    .output_gate(og_fail)
    .build()
}

/// The `back_to` activities (Figure 5): a slot released through `v_OK`
/// or `v_KO` becomes available for a new vehicle to join.
fn add_back_to(b: &mut SanBuilder, v: usize, refs: &Refs, params: &Params) -> Result<(), SanError> {
    let vp = refs.vehicles[v];
    let freeze = freeze_gate(b, "back_freeze", refs);
    b.timed_activity("back_to_ok", Delay::exponential(params.back_rate))?
        .input_place(vp.ok)
        .input_gate(freeze)
        .output_place(vp.out)
        .build()?;
    let freeze = freeze_gate(b, "back_freeze_ko", refs);
    b.timed_activity("back_to_ko", Delay::exponential(params.back_rate))?
        .input_place(vp.ko)
        .input_gate(freeze)
        .output_place(vp.out)
        .build()?;
    Ok(())
}

/// A pure predicate gate that freezes an activity once `KO_total` is
/// marked — the unsafe state is absorbing for the whole system.
pub(crate) fn freeze_gate(b: &mut SanBuilder, name: &str, refs: &Refs) -> ahs_san::InputGateId {
    let ko = refs.ko_total;
    b.predicate_gate_touching(name, [ko], move |m: &Marking| !m.is_marked(ko))
}

/// Clears the vehicle's platoon membership: indicator to 0 and removal
/// (with compaction) from the occupancy array.
fn release_platoon_slot(refs: &Refs, m: &mut Marking, v: usize) {
    let vp = &refs.vehicles[v];
    let which = m.tokens(vp.platoon);
    let id = v as i64 + 1;
    if which >= 1 && which as usize <= refs.num_platoons() {
        array_remove(m.array_mut(refs.array_place(which)), id);
    }
    m.set_tokens(vp.platoon, 0);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::AhsModel;
    use crate::params::Params;
    use crate::strategy::Strategy;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn tiny_model() -> AhsModel {
        let params = Params::builder().n(2).build().unwrap();
        AhsModel::build(&params).unwrap()
    }

    #[test]
    fn failure_fires_and_starts_its_maneuver() {
        let model = tiny_model();
        let san = model.san();
        let h = model.handles();
        let mut m = san.initial_marking().clone();

        // FM6 on vehicle 0 → TIE-N (slot 0) active, class_C = 1.
        let l6 = san.find_activity("vehicle[0].L6").unwrap();
        assert!(san.is_enabled(l6, &m));
        san.fire(l6, 0, &mut m);
        assert!(m.is_marked(h.vehicles[0].maneuvers[0]));
        assert_eq!(m.tokens(h.class_c), 1);
        assert_eq!(m.tokens(h.class_a), 0);
    }

    #[test]
    fn higher_priority_failure_preempts() {
        let model = tiny_model();
        let san = model.san();
        let h = model.handles();
        let mut m = san.initial_marking().clone();

        let l6 = san.find_activity("vehicle[0].L6").unwrap(); // TIE-N (C)
        let l1 = san.find_activity("vehicle[0].L1").unwrap(); // AS (A)
        san.fire(l6, 0, &mut m);
        assert!(san.is_enabled(l1, &m), "AS outranks TIE-N");
        san.fire(l1, 0, &mut m);
        // TIE-N demoted, AS active, counters moved C → A.
        assert!(!m.is_marked(h.vehicles[0].maneuvers[0]));
        assert!(m.is_marked(h.vehicles[0].maneuvers[5]));
        assert_eq!(m.tokens(h.class_c), 0);
        assert_eq!(m.tokens(h.class_a), 1);
        // And the reverse is inhibited: L6 now disabled.
        assert!(!san.is_enabled(l6, &m));
    }

    #[test]
    fn equal_priority_does_not_preempt() {
        let model = tiny_model();
        let san = model.san();
        let mut m = san.initial_marking().clone();
        let l4 = san.find_activity("vehicle[0].L4").unwrap(); // TIE-E (B2)
        let l5 = san.find_activity("vehicle[0].L5").unwrap(); // TIE (B1)
        san.fire(l4, 0, &mut m);
        assert!(!san.is_enabled(l5, &m), "equal priority must not preempt");
    }

    #[test]
    fn maneuver_success_releases_vehicle() {
        let model = tiny_model();
        let san = model.san();
        let h = model.handles();
        let mut m = san.initial_marking().clone();

        let l6 = san.find_activity("vehicle[0].L6").unwrap();
        san.fire(l6, 0, &mut m);
        let man = san.find_activity("vehicle[0].maneuver_TIE-N").unwrap();
        assert!(san.is_enabled(man, &m));
        san.fire(man, 0, &mut m); // case 0 = success
        let vp = &h.vehicles[0];
        assert!(m.is_marked(vp.ok));
        assert!(!m.is_marked(vp.present));
        assert_eq!(m.tokens(vp.platoon), 0);
        assert_eq!(m.tokens(h.class_c), 0);
        // Slot compacted out of the occupancy array.
        assert_eq!(m.array(h.platoon_arrays[0]), &[2, 0]);
    }

    #[test]
    fn maneuver_failure_escalates_along_the_chain() {
        let model = tiny_model();
        let san = model.san();
        let h = model.handles();
        let mut m = san.initial_marking().clone();

        let l6 = san.find_activity("vehicle[0].L6").unwrap();
        san.fire(l6, 0, &mut m);
        // Walk the full escalation chain by always taking case 1.
        let chain = ["TIE-N", "TIE", "GS", "CS", "AS"];
        for (step, abbr) in chain.iter().enumerate() {
            let man = san
                .find_activity(&format!("vehicle[0].maneuver_{abbr}"))
                .unwrap();
            assert!(san.is_enabled(man, &m), "step {step}: {abbr} not active");
            san.fire(man, 1, &mut m); // case 1 = failure
        }
        // AS failed: v_KO, all counters cleared.
        let vp = &h.vehicles[0];
        assert!(m.is_marked(vp.ko));
        assert!(!m.is_marked(vp.present));
        assert_eq!(m.tokens(h.class_a), 0);
        assert_eq!(m.tokens(h.class_b), 0);
        assert_eq!(m.tokens(h.class_c), 0);
    }

    #[test]
    fn failure_probability_increases_with_impairment_and_strategy() {
        let params_dd = Params::builder()
            .n(10)
            .strategy(Strategy::Dd)
            .build()
            .unwrap();
        let params_cc = Params::builder()
            .n(10)
            .strategy(Strategy::Cc)
            .build()
            .unwrap();
        let model = AhsModel::build(&params_dd).unwrap();
        let san = model.san();
        let mut m = san.initial_marking().clone();

        // Build a Refs equivalent through the public handles.
        let h = model.handles();
        let refs = Refs {
            vehicles: Arc::new(h.vehicles.clone()),
            ko_total: h.ko_total,
            class_a: h.class_a,
            class_b: h.class_b,
            class_c: h.class_c,
            platoon_arrays: h.platoon_arrays.clone(),
            capacity: 10,
        };
        let tie_e = ahs_platoon::RecoveryManeuver::TakeImmediateExitEscorted;

        // Nobody impaired: base probability only.
        let p0 = failure_probability(&refs, &params_dd, 0, tie_e, &m);
        assert!((p0 - params_dd.maneuver_base_failure).abs() < 1e-12);

        // Impair two other vehicles.
        let l1v1 = san.find_activity("vehicle[1].L1").unwrap();
        let l1v2 = san.find_activity("vehicle[2].L1").unwrap();
        san.fire(l1v1, 0, &mut m);
        san.fire(l1v2, 0, &mut m);
        // ...and vehicle 0 itself (so it has an active maneuver).
        let l4v0 = san.find_activity("vehicle[0].L4").unwrap();
        san.fire(l4v0, 0, &mut m);

        let p_dd = failure_probability(&refs, &params_dd, 0, tie_e, &m);
        let p_cc = failure_probability(&refs, &params_cc, 0, tie_e, &m);
        assert!(p_dd > p0, "impairment must raise failure probability");
        assert!(
            p_cc > p_dd,
            "centralized coordination involves more vehicles: {p_cc} vs {p_dd}"
        );
    }

    #[test]
    fn after_ko_total_everything_freezes() {
        let model = tiny_model();
        let san = model.san();
        let h = model.handles();
        let mut m = san.initial_marking().clone();
        m.add_tokens(h.ko_total, 1);
        assert!(
            san.enabled_timed(&m).is_empty(),
            "no timed activity may fire after KO_total"
        );
        let mut rng = SmallRng::seed_from_u64(0);
        assert!(san.stabilize(&mut m, &mut rng).unwrap().is_empty());
    }
}
