//! The `Dynamicity` submodel (Figure 7): voluntary join and leave
//! events and platoon changes.

use ahs_san::{Delay, Marking, SanBuilder, SanError};

use crate::model::{array_append, array_remove, Refs};
use crate::params::Params;

/// Adds the join, leave, and change activities for vehicle `v`.
///
/// * **Join** — a vehicle waiting off the highway (`OUT`) enters at the
///   global join rate (shared equally among the waiting vehicles, so
///   the total entry rate matches the paper's global parameter). It
///   picks uniformly among platoons with free capacity (the paper's
///   `JP` cases — ½/½ for the two-platoon configuration with overflow
///   to the other platoon when one is full), taking the last position.
/// * **Leave** — operating vehicles exit voluntarily from platoon 1
///   (the exit lane) only, at the global leave rate shared among
///   candidates; other platoons' vehicles must change toward platoon 1
///   first (paper §4.1: "each vehicle in platoon2 leaving the highway
///   should pass through platoon1").
/// * **Change** — `ch1`/`ch2`: an operating vehicle moves to an
///   *adjacent* platoon with space at a constant per-vehicle rate,
///   choosing uniformly when both directions are possible. For the
///   paper's two-platoon setup this degenerates to the plain swap.
pub(crate) fn add_activities(
    b: &mut SanBuilder,
    v: usize,
    refs: &Refs,
    params: &Params,
) -> Result<(), SanError> {
    add_join(b, v, refs, params)?;
    add_leave(b, v, refs, params)?;
    add_change(b, v, refs, params)?;
    Ok(())
}

fn add_join(b: &mut SanBuilder, v: usize, refs: &Refs, params: &Params) -> Result<(), SanError> {
    let vp = refs.vehicles[v];
    let cap = refs.capacity;
    let num_platoons = refs.num_platoons();

    let gate_refs = refs.clone();
    let space_touches: Vec<_> = std::iter::once(refs.ko_total)
        .chain(refs.platoon_indicators())
        .collect();
    let space_gate = b.predicate_gate_touching("join_space", space_touches, move |m: &Marking| {
        !m.is_marked(gate_refs.ko_total)
            && (1..=num_platoons as u64).any(|k| gate_refs.platoon_size(m, k) < cap)
    });

    // Global join rate shared among the waiting vehicles.
    let rate_refs = refs.clone();
    let join_rate = params.join_rate;
    let delay =
        Delay::exponential_fn(move |m: &Marking| join_rate / rate_refs.out_count(m).max(1) as f64);

    // One case per platoon, uniform over platoons with space. Gates
    // must exist before the activity chain borrows the builder.
    let mut gates = Vec::with_capacity(num_platoons);
    for k in 1..=num_platoons as u64 {
        let og_refs = refs.clone();
        gates.push(b.output_gate_touching(
            &format!("join_p{k}"),
            [vp.platoon, vp.present, refs.array_place(k)],
            move |m: &mut Marking| {
                m.set_tokens(vp.platoon, k);
                m.add_tokens(vp.present, 1);
                array_append(m.array_mut(og_refs.array_place(k)), v as i64 + 1);
            },
        ));
    }
    let mut ab = b
        .timed_activity("join", delay)?
        .input_place(vp.out)
        .input_gate(space_gate);
    for (idx, og) in gates.into_iter().enumerate() {
        let k = idx as u64 + 1;
        let prob_refs = refs.clone();
        ab = ab
            .case_fn(move |m: &Marking| {
                let open: Vec<u64> = (1..=prob_refs.num_platoons() as u64)
                    .filter(|&j| prob_refs.platoon_size(m, j) < cap)
                    .collect();
                if open.contains(&k) {
                    1.0 / open.len() as f64
                } else {
                    0.0
                }
            })
            .output_gate(og);
    }
    ab.build()?;
    Ok(())
}

fn add_leave(b: &mut SanBuilder, v: usize, refs: &Refs, params: &Params) -> Result<(), SanError> {
    let vp = refs.vehicles[v];

    // Operating (no active maneuver) in platoon 1, system not frozen.
    let gate_refs = refs.clone();
    let gate_touches: Vec<_> = [refs.ko_total, vp.present, vp.platoon]
        .into_iter()
        .chain(vp.maneuvers)
        .collect();
    let gate = b.predicate_gate_touching("leave_operating", gate_touches, move |m: &Marking| {
        !m.is_marked(gate_refs.ko_total)
            && m.is_marked(vp.present)
            && m.tokens(vp.platoon) == 1
            && gate_refs.active_slot(m, v).is_none()
    });

    // Global leave rate shared among platoon-1 operating vehicles.
    let rate_refs = refs.clone();
    let leave_rate = params.leave_rate;
    let delay = Delay::exponential_fn(move |m: &Marking| {
        leave_rate / rate_refs.operating_in(m, 1).max(1) as f64
    });

    let og_refs = refs.clone();
    let og = b.output_gate_touching(
        "leave_out",
        [vp.present, vp.platoon, refs.array_place(1), vp.out],
        move |m: &mut Marking| {
            m.set_tokens(vp.present, 0);
            m.set_tokens(vp.platoon, 0);
            array_remove(m.array_mut(og_refs.array_place(1)), v as i64 + 1);
            m.add_tokens(vp.out, 1);
        },
    );

    b.timed_activity("leave", delay)?
        .input_gate(gate)
        .output_gate(og)
        .build()?;
    Ok(())
}

/// The adjacent platoons of platoon `which` (1-based), in a highway
/// with `num_platoons` lanes.
fn adjacent(which: u64, num_platoons: usize) -> Vec<u64> {
    let mut out = Vec::with_capacity(2);
    if which > 1 {
        out.push(which - 1);
    }
    if (which as usize) < num_platoons {
        out.push(which + 1);
    }
    out
}

/// Open adjacent platoons of vehicle `v` in marking `m`.
fn open_adjacent(refs: &Refs, m: &Marking, v: usize) -> Vec<u64> {
    let vp = &refs.vehicles[v];
    let which = m.tokens(vp.platoon);
    if which == 0 {
        return Vec::new();
    }
    adjacent(which, refs.num_platoons())
        .into_iter()
        .filter(|&k| refs.platoon_size(m, k) < refs.capacity)
        .collect()
}

fn add_change(b: &mut SanBuilder, v: usize, refs: &Refs, params: &Params) -> Result<(), SanError> {
    let vp = refs.vehicles[v];

    // Operating, and an adjacent platoon has space.
    let gate_refs = refs.clone();
    let gate_touches: Vec<_> = [refs.ko_total, vp.present]
        .into_iter()
        .chain(vp.maneuvers)
        .chain(refs.platoon_indicators())
        .collect();
    let gate = b.predicate_gate_touching("change_possible", gate_touches, move |m: &Marking| {
        !m.is_marked(gate_refs.ko_total)
            && m.is_marked(vp.present)
            && gate_refs.active_slot(m, v).is_none()
            && !open_adjacent(&gate_refs, m, v).is_empty()
    });

    // One case per direction (down = toward the exit lane, up = away),
    // uniform over the open directions. Gates first, then the chain.
    let mut gates = Vec::with_capacity(2);
    for d in 0..2usize {
        let move_refs = refs.clone();
        let move_touches: Vec<_> = std::iter::once(vp.platoon)
            .chain(refs.platoon_arrays.iter().copied())
            .collect();
        gates.push(b.output_gate_touching(
            &format!("change_move_{d}"),
            move_touches,
            move |m: &mut Marking| {
                let from = m.tokens(vp.platoon);
                if from == 0 {
                    return;
                }
                let to = if d == 0 {
                    from.saturating_sub(1)
                } else {
                    from + 1
                };
                if to == 0 || to as usize > move_refs.num_platoons() {
                    return;
                }
                let id = v as i64 + 1;
                array_remove(m.array_mut(move_refs.array_place(from)), id);
                array_append(m.array_mut(move_refs.array_place(to)), id);
                m.set_tokens(vp.platoon, to);
            },
        ));
    }
    let mut ab = b
        .timed_activity("change", Delay::exponential(params.change_rate))?
        .input_gate(gate);
    // Case d = 0: move toward platoon 1 (exit side); d = 1: away.
    for (d, og) in gates.into_iter().enumerate() {
        let prob_refs = refs.clone();
        ab = ab.case_fn(move |m: &Marking| {
            let which = m.tokens(prob_refs.vehicles[v].platoon);
            if which == 0 {
                return if d == 0 { 1.0 } else { 0.0 };
            }
            let open = open_adjacent(&prob_refs, m, v);
            let down_open = open.contains(&(which.saturating_sub(1)));
            let up_open = open.contains(&(which + 1));
            match (down_open, up_open) {
                (true, true) => 0.5,
                (true, false) => {
                    if d == 0 {
                        1.0
                    } else {
                        0.0
                    }
                }
                (false, true) => {
                    if d == 1 {
                        1.0
                    } else {
                        0.0
                    }
                }
                (false, false) => {
                    // Gate guarantees this is unreachable; keep the
                    // distribution valid regardless.
                    if d == 0 {
                        1.0
                    } else {
                        0.0
                    }
                }
            }
        });
        ab = ab.output_gate(og);
    }
    ab.build()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use crate::model::AhsModel;
    use crate::params::Params;

    fn model(n: usize) -> AhsModel {
        AhsModel::build(&Params::builder().n(n).build().unwrap()).unwrap()
    }

    #[test]
    fn leave_moves_vehicle_out_and_compacts() {
        let model = model(3);
        let san = model.san();
        let h = model.handles();
        let mut m = san.initial_marking().clone();

        let leave0 = san.find_activity("vehicle[0].leave").unwrap();
        assert!(san.is_enabled(leave0, &m));
        san.fire(leave0, 0, &mut m);
        let vp = &h.vehicles[0];
        assert!(!m.is_marked(vp.present));
        assert!(m.is_marked(vp.out));
        assert_eq!(m.tokens(vp.platoon), 0);
        assert_eq!(m.array(h.platoon_arrays[0]), &[2, 3, 0]);
    }

    #[test]
    fn platoon2_vehicle_cannot_leave_directly() {
        let model = model(3);
        let san = model.san();
        let m = san.initial_marking().clone();
        // Vehicle 3 starts in platoon 2.
        let leave3 = san.find_activity("vehicle[3].leave").unwrap();
        assert!(!san.is_enabled(leave3, &m));
    }

    #[test]
    fn change_swaps_platoon_when_space_exists() {
        let model = model(3);
        let san = model.san();
        let h = model.handles();
        let mut m = san.initial_marking().clone();

        // Both platoons full initially: change is blocked.
        let ch0 = san.find_activity("vehicle[0].change").unwrap();
        assert!(!san.is_enabled(ch0, &m));

        // Free a slot in platoon 2 (vehicle 3 exits via a successful
        // TIE-N).
        let l = san.find_activity("vehicle[3].L6").unwrap();
        let man = san.find_activity("vehicle[3].maneuver_TIE-N").unwrap();
        san.fire(l, 0, &mut m);
        san.fire(man, 0, &mut m);
        assert_eq!(m.array(h.platoon_arrays[1]), &[5, 6, 0]);

        // Now vehicle 0 can change 1 → 2 (direction "up", case 1) and
        // takes the last position.
        assert!(san.is_enabled(ch0, &m));
        let probs = san.case_probabilities(ch0, &m).unwrap();
        assert_eq!(probs, vec![0.0, 1.0], "only the up direction is open");
        san.fire(ch0, 1, &mut m);
        assert_eq!(m.tokens(h.vehicles[0].platoon), 2);
        assert_eq!(m.array(h.platoon_arrays[0]), &[2, 3, 0]);
        assert_eq!(m.array(h.platoon_arrays[1]), &[5, 6, 1]);
    }

    #[test]
    fn join_returns_vehicle_to_a_platoon_with_space() {
        let model = model(2);
        let san = model.san();
        let h = model.handles();
        let mut m = san.initial_marking().clone();

        let leave0 = san.find_activity("vehicle[0].leave").unwrap();
        san.fire(leave0, 0, &mut m);
        let join0 = san.find_activity("vehicle[0].join").unwrap();
        assert!(san.is_enabled(join0, &m));

        // Only platoon 1 has space, so case probabilities are (1, 0).
        let probs = san.case_probabilities(join0, &m).unwrap();
        assert_eq!(probs, vec![1.0, 0.0]);
        san.fire(join0, 0, &mut m);
        assert!(m.is_marked(h.vehicles[0].present));
        assert_eq!(m.tokens(h.vehicles[0].platoon), 1);
        assert_eq!(m.array(h.platoon_arrays[0]), &[2, 1]);
    }

    #[test]
    fn join_picks_uniformly_among_open_platoons() {
        let model = model(2);
        let san = model.san();
        let mut m = san.initial_marking().clone();
        // Open a slot in both platoons.
        for v in [0usize, 2] {
            let l = san.find_activity(&format!("vehicle[{v}].L6")).unwrap();
            let man = san
                .find_activity(&format!("vehicle[{v}].maneuver_TIE-N"))
                .unwrap();
            san.fire(l, 0, &mut m);
            san.fire(man, 0, &mut m);
        }
        // Bring vehicle 0 back through OUT.
        let back = san.find_activity("vehicle[0].back_to_ok").unwrap();
        san.fire(back, 0, &mut m);
        let join0 = san.find_activity("vehicle[0].join").unwrap();
        let probs = san.case_probabilities(join0, &m).unwrap();
        assert_eq!(probs, vec![0.5, 0.5]);
    }

    #[test]
    fn join_rate_splits_among_waiting_vehicles() {
        let model = model(3);
        let san = model.san();
        let mut m = san.initial_marking().clone();
        let leave0 = san.find_activity("vehicle[0].leave").unwrap();
        let leave1 = san.find_activity("vehicle[1].leave").unwrap();
        san.fire(leave0, 0, &mut m);
        let join0 = san.find_activity("vehicle[0].join").unwrap();
        let r1 = san.exponential_rate(join0, &m).unwrap();
        san.fire(leave1, 0, &mut m);
        let r2 = san.exponential_rate(join0, &m).unwrap();
        assert!(
            (r1 - 12.0).abs() < 1e-9,
            "single waiter gets full rate, got {r1}"
        );
        assert!(
            (r2 - 6.0).abs() < 1e-9,
            "two waiters split the rate, got {r2}"
        );
    }

    #[test]
    fn three_platoon_highway_changes_are_adjacent_only() {
        let params = Params::builder().n(2).platoons(3).build().unwrap();
        let model = AhsModel::build(&params).unwrap();
        let san = model.san();
        let h = model.handles();
        let mut m = san.initial_marking().clone();
        assert_eq!(h.platoon_arrays.len(), 3);
        assert_eq!(m.array(h.platoon_arrays[2]), &[5, 6]);

        // Free one slot in platoon 2 (vehicle 2 exits).
        let l = san.find_activity("vehicle[2].L6").unwrap();
        let man = san.find_activity("vehicle[2].maneuver_TIE-N").unwrap();
        san.fire(l, 0, &mut m);
        san.fire(man, 0, &mut m);

        // A platoon-3 vehicle may move down to platoon 2...
        let ch4 = san.find_activity("vehicle[4].change").unwrap();
        assert!(san.is_enabled(ch4, &m));
        let probs = san.case_probabilities(ch4, &m).unwrap();
        assert_eq!(probs, vec![1.0, 0.0], "down only");
        san.fire(ch4, 0, &mut m);
        assert_eq!(m.tokens(h.vehicles[4].platoon), 2);

        // ...but a platoon-1 vehicle cannot jump toward the slot that
        // is now only in platoon 3: its sole adjacent platoon (2) is
        // full again, so the change is disabled.
        let ch0 = san.find_activity("vehicle[0].change").unwrap();
        assert!(!san.is_enabled(ch0, &m));
    }
}
