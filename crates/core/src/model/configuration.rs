//! The `Configuration` submodel (Figure 8): place creation and initial
//! marking.
//!
//! In the paper this submodel assigns vehicle ids through the
//! `start_id`/`int_id`/`ext_id` places and the `id_trigger` activity,
//! then marks `IN` to initialize each `One_vehicle` replica and hand the
//! vehicle to `Dynamicity`. All of that work happens *before time
//! advances*, so in this implementation it is the deterministic
//! construction of the initial marking: ids are replica indices, the
//! first `n` vehicles populate platoon 1 and the rest platoon 2, and
//! every vehicle starts present (`IN` consumed into the `CCᵢ`/`present`
//! marking).

use std::sync::Arc;

use ahs_san::{SanBuilder, SanError};

use crate::model::{Refs, VehiclePlaces};
use crate::params::Params;

/// Creates every place of the composed model and returns the gate
/// reference bundle plus the per-vehicle handle table.
pub(crate) fn build_places(
    b: &mut SanBuilder,
    params: &Params,
) -> Result<(Refs, Vec<VehiclePlaces>), SanError> {
    let n = params.n;
    let total = params.total_vehicles();

    // Shared places of the Severity submodel.
    let ko_total = b.shared_place("KO_total")?;
    let class_a = b.shared_place("class_A")?;
    let class_b = b.shared_place("class_B")?;
    let class_c = b.shared_place("class_C")?;

    // Shared occupancy arrays of the Dynamicity submodel (extended
    // places of length n; entry = vehicle id + 1, 0 = free slot).
    // Platoon k starts full with vehicles (k-1)·n .. k·n.
    let mut platoon_arrays = Vec::with_capacity(params.platoons);
    for k in 0..params.platoons {
        platoon_arrays.push(b.shared_extended_place(
            &format!("platoon{}", k + 1),
            (0..n).map(|i| (k * n + i) as i64 + 1).collect(),
        )?);
    }

    // Per-vehicle places, replicated platoons × n times.
    let mut vehicles = Vec::with_capacity(total);
    b.replicate("vehicle", total, |b, v| {
        let present = b.place_with_tokens("present", 1)?;
        let platoon = b.place_with_tokens("platoon", (v / n) as u64 + 1)?;
        let maneuvers = [
            b.place("sm_tie_n")?,
            b.place("sm_tie_e")?,
            b.place("sm_tie")?,
            b.place("sm_gs")?,
            b.place("sm_cs")?,
            b.place("sm_as")?,
        ];
        let ok = b.place("v_ok")?;
        let ko = b.place("v_ko")?;
        let out = b.place("out")?;
        vehicles.push(VehiclePlaces {
            present,
            platoon,
            maneuvers,
            ok,
            ko,
            out,
        });
        Ok(())
    })?;

    let refs = Refs {
        vehicles: Arc::new(vehicles.clone()),
        ko_total,
        class_a,
        class_b,
        class_c,
        platoon_arrays,
        capacity: n,
    };
    Ok((refs, vehicles))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maneuver_place_order_matches_maneuvers_constant() {
        // The place array must be indexed by `maneuver_slot`, i.e. in
        // MANEUVERS order: TIE-N, TIE-E, TIE, GS, CS, AS.
        let abbrs: Vec<&str> = crate::MANEUVERS.iter().map(|m| m.abbreviation()).collect();
        assert_eq!(abbrs, vec!["TIE-N", "TIE-E", "TIE", "GS", "CS", "AS"]);
    }

    #[test]
    fn places_are_created_per_vehicle() {
        let params = Params::builder().n(2).build().unwrap();
        let mut b = SanBuilder::new("test");
        let (refs, vehicles) = build_places(&mut b, &params).unwrap();
        assert_eq!(vehicles.len(), 4);
        assert_eq!(refs.capacity, 2);
        assert!(b.find_place("vehicle[0].present").is_some());
        assert!(b.find_place("vehicle[3].v_ko").is_some());
        assert!(b.find_place("platoon1").is_some());
        assert!(b.find_place("vehicle[4].present").is_none());
    }
}
