//! Table 3: coordination strategies and their effect on maneuver
//! involvement.

use ahs_platoon::RecoveryManeuver;
use serde::{Deserialize, Serialize};

/// Whether a coordination layer is centralized or decentralized.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CoordinationModel {
    /// Decisions made through a central point (the platoon leader for
    /// intra-platoon coordination, the road-side Service Access Point
    /// for inter-platoon coordination).
    Centralized,
    /// Decisions made locally by the concerned vehicles/leaders using
    /// on-board knowledge bases.
    Decentralized,
}

/// The four strategies of Table 3 (inter-platoon model × intra-platoon
/// model).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Strategy {
    /// Decentralized inter- and intra-platoon.
    Dd,
    /// Decentralized inter-platoon, centralized intra-platoon.
    Dc,
    /// Centralized inter-platoon, decentralized intra-platoon.
    Cd,
    /// Centralized inter- and intra-platoon.
    Cc,
}

impl Strategy {
    /// All four strategies in Table 3 order.
    pub const ALL: [Strategy; 4] = [Strategy::Dd, Strategy::Dc, Strategy::Cd, Strategy::Cc];

    /// The inter-platoon coordination model.
    pub fn inter(self) -> CoordinationModel {
        match self {
            Strategy::Dd | Strategy::Dc => CoordinationModel::Decentralized,
            Strategy::Cd | Strategy::Cc => CoordinationModel::Centralized,
        }
    }

    /// The intra-platoon coordination model.
    pub fn intra(self) -> CoordinationModel {
        match self {
            Strategy::Dd | Strategy::Cd => CoordinationModel::Decentralized,
            Strategy::Dc | Strategy::Cc => CoordinationModel::Centralized,
        }
    }

    /// Table 3 name (DD, DC, CD, CC).
    pub fn name(self) -> &'static str {
        match self {
            Strategy::Dd => "DD",
            Strategy::Dc => "DC",
            Strategy::Cd => "CD",
            Strategy::Cc => "CC",
        }
    }
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Number of vehicles involved in executing `maneuver` (including the
/// faulty vehicle) under `strategy`, for a faulty vehicle in a platoon
/// of `own_size` with a neighboring platoon of `other_size`.
///
/// The counts encode §2.2.1–2.2.2 of the paper:
///
/// * **Intra-platoon** — a split-based maneuver (GS, AS, TIE, TIE-E)
///   involves the vehicles in front of and behind the splitter;
///   centralized intra-platoon coordination routes it through the
///   leader, adding one vehicle. A crash stop is immediate (only the
///   follower reacts) and a normal exit involves only the follower.
/// * **Inter-platoon** — maneuvers interacting with the neighboring
///   lane (the escorted exit, and the stop maneuvers whose control laws
///   divert traffic around the incident) involve the neighboring
///   platoon: under decentralized coordination only its leader; under
///   centralized coordination the leader plus the front half of the
///   neighboring platoon, per the paper's TIE-E example where "all the
///   vehicles in front of the faulty vehicle (including the leader)"
///   take part.
///
/// More involved vehicles mean a larger window for a second impaired
/// vehicle to disturb the maneuver — the mechanism the paper credits
/// for decentralized inter-platoon coordination being the safer choice.
///
/// # Example
///
/// ```
/// use ahs_core::{involved_vehicles, Strategy};
/// use ahs_platoon::RecoveryManeuver;
///
/// let tie_e = RecoveryManeuver::TakeImmediateExitEscorted;
/// let dd = involved_vehicles(tie_e, Strategy::Dd, 10, 10);
/// let cc = involved_vehicles(tie_e, Strategy::Cc, 10, 10);
/// assert!(cc > dd, "centralized coordination involves more vehicles");
/// ```
pub fn involved_vehicles(
    maneuver: RecoveryManeuver,
    strategy: Strategy,
    own_size: usize,
    other_size: usize,
) -> usize {
    use RecoveryManeuver::*;

    // Faulty vehicle itself.
    let mut count = 1usize;

    // Intra-platoon participants.
    let splits = matches!(
        maneuver,
        GentleStop | AidedStop | TakeImmediateExit | TakeImmediateExitEscorted
    );
    if splits {
        // Front and rear neighbours (bounded by platoon size).
        count += 2.min(own_size.saturating_sub(1));
        if strategy.intra() == CoordinationModel::Centralized {
            // The leader coordinates the split.
            count += usize::from(own_size > 3);
        }
    } else {
        // CS / TIE-N: the vehicle just behind reacts.
        count += usize::from(own_size > 1);
    }

    // Inter-platoon participants: maneuvers that touch the other lane.
    let inter_coordinated = matches!(
        maneuver,
        TakeImmediateExitEscorted | AidedStop | CrashStop | GentleStop
    );
    if inter_coordinated && other_size > 0 {
        count += match strategy.inter() {
            CoordinationModel::Decentralized => 1, // neighbour leader only
            CoordinationModel::Centralized => 1 + other_size / 2,
        };
    }
    count.min(own_size + other_size)
}

#[cfg(test)]
mod tests {
    use super::*;
    use RecoveryManeuver::*;

    #[test]
    fn table3_structure() {
        assert_eq!(Strategy::Dd.inter(), CoordinationModel::Decentralized);
        assert_eq!(Strategy::Dd.intra(), CoordinationModel::Decentralized);
        assert_eq!(Strategy::Dc.inter(), CoordinationModel::Decentralized);
        assert_eq!(Strategy::Dc.intra(), CoordinationModel::Centralized);
        assert_eq!(Strategy::Cd.inter(), CoordinationModel::Centralized);
        assert_eq!(Strategy::Cd.intra(), CoordinationModel::Decentralized);
        assert_eq!(Strategy::Cc.inter(), CoordinationModel::Centralized);
        assert_eq!(Strategy::Cc.intra(), CoordinationModel::Centralized);
        assert_eq!(Strategy::Cd.to_string(), "CD");
    }

    #[test]
    fn centralized_inter_involves_more_for_escorted_exit() {
        // The paper's §2.2.1 example.
        let dd = involved_vehicles(TakeImmediateExitEscorted, Strategy::Dd, 10, 10);
        let cd = involved_vehicles(TakeImmediateExitEscorted, Strategy::Cd, 10, 10);
        assert!(cd > dd, "centralized {cd} should exceed decentralized {dd}");
        // Decentralized: faulty + front + behind + own leader? (no — DD
        // intra means no leader) + neighbour leader = 4.
        assert_eq!(dd, 4);
        // Centralized inter adds the front half of the neighbour.
        assert_eq!(cd, 4 + 10 / 2);
    }

    #[test]
    fn centralized_intra_adds_the_leader() {
        let dd = involved_vehicles(GentleStop, Strategy::Dd, 10, 10);
        let dc = involved_vehicles(GentleStop, Strategy::Dc, 10, 10);
        assert_eq!(dc, dd + 1);
    }

    #[test]
    fn counts_are_bounded_by_population() {
        for m in RecoveryManeuver::ALL {
            for s in Strategy::ALL {
                for own in 1..=12 {
                    for other in 0..=12 {
                        let inv = involved_vehicles(m, s, own, other);
                        assert!(inv >= 1);
                        assert!(inv <= own + other, "{m} {s} own={own} other={other}: {inv}");
                    }
                }
            }
        }
    }

    #[test]
    fn singleton_platoon_minimal_involvement() {
        // A free agent doing a normal exit involves only itself.
        assert_eq!(
            involved_vehicles(TakeImmediateExitNormal, Strategy::Dd, 1, 0),
            1
        );
    }

    #[test]
    fn strategy_ordering_dd_le_cc() {
        // For every maneuver, DD never involves more vehicles than CC.
        for m in RecoveryManeuver::ALL {
            let dd = involved_vehicles(m, Strategy::Dd, 10, 10);
            let cc = involved_vehicles(m, Strategy::Cc, 10, 10);
            assert!(dd <= cc, "{m}: DD {dd} > CC {cc}");
        }
    }

    #[test]
    fn inter_dimension_dominates_intra() {
        // Aggregate involvement weighted by failure-mode rates: the
        // inter-platoon choice must move the total more than the
        // intra-platoon choice (paper Fig 14).
        let weighted = |s: Strategy| -> f64 {
            crate::FailureMode::ALL
                .iter()
                .map(|fm| fm.rate_multiplier() * involved_vehicles(fm.maneuver(), s, 10, 10) as f64)
                .sum()
        };
        let inter_effect = weighted(Strategy::Cd) - weighted(Strategy::Dd);
        let intra_effect = weighted(Strategy::Dc) - weighted(Strategy::Dd);
        assert!(
            inter_effect > intra_effect,
            "inter {inter_effect} vs intra {intra_effect}"
        );
    }
}
