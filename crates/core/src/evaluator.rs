//! High-level evaluation of the unsafety measure `S(t)`.

use std::path::{Path, PathBuf};
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

use ahs_des::{model_fingerprint, Backend, BiasScheme, Study, StudyCheckpoint, Watchdog};
use ahs_obs::{fnv1a_64, EstimatePoint, Json, Metrics, ProgressSink, RunManifest, StoppingSpec};
use ahs_san::SanModel;
use ahs_stats::{StoppingRule, TimeGrid};
use serde::{Deserialize, Serialize};

use crate::error::AhsError;
use crate::model::{AhsModel, ModelHandles};
use crate::params::Params;

/// An AHS model compiled once and shareable across evaluations.
///
/// Building the composed SAN for a realistic configuration costs far
/// more than a handful of replications, and a long-running service
/// evaluates many jobs over the same few configurations. This is the
/// cacheable unit: the built [`SanModel`] behind an [`Arc`] (exactly
/// what [`Study`] stores internally, so sharing it adds no copy), the
/// [`ModelHandles`] the measure and bias scheme need, and the FNV-1a
/// structural fingerprint that checkpoints already use to validate
/// resume — the natural cache key.
///
/// [`UnsafetyEvaluator::evaluate`] compiles a private instance;
/// [`UnsafetyEvaluator::evaluate_compiled`] accepts a shared one and
/// produces bitwise-identical estimates, because the compiled model is
/// a pure function of [`Params`] and the replication streams never
/// depend on how the model was obtained.
#[derive(Debug, Clone)]
pub struct CompiledModel {
    san: Arc<SanModel>,
    handles: ModelHandles,
    fingerprint: u64,
    params: Params,
}

impl CompiledModel {
    /// Builds and composes the SAN for `params`.
    ///
    /// # Errors
    ///
    /// Returns [`AhsError::InvalidParameter`] for out-of-range
    /// parameters (same validation as
    /// [`UnsafetyEvaluator::evaluate`]).
    pub fn build(params: &Params) -> Result<Self, AhsError> {
        let (san, handles) = AhsModel::build(params)?.into_san();
        let fingerprint = model_fingerprint(&san);
        Ok(CompiledModel {
            san: Arc::new(san),
            handles,
            fingerprint,
            params: params.clone(),
        })
    }

    /// The FNV-1a structural fingerprint of the composed SAN — the
    /// same value `ahs-checkpoint/v1` records to validate resume.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Handles into the composed model (measure place, severity
    /// counters, activity groups).
    pub fn handles(&self) -> &ModelHandles {
        &self.handles
    }

    /// The parameters this model was compiled from.
    pub fn params(&self) -> &Params {
        &self.params
    }

    /// The composed SAN, shareable across concurrent studies.
    pub fn san(&self) -> &Arc<SanModel> {
        &self.san
    }
}

/// The per-study checkpoint file name used when a checkpoint target is
/// a *directory*: `study-<seed>-<params digest>.checkpoint.json`.
///
/// Keyed like the bench runner's per-point files, so two studies over
/// different seeds or parameters can never clobber each other's
/// checkpoint generations even when pointed at the same directory.
#[must_use]
pub fn study_checkpoint_path(dir: &Path, seed: u64, params: &Params) -> PathBuf {
    let digest = fnv1a_64(params.to_json().render().as_bytes());
    dir.join(format!("study-{seed:016x}-{digest:016x}.checkpoint.json"))
}

/// One evaluated point of an unsafety curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UnsafetyPoint {
    /// Trip duration, hours.
    pub x: f64,
    /// Estimated unsafety `S(x)`.
    pub y: f64,
    /// Confidence-interval half-width on `y`.
    pub half_width: f64,
    /// Replications behind the estimate.
    pub samples: u64,
}

/// An evaluated `S(t)` curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UnsafetyCurve {
    points: Vec<UnsafetyPoint>,
    replications: u64,
    converged: bool,
    interrupted: bool,
    quarantined: u64,
    resume_lineage: Vec<u64>,
    resume_fallback: Option<u32>,
}

impl UnsafetyCurve {
    /// Reassembles a finished curve from persisted parts — the path a
    /// restarted service takes when reloading a completed job's status
    /// document. The result is never marked interrupted: only finished
    /// evaluations are persisted this way.
    pub fn from_parts(
        points: Vec<UnsafetyPoint>,
        replications: u64,
        converged: bool,
        quarantined: u64,
        resume_lineage: Vec<u64>,
        resume_fallback: Option<u32>,
    ) -> Self {
        UnsafetyCurve {
            points,
            replications,
            converged,
            interrupted: false,
            quarantined,
            resume_lineage,
            resume_fallback,
        }
    }

    /// The evaluated points, ascending in `x`.
    pub fn points(&self) -> &[UnsafetyPoint] {
        &self.points
    }

    /// Total replications executed.
    pub fn replications(&self) -> u64 {
        self.replications
    }

    /// Whether the stopping rule's precision target was met.
    pub fn converged(&self) -> bool {
        self.converged
    }

    /// Whether the evaluation stopped early on an interrupt
    /// (SIGINT/SIGTERM); when a checkpoint path was configured, the
    /// final state was flushed there first.
    pub fn interrupted(&self) -> bool {
        self.interrupted
    }

    /// Replications whose body panicked and was quarantined (excluded
    /// from the estimates).
    pub fn quarantined(&self) -> u64 {
        self.quarantined
    }

    /// Watermarks of the checkpoints this evaluation (transitively)
    /// resumed from, oldest first; empty for a fresh run.
    pub fn resume_lineage(&self) -> &[u64] {
        &self.resume_lineage
    }

    /// When resuming had to fall back past a corrupt latest checkpoint,
    /// the generation that was actually loaded (1 = `<name>.1.<ext>`);
    /// `None` when the latest generation was valid or no resume
    /// happened.
    pub fn resume_fallback(&self) -> Option<u32> {
        self.resume_fallback
    }

    /// `S(t)` at the grid point closest to `t_hours`.
    ///
    /// # Panics
    ///
    /// Panics if the curve is empty.
    pub fn at(&self, t_hours: f64) -> UnsafetyPoint {
        *self
            .points
            .iter()
            .min_by(|a, b| {
                (a.x - t_hours)
                    .abs()
                    .partial_cmp(&(b.x - t_hours).abs())
                    .expect("grid points are finite")
            })
            .expect("curve has at least one point")
    }
}

/// How the evaluator biases failure rates for rare-event estimation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BiasMode {
    /// Two-level *dynamic* failure biasing (the default).
    ///
    /// A constant boost is a poor change of measure for transient
    /// studies over long horizons: every sample path accumulates many
    /// irrelevant boosted failures whose `1/boost` likelihood factors
    /// crush the weights of late hits, so the estimated `S(t)` sags
    /// artificially after the first hours (confirmed against plain
    /// Monte Carlo — see `ahs-bench --bin is_diagnostics`). Instead:
    ///
    /// * while **no vehicle is recovering**, failure rates get a
    ///   moderate boost chosen so the whole fleet sees ≈1.5 biased
    ///   failures per trip ([`first_level_boost`]);
    /// * while **a recovery maneuver is in progress** (the shared
    ///   severity counters are non-zero), the boost rises so that a
    ///   concurrent second failure — the ingredient of every Table 2
    ///   situation — becomes likely within the maneuver window
    ///   ([`second_level_boost`]).
    ///
    /// Likelihood ratios stay exact per transition, so the estimator
    /// remains unbiased.
    ///
    /// [`first_level_boost`]: UnsafetyEvaluator::first_level_boost
    /// [`second_level_boost`]: UnsafetyEvaluator::second_level_boost
    Auto,
    /// Plain Monte Carlo (only viable for large λ).
    None,
    /// A fixed, constant rate multiplier on every failure activity.
    /// Useful for diagnostics; suffers the weight-collapse problem at
    /// large values.
    Fixed(f64),
}

/// Evaluates the unsafety `S(t)` of an AHS configuration by simulating
/// its composed SAN model.
///
/// The measure is the probability that the `KO_total` place is marked
/// by time `t` (paper §3): a first-passage probability, since the
/// unsafe state is absorbing. For the paper's failure rates
/// (λ ≈ 1e-5/hr) the event is far too rare for plain Monte Carlo, so
/// the evaluator applies dynamic failure biasing (see
/// [`BiasMode::Auto`]); the estimate stays unbiased through exact
/// likelihood-ratio weighting.
#[derive(Debug, Clone)]
pub struct UnsafetyEvaluator {
    params: Params,
    seed: u64,
    threads: Option<usize>,
    rule: StoppingRule,
    confidence: f64,
    bias: BiasMode,
    metrics: Option<Arc<Metrics>>,
    progress: Option<Arc<ProgressSink>>,
    checkpoint: Option<(PathBuf, u64)>,
    checkpoint_generations: u32,
    resume: Option<PathBuf>,
    interrupt: Option<Arc<AtomicBool>>,
    quarantine_budget: u64,
    watchdog: Option<Watchdog>,
}

impl UnsafetyEvaluator {
    /// Creates an evaluator with the paper's stopping rule (≥10 000
    /// replications, 95% / 0.1 relative precision) capped at 400 000
    /// replications.
    pub fn new(params: Params) -> Self {
        UnsafetyEvaluator {
            params,
            seed: 0x5AFE,
            threads: None,
            rule: StoppingRule::relative_precision(0.95, 0.1)
                .with_min_samples(10_000)
                .with_max_samples(400_000),
            confidence: 0.95,
            bias: BiasMode::Auto,
            metrics: None,
            progress: None,
            checkpoint: None,
            checkpoint_generations: 2,
            resume: None,
            interrupt: None,
            quarantine_budget: 0,
            watchdog: None,
        }
    }

    /// Sets the master seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Fixes the worker-thread count.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Runs exactly `n` replications.
    #[must_use]
    pub fn with_replications(mut self, n: u64) -> Self {
        self.rule = StoppingRule::fixed(n);
        self
    }

    /// Replaces the stopping rule.
    #[must_use]
    pub fn with_rule(mut self, rule: StoppingRule) -> Self {
        self.rule = rule;
        self
    }

    /// Sets the bias mode.
    #[must_use]
    pub fn with_bias(mut self, bias: BiasMode) -> Self {
        self.bias = bias;
        self
    }

    /// Attaches a telemetry sink threaded down into the simulation
    /// workers.
    #[must_use]
    pub fn with_metrics(mut self, metrics: Arc<Metrics>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Attaches a JSON-lines progress sink.
    #[must_use]
    pub fn with_progress(mut self, progress: Arc<ProgressSink>) -> Self {
        self.progress = Some(progress);
        self
    }

    /// Writes an atomic `ahs-checkpoint/v1` snapshot to `path` every
    /// `every` completed replications (and always once at the end, so
    /// an interrupted evaluation can be resumed).
    ///
    /// # Panics
    ///
    /// Panics if `every` is zero.
    #[must_use]
    pub fn with_checkpoint(mut self, path: impl Into<PathBuf>, every: u64) -> Self {
        assert!(every > 0, "checkpoint interval must be positive");
        self.checkpoint = Some((path.into(), every));
        self
    }

    /// How many checkpoint generations to retain and to consult on
    /// resume (default 2: the latest plus one fallback).
    ///
    /// # Panics
    ///
    /// Panics if `generations` is zero.
    #[must_use]
    pub fn with_checkpoint_generations(mut self, generations: u32) -> Self {
        assert!(generations > 0, "need at least one checkpoint generation");
        self.checkpoint_generations = generations;
        self
    }

    /// Resumes from the checkpoint at `path` (loaded and validated in
    /// [`evaluate`](UnsafetyEvaluator::evaluate)); the resumed run is
    /// bitwise identical to an uninterrupted one. When the latest
    /// checkpoint is corrupt or truncated, resume falls back to the
    /// newest valid retained generation (`<name>.1.<ext>`, …) with a
    /// logged warning, recorded in
    /// [`UnsafetyCurve::resume_fallback`] and the manifest.
    #[must_use]
    pub fn with_resume(mut self, path: impl Into<PathBuf>) -> Self {
        self.resume = Some(path.into());
        self
    }

    /// Polls `flag` at chunk boundaries and stops gracefully when it is
    /// raised (pair with [`ahs_obs::interrupt_flag`] for SIGINT/SIGTERM
    /// handling).
    #[must_use]
    pub fn with_interrupt(mut self, flag: Arc<AtomicBool>) -> Self {
        self.interrupt = Some(flag);
        self
    }

    /// Tolerates up to `budget` panicking replications per evaluation
    /// (quarantined and excluded rather than fatal).
    #[must_use]
    pub fn with_quarantine_budget(mut self, budget: u64) -> Self {
        self.quarantine_budget = budget;
        self
    }

    /// Bounds each replication by event count / wall-clock time.
    #[must_use]
    pub fn with_watchdog(mut self, watchdog: Watchdog) -> Self {
        self.watchdog = Some(watchdog);
        self
    }

    /// The parameters under evaluation.
    pub fn params(&self) -> &Params {
        &self.params
    }

    /// Master seed of the evaluation.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The worker-thread count the study will actually use (the
    /// explicit setting, or the machine's available parallelism).
    pub fn effective_threads(&self) -> usize {
        self.threads
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
    }

    /// The stopping rule in force.
    pub fn rule(&self) -> StoppingRule {
        self.rule
    }

    /// The bias mode in force.
    pub fn bias_mode(&self) -> BiasMode {
        self.bias
    }

    /// Builds a provenance manifest for an evaluated curve: seed,
    /// thread count, stopping rule, full parameters, bias mode, and
    /// the estimates themselves. `wall_seconds` is the caller-measured
    /// duration of [`evaluate`](UnsafetyEvaluator::evaluate).
    pub fn manifest(&self, tool: &str, curve: &UnsafetyCurve, wall_seconds: f64) -> RunManifest {
        let mut m = RunManifest::new(tool, format!("ahs-unsafety-n{}", self.params.n), self.seed);
        m.threads = self.effective_threads();
        m.confidence = self.confidence;
        m.stopping = Some(StoppingSpec {
            confidence: self.rule.confidence(),
            relative_half_width: self.rule.relative_half_width(),
            min_samples: self.rule.min_samples(),
            max_samples: self.rule.max_samples(),
        });
        m.params = self.params.to_json();
        m.wall_seconds = wall_seconds;
        m.replications = curve.replications();
        m.converged = curve.converged();
        m.estimates = curve
            .points()
            .iter()
            .map(|p| EstimatePoint {
                series: "unsafety".to_owned(),
                x: p.x,
                y: p.y,
                half_width: p.half_width,
                samples: p.samples,
            })
            .collect();
        m.metrics = self.metrics.as_ref().map(|mx| mx.snapshot());
        m.extra.push((
            "bias_mode".to_owned(),
            Json::str(match self.bias {
                BiasMode::Auto => "auto".to_owned(),
                BiasMode::None => "none".to_owned(),
                BiasMode::Fixed(f) => format!("fixed:{f}"),
            }),
        ));
        m.extra
            .push(("interrupted".to_owned(), curve.interrupted().into()));
        m.extra
            .push(("quarantined".to_owned(), curve.quarantined().into()));
        m.extra.push((
            "resume_lineage".to_owned(),
            Json::Arr(
                curve
                    .resume_lineage()
                    .iter()
                    .map(|w| Json::UInt(*w))
                    .collect(),
            ),
        ));
        m.extra.push((
            "resume_fallback".to_owned(),
            curve
                .resume_fallback()
                .map_or(Json::Null, |g| Json::UInt(u64::from(g))),
        ));
        m.extra.push((
            "telemetry_dropped".to_owned(),
            self.progress.as_ref().map_or(0_u64, |p| p.dropped()).into(),
        ));
        m
    }

    /// The healthy-state boost of [`BiasMode::Auto`]: targets ≈1.5
    /// biased failures across the whole fleet per trip of
    /// `horizon_hours`, clamped to `[1, 1e7]`. Keeping the *fleet*
    /// total small bounds the number of irrelevant `1/boost`
    /// likelihood factors per path.
    pub fn first_level_boost(&self, horizon_hours: f64) -> f64 {
        let fleet_rate = self.params.total_vehicles() as f64 * self.params.total_failure_rate();
        (1.5 / (fleet_rate * horizon_hours)).clamp(1.0, 1e7)
    }

    /// The recovering-state boost of [`BiasMode::Auto`]: targets ≈0.8
    /// biased failures across the fleet within one mean maneuver window
    /// (`1/μ̄`), making the concurrent second failure of Table 2
    /// likely while a recovery is in progress. Clamped to `[1, 1e7]`.
    pub fn second_level_boost(&self) -> f64 {
        let fleet_rate = self.params.total_vehicles() as f64 * self.params.total_failure_rate();
        let mean_window_hours = 1.0 / self.params.maneuver_rates.mean_rate();
        (0.8 / (fleet_rate * mean_window_hours)).clamp(1.0, 1e7)
    }

    /// Evaluates `S(t)` over `grid` (hours).
    ///
    /// # Errors
    ///
    /// Returns [`AhsError`] for invalid parameters or simulation
    /// failures.
    pub fn evaluate(&self, grid: &TimeGrid) -> Result<UnsafetyCurve, AhsError> {
        let compiled = CompiledModel::build(&self.params)?;
        self.evaluate_compiled(grid, &compiled)
    }

    /// Evaluates `S(t)` over `grid` using an already-compiled model —
    /// the path a service takes when several jobs share one
    /// [`CompiledModel`] from a cache. Bitwise-identical to
    /// [`evaluate`](UnsafetyEvaluator::evaluate) for the same
    /// parameters, seed, and stopping rule.
    ///
    /// # Errors
    ///
    /// Returns [`AhsError::InvalidParameter`] if `compiled` was built
    /// from different parameters than this evaluator holds (a cache-key
    /// bug upstream must fail loudly, not silently evaluate the wrong
    /// model), or any simulation failure.
    pub fn evaluate_compiled(
        &self,
        grid: &TimeGrid,
        compiled: &CompiledModel,
    ) -> Result<UnsafetyCurve, AhsError> {
        if compiled.params != self.params {
            return Err(AhsError::InvalidParameter {
                name: "compiled_model",
                reason: format!(
                    "compiled model (fingerprint {:016x}) was built from \
                     different parameters than the evaluator holds",
                    compiled.fingerprint
                ),
            });
        }
        let handles = &compiled.handles;

        let failures = handles.failure_activities.iter().copied();
        let backend = match self.bias {
            BiasMode::None => Backend::Markov,
            BiasMode::Fixed(f) if f <= 1.0 => Backend::Markov,
            BiasMode::Fixed(f) => {
                Backend::BiasedMarkov(BiasScheme::new().with_multipliers(failures, f))
            }
            BiasMode::Auto => {
                let b1 = self.first_level_boost(grid.horizon());
                let b2 = self.second_level_boost();
                if b1 <= 1.0 && b2 <= 1.0 {
                    Backend::Markov
                } else {
                    let factor = (b2 / b1).max(1.0);
                    let (ca, cb, cc) = (handles.class_a, handles.class_b, handles.class_c);
                    let scheme = BiasScheme::new()
                        .with_multipliers(failures, b1)
                        .with_state_factor(move |m| {
                            if m.tokens(ca) + m.tokens(cb) + m.tokens(cc) > 0 {
                                factor
                            } else {
                                1.0
                            }
                        });
                    Backend::BiasedMarkov(scheme)
                }
            }
        };

        let mut study = Study::new(compiled.san.clone())
            .with_seed(self.seed)
            .with_rule(self.rule)
            .with_confidence(self.confidence);
        if let Some(t) = self.threads {
            study = study.with_threads(t);
        }
        if let Some(m) = &self.metrics {
            study = study.with_metrics(m.clone());
        }
        if let Some(p) = &self.progress {
            study = study.with_progress(p.clone());
        }
        if let Some((path, every)) = &self.checkpoint {
            study = study
                .with_checkpoint(path, *every)
                .with_checkpoint_generations(self.checkpoint_generations);
        }
        let mut resume_fallback = None;
        if let Some(path) = &self.resume {
            let (cp, generation) =
                StudyCheckpoint::load_with_fallback(path, self.checkpoint_generations)?;
            if generation > 0 {
                eprintln!(
                    "warning: checkpoint {} was corrupt or unreadable; \
                     resuming from retained generation {generation} \
                     (watermark {})",
                    path.display(),
                    cp.watermark
                );
                if let Some(p) = &self.progress {
                    p.emit(
                        "resume_fallback",
                        vec![
                            ("path", Json::str(path.display().to_string())),
                            ("generation", u64::from(generation).into()),
                            ("watermark", cp.watermark.into()),
                        ],
                    );
                }
                resume_fallback = Some(generation);
            }
            study = study.with_resume(cp);
        }
        if let Some(flag) = &self.interrupt {
            study = study.with_interrupt(flag.clone());
        }
        study = study.with_quarantine_budget(self.quarantine_budget);
        if let Some(w) = &self.watchdog {
            study = study.with_watchdog(*w);
        }

        let ko = handles.ko_total;
        let est = study.first_passage(move |m| m.is_marked(ko), grid, backend)?;

        let points = est
            .curve
            .points(self.confidence)
            .into_iter()
            .map(|p| UnsafetyPoint {
                x: p.x,
                y: p.y,
                half_width: p.half_width,
                samples: p.samples,
            })
            .collect();
        Ok(UnsafetyCurve {
            points,
            replications: est.replications,
            converged: est.converged,
            interrupted: est.interrupted,
            quarantined: est.quarantined.len() as u64,
            resume_lineage: est.resume_lineage,
            resume_fallback,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boost_levels_scale_sensibly() {
        let p = Params::builder().lambda(1e-5).n(8).build().unwrap();
        let e = UnsafetyEvaluator::new(p);
        let b1_10 = e.first_level_boost(10.0);
        let b1_2 = e.first_level_boost(2.0);
        assert!(
            b1_2 > b1_10,
            "shorter horizon needs a larger first-level boost"
        );
        let fleet = 16.0 * 14.0 * 1e-5;
        assert!((b1_10 - 1.5 / (fleet * 10.0)).abs() < 1e-6);
        // The second level is far more aggressive than the first.
        assert!(e.second_level_boost() > b1_10);

        let p = Params::builder().lambda(1.0).build().unwrap();
        let e = UnsafetyEvaluator::new(p);
        assert_eq!(
            e.first_level_boost(10.0),
            1.0,
            "no boost needed for large λ"
        );
        assert_eq!(e.second_level_boost(), 1.0);
    }

    #[test]
    fn evaluate_small_model_high_lambda() {
        // λ large enough that plain MC sees hits: S(t) must be
        // increasing and within (0, 1).
        let p = Params::builder().lambda(0.05).n(3).build().unwrap();
        let e = UnsafetyEvaluator::new(p)
            .with_seed(42)
            .with_replications(4_000)
            .with_bias(BiasMode::None)
            .with_threads(2);
        let grid = TimeGrid::new(vec![2.0, 6.0, 10.0]);
        let curve = e.evaluate(&grid).unwrap();
        let pts = curve.points();
        assert_eq!(pts.len(), 3);
        assert!(pts[0].y > 0.0, "expected hits at λ=0.05: {}", pts[0].y);
        assert!(pts[0].y <= pts[1].y && pts[1].y <= pts[2].y);
        assert!(pts[2].y < 1.0);
        assert!(curve.replications() >= 4_000);
    }

    #[test]
    fn auto_bias_and_plain_agree_in_overlap_regime() {
        let p = Params::builder().lambda(0.02).n(2).build().unwrap();
        let grid = TimeGrid::new(vec![6.0]);
        let plain = UnsafetyEvaluator::new(p.clone())
            .with_seed(7)
            .with_replications(30_000)
            .with_bias(BiasMode::None)
            .with_threads(2)
            .evaluate(&grid)
            .unwrap();
        let auto = UnsafetyEvaluator::new(p)
            .with_seed(8)
            .with_replications(30_000)
            .with_bias(BiasMode::Auto)
            .with_threads(2)
            .evaluate(&grid)
            .unwrap();
        let a = plain.points()[0];
        let b = auto.points()[0];
        let gap = (a.y - b.y).abs();
        assert!(
            gap <= 3.0 * (a.half_width + b.half_width),
            "plain {} ± {} vs auto {} ± {}",
            a.y,
            a.half_width,
            b.y,
            b.half_width
        );
    }

    #[test]
    fn failing_telemetry_sink_degrades_but_completes() {
        // A progress sink whose writer always fails must never abort
        // the study; the losses surface as `telemetry_dropped` in the
        // manifest instead.
        struct Broken;
        impl std::io::Write for Broken {
            fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::new(
                    std::io::ErrorKind::StorageFull,
                    "telemetry disk full",
                ))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let p = Params::builder().lambda(0.05).n(2).build().unwrap();
        let sink = Arc::new(ProgressSink::to_writer(Box::new(Broken)));
        let e = UnsafetyEvaluator::new(p)
            .with_seed(3)
            .with_replications(2_000)
            .with_bias(BiasMode::None)
            .with_threads(2)
            .with_progress(sink.clone());
        let grid = TimeGrid::new(vec![2.0]);
        let curve = e
            .evaluate(&grid)
            .expect("telemetry loss must not fail the study");
        assert!(curve.replications() >= 2_000);
        assert!(sink.dropped() > 0, "every emit should have failed");

        let manifest = e.manifest("test", &curve, 0.1);
        let dropped = manifest
            .extra
            .iter()
            .find(|(k, _)| k == "telemetry_dropped")
            .and_then(|(_, v)| v.as_u64())
            .expect("manifest records telemetry_dropped");
        assert!(dropped > 0, "manifest must report the dropped events");
    }

    #[test]
    fn resume_falls_back_past_corrupt_latest_checkpoint() {
        // A checkpointed evaluation retains the previous generation;
        // corrupting the latest file must not strand the resume — it
        // falls back to `<name>.1.json`, records the generation on the
        // curve and in the manifest, and still reproduces the baseline
        // bitwise.
        let dir = std::env::temp_dir().join(format!(
            "ahs-core-fallback-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("eval.checkpoint.json");

        let p = Params::builder().lambda(0.05).n(2).build().unwrap();
        let make = || {
            UnsafetyEvaluator::new(p.clone())
                .with_seed(9)
                .with_replications(2_000)
                .with_bias(BiasMode::None)
                .with_threads(2)
        };
        let grid = TimeGrid::new(vec![2.0]);
        let baseline = make().evaluate(&grid).unwrap();
        assert_eq!(baseline.resume_fallback(), None);

        make()
            .with_checkpoint(&path, 500)
            .evaluate(&grid)
            .expect("checkpointed run completes");
        assert!(path.exists(), "latest checkpoint written");

        // Truncate the latest generation mid-document.
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();

        let e = make().with_resume(&path);
        let resumed = e.evaluate(&grid).expect("fallback resume succeeds");
        assert_eq!(resumed.resume_fallback(), Some(1));
        assert_eq!(
            resumed.points(),
            baseline.points(),
            "fallback resume must stay bitwise identical"
        );

        let manifest = e.manifest("test", &resumed, 0.1);
        let generation = manifest
            .extra
            .iter()
            .find(|(k, _)| k == "resume_fallback")
            .and_then(|(_, v)| v.as_u64())
            .expect("manifest records resume_fallback");
        assert_eq!(generation, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn curve_lookup_at() {
        let curve = UnsafetyCurve {
            points: vec![
                UnsafetyPoint {
                    x: 2.0,
                    y: 0.1,
                    half_width: 0.0,
                    samples: 1,
                },
                UnsafetyPoint {
                    x: 6.0,
                    y: 0.2,
                    half_width: 0.0,
                    samples: 1,
                },
            ],
            replications: 2,
            converged: true,
            interrupted: false,
            quarantined: 0,
            resume_lineage: Vec::new(),
            resume_fallback: None,
        };
        assert_eq!(curve.at(5.9).x, 6.0);
        assert_eq!(curve.at(0.0).x, 2.0);
    }
}
