//! Model parameters (paper §4.1) with validation.

use ahs_obs::Json;
use ahs_platoon::RecoveryManeuver;
use serde::{Deserialize, Serialize};

use crate::error::AhsError;
use crate::failure::{maneuver_slot, FailureMode};
use crate::strategy::Strategy;

/// Execution rates of the six maneuvers, per hour (paper §4.1: between
/// 15/hr and 30/hr, i.e. durations of 2–4 minutes).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ManeuverRates {
    rates: [f64; 6],
}

impl ManeuverRates {
    /// The defaults used throughout the reproduction, ordered by
    /// urgency within the paper's 15–30 /hr window: TIE-N 15, TIE-E 18,
    /// TIE 21, GS 24, CS 27, AS 30.
    pub fn nominal() -> Self {
        ManeuverRates {
            rates: [15.0, 18.0, 21.0, 24.0, 27.0, 30.0],
        }
    }

    /// The rate of one maneuver, per hour.
    pub fn rate(&self, m: RecoveryManeuver) -> f64 {
        self.rates[maneuver_slot(m)]
    }

    /// Sets the rate of one maneuver.
    pub fn set_rate(&mut self, m: RecoveryManeuver, per_hour: f64) {
        self.rates[maneuver_slot(m)] = per_hour;
    }

    /// Validates every rate against the paper's window (with slack for
    /// sensitivity studies: positive and finite is required, the 15–30
    /// window is only warned through `in_paper_window`).
    pub(crate) fn validate(&self) -> Result<(), AhsError> {
        for (i, r) in self.rates.iter().enumerate() {
            if !r.is_finite() || *r <= 0.0 {
                return Err(AhsError::InvalidParameter {
                    name: "maneuver_rates",
                    reason: format!("rate #{i} must be positive and finite, got {r}"),
                });
            }
        }
        Ok(())
    }

    /// Whether every rate lies in the paper's 15–30 /hr window.
    pub fn in_paper_window(&self) -> bool {
        self.rates.iter().all(|r| (15.0..=30.0).contains(r))
    }

    /// Arithmetic mean of the six rates (per hour); `1/mean_rate` is
    /// the characteristic maneuver window used by the dynamic
    /// importance-sampling scheme.
    pub fn mean_rate(&self) -> f64 {
        self.rates.iter().sum::<f64>() / 6.0
    }
}

impl Default for ManeuverRates {
    fn default() -> Self {
        ManeuverRates::nominal()
    }
}

/// Parameters of the AHS safety model.
///
/// Defaults reproduce the paper's §4.1 configuration: λ = 1e-5/hr,
/// failure-mode rates `[λ, 2λ, 2λ, 2λ, 3λ, 4λ]`, maneuver rates in
/// 15–30 /hr, platoon change rates 6/hr, join 12/hr, leave 4/hr, two
/// platoons of up to `n` vehicles each, strategy DD.
///
/// # Example
///
/// ```
/// use ahs_core::{Params, Strategy};
///
/// let params = Params::builder()
///     .n(8)
///     .lambda(1e-4)
///     .strategy(Strategy::Cc)
///     .build()?;
/// assert_eq!(params.total_vehicles(), 16);
/// assert!((params.total_failure_rate() - 14e-4).abs() < 1e-12);
/// # Ok::<(), ahs_core::AhsError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Params {
    /// Base failure rate λ, per hour.
    pub lambda: f64,
    /// Maximum vehicles per platoon (the paper's `n`).
    pub n: usize,
    /// Number of platoons/lanes (the paper studies 2; its conclusion
    /// notes the models "can be easily extended to analyze highways
    /// composed of a larger number of platoons" — this implements that
    /// extension). Platoon 1 is the exit lane; voluntary leaves happen
    /// only from it, and lane changes move between adjacent platoons.
    pub platoons: usize,
    /// Global highway join rate, per hour.
    pub join_rate: f64,
    /// Global highway leave rate, per hour (vehicles exit from
    /// platoon 1 only; platoon-2 vehicles pass through platoon 1
    /// first — paper §4.1).
    pub leave_rate: f64,
    /// Per-vehicle platoon change rate (ch1 = ch2), per hour.
    pub change_rate: f64,
    /// Rate at which a slot freed by `v_OK`/`v_KO` becomes available to
    /// a new vehicle (the paper's `back_to` activity), per hour.
    pub back_rate: f64,
    /// Maneuver execution rates.
    pub maneuver_rates: ManeuverRates,
    /// Baseline probability that a maneuver attempt fails even with all
    /// involved vehicles healthy.
    pub maneuver_base_failure: f64,
    /// Additional failure probability contributed per expected impaired
    /// vehicle among the maneuver's involved set.
    pub impairment_penalty: f64,
    /// Coordination strategy (Table 3).
    pub strategy: Strategy,
}

impl Params {
    /// Starts a builder pre-loaded with the paper's defaults.
    pub fn builder() -> ParamsBuilder {
        ParamsBuilder {
            params: Params::default(),
        }
    }

    /// Failure rate of one failure mode (λ × Table 1 multiplier), per
    /// hour.
    pub fn failure_rate(&self, fm: FailureMode) -> f64 {
        self.lambda * fm.rate_multiplier()
    }

    /// Total failure rate of a healthy vehicle, per hour (14λ).
    pub fn total_failure_rate(&self) -> f64 {
        FailureMode::ALL
            .iter()
            .map(|fm| self.failure_rate(*fm))
            .sum()
    }

    /// Total number of vehicle slots in the model (`platoons × n`).
    pub fn total_vehicles(&self) -> usize {
        self.platoons * self.n
    }

    /// Validates all parameters.
    ///
    /// # Errors
    ///
    /// Returns [`AhsError::InvalidParameter`] naming the first invalid
    /// field.
    pub fn validate(&self) -> Result<(), AhsError> {
        fn positive(name: &'static str, v: f64) -> Result<(), AhsError> {
            if !v.is_finite() || v <= 0.0 {
                return Err(AhsError::InvalidParameter {
                    name,
                    reason: format!("must be positive and finite, got {v}"),
                });
            }
            Ok(())
        }
        positive("lambda", self.lambda)?;
        positive("join_rate", self.join_rate)?;
        positive("leave_rate", self.leave_rate)?;
        positive("change_rate", self.change_rate)?;
        positive("back_rate", self.back_rate)?;
        if self.n == 0 {
            return Err(AhsError::InvalidParameter {
                name: "n",
                reason: "platoon capacity must be at least 1".into(),
            });
        }
        if self.n > 64 {
            return Err(AhsError::InvalidParameter {
                name: "n",
                reason: format!("platoon capacity {} is beyond the supported 64", self.n),
            });
        }
        if !(2..=8).contains(&self.platoons) {
            return Err(AhsError::InvalidParameter {
                name: "platoons",
                reason: format!("the model supports 2 to 8 platoons, got {}", self.platoons),
            });
        }
        self.maneuver_rates.validate()?;
        if !(0.0..1.0).contains(&self.maneuver_base_failure) {
            return Err(AhsError::InvalidParameter {
                name: "maneuver_base_failure",
                reason: format!("must be in [0, 1), got {}", self.maneuver_base_failure),
            });
        }
        if !(0.0..1.0).contains(&self.impairment_penalty) {
            return Err(AhsError::InvalidParameter {
                name: "impairment_penalty",
                reason: format!("must be in [0, 1), got {}", self.impairment_penalty),
            });
        }
        Ok(())
    }

    /// The system load ρ = join rate / leave rate studied in Figure 13.
    pub fn load(&self) -> f64 {
        self.join_rate / self.leave_rate
    }

    /// Serializes every parameter as a JSON object, keyed by field
    /// name, for run manifests (the vendored `serde` is a no-op, so
    /// provenance records are emitted through `ahs-obs`'s JSON tree).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("lambda", self.lambda.into()),
            ("n", self.n.into()),
            ("platoons", self.platoons.into()),
            ("join_rate", self.join_rate.into()),
            ("leave_rate", self.leave_rate.into()),
            ("change_rate", self.change_rate.into()),
            ("back_rate", self.back_rate.into()),
            (
                "maneuver_rates",
                Json::Obj(
                    RecoveryManeuver::ALL
                        .iter()
                        .map(|&m| {
                            (
                                m.abbreviation().to_owned(),
                                Json::Num(self.maneuver_rates.rate(m)),
                            )
                        })
                        .collect(),
                ),
            ),
            ("maneuver_base_failure", self.maneuver_base_failure.into()),
            ("impairment_penalty", self.impairment_penalty.into()),
            ("strategy", Json::str(self.strategy.name())),
        ])
    }
}

impl Default for Params {
    fn default() -> Self {
        Params {
            lambda: 1e-5,
            n: 10,
            platoons: 2,
            join_rate: 12.0,
            leave_rate: 4.0,
            change_rate: 6.0,
            back_rate: 20.0,
            maneuver_rates: ManeuverRates::nominal(),
            maneuver_base_failure: 0.05,
            impairment_penalty: 0.10,
            strategy: Strategy::Dd,
        }
    }
}

/// Builder for [`Params`].
#[derive(Debug, Clone)]
#[must_use = "call .build() to obtain validated parameters"]
pub struct ParamsBuilder {
    params: Params,
}

impl ParamsBuilder {
    /// Sets the base failure rate λ (per hour).
    pub fn lambda(mut self, per_hour: f64) -> Self {
        self.params.lambda = per_hour;
        self
    }

    /// Sets the maximum platoon size `n`.
    pub fn n(mut self, n: usize) -> Self {
        self.params.n = n;
        self
    }

    /// Sets the number of platoons/lanes (default 2, as in the paper).
    pub fn platoons(mut self, platoons: usize) -> Self {
        self.params.platoons = platoons;
        self
    }

    /// Sets the global join rate (per hour).
    pub fn join_rate(mut self, per_hour: f64) -> Self {
        self.params.join_rate = per_hour;
        self
    }

    /// Sets the global leave rate (per hour).
    pub fn leave_rate(mut self, per_hour: f64) -> Self {
        self.params.leave_rate = per_hour;
        self
    }

    /// Sets the per-vehicle platoon change rate (per hour).
    pub fn change_rate(mut self, per_hour: f64) -> Self {
        self.params.change_rate = per_hour;
        self
    }

    /// Sets the slot recycling rate (per hour).
    pub fn back_rate(mut self, per_hour: f64) -> Self {
        self.params.back_rate = per_hour;
        self
    }

    /// Sets the maneuver rates.
    pub fn maneuver_rates(mut self, rates: ManeuverRates) -> Self {
        self.params.maneuver_rates = rates;
        self
    }

    /// Sets the baseline maneuver failure probability.
    pub fn maneuver_base_failure(mut self, p: f64) -> Self {
        self.params.maneuver_base_failure = p;
        self
    }

    /// Sets the impairment penalty.
    pub fn impairment_penalty(mut self, p: f64) -> Self {
        self.params.impairment_penalty = p;
        self
    }

    /// Sets the coordination strategy.
    pub fn strategy(mut self, s: Strategy) -> Self {
        self.params.strategy = s;
        self
    }

    /// Validates and returns the parameters.
    ///
    /// # Errors
    ///
    /// Returns [`AhsError::InvalidParameter`] for the first invalid
    /// field.
    pub fn build(self) -> Result<Params, AhsError> {
        self.params.validate()?;
        Ok(self.params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_section_4_1() {
        let p = Params::default();
        assert_eq!(p.lambda, 1e-5);
        assert_eq!(p.n, 10);
        assert_eq!(p.join_rate, 12.0);
        assert_eq!(p.leave_rate, 4.0);
        assert_eq!(p.change_rate, 6.0);
        assert!(p.maneuver_rates.in_paper_window());
        assert!((p.load() - 3.0).abs() < 1e-12);
        p.validate().unwrap();
    }

    #[test]
    fn failure_rates_scale_with_lambda() {
        let p = Params::builder().lambda(2e-5).build().unwrap();
        assert!((p.failure_rate(FailureMode::Fm1) - 2e-5).abs() < 1e-18);
        assert!((p.failure_rate(FailureMode::Fm6) - 8e-5).abs() < 1e-18);
        assert!((p.total_failure_rate() - 14.0 * 2e-5).abs() < 1e-15);
    }

    #[test]
    fn builder_sets_every_field() {
        let mut rates = ManeuverRates::nominal();
        rates.set_rate(RecoveryManeuver::AidedStop, 25.0);
        let p = Params::builder()
            .lambda(1e-4)
            .n(8)
            .join_rate(8.0)
            .leave_rate(8.0)
            .change_rate(5.0)
            .back_rate(30.0)
            .maneuver_rates(rates)
            .maneuver_base_failure(0.02)
            .impairment_penalty(0.2)
            .strategy(Strategy::Cc)
            .build()
            .unwrap();
        assert_eq!(p.n, 8);
        assert_eq!(p.strategy, Strategy::Cc);
        assert_eq!(p.maneuver_rates.rate(RecoveryManeuver::AidedStop), 25.0);
        assert_eq!(p.total_vehicles(), 16);
        assert!((p.load() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(Params::builder().lambda(0.0).build().is_err());
        assert!(Params::builder().n(0).build().is_err());
        assert!(Params::builder().n(100).build().is_err());
        assert!(Params::builder()
            .maneuver_base_failure(1.0)
            .build()
            .is_err());
        assert!(Params::builder().impairment_penalty(-0.1).build().is_err());
        assert!(Params::builder().join_rate(f64::NAN).build().is_err());
        let mut rates = ManeuverRates::nominal();
        rates.set_rate(RecoveryManeuver::GentleStop, 0.0);
        assert!(Params::builder().maneuver_rates(rates).build().is_err());
    }

    #[test]
    fn to_json_covers_every_field() {
        let p = Params::default();
        let json = p.to_json().render();
        for needle in [
            "\"lambda\":0.00001",
            "\"n\":10",
            "\"platoons\":2",
            "\"join_rate\":12",
            "\"leave_rate\":4",
            "\"change_rate\":6",
            "\"back_rate\":20",
            "\"GS\":24",
            "\"AS\":30",
            "\"TIE-N\":15",
            "\"maneuver_base_failure\":0.05",
            "\"impairment_penalty\":0.1",
            "\"strategy\":\"DD\"",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
    }

    #[test]
    fn paper_window_detection() {
        let mut rates = ManeuverRates::nominal();
        assert!(rates.in_paper_window());
        rates.set_rate(RecoveryManeuver::CrashStop, 60.0);
        assert!(!rates.in_paper_window());
        rates.validate().unwrap(); // still valid, just outside the window
    }
}
