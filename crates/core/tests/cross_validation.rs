//! End-to-end validation of the AHS model (DESIGN.md steps 2 and 5):
//!
//! * the composed SAN model against the *independent* agent-level
//!   simulator (two implementations of the same semantics, no shared
//!   code path);
//! * the composed SAN model against the exact CTMC transient solution
//!   on a configuration small enough to enumerate;
//! * plain versus importance-sampled estimation of the same curve.
//!
//! All comparisons run in regimes (large λ) where every method has
//! signal.
//!
//! Each comparison exists at two scales: a `_fast` variant (a few
//! seconds, always on, wide tolerances) that gates every commit, and a
//! full-scale `#[ignore]`d variant (tight tolerances, minutes of
//! replications) that CI runs in a non-blocking job — locally:
//! `cargo test -p ahs-core --test cross_validation -- --ignored`.

use ahs_core::{AgentSimulator, AhsModel, BiasMode, Params, UnsafetyEvaluator};
use ahs_ctmc::{transient_distribution, SanMarkovModel, StateSpace};
use ahs_stats::TimeGrid;

/// SAN evaluator versus the agent-level simulator at a given scale.
fn check_san_vs_agent(reps: u64, floor: f64) {
    let params = Params::builder().lambda(0.05).n(3).build().unwrap();
    let grid = TimeGrid::new(vec![2.0, 6.0, 10.0]);

    let san_curve = UnsafetyEvaluator::new(params.clone())
        .with_seed(11)
        .with_replications(reps)
        .with_bias(BiasMode::None)
        .with_threads(4)
        .evaluate(&grid)
        .unwrap();

    let agent_curve = AgentSimulator::new(params)
        .unwrap()
        .estimate(&grid, reps, 12);

    for (sp, ap) in san_curve
        .points()
        .iter()
        .zip(agent_curve.points(0.999).iter())
    {
        let gap = (sp.y - ap.y).abs();
        let tol = (sp.half_width + ap.half_width).max(floor);
        assert!(
            gap <= tol,
            "t={}: SAN {} ± {} vs agent {} ± {}",
            sp.x,
            sp.y,
            sp.half_width,
            ap.y,
            ap.half_width
        );
    }
}

#[test]
fn san_model_matches_agent_simulator_fast() {
    check_san_vs_agent(5_000, 0.025);
}

#[test]
#[ignore = "slow (~1 min): full-scale agent cross-validation; the fast variant always runs"]
fn san_model_matches_agent_simulator() {
    check_san_vs_agent(30_000, 0.01);
}

#[test]
fn san_model_matches_exact_ctmc_for_n1() {
    // n = 1: two single-vehicle platoons — small enough to enumerate.
    let params = Params::builder().lambda(0.1).n(1).build().unwrap();
    let model = AhsModel::build(&params).unwrap();
    let ko = model.handles().ko_total;

    let adapter = SanMarkovModel::new(model.san()).unwrap();
    let space = StateSpace::explore(&adapter, 200_000).unwrap();
    let grid = TimeGrid::new(vec![2.0, 6.0]);
    let numeric: Vec<f64> = grid
        .points()
        .iter()
        .map(|&t| {
            let pi = transient_distribution(&space, t, 1e-12);
            space.probability(&pi, |m| m.is_marked(ko))
        })
        .collect();
    assert!(
        numeric[1] > 1e-6,
        "regime check: S(6h)={} too small to compare",
        numeric[1]
    );

    let curve = UnsafetyEvaluator::new(params)
        .with_seed(21)
        .with_replications(60_000)
        .with_threads(4)
        .evaluate(&grid)
        .unwrap();
    for (pt, &exact) in curve.points().iter().zip(numeric.iter()) {
        let tol = pt.half_width.max(exact * 0.2);
        assert!(
            (pt.y - exact).abs() <= tol,
            "t={}: simulated {} ± {} vs exact {}",
            pt.x,
            pt.y,
            pt.half_width,
            exact
        );
    }
}

/// Figure 10/12 mechanism at a fast-failure scale: more vehicles per
/// platoon → more concurrent-failure opportunities → higher S(t).
fn check_unsafety_grows_with_n(reps: u64) {
    let grid = TimeGrid::new(vec![6.0]);
    let s = |n: usize| {
        UnsafetyEvaluator::new(Params::builder().lambda(0.02).n(n).build().unwrap())
            .with_seed(31)
            .with_replications(reps)
            .with_threads(4)
            .evaluate(&grid)
            .unwrap()
            .points()[0]
    };
    let s2 = s(2);
    let s8 = s(8);
    assert!(
        s8.y > s2.y,
        "S(6h) must grow with n: n=2 gives {} ± {}, n=8 gives {} ± {}",
        s2.y,
        s2.half_width,
        s8.y,
        s8.half_width
    );
}

#[test]
fn unsafety_grows_with_platoon_capacity_fast() {
    check_unsafety_grows_with_n(4_000);
}

#[test]
#[ignore = "slow (~1.5 min): full-scale monotonicity check; the fast variant always runs"]
fn unsafety_grows_with_platoon_capacity() {
    check_unsafety_grows_with_n(25_000);
}

/// Figure 11 mechanism: S(t) is sharply increasing in λ.
fn check_unsafety_grows_with_lambda(reps: u64, min_ratio: f64) {
    let grid = TimeGrid::new(vec![6.0]);
    let s = |lambda: f64| {
        UnsafetyEvaluator::new(Params::builder().lambda(lambda).n(4).build().unwrap())
            .with_seed(41)
            .with_replications(reps)
            .with_threads(4)
            .evaluate(&grid)
            .unwrap()
            .points()[0]
            .y
    };
    let lo = s(5e-3);
    let hi = s(5e-2);
    assert!(
        hi > lo * min_ratio,
        "λ×10 should raise S(6h) ≫: {lo} -> {hi}"
    );
}

#[test]
fn unsafety_grows_with_failure_rate_fast() {
    check_unsafety_grows_with_lambda(4_000, 3.0);
}

#[test]
#[ignore = "slow (~1 min): full-scale monotonicity check; the fast variant always runs"]
fn unsafety_grows_with_failure_rate() {
    check_unsafety_grows_with_lambda(25_000, 5.0);
}

/// The multi-platoon extension must keep both implementations in
/// lock-step too.
fn check_san_vs_agent_three_platoons(reps: u64, floor: f64) {
    let params = Params::builder()
        .lambda(0.05)
        .n(2)
        .platoons(3)
        .build()
        .unwrap();
    let grid = TimeGrid::new(vec![4.0, 8.0]);

    let san_curve = UnsafetyEvaluator::new(params.clone())
        .with_seed(71)
        .with_replications(reps)
        .with_bias(BiasMode::None)
        .with_threads(4)
        .evaluate(&grid)
        .unwrap();
    let agent_curve = AgentSimulator::new(params)
        .unwrap()
        .estimate(&grid, reps, 72);

    for (sp, ap) in san_curve
        .points()
        .iter()
        .zip(agent_curve.points(0.999).iter())
    {
        let gap = (sp.y - ap.y).abs();
        let tol = (sp.half_width + ap.half_width).max(floor);
        assert!(
            gap <= tol,
            "t={}: SAN {} vs agent {} (3 platoons)",
            sp.x,
            sp.y,
            ap.y
        );
    }
}

#[test]
fn san_model_matches_agent_simulator_with_three_platoons_fast() {
    check_san_vs_agent_three_platoons(5_000, 0.025);
}

#[test]
#[ignore = "slow (~1 min): full-scale 3-platoon cross-validation; the fast variant always runs"]
fn san_model_matches_agent_simulator_with_three_platoons() {
    check_san_vs_agent_three_platoons(25_000, 0.01);
}

/// Three estimation methods on the same configuration, in a regime
/// where all have signal: plain MC, dynamic IS, and multilevel
/// splitting (levels = number of concurrently recovering vehicles,
/// top level = KO_total).
fn check_splitting_vs_plain_and_is(reps: u64, effort: u64) {
    let params = Params::builder().lambda(2e-3).n(4).build().unwrap();
    let grid = TimeGrid::new(vec![6.0]);

    let plain = UnsafetyEvaluator::new(params.clone())
        .with_seed(61)
        .with_replications(reps)
        .with_bias(BiasMode::None)
        .with_threads(4)
        .evaluate(&grid)
        .unwrap()
        .points()[0];

    let is = UnsafetyEvaluator::new(params.clone())
        .with_seed(62)
        .with_replications(reps)
        .with_threads(4)
        .evaluate(&grid)
        .unwrap()
        .points()[0];

    let model = AhsModel::build(&params).unwrap();
    let h = model.handles().clone();
    let (san, _) = model.into_san();
    let split = ahs_safety_splitting(san, &h, 6.0, effort);

    assert!(
        (plain.y - is.y).abs() <= 3.0 * (plain.half_width + is.half_width),
        "plain {} ± {} vs IS {} ± {}",
        plain.y,
        plain.half_width,
        is.y,
        is.half_width
    );
    let tol = 3.0 * (plain.half_width + split.half_width()).max(plain.y * 0.4);
    assert!(
        (plain.y - split.probability).abs() <= tol,
        "plain {} ± {} vs splitting {} (rel err {:.2})",
        plain.y,
        plain.half_width,
        split.probability,
        split.relative_std_error
    );
}

#[test]
fn splitting_agrees_with_plain_mc_and_is_fast() {
    check_splitting_vs_plain_and_is(12_000, 5_000);
}

#[test]
#[ignore = "slow (~1 min): full-scale three-method agreement; the fast variant always runs"]
fn splitting_agrees_with_plain_mc_and_is() {
    check_splitting_vs_plain_and_is(60_000, 20_000);
}

fn ahs_safety_splitting(
    san: ahs_san::SanModel,
    h: &ahs_core::ModelHandles,
    horizon: f64,
    effort: u64,
) -> ahs_des::SplittingEstimate {
    let (ko, ca, cb, cc) = (h.ko_total, h.class_a, h.class_b, h.class_c);
    ahs_des::SplittingStudy::new(san)
        .with_seed(63)
        .with_effort(effort)
        .estimate(
            move |m| {
                if m.is_marked(ko) {
                    3
                } else {
                    ((m.tokens(ca) + m.tokens(cb) + m.tokens(cc)) as usize).min(2)
                }
            },
            3,
            horizon,
        )
        .unwrap()
}

/// At the paper's λ = 1e-5 plain MC would see nothing; the biased
/// evaluator must produce a positive estimate with finite precision.
fn check_is_reaches_rare_regime(reps: u64, max_rel: f64) {
    let params = Params::builder().lambda(1e-5).n(8).build().unwrap();
    let grid = TimeGrid::new(vec![6.0]);
    let curve = UnsafetyEvaluator::new(params)
        .with_seed(51)
        .with_replications(reps)
        .with_threads(4)
        .evaluate(&grid)
        .unwrap();
    let pt = curve.points()[0];
    assert!(pt.y > 0.0, "rare-event estimate must be positive");
    assert!(pt.y < 1e-3, "S(6h) at λ=1e-5 should be small, got {}", pt.y);
    assert!(
        pt.half_width < pt.y * max_rel,
        "relative precision too poor: {pt:?}"
    );
}

#[test]
fn importance_sampling_reaches_the_rare_regime_fast() {
    check_is_reaches_rare_regime(8_000, 3.0);
}

#[test]
#[ignore = "slow (~1 min): full-scale rare-regime precision check; the fast variant always runs"]
fn importance_sampling_reaches_the_rare_regime() {
    check_is_reaches_rare_regime(40_000, 1.0);
}
