//! Property-based invariants of the composed AHS SAN model, checked
//! along random execution paths.
//!
//! Invariants:
//!
//! 1. at most one maneuver place is marked per vehicle;
//! 2. the shared severity counters always equal the per-vehicle
//!    recount of active maneuvers by class;
//! 3. platoon occupancy arrays are consistent with the per-vehicle
//!    platoon indicators (same members, compacted, no duplicates);
//! 4. every vehicle is in exactly one lifecycle state
//!    (present / ok / ko / out);
//! 5. platoon sizes never exceed the capacity `n`;
//! 6. `KO_total` is absorbing: once marked, no timed activity is
//!    enabled.

use ahs_core::{AhsModel, Params, SeverityClass, MANEUVERS};
use ahs_san::Marking;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn check_invariants(model: &AhsModel, m: &Marking) -> Result<(), String> {
    let h = model.handles();
    let n = model.params().n;
    let platoons = h.platoon_arrays.len();
    let mut count_a = 0u64;
    let mut count_b = 0u64;
    let mut count_c = 0u64;
    let mut members: Vec<Vec<i64>> = vec![Vec::new(); platoons];

    for (v, vp) in h.vehicles.iter().enumerate() {
        let marked: Vec<usize> = (0..6).filter(|&s| m.is_marked(vp.maneuvers[s])).collect();
        if marked.len() > 1 {
            return Err(format!("vehicle {v} has {} active maneuvers", marked.len()));
        }
        if let Some(&slot) = marked.first() {
            match ahs_core::class_of_maneuver(MANEUVERS[slot]) {
                SeverityClass::A => count_a += 1,
                SeverityClass::B => count_b += 1,
                SeverityClass::C => count_c += 1,
            }
            if !m.is_marked(vp.present) {
                return Err(format!("vehicle {v} recovering but not present"));
            }
        }

        let lifecycle = [
            m.is_marked(vp.present),
            m.is_marked(vp.ok),
            m.is_marked(vp.ko),
            m.is_marked(vp.out),
        ];
        if lifecycle.iter().filter(|&&x| x).count() != 1 {
            return Err(format!("vehicle {v} lifecycle states: {lifecycle:?}"));
        }

        let platoon = m.tokens(vp.platoon);
        if m.is_marked(vp.present) {
            if platoon < 1 || platoon as usize > platoons {
                return Err(format!("present vehicle {v} has platoon {platoon}"));
            }
            members[platoon as usize - 1].push(v as i64 + 1);
        } else if platoon != 0 {
            return Err(format!("absent vehicle {v} still assigned to {platoon}"));
        }
    }

    if m.tokens(h.class_a) != count_a
        || m.tokens(h.class_b) != count_b
        || m.tokens(h.class_c) != count_c
    {
        return Err(format!(
            "severity counters ({}, {}, {}) != recount ({count_a}, {count_b}, {count_c})",
            m.tokens(h.class_a),
            m.tokens(h.class_b),
            m.tokens(h.class_c)
        ));
    }

    for (idx, &place) in h.platoon_arrays.iter().enumerate() {
        let which = idx + 1;
        let arr = m.array(place);
        let filled: Vec<i64> = arr.iter().copied().filter(|&x| x != 0).collect();
        if filled.len() > n {
            return Err(format!("platoon {which} over capacity: {filled:?}"));
        }
        // Compacted: no zero before a non-zero.
        let first_zero = arr.iter().position(|&x| x == 0).unwrap_or(arr.len());
        if arr[first_zero..].iter().any(|&x| x != 0) {
            return Err(format!("platoon {which} array not compacted: {arr:?}"));
        }
        let mut expected = members[which - 1].clone();
        let mut got = filled.clone();
        expected.sort_unstable();
        got.sort_unstable();
        if expected != got {
            return Err(format!(
                "platoon {which} array {got:?} != indicator-derived {expected:?}"
            ));
        }
    }

    if m.is_marked(h.ko_total) && !model.san().enabled_timed(m).is_empty() {
        return Err("timed activity enabled after KO_total".into());
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn invariants_hold_along_random_paths(
        seed in any::<u64>(),
        n in 1usize..4,
        platoons in 2usize..5,
        steps in 1usize..400,
    ) {
        // Large λ and small maneuver success so escalations, KOs, and
        // dynamicity all get exercised within few steps.
        let params = Params::builder()
            .lambda(0.5)
            .n(n)
            .platoons(platoons)
            .join_rate(20.0)
            .leave_rate(10.0)
            .change_rate(10.0)
            .maneuver_base_failure(0.4)
            .impairment_penalty(0.3)
            .build()
            .unwrap();
        let model = AhsModel::build(&params).unwrap();
        let san = model.san();
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut m = san.initial_marking().clone();
        san.stabilize(&mut m, &mut rng).unwrap();
        check_invariants(&model, &m).map_err(TestCaseError::fail)?;

        for step in 0..steps {
            let enabled = san.enabled_timed(&m);
            if enabled.is_empty() {
                break;
            }
            let a = enabled[rng.random_range(0..enabled.len())];
            let case = san.select_case(a, &m, &mut rng).unwrap();
            san.fire(a, case, &mut m);
            san.stabilize(&mut m, &mut rng).unwrap();
            check_invariants(&model, &m)
                .map_err(|e| TestCaseError::fail(format!("step {step}: {e}")))?;
        }
    }
}
