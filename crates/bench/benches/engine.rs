//! Performance benches of the engine layer: SAN construction, both
//! simulator backends, and the uniformization solver.

use ahs_core::{AhsModel, Params};
use ahs_ctmc::{transient_distribution, MarkovModel, StateSpace};
use ahs_des::{EventDrivenSimulator, MarkovSimulator, NullObserver};
use ahs_san::{Delay, SanBuilder, SanModel};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;

/// A 5-component repairable system with moderate rates: a dense event
/// stream for throughput measurement.
fn repairable(components: usize) -> SanModel {
    let mut b = SanBuilder::new("repairable");
    for i in 0..components {
        let up = b.place_with_tokens(&format!("up{i}"), 1).unwrap();
        let down = b.place(&format!("down{i}")).unwrap();
        b.timed_activity(&format!("fail{i}"), Delay::exponential(1.0))
            .unwrap()
            .input_place(up)
            .output_place(down)
            .build()
            .unwrap();
        b.timed_activity(&format!("repair{i}"), Delay::exponential(3.0))
            .unwrap()
            .input_place(down)
            .output_place(up)
            .build()
            .unwrap();
    }
    b.build().unwrap()
}

fn bench_ssa_backend(c: &mut Criterion) {
    let model = repairable(5);
    let sim = MarkovSimulator::new(&model).unwrap();
    let mut rng = SmallRng::seed_from_u64(1);
    c.bench_function("ssa_run_100h_5comp", |b| {
        b.iter(|| {
            sim.run_first_passage(|_| false, black_box(100.0), &mut rng)
                .unwrap()
        })
    });
}

fn bench_event_backend(c: &mut Criterion) {
    let model = repairable(5);
    let sim = EventDrivenSimulator::new(&model);
    let mut rng = SmallRng::seed_from_u64(2);
    c.bench_function("event_queue_run_100h_5comp", |b| {
        b.iter(|| {
            sim.run(black_box(100.0), &mut rng, &mut NullObserver)
                .unwrap()
        })
    });
}

fn bench_ahs_model_build(c: &mut Criterion) {
    let params = Params::builder().n(10).build().unwrap();
    c.bench_function("ahs_model_build_n10", |b| {
        b.iter(|| AhsModel::build(black_box(&params)).unwrap())
    });
}

fn bench_ahs_replication(c: &mut Criterion) {
    let params = Params::builder().n(10).build().unwrap();
    let model = AhsModel::build(&params).unwrap();
    let ko = model.handles().ko_total;
    let sim = MarkovSimulator::new(model.san()).unwrap();
    let mut rng = SmallRng::seed_from_u64(3);
    c.bench_function("ahs_replication_10h_n10", |b| {
        b.iter(|| {
            sim.run_first_passage(|m| m.is_marked(ko), black_box(10.0), &mut rng)
                .unwrap()
        })
    });
}

fn bench_uniformization(c: &mut Criterion) {
    struct BirthDeath;
    impl MarkovModel for BirthDeath {
        type State = u32;
        fn initial_states(&self) -> Vec<(u32, f64)> {
            vec![(0, 1.0)]
        }
        fn transitions(&self, s: &u32) -> Vec<(u32, f64)> {
            let mut out = Vec::new();
            if *s < 100 {
                out.push((s + 1, 2.0));
            }
            if *s > 0 {
                out.push((s - 1, 3.0));
            }
            out
        }
    }
    let space = StateSpace::explore(&BirthDeath, 200).unwrap();
    c.bench_function("uniformization_101_states_t10", |b| {
        b.iter(|| transient_distribution(&space, black_box(10.0), 1e-10))
    });
}

criterion_group! {
    name = engine;
    config = Criterion::default().sample_size(20);
    targets = bench_ssa_backend, bench_event_backend, bench_ahs_model_build,
              bench_ahs_replication, bench_uniformization
}
criterion_main!(engine);
