//! One bench per paper table/figure: miniature-scale versions of the
//! experiment harness, so regressions in any reproduction pipeline show
//! up in `cargo bench`. Full-scale runs are the `fig10`…`fig15`
//! binaries.

use ahs_bench::{fig10, fig11, fig12, fig13, fig14, fig15, maneuver_durations, tables, RunConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn mini() -> RunConfig {
    RunConfig {
        replications: 40,
        paper_precision: false,
        seed: 7,
        threads: 1,
        ..RunConfig::quick()
    }
}

fn bench_tables(c: &mut Criterion) {
    c.bench_function("tables_1_2_3", |b| b.iter(|| black_box(tables())));
    c.bench_function("maneuver_durations_table", |b| {
        b.iter(|| maneuver_durations(black_box(20), 1))
    });
}

fn bench_fig10(c: &mut Criterion) {
    let cfg = mini();
    c.bench_function("fig10_mini", |b| b.iter(|| fig10(black_box(&cfg)).unwrap()));
}

fn bench_fig11(c: &mut Criterion) {
    let cfg = mini();
    c.bench_function("fig11_mini", |b| b.iter(|| fig11(black_box(&cfg)).unwrap()));
}

fn bench_fig12(c: &mut Criterion) {
    let cfg = mini();
    c.bench_function("fig12_mini", |b| b.iter(|| fig12(black_box(&cfg)).unwrap()));
}

fn bench_fig13(c: &mut Criterion) {
    let cfg = mini();
    c.bench_function("fig13_mini", |b| b.iter(|| fig13(black_box(&cfg)).unwrap()));
}

fn bench_fig14(c: &mut Criterion) {
    let cfg = mini();
    c.bench_function("fig14_mini", |b| b.iter(|| fig14(black_box(&cfg)).unwrap()));
}

fn bench_fig15(c: &mut Criterion) {
    let cfg = mini();
    c.bench_function("fig15_mini", |b| b.iter(|| fig15(black_box(&cfg)).unwrap()));
}

criterion_group! {
    name = figures;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(4))
        .warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_tables, bench_fig10, bench_fig11, bench_fig12, bench_fig13,
              bench_fig14, bench_fig15
}
criterion_main!(figures);
