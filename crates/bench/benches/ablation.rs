//! Ablation benches for the design choices called out in DESIGN.md:
//! importance-sampling boost, simulation backend, and worker scaling.

use ahs_core::{BiasMode, Params, UnsafetyEvaluator};
use ahs_des::{Backend, Study};
use ahs_san::{Delay, SanBuilder, SanModel};
use ahs_stats::TimeGrid;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

/// Ablation 1 — bias boost: time to run a fixed replication budget at
/// λ=1e-3 under plain MC, a fixed modest boost, and the auto boost.
/// (Accuracy-per-replication comparisons live in the integration
/// tests; this tracks the runtime cost of the biased measure, which
/// rises with boost because biased paths carry more events.)
fn bench_bias_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_bias_mode");
    let grid = TimeGrid::new(vec![6.0]);
    for (name, mode) in [
        ("plain", BiasMode::None),
        ("boost_x10", BiasMode::Fixed(10.0)),
        ("auto", BiasMode::Auto),
    ] {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                let params = Params::builder().lambda(1e-3).n(4).build().unwrap();
                UnsafetyEvaluator::new(params)
                    .with_seed(3)
                    .with_replications(400)
                    .with_threads(2)
                    .with_bias(mode)
                    .evaluate(black_box(&grid))
                    .unwrap()
            })
        });
    }
    group.finish();
}

fn repairable() -> SanModel {
    let mut b = SanBuilder::new("repairable");
    for i in 0..4 {
        let up = b.place_with_tokens(&format!("up{i}"), 1).unwrap();
        let down = b.place(&format!("down{i}")).unwrap();
        b.timed_activity(&format!("fail{i}"), Delay::exponential(0.5))
            .unwrap()
            .input_place(up)
            .output_place(down)
            .build()
            .unwrap();
        b.timed_activity(&format!("repair{i}"), Delay::exponential(2.0))
            .unwrap()
            .input_place(down)
            .output_place(up)
            .build()
            .unwrap();
    }
    b.build().unwrap()
}

/// Ablation 2 — backend: SSA versus event-queue on the same
/// exponential model (the SSA path avoids the future-event list and
/// per-activity sampling).
fn bench_backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_backend");
    let grid = TimeGrid::new(vec![20.0]);
    for (name, backend) in [
        ("markov_ssa", Backend::Markov),
        ("event_queue", Backend::EventDriven),
    ] {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                Study::new(repairable())
                    .with_seed(5)
                    .with_fixed_replications(2_000)
                    .with_threads(1)
                    .first_passage(|_| false, black_box(&grid), backend.clone())
                    .unwrap()
            })
        });
    }
    group.finish();
}

/// Ablation 3 — parallel replications: 1 versus 4 worker threads on a
/// fixed budget.
fn bench_thread_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_threads");
    let grid = TimeGrid::new(vec![6.0]);
    for threads in [1usize, 4] {
        group.bench_function(BenchmarkId::from_parameter(threads), |b| {
            b.iter(|| {
                let params = Params::builder().lambda(1e-4).n(6).build().unwrap();
                UnsafetyEvaluator::new(params)
                    .with_seed(9)
                    .with_replications(800)
                    .with_threads(threads)
                    .evaluate(black_box(&grid))
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = ablation;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(4))
        .warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_bias_modes, bench_backends, bench_thread_scaling
}
criterion_main!(ablation);
