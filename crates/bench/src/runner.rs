//! Shared experiment runner and result types.

use std::sync::Arc;
use std::time::Instant;

use ahs_core::{AhsError, Params, UnsafetyCurve, UnsafetyEvaluator};
use ahs_obs::{EstimatePoint, Json, Metrics, ProgressSink, RunManifest, StoppingSpec};
use ahs_stats::{StoppingRule, TimeGrid};
use serde::{Deserialize, Serialize};

/// One point of a reproduced series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SeriesPoint {
    /// Abscissa: trip duration (hours) or platoon capacity `n`,
    /// depending on the figure.
    pub x: f64,
    /// Estimated unsafety.
    pub y: f64,
    /// Confidence half-width on `y`.
    pub half_width: f64,
    /// Replications behind the point.
    pub samples: u64,
}

/// One labelled series of a figure (e.g. `n=8`, `λ=1e-5`, `DD`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// The points, ascending in `x`.
    pub points: Vec<SeriesPoint>,
}

/// A reproduced figure or table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FigureResult {
    /// Identifier, e.g. `fig10`.
    pub id: String,
    /// Human-readable description.
    pub title: String,
    /// Name of the x-axis.
    pub x_label: String,
    /// The series.
    pub series: Vec<Series>,
}

/// Execution configuration shared by every experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct RunConfig {
    /// Replications per evaluated point when `paper_precision` is off.
    pub replications: u64,
    /// Use the paper's sequential stopping rule (≥10 000 replications,
    /// 95% / 0.1 relative) instead of a fixed count.
    pub paper_precision: bool,
    /// Master seed.
    pub seed: u64,
    /// Worker threads (0 = all cores).
    pub threads: usize,
    /// If set, append JSON-lines progress events to this file.
    pub telemetry: Option<String>,
    /// If set, emit JSON-lines progress events to stderr.
    pub progress: bool,
    /// If set, write per-point crash-safe checkpoints under this
    /// directory (`<dir>/point-<seed>-<params digest>.checkpoint.json`)
    /// and resume from any that already exist there.
    pub checkpoint_dir: Option<String>,
    /// Replications between checkpoint flushes.
    pub checkpoint_every: u64,
    /// Deterministic failpoint spec (`--failpoints`); only effective in
    /// builds with the `inject` feature, loudly rejected otherwise.
    pub failpoints: Option<String>,
}

impl RunConfig {
    /// A quick configuration for smoke runs and benches.
    pub fn quick() -> Self {
        RunConfig {
            replications: 6_000,
            paper_precision: false,
            seed: 2009,
            threads: 0,
            telemetry: None,
            progress: false,
            checkpoint_dir: None,
            checkpoint_every: 100_000,
            failpoints: None,
        }
    }

    /// The paper's convergence criterion.
    pub fn paper() -> Self {
        RunConfig {
            replications: 10_000,
            paper_precision: true,
            ..RunConfig::quick()
        }
    }

    /// Parses `--paper`, `--reps N`, `--seed S`, `--threads T`,
    /// `--telemetry PATH`, `--progress`, `--checkpoint-dir DIR`,
    /// `--checkpoint-every N`, and `--failpoints SPEC` from
    /// command-line arguments (used by every `fig*` binary).
    pub fn from_args(args: &[String]) -> Self {
        let mut cfg = RunConfig::quick();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--paper" => cfg.paper_precision = true,
                "--progress" => cfg.progress = true,
                "--reps" => {
                    i += 1;
                    cfg.replications = args[i].parse().expect("--reps takes an integer");
                }
                "--seed" => {
                    i += 1;
                    cfg.seed = args[i].parse().expect("--seed takes an integer");
                }
                "--threads" => {
                    i += 1;
                    cfg.threads = args[i].parse().expect("--threads takes an integer");
                }
                "--telemetry" => {
                    i += 1;
                    cfg.telemetry = Some(args[i].clone());
                }
                "--checkpoint-dir" => {
                    i += 1;
                    cfg.checkpoint_dir = Some(args[i].clone());
                }
                "--checkpoint-every" => {
                    i += 1;
                    cfg.checkpoint_every = args[i]
                        .parse()
                        .expect("--checkpoint-every takes a positive integer");
                    assert!(
                        cfg.checkpoint_every > 0,
                        "--checkpoint-every takes a positive integer"
                    );
                }
                "--failpoints" => {
                    i += 1;
                    cfg.failpoints = Some(args[i].clone());
                }
                other => {
                    panic!(
                        "unknown argument `{other}` (expected --paper/--reps/--seed/\
                         --threads/--telemetry/--progress/--checkpoint-dir/\
                         --checkpoint-every/--failpoints)"
                    )
                }
            }
            i += 1;
        }
        cfg
    }

    /// Arms fault injection from `--failpoints` / `AHS_FAILPOINTS`.
    /// Called once by every `fig*` binary before running; a non-empty
    /// spec against a build without the `inject` feature panics instead
    /// of silently doing nothing.
    pub fn arm_failpoints(&self) {
        match &self.failpoints {
            Some(spec) => {
                ahs_inject::configure_from_spec(spec).expect("--failpoints");
            }
            None => {
                ahs_inject::configure_from_env().expect(ahs_inject::ENV_VAR);
            }
        }
    }

    /// The progress sink implied by `--telemetry` / `--progress`, if any.
    pub(crate) fn progress_sink(&self) -> Option<Arc<ProgressSink>> {
        if let Some(path) = &self.telemetry {
            ProgressSink::file(std::path::Path::new(path))
                .ok()
                .map(Arc::new)
        } else if self.progress {
            Some(Arc::new(ProgressSink::stderr()))
        } else {
            None
        }
    }

    /// Builds the evaluator for one experiment point.
    pub(crate) fn evaluator(&self, params: Params, salt: u64) -> UnsafetyEvaluator {
        let seed = self.seed ^ salt;
        let mut e = UnsafetyEvaluator::new(params).with_seed(seed);
        e = if self.paper_precision {
            e.with_rule(
                StoppingRule::relative_precision(0.95, 0.1)
                    .with_min_samples(10_000)
                    .with_max_samples(2_000_000),
            )
        } else {
            e.with_replications(self.replications)
        };
        if self.threads > 0 {
            e = e.with_threads(self.threads);
        }
        if let Some(dir) = &self.checkpoint_dir {
            // One checkpoint per experiment point, keyed by the point's
            // effective seed *and* a digest of its parameters: several
            // series of one figure deliberately share a seed (common
            // random numbers), so the seed alone does not identify the
            // study. The key is stable across runs, so a resumed sweep
            // picks each point's file back up regardless of iteration
            // order.
            let digest = ahs_obs::fnv1a_64(e.params().to_json().render().as_bytes());
            let path = std::path::Path::new(dir)
                .join(format!("point-{seed:016x}-{digest:016x}.checkpoint.json"));
            if path.exists() {
                e = e.with_resume(&path);
            }
            e = e.with_checkpoint(path, self.checkpoint_every);
            e = e.with_interrupt(ahs_obs::interrupt_flag());
        }
        e
    }
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig::quick()
    }
}

/// A reproduced figure together with its provenance manifest.
#[derive(Debug, Clone)]
pub struct FigureRun {
    /// The figure's series, as before.
    pub figure: FigureResult,
    /// Seed, parameters, stopping rule, telemetry, and estimates of the
    /// run that produced it.
    pub manifest: RunManifest,
    /// True when any study was cut short by SIGINT/SIGTERM; the figure
    /// is partial and the binary should exit with
    /// [`ahs_obs::EXIT_INTERRUPTED`] so callers know to resume.
    pub interrupted: bool,
}

/// Per-figure telemetry accumulator: one shared [`Metrics`] sink for
/// every study the figure runs, plus the material the manifest needs.
pub(crate) struct FigTally {
    metrics: Arc<Metrics>,
    progress: Option<Arc<ProgressSink>>,
    start: Instant,
    replications: u64,
    converged: bool,
    interrupted: bool,
    quarantined: u64,
    resume_generations: u64,
    stopping: Option<StoppingSpec>,
    params: Vec<(String, Json)>,
}

impl FigTally {
    pub(crate) fn new(cfg: &RunConfig) -> Self {
        FigTally {
            metrics: Arc::new(Metrics::new()),
            progress: cfg.progress_sink(),
            start: Instant::now(),
            replications: 0,
            converged: true,
            interrupted: false,
            quarantined: 0,
            resume_generations: 0,
            stopping: None,
            params: Vec::new(),
        }
    }

    /// Builds one instrumented experiment-point evaluator.
    pub(crate) fn evaluator(
        &self,
        cfg: &RunConfig,
        params: Params,
        salt: u64,
    ) -> UnsafetyEvaluator {
        let mut e = cfg
            .evaluator(params, salt)
            .with_metrics(self.metrics.clone());
        if let Some(p) = &self.progress {
            e = e.with_progress(p.clone());
        }
        e
    }

    /// Folds one evaluated study into the figure's manifest material.
    pub(crate) fn absorb(&mut self, label: &str, ev: &UnsafetyEvaluator, curve: &UnsafetyCurve) {
        self.replications += curve.replications();
        self.converged &= curve.converged();
        self.interrupted |= curve.interrupted();
        self.quarantined += curve.quarantined();
        self.resume_generations = self
            .resume_generations
            .max(curve.resume_lineage().len() as u64);
        let rule = ev.rule();
        self.stopping.get_or_insert_with(|| StoppingSpec {
            confidence: rule.confidence(),
            relative_half_width: rule.relative_half_width(),
            min_samples: rule.min_samples(),
            max_samples: rule.max_samples(),
        });
        self.params.push((label.to_owned(), ev.params().to_json()));
    }

    /// Closes out the figure: snapshot the metrics and assemble the
    /// manifest.
    pub(crate) fn finish(self, cfg: &RunConfig, figure: FigureResult) -> FigureRun {
        let mut m = RunManifest::new(
            format!("ahs-bench {}", figure.id),
            figure.id.clone(),
            cfg.seed,
        );
        m.threads = if cfg.threads > 0 {
            cfg.threads
        } else {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        };
        m.stopping = self.stopping;
        m.params = Json::Obj(self.params);
        m.wall_seconds = self.start.elapsed().as_secs_f64();
        m.replications = self.replications;
        m.converged = self.converged;
        m.estimates = figure
            .series
            .iter()
            .flat_map(|s| {
                s.points.iter().map(|p| EstimatePoint {
                    series: s.label.clone(),
                    x: p.x,
                    y: p.y,
                    half_width: p.half_width,
                    samples: p.samples,
                })
            })
            .collect();
        m.metrics = Some(self.metrics.snapshot());
        m.extra
            .push(("interrupted".into(), self.interrupted.into()));
        m.extra
            .push(("quarantined".into(), self.quarantined.into()));
        m.extra
            .push(("resume_generations".into(), self.resume_generations.into()));
        FigureRun {
            figure,
            manifest: m,
            interrupted: self.interrupted,
        }
    }
}

fn series_points(curve: &UnsafetyCurve) -> Vec<SeriesPoint> {
    curve
        .points()
        .iter()
        .map(|p| SeriesPoint {
            x: p.x,
            y: p.y,
            half_width: p.half_width,
            samples: p.samples,
        })
        .collect()
}

/// Runs one `S(t)` curve.
pub(crate) fn curve(
    cfg: &RunConfig,
    tally: &mut FigTally,
    params: Params,
    grid: &TimeGrid,
    label: impl Into<String>,
    salt: u64,
) -> Result<Series, AhsError> {
    let label = label.into();
    let ev = tally.evaluator(cfg, params, salt);
    let result = ev.evaluate(grid)?;
    tally.absorb(&label, &ev, &result);
    Ok(Series {
        label,
        points: series_points(&result),
    })
}

/// Runs a `S(t_fixed)`-versus-`n` series.
pub(crate) fn versus_n(
    cfg: &RunConfig,
    tally: &mut FigTally,
    base: impl Fn(usize) -> Params,
    ns: &[usize],
    t_hours: f64,
    label: impl Into<String>,
    salt: u64,
) -> Result<Series, AhsError> {
    let label = label.into();
    let grid = TimeGrid::new(vec![t_hours]);
    let mut points = Vec::with_capacity(ns.len());
    for (i, &n) in ns.iter().enumerate() {
        let ev = tally.evaluator(cfg, base(n), salt.wrapping_add(i as u64));
        let result = ev.evaluate(&grid)?;
        tally.absorb(&format!("{label}/n={n}"), &ev, &result);
        let p = result.points()[0];
        points.push(SeriesPoint {
            x: n as f64,
            y: p.y,
            half_width: p.half_width,
            samples: p.samples,
        });
    }
    Ok(Series { label, points })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arg_parsing() {
        let cfg = RunConfig::from_args(&[
            "--paper".into(),
            "--reps".into(),
            "123".into(),
            "--seed".into(),
            "9".into(),
            "--threads".into(),
            "2".into(),
        ]);
        assert!(cfg.paper_precision);
        assert_eq!(cfg.replications, 123);
        assert_eq!(cfg.seed, 9);
        assert_eq!(cfg.threads, 2);
    }

    #[test]
    #[should_panic(expected = "unknown argument")]
    fn unknown_arg_rejected() {
        RunConfig::from_args(&["--bogus".into()]);
    }

    #[test]
    fn quick_and_paper_presets_differ() {
        assert!(!RunConfig::quick().paper_precision);
        assert!(RunConfig::paper().paper_precision);
    }
}
