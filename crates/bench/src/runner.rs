//! Shared experiment runner and result types.

use ahs_core::{AhsError, Params, UnsafetyEvaluator};
use ahs_stats::{StoppingRule, TimeGrid};
use serde::{Deserialize, Serialize};

/// One point of a reproduced series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SeriesPoint {
    /// Abscissa: trip duration (hours) or platoon capacity `n`,
    /// depending on the figure.
    pub x: f64,
    /// Estimated unsafety.
    pub y: f64,
    /// Confidence half-width on `y`.
    pub half_width: f64,
    /// Replications behind the point.
    pub samples: u64,
}

/// One labelled series of a figure (e.g. `n=8`, `λ=1e-5`, `DD`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// The points, ascending in `x`.
    pub points: Vec<SeriesPoint>,
}

/// A reproduced figure or table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FigureResult {
    /// Identifier, e.g. `fig10`.
    pub id: String,
    /// Human-readable description.
    pub title: String,
    /// Name of the x-axis.
    pub x_label: String,
    /// The series.
    pub series: Vec<Series>,
}

/// Execution configuration shared by every experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunConfig {
    /// Replications per evaluated point when `paper_precision` is off.
    pub replications: u64,
    /// Use the paper's sequential stopping rule (≥10 000 replications,
    /// 95% / 0.1 relative) instead of a fixed count.
    pub paper_precision: bool,
    /// Master seed.
    pub seed: u64,
    /// Worker threads (0 = all cores).
    pub threads: usize,
}

impl RunConfig {
    /// A quick configuration for smoke runs and benches.
    pub fn quick() -> Self {
        RunConfig {
            replications: 6_000,
            paper_precision: false,
            seed: 2009,
            threads: 0,
        }
    }

    /// The paper's convergence criterion.
    pub fn paper() -> Self {
        RunConfig {
            replications: 10_000,
            paper_precision: true,
            seed: 2009,
            threads: 0,
        }
    }

    /// Parses `--paper`, `--reps N`, `--seed S`, `--threads T` from
    /// command-line arguments (used by every `fig*` binary).
    pub fn from_args(args: &[String]) -> Self {
        let mut cfg = RunConfig::quick();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--paper" => cfg.paper_precision = true,
                "--reps" => {
                    i += 1;
                    cfg.replications = args[i].parse().expect("--reps takes an integer");
                }
                "--seed" => {
                    i += 1;
                    cfg.seed = args[i].parse().expect("--seed takes an integer");
                }
                "--threads" => {
                    i += 1;
                    cfg.threads = args[i].parse().expect("--threads takes an integer");
                }
                other => {
                    panic!("unknown argument `{other}` (expected --paper/--reps/--seed/--threads)")
                }
            }
            i += 1;
        }
        cfg
    }

    /// Builds the evaluator for one experiment point.
    pub(crate) fn evaluator(&self, params: Params, salt: u64) -> UnsafetyEvaluator {
        let mut e = UnsafetyEvaluator::new(params).with_seed(self.seed ^ salt);
        e = if self.paper_precision {
            e.with_rule(
                StoppingRule::relative_precision(0.95, 0.1)
                    .with_min_samples(10_000)
                    .with_max_samples(2_000_000),
            )
        } else {
            e.with_replications(self.replications)
        };
        if self.threads > 0 {
            e = e.with_threads(self.threads);
        }
        e
    }
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig::quick()
    }
}

/// Runs one `S(t)` curve.
pub(crate) fn curve(
    cfg: &RunConfig,
    params: Params,
    grid: &TimeGrid,
    label: impl Into<String>,
    salt: u64,
) -> Result<Series, AhsError> {
    let result = cfg.evaluator(params, salt).evaluate(grid)?;
    Ok(Series {
        label: label.into(),
        points: result
            .points()
            .iter()
            .map(|p| SeriesPoint {
                x: p.x,
                y: p.y,
                half_width: p.half_width,
                samples: p.samples,
            })
            .collect(),
    })
}

/// Runs a `S(t_fixed)`-versus-`n` series.
pub(crate) fn versus_n(
    cfg: &RunConfig,
    base: impl Fn(usize) -> Params,
    ns: &[usize],
    t_hours: f64,
    label: impl Into<String>,
    salt: u64,
) -> Result<Series, AhsError> {
    let grid = TimeGrid::new(vec![t_hours]);
    let mut points = Vec::with_capacity(ns.len());
    for (i, &n) in ns.iter().enumerate() {
        let result = cfg
            .evaluator(base(n), salt.wrapping_add(i as u64))
            .evaluate(&grid)?;
        let p = result.points()[0];
        points.push(SeriesPoint {
            x: n as f64,
            y: p.y,
            half_width: p.half_width,
            samples: p.samples,
        });
    }
    Ok(Series {
        label: label.into(),
        points,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arg_parsing() {
        let cfg = RunConfig::from_args(&[
            "--paper".into(),
            "--reps".into(),
            "123".into(),
            "--seed".into(),
            "9".into(),
            "--threads".into(),
            "2".into(),
        ]);
        assert!(cfg.paper_precision);
        assert_eq!(cfg.replications, 123);
        assert_eq!(cfg.seed, 9);
        assert_eq!(cfg.threads, 2);
    }

    #[test]
    #[should_panic(expected = "unknown argument")]
    fn unknown_arg_rejected() {
        RunConfig::from_args(&["--bogus".into()]);
    }

    #[test]
    fn quick_and_paper_presets_differ() {
        assert!(!RunConfig::quick().paper_precision);
        assert!(RunConfig::paper().paper_precision);
    }
}
