//! Estimates end-to-end maneuver durations from the kinematic
//! substrate, justifying the paper's 15-30/hr maneuver rates.

use ahs_bench::maneuver_durations;
use ahs_stats::format_markdown;

fn main() {
    println!("### Maneuver durations from the kinematic substrate\n");
    print!("{}", format_markdown(&maneuver_durations(400, 42)));
}
