//! Estimates end-to-end maneuver durations from the kinematic
//! substrate, justifying the paper's 15-30/hr maneuver rates.

use ahs_bench::{maneuver_durations, write_manifest};
use ahs_obs::{Json, RunManifest};
use ahs_stats::format_markdown;

fn main() {
    let start = std::time::Instant::now();
    let samples = 400u32;
    let seed = 42u64;
    let table = maneuver_durations(samples, seed);
    println!("### Maneuver durations from the kinematic substrate\n");
    print!("{}", format_markdown(&table));

    let mut m = RunManifest::new("ahs-bench durations", "durations", seed);
    m.params = Json::obj(vec![("samples", Json::UInt(u64::from(samples)))]);
    m.replications = u64::from(samples) * 6;
    m.wall_seconds = start.elapsed().as_secs_f64();
    let path = write_manifest(&m, std::path::Path::new("results")).expect("write manifest");
    eprintln!("wrote {}", path.display());
}
