//! Extension experiment: highways of 2-4 platoons (the paper's stated
//! future work). Flags: --paper --reps N --seed S --threads T.

use ahs_bench::{ext_platoons, figure_to_markdown, write_results, RunConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = RunConfig::from_args(&args);
    let fig = ext_platoons(&cfg).expect("experiment failed");
    print!("{}", figure_to_markdown(&fig));
    let path = write_results(&fig, std::path::Path::new("results")).expect("write results");
    eprintln!("wrote {}", path.display());
}
