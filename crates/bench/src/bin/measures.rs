//! Secondary trip measures (maneuvers per trip, recovery occupancy,
//! vehicles lost) across the paper's lambda range.
//! Flags: --reps N --seed S

use ahs_bench::write_manifest;
use ahs_core::{trip_measures, Params};
use ahs_obs::{EstimatePoint, RunManifest};
use ahs_stats::{format_markdown, Table};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut reps: u64 = 4_000;
    let mut seed: u64 = 2009;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--reps" => {
                i += 1;
                reps = args[i].parse().expect("--reps takes an integer");
            }
            "--seed" => {
                i += 1;
                seed = args[i].parse().expect("--seed takes an integer");
            }
            other => panic!("unknown argument `{other}`"),
        }
        i += 1;
    }

    let start = std::time::Instant::now();
    let mut manifest = RunManifest::new("ahs-bench measures", "measures", seed);
    let mut t = Table::new(vec![
        "lambda (/hr)".into(),
        "E[maneuvers]/trip".into(),
        "recovery time fraction".into(),
        "E[vehicles lost]/trip".into(),
    ]);
    for lambda in [1e-5, 1e-4, 1e-3, 1e-2] {
        let params = Params::builder().n(10).lambda(lambda).build().unwrap();
        let m = trip_measures(&params, 10.0, reps, seed).expect("measure estimation failed");
        manifest.params = params.to_json();
        for (series, y, hw) in [
            (
                "expected_maneuvers",
                m.expected_maneuvers,
                m.expected_maneuvers_hw,
            ),
            (
                "recovery_time_fraction",
                m.recovery_time_fraction,
                m.recovery_time_fraction_hw,
            ),
            (
                "expected_vehicles_lost",
                m.expected_vehicles_lost,
                m.expected_vehicles_lost_hw,
            ),
        ] {
            manifest.estimates.push(EstimatePoint {
                series: series.to_owned(),
                x: lambda,
                y,
                half_width: hw,
                samples: reps,
            });
        }
        manifest.replications += reps;
        t.push_row(vec![
            format!("{lambda:.0e}"),
            format!(
                "{:.3e} ± {:.1e}",
                m.expected_maneuvers, m.expected_maneuvers_hw
            ),
            format!(
                "{:.3e} ± {:.1e}",
                m.recovery_time_fraction, m.recovery_time_fraction_hw
            ),
            format!(
                "{:.3e} ± {:.1e}",
                m.expected_vehicles_lost, m.expected_vehicles_lost_hw
            ),
        ])
        .expect("row width matches header");
    }
    println!("### Secondary trip measures (n = 10, 10 h trip)\n");
    print!("{}", format_markdown(&t));

    manifest.wall_seconds = start.elapsed().as_secs_f64();
    let path = write_manifest(&manifest, std::path::Path::new("results")).expect("write manifest");
    eprintln!("wrote {}", path.display());
}
