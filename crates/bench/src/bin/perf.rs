//! Simulator throughput baseline: fixed-seed SSA / event-driven
//! campaigns on the paper's models, timed and written to a
//! machine-readable `BENCH_ssa.json` so successive PRs can track the
//! trajectory (see `docs/performance.md`).
//!
//! Flags:
//!   --quick                 small campaign for CI smoke runs
//!   --reps N                replications per timing sample
//!   --repeats R             timing samples per campaign (median + MAD)
//!   --out PATH              output path (default `BENCH_ssa.json`)
//!   --baseline PATH         committed baseline to compare against
//!   --max-regression F      fail (exit 1) if baseline is F× faster
//!
//! Every campaign replays the identical replication streams
//! (`replication_rng(seed, rep)`), so event counts are bit-for-bit
//! reproducible and wall-clock is the only varying quantity.

use std::path::{Path, PathBuf};
use std::time::Instant;

use ahs_core::{AhsModel, Params, Strategy};
use ahs_des::{replication_rng, BiasScheme, EventDrivenSimulator, MarkovSimulator};
use ahs_obs::Json;

/// Fixed seed for every campaign; chosen once, never changed, so the
/// numbers in `BENCH_ssa.json` stay comparable across PRs.
const SEED: u64 = 20_090_629;

struct Campaign {
    /// Stable identifier (key in `BENCH_ssa.json`).
    name: &'static str,
    strategy: Strategy,
    /// Importance-sampling boost on failure activities; 1.0 = unbiased.
    boost: f64,
    /// Simulator backend: SSA (Markov) or the event-driven executor.
    event_driven: bool,
}

const CAMPAIGNS: [Campaign; 3] = [
    Campaign {
        name: "dd2_ssa",
        strategy: Strategy::Dd,
        boost: 600.0,
        event_driven: false,
    },
    Campaign {
        name: "cc2_ssa",
        strategy: Strategy::Cc,
        boost: 600.0,
        event_driven: false,
    },
    Campaign {
        name: "dd2_event",
        strategy: Strategy::Dd,
        boost: 1.0,
        event_driven: true,
    },
];

struct Sample {
    steps: u64,
    seconds: f64,
}

/// One timing sample: `reps` fixed-seed replications, returning the
/// total timed-event count and the elapsed wall-clock.
fn run_once(model: &AhsModel, campaign: &Campaign, reps: u64, horizon: f64) -> Sample {
    let h = model.handles();
    let san = model.san();
    let start = Instant::now();
    let mut steps = 0_u64;
    if campaign.event_driven {
        let sim = EventDrivenSimulator::new(san);
        for rep in 0..reps {
            let mut rng = replication_rng(SEED, rep);
            let out = sim
                .run_first_passage(|m| m.is_marked(h.ko_total), horizon, &mut rng)
                .expect("perf replication failed");
            steps += out.events;
        }
    } else {
        let mut sim = MarkovSimulator::new(san).expect("paper models are Markovian");
        if campaign.boost != 1.0 {
            let scheme = BiasScheme::new()
                .with_multipliers(h.failure_activities.iter().copied(), campaign.boost);
            sim = sim.with_bias(scheme);
        }
        for rep in 0..reps {
            let mut rng = replication_rng(SEED, rep);
            let out = sim
                .run_first_passage(|m| m.is_marked(h.ko_total), horizon, &mut rng)
                .expect("perf replication failed");
            steps += out.events;
        }
    }
    Sample {
        steps,
        seconds: start.elapsed().as_secs_f64(),
    }
}

fn median(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

/// Median and median-absolute-deviation of a sample set.
fn median_mad(samples: &[f64]) -> (f64, f64) {
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("throughput is finite"));
    let med = median(&sorted);
    let mut dev: Vec<f64> = sorted.iter().map(|x| (x - med).abs()).collect();
    dev.sort_by(|a, b| a.partial_cmp(b).expect("deviation is finite"));
    (med, median(&dev))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut reps: u64 = 2000;
    let mut repeats: usize = 5;
    let mut out = PathBuf::from("BENCH_ssa.json");
    let mut baseline: Option<PathBuf> = None;
    let mut max_regression: f64 = 2.0;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => {
                reps = 300;
                repeats = 3;
            }
            "--reps" => {
                i += 1;
                reps = args[i].parse().expect("--reps takes an integer");
            }
            "--repeats" => {
                i += 1;
                repeats = args[i].parse().expect("--repeats takes an integer");
            }
            "--out" => {
                i += 1;
                out = PathBuf::from(&args[i]);
            }
            "--baseline" => {
                i += 1;
                baseline = Some(PathBuf::from(&args[i]));
            }
            "--max-regression" => {
                i += 1;
                max_regression = args[i].parse().expect("--max-regression takes a number");
            }
            other => panic!("unknown argument `{other}`"),
        }
        i += 1;
    }
    let horizon = 10.0;

    let mut results: Vec<(String, Json)> = Vec::new();
    let mut current: Vec<(&'static str, f64)> = Vec::new();
    for campaign in &CAMPAIGNS {
        let params = Params::builder()
            .n(8)
            .lambda(1e-5)
            .strategy(campaign.strategy)
            .build()
            .expect("nominal perf parameters are valid");
        let model = AhsModel::build(&params).expect("paper model builds");

        // Warmup: populate caches, page in the model, settle the clock.
        let warm = run_once(&model, campaign, reps.min(200), horizon);
        let mut throughput = Vec::with_capacity(repeats);
        let mut steps = warm.steps;
        for _ in 0..repeats {
            let s = run_once(&model, campaign, reps, horizon);
            throughput.push(s.steps as f64 / s.seconds);
            steps = s.steps;
        }
        let (med, mad) = median_mad(&throughput);
        println!(
            "{:>10}: {:>12.0} steps/s (MAD {:.0}), {} steps / {} reps",
            campaign.name, med, mad, steps, reps
        );
        current.push((campaign.name, med));
        results.push((
            campaign.name.to_owned(),
            Json::obj(vec![
                ("steps_per_sec_median", Json::Num(med)),
                ("steps_per_sec_mad", Json::Num(mad)),
                (
                    "samples",
                    Json::Arr(throughput.iter().map(|&x| Json::Num(x)).collect()),
                ),
                ("steps_per_pass", Json::UInt(steps)),
                ("reps", Json::UInt(reps)),
            ]),
        ));
    }

    let doc = Json::obj(vec![
        ("schema", Json::str("ahs-bench-perf/v1")),
        ("seed", Json::UInt(SEED)),
        ("horizon_hours", Json::Num(horizon)),
        ("n", Json::UInt(8)),
        ("repeats", Json::UInt(repeats as u64)),
        ("campaigns", Json::Obj(results)),
    ]);
    std::fs::write(&out, doc.render() + "\n").expect("write benchmark output");
    eprintln!("wrote {}", out.display());

    if let Some(path) = baseline {
        std::process::exit(check_regression(&path, &current, max_regression));
    }
}

/// Compares current medians against a committed baseline; returns a
/// process exit code (0 = ok, 1 = regression beyond the allowance).
fn check_regression(path: &Path, current: &[(&str, f64)], max_regression: f64) -> i32 {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!(
                "no baseline at {} ({e}); skipping comparison",
                path.display()
            );
            return 0;
        }
    };
    let doc = match Json::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("unreadable baseline {}: {e}", path.display());
            return 0;
        }
    };
    let mut failed = false;
    for (name, now) in current {
        let base = doc
            .get("campaigns")
            .and_then(|c| c.get(name))
            .and_then(|c| c.get("steps_per_sec_median"))
            .and_then(Json::as_f64);
        let Some(base) = base else {
            eprintln!("baseline has no campaign `{name}`; skipping");
            continue;
        };
        let ratio = base / now;
        let verdict = if ratio > max_regression {
            failed = true;
            "REGRESSION"
        } else {
            "ok"
        };
        eprintln!(
            "{name}: baseline {base:.0} steps/s, current {now:.0} steps/s ({ratio:.2}x) {verdict}"
        );
    }
    i32::from(failed)
}
