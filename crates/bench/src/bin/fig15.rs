//! Reproduces Figure 15 of the paper. Flags: --paper --reps N --seed S --threads T --telemetry PATH --progress
//! --checkpoint-dir DIR --checkpoint-every N (exit code 75 = interrupted, resumable).

use ahs_bench::{
    fig15, figure_to_markdown, run_exit_code, write_manifest, write_results, RunConfig,
};

fn main() -> std::process::ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = RunConfig::from_args(&args);
    cfg.arm_failpoints();
    let run = fig15(&cfg).expect("experiment failed");
    print!("{}", figure_to_markdown(&run.figure));
    let dir = std::path::Path::new("results");
    let path = write_results(&run.figure, dir).expect("write results");
    let mpath = write_manifest(&run.manifest, dir).expect("write manifest");
    eprintln!("wrote {} and {}", path.display(), mpath.display());
    run_exit_code(&run)
}
