//! Reproduces Figure 13 of the paper. Flags: --paper --reps N --seed S --threads T.

use ahs_bench::{fig13, figure_to_markdown, write_results, RunConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = RunConfig::from_args(&args);
    let fig = fig13(&cfg).expect("experiment failed");
    print!("{}", figure_to_markdown(&fig));
    let path = write_results(&fig, std::path::Path::new("results")).expect("write results");
    eprintln!("wrote {}", path.display());
}
