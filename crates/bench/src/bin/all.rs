//! Runs every table and figure reproduction, printing Markdown and
//! writing CSVs plus run manifests under results/.
//! Flags: --paper --reps N --seed S --threads T --telemetry PATH --progress
//! --checkpoint-dir DIR --checkpoint-every N (exit code 75 = interrupted, resumable).

use ahs_bench::{
    ext_platoons, fig10, fig11, fig12, fig13, fig14, fig15, figure_to_markdown, maneuver_durations,
    run_exit_code, tables, write_manifest, write_results, RunConfig,
};
use ahs_stats::format_markdown;

fn main() -> std::process::ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = RunConfig::from_args(&args);
    cfg.arm_failpoints();
    let dir = std::path::Path::new("results");

    let [t1, t2, t3] = tables();
    println!("### Table 1 — Failure modes and associated maneuvers\n");
    print!("{}", format_markdown(&t1));
    println!("\n### Table 2 — Catastrophic situations\n");
    print!("{}", format_markdown(&t2));
    println!("\n### Table 3 — Coordination strategies considered\n");
    print!("{}", format_markdown(&t3));
    println!("\n### Maneuver durations (kinematic substrate)\n");
    print!("{}", format_markdown(&maneuver_durations(400, cfg.seed)));
    println!();

    type FigFn = fn(&RunConfig) -> Result<ahs_bench::FigureRun, ahs_core::AhsError>;
    let figs: [(&str, FigFn); 7] = [
        ("fig10", fig10),
        ("fig11", fig11),
        ("fig12", fig12),
        ("fig13", fig13),
        ("fig14", fig14),
        ("fig15", fig15),
        ("ext_platoons", ext_platoons),
    ];
    for (name, f) in figs {
        eprintln!("running {name}...");
        let start = std::time::Instant::now();
        let run = f(&cfg).expect("experiment failed");
        println!("{}", figure_to_markdown(&run.figure));
        let path = write_results(&run.figure, dir).expect("write results");
        let mpath = write_manifest(&run.manifest, dir).expect("write manifest");
        eprintln!(
            "wrote {} and {} ({:.1}s)",
            path.display(),
            mpath.display(),
            start.elapsed().as_secs_f64()
        );
        if run.interrupted {
            // The flag stays raised, so later figures would spin up
            // only to stop immediately; bail out here instead.
            eprintln!("stopping after {name}");
            return run_exit_code(&run);
        }
    }
    std::process::ExitCode::SUCCESS
}
