//! Regenerates Tables 1-3 of the paper from the typed domain model.

use ahs_bench::{tables, write_manifest};
use ahs_obs::RunManifest;
use ahs_stats::format_markdown;

fn main() {
    let start = std::time::Instant::now();
    let [t1, t2, t3] = tables();
    println!("### Table 1 — Failure modes and associated maneuvers\n");
    print!("{}", format_markdown(&t1));
    println!("\n### Table 2 — Catastrophic situations\n");
    print!("{}", format_markdown(&t2));
    println!("\n### Table 3 — Coordination strategies considered\n");
    print!("{}", format_markdown(&t3));

    // Tables are deterministic (no simulation), but the manifest still
    // records the revision that generated them.
    let mut m = RunManifest::new("ahs-bench tables", "tables", 0);
    m.wall_seconds = start.elapsed().as_secs_f64();
    let path = write_manifest(&m, std::path::Path::new("results")).expect("write manifest");
    eprintln!("wrote {}", path.display());
}
