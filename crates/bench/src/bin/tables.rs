//! Regenerates Tables 1-3 of the paper from the typed domain model.

use ahs_bench::tables;
use ahs_stats::format_markdown;

fn main() {
    let [t1, t2, t3] = tables();
    println!("### Table 1 — Failure modes and associated maneuvers\n");
    print!("{}", format_markdown(&t1));
    println!("\n### Table 2 — Catastrophic situations\n");
    print!("{}", format_markdown(&t2));
    println!("\n### Table 3 — Coordination strategies considered\n");
    print!("{}", format_markdown(&t3));
}
