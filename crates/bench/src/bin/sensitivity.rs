//! Calibration-sensitivity sweep over the constants the paper does not
//! publish (maneuver base failure probability, impairment penalty).
//! Flags: --paper --reps N --seed S --threads T.

use ahs_bench::{figure_to_markdown, sensitivity, write_results, RunConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = RunConfig::from_args(&args);
    let fig = sensitivity(&cfg).expect("experiment failed");
    print!("{}", figure_to_markdown(&fig));
    let path = write_results(&fig, std::path::Path::new("results")).expect("write results");
    eprintln!("wrote {}", path.display());
}
