//! Diagnostic: importance-sampling fidelity across the trip horizon.
//!
//! Runs plain Monte Carlo and the biased estimator on the same
//! configuration in a regime where both have signal (λ large enough
//! for plain MC), printing S(t) side by side. A biased estimate that
//! sags below plain MC at late t indicates boost-induced tail
//! distortion (first catastrophes cluster early under bias, so late
//! increments get under-sampled).
//!
//! Flags: --reps N --seed S --lambda L --boost B

use std::sync::Arc;

use ahs_bench::write_manifest;
use ahs_core::{BiasMode, Params, UnsafetyEvaluator};
use ahs_obs::{EstimatePoint, Metrics};
use ahs_stats::TimeGrid;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut reps: u64 = 100_000;
    let mut seed: u64 = 1;
    let mut lambda = 2e-3;
    let mut boost: Option<f64> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--reps" => {
                i += 1;
                reps = args[i].parse().expect("--reps takes an integer");
            }
            "--seed" => {
                i += 1;
                seed = args[i].parse().expect("--seed takes an integer");
            }
            "--lambda" => {
                i += 1;
                lambda = args[i].parse().expect("--lambda takes a float");
            }
            "--boost" => {
                i += 1;
                boost = Some(args[i].parse().expect("--boost takes a float"));
            }
            other => panic!("unknown argument `{other}`"),
        }
        i += 1;
    }

    let start = std::time::Instant::now();
    let metrics = Arc::new(Metrics::new());
    let params = Params::builder().n(8).lambda(lambda).build().unwrap();
    let grid = TimeGrid::linspace(2.0, 10.0, 5);

    let plain = UnsafetyEvaluator::new(params.clone())
        .with_seed(seed)
        .with_replications(reps)
        .with_bias(BiasMode::None)
        .with_metrics(metrics.clone())
        .evaluate(&grid)
        .unwrap();

    let bias_mode = match boost {
        Some(b) => BiasMode::Fixed(b),
        None => BiasMode::Auto,
    };
    let biased_ev = UnsafetyEvaluator::new(params)
        .with_seed(seed + 1)
        .with_replications(reps)
        .with_bias(bias_mode)
        .with_metrics(metrics.clone());
    let biased = biased_ev.evaluate(&grid).unwrap();

    println!("lambda = {lambda:.1e}, reps = {reps} per estimator");
    println!("t(h)   plain MC               biased                 ratio");
    for (p, b) in plain.points().iter().zip(biased.points().iter()) {
        let ratio = if p.y > 0.0 { b.y / p.y } else { f64::NAN };
        println!(
            "{:>4}   {:.3e} ± {:.1e}   {:.3e} ± {:.1e}   {:.2}",
            p.x, p.y, p.half_width, b.y, b.half_width, ratio
        );
    }

    // The manifest is built from the biased evaluator (whose seed is
    // `seed + 1`) but records both series and the combined telemetry.
    let mut manifest = biased_ev.manifest("ahs-bench is_diagnostics", &biased, 0.0);
    manifest.model = "is_diagnostics".into();
    manifest.wall_seconds = start.elapsed().as_secs_f64();
    manifest.replications = plain.replications() + biased.replications();
    manifest.estimates = [("plain", &plain), ("biased", &biased)]
        .iter()
        .flat_map(|(series, curve)| {
            curve.points().iter().map(|p| EstimatePoint {
                series: (*series).to_owned(),
                x: p.x,
                y: p.y,
                half_width: p.half_width,
                samples: p.samples,
            })
        })
        .collect();
    let path = write_manifest(&manifest, std::path::Path::new("results")).expect("write manifest");
    eprintln!("wrote {}", path.display());
}
