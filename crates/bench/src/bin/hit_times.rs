//! Diagnostic: distribution of biased first-passage (hit) times and
//! population statistics of the AHS model under failure biasing.
//!
//! Flags: --boost B --lambda L --reps N --horizon H

use ahs_bench::write_manifest;
use ahs_core::{AhsModel, Params};
use ahs_des::{replication_rng, BiasScheme, MarkovSimulator};
use ahs_obs::{Json, RunManifest};
use ahs_stats::Histogram;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut boost = 600.0;
    let mut lambda = 1e-5;
    let mut reps: u64 = 4000;
    let mut horizon = 10.0;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--boost" => {
                i += 1;
                boost = args[i].parse().unwrap();
            }
            "--lambda" => {
                i += 1;
                lambda = args[i].parse().unwrap();
            }
            "--reps" => {
                i += 1;
                reps = args[i].parse().unwrap();
            }
            "--horizon" => {
                i += 1;
                horizon = args[i].parse().unwrap();
            }
            other => panic!("unknown argument `{other}`"),
        }
        i += 1;
    }

    let start = std::time::Instant::now();
    let params = Params::builder().n(8).lambda(lambda).build().unwrap();
    let model = AhsModel::build(&params).unwrap();
    let h = model.handles().clone();
    let scheme = BiasScheme::new().with_multipliers(h.failure_activities.iter().copied(), boost);
    let sim = MarkovSimulator::new(model.san()).unwrap().with_bias(scheme);

    let mut hits = Histogram::new(0.0, horizon, 10);
    let mut weights_by_bin = [0.0f64; 10];
    let mut no_hit = 0u64;
    let mut events_total = 0u64;
    for rep in 0..reps {
        let mut rng = replication_rng(99, rep);
        let out = sim
            .run_first_passage(|m| m.is_marked(h.ko_total), horizon, &mut rng)
            .unwrap();
        events_total += out.events;
        match out.hit_time {
            Some(t) => {
                hits.record(t);
                let bin = ((t / horizon * 10.0) as usize).min(9);
                weights_by_bin[bin] += out.hit_weight;
            }
            None => no_hit += 1,
        }
    }
    println!(
        "boost {boost}, lambda {lambda:.0e}: {} hits / {reps} reps ({} misses), mean events/rep {:.0}",
        hits.count(),
        no_hit,
        events_total as f64 / reps as f64
    );
    println!("bin(t)      hits   sum(weight)   S-contrib");
    for (b, w) in weights_by_bin.iter().enumerate() {
        println!(
            "[{:4.1},{:4.1})  {:5}   {:10.3e}   {:.3e}",
            b as f64 * horizon / 10.0,
            (b + 1) as f64 * horizon / 10.0,
            hits.bin_count(b),
            w,
            w / reps as f64
        );
    }

    let mut manifest = RunManifest::new("ahs-bench hit_times", "hit_times", 99);
    manifest.params = params.to_json();
    manifest.replications = reps;
    manifest.wall_seconds = start.elapsed().as_secs_f64();
    manifest.extra.push(("boost".into(), Json::Num(boost)));
    manifest.extra.push(("horizon".into(), Json::Num(horizon)));
    manifest
        .extra
        .push(("hits".into(), Json::UInt(hits.count())));
    manifest.extra.push(("misses".into(), Json::UInt(no_hit)));
    let path = write_manifest(&manifest, std::path::Path::new("results")).expect("write manifest");
    eprintln!("wrote {}", path.display());
}
