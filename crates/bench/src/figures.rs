//! One reproduction function per table and figure of the paper.

use ahs_core::{AhsError, FailureMode, Params, Strategy};
use ahs_platoon::{DurationModel, RecoveryManeuver};
use ahs_stats::{Table, TimeGrid};

use crate::runner::{curve, versus_n, FigTally, FigureResult, FigureRun, RunConfig};

/// The trip-duration grid used by the `S(t)`-versus-time figures
/// (2–10 hours, as in the paper).
fn trip_grid() -> TimeGrid {
    TimeGrid::new(vec![2.0, 4.0, 6.0, 8.0, 10.0])
}

/// Figure 10: `S(t)` versus trip duration for platoon capacities
/// n ∈ {8, 10, 12} (λ = 1e-5/hr, join 12/hr, leave 4/hr, strategy DD).
pub fn fig10(cfg: &RunConfig) -> Result<FigureRun, AhsError> {
    let mut tally = FigTally::new(cfg);
    let grid = trip_grid();
    let mut series = Vec::new();
    for n in [8usize, 10, 12] {
        let params = Params::builder().n(n).lambda(1e-5).build()?;
        series.push(curve(
            cfg,
            &mut tally,
            params,
            &grid,
            format!("n={n}"),
            0x10_00,
        )?);
    }
    Ok(tally.finish(
        cfg,
        FigureResult {
            id: "fig10".into(),
            title: "S(t) versus trip duration for different platoon capacities n".into(),
            x_label: "trip duration (h)".into(),
            series,
        },
    ))
}

/// Figure 11: `S(t)` versus trip duration for base failure rates
/// λ ∈ {1e-6, 1e-5, 1e-4} (n = 10).
pub fn fig11(cfg: &RunConfig) -> Result<FigureRun, AhsError> {
    let mut tally = FigTally::new(cfg);
    let grid = trip_grid();
    let mut series = Vec::new();
    for lambda in [1e-6, 1e-5, 1e-4] {
        let params = Params::builder().n(10).lambda(lambda).build()?;
        series.push(curve(
            cfg,
            &mut tally,
            params,
            &grid,
            format!("lambda={lambda:.0e}"),
            0x11_00,
        )?);
    }
    Ok(tally.finish(
        cfg,
        FigureResult {
            id: "fig11".into(),
            title: "S(t) versus trip duration for different base failure rates".into(),
            x_label: "trip duration (h)".into(),
            series,
        },
    ))
}

/// Figure 12: `S(6h)` versus platoon capacity n ∈ {10, 12, 14, 16, 18}
/// for λ ∈ {1e-6, 1e-5, 1e-4}.
pub fn fig12(cfg: &RunConfig) -> Result<FigureRun, AhsError> {
    let mut tally = FigTally::new(cfg);
    let ns = [10usize, 12, 14, 16, 18];
    let mut series = Vec::new();
    for lambda in [1e-6, 1e-5, 1e-4] {
        series.push(versus_n(
            cfg,
            &mut tally,
            |n| {
                Params::builder()
                    .n(n)
                    .lambda(lambda)
                    .build()
                    .expect("valid parameters")
            },
            &ns,
            6.0,
            format!("lambda={lambda:.0e}"),
            0x12_00,
        )?);
    }
    Ok(tally.finish(
        cfg,
        FigureResult {
            id: "fig12".into(),
            title: "S(6h) versus platoon capacity n for different failure rates".into(),
            x_label: "max vehicles per platoon n".into(),
            series,
        },
    ))
}

/// Figure 13: `S(t)` versus trip duration for system loads
/// ρ = join/leave ∈ {1, 2} with several (join, leave) pairs
/// (n = 8, λ = 1e-5).
pub fn fig13(cfg: &RunConfig) -> Result<FigureRun, AhsError> {
    let mut tally = FigTally::new(cfg);
    let grid = trip_grid();
    let pairs = [
        (4.0, 4.0),
        (8.0, 8.0),
        (12.0, 12.0),
        (8.0, 4.0),
        (16.0, 8.0),
        (24.0, 12.0),
    ];
    let mut series = Vec::new();
    for (join, leave) in pairs {
        let params = Params::builder()
            .n(8)
            .lambda(1e-5)
            .join_rate(join)
            .leave_rate(leave)
            .build()?;
        let rho = join / leave;
        series.push(curve(
            cfg,
            &mut tally,
            params,
            &grid,
            format!("rho={rho:.0} join={join:.0} leave={leave:.0}"),
            0x13_00,
        )?);
    }
    Ok(tally.finish(
        cfg,
        FigureResult {
            id: "fig13".into(),
            title: "S(t) versus trip duration for different join and leave rates".into(),
            x_label: "trip duration (h)".into(),
            series,
        },
    ))
}

/// Figure 14: `S(t)` versus trip duration for the four coordination
/// strategies (n = 10, λ = 1e-5).
pub fn fig14(cfg: &RunConfig) -> Result<FigureRun, AhsError> {
    let mut tally = FigTally::new(cfg);
    let grid = trip_grid();
    let mut series = Vec::new();
    for strategy in Strategy::ALL {
        let params = Params::builder()
            .n(10)
            .lambda(1e-5)
            .strategy(strategy)
            .build()?;
        series.push(curve(
            cfg,
            &mut tally,
            params,
            &grid,
            strategy.name(),
            0x14_00,
        )?);
    }
    Ok(tally.finish(
        cfg,
        FigureResult {
            id: "fig14".into(),
            title: "S(t) versus trip duration for the four coordination strategies".into(),
            x_label: "trip duration (h)".into(),
            series,
        },
    ))
}

/// Figure 15: `S(6h)` versus platoon capacity for the four strategies
/// (λ = 1e-5).
pub fn fig15(cfg: &RunConfig) -> Result<FigureRun, AhsError> {
    let mut tally = FigTally::new(cfg);
    let ns = [6usize, 8, 10, 12, 14];
    let mut series = Vec::new();
    for strategy in Strategy::ALL {
        series.push(versus_n(
            cfg,
            &mut tally,
            move |n| {
                Params::builder()
                    .n(n)
                    .lambda(1e-5)
                    .strategy(strategy)
                    .build()
                    .expect("valid parameters")
            },
            &ns,
            6.0,
            strategy.name(),
            0x15_00,
        )?);
    }
    Ok(tally.finish(
        cfg,
        FigureResult {
            id: "fig15".into(),
            title: "S(6h) versus platoon capacity n for the four strategies".into(),
            x_label: "max vehicles per platoon n".into(),
            series,
        },
    ))
}

/// Extension experiment (beyond the paper — its conclusion's "larger
/// number of platoons" future work): `S(t)` versus trip duration for
/// highways of 2, 3, and 4 platoons of up to 6 vehicles each
/// (λ = 1e-5, strategy DD).
pub fn ext_platoons(cfg: &RunConfig) -> Result<FigureRun, AhsError> {
    let mut tally = FigTally::new(cfg);
    let grid = trip_grid();
    let mut series = Vec::new();
    for platoons in [2usize, 3, 4] {
        let params = Params::builder()
            .n(6)
            .lambda(1e-5)
            .platoons(platoons)
            .build()?;
        series.push(curve(
            cfg,
            &mut tally,
            params,
            &grid,
            format!("platoons={platoons}"),
            0xE0_00,
        )?);
    }
    Ok(tally.finish(
        cfg,
        FigureResult {
            id: "ext_platoons".into(),
            title: "Extension: S(t) for highways of 2-4 platoons (n=6 each)".into(),
            x_label: "trip duration (h)".into(),
            series,
        },
    ))
}

/// Sensitivity of the reproduction to the calibration constants the
/// paper does not publish (DESIGN.md substitution 3): the baseline
/// maneuver failure probability and the impairment penalty. Runs at
/// λ = 1e-4 (a faster regime than the paper's default) so the sweep
/// stays cheap; the *shape* conclusions of Figures 10–15 should be
/// robust across this grid.
pub fn sensitivity(cfg: &RunConfig) -> Result<FigureRun, AhsError> {
    let mut tally = FigTally::new(cfg);
    let grid = TimeGrid::new(vec![6.0]);
    let mut series = Vec::new();
    for penalty in [0.05, 0.10, 0.20] {
        let mut points = Vec::new();
        for base in [0.01, 0.05, 0.10, 0.20] {
            let params = Params::builder()
                .n(8)
                .lambda(1e-4)
                .maneuver_base_failure(base)
                .impairment_penalty(penalty)
                .build()?;
            let ev = tally.evaluator(cfg, params, 0x5E_00);
            let result = ev.evaluate(&grid)?;
            tally.absorb(&format!("penalty={penalty}/base={base}"), &ev, &result);
            let p = result.points()[0];
            points.push(crate::runner::SeriesPoint {
                x: base,
                y: p.y,
                half_width: p.half_width,
                samples: p.samples,
            });
        }
        series.push(crate::runner::Series {
            label: format!("penalty={penalty}"),
            points,
        });
    }
    Ok(tally.finish(
        cfg,
        FigureResult {
            id: "sensitivity".into(),
            title: "Calibration sensitivity: S(6h) versus maneuver base failure \
                    probability, per impairment penalty (n=8, lambda=1e-4)"
                .into(),
            x_label: "maneuver base failure probability".into(),
            series,
        },
    ))
}

/// Regenerates Tables 1–3 from the typed domain model.
pub fn tables() -> [Table; 3] {
    // Table 1: failure modes and associated maneuvers.
    let mut t1 = Table::new(vec![
        "Failure mode".into(),
        "Example of cause".into(),
        "Severity class".into(),
        "Associated maneuver".into(),
        "Rate".into(),
    ]);
    for fm in FailureMode::ALL {
        t1.push_row(vec![
            fm.to_string(),
            fm.example_cause().into(),
            format!("{:?}", fm.severity()),
            format!(
                "{} ({})",
                maneuver_long_name(fm.maneuver()),
                fm.maneuver().abbreviation()
            ),
            format!("{}λ", fm.rate_multiplier()),
        ])
        .expect("row width matches header");
    }

    // Table 2: catastrophic situations.
    let mut t2 = Table::new(vec!["Situation".into(), "Description".into()]);
    for s in ahs_core::CatastrophicSituation::ALL {
        t2.push_row(vec![s.to_string(), s.description().into()])
            .expect("row width matches header");
    }

    // Table 3: coordination strategies.
    let mut t3 = Table::new(vec![
        "Strategy".into(),
        "Inter-platoon model".into(),
        "Intra-platoon model".into(),
    ]);
    for s in Strategy::ALL {
        t3.push_row(vec![
            s.to_string(),
            format!("{:?}", s.inter()),
            format!("{:?}", s.intra()),
        ])
        .expect("row width matches header");
    }
    [t1, t2, t3]
}

/// Reproduces the §4.1 maneuver-rate justification from the kinematic
/// substrate: estimated end-to-end durations and implied rates for all
/// six maneuvers.
pub fn maneuver_durations(samples: u32, seed: u64) -> Table {
    let model = DurationModel::default();
    let mut t = Table::new(vec![
        "Maneuver".into(),
        "Mean duration (s)".into(),
        "Std (s)".into(),
        "Rate (/hr)".into(),
        "In 2-4 min window".into(),
    ]);
    for (m, stats) in model.estimate_all(samples, seed) {
        t.push_row(vec![
            m.abbreviation().into(),
            format!("{:.1}", stats.mean_seconds),
            format!("{:.1}", stats.std_seconds),
            format!("{:.1}", stats.rate_per_hour()),
            format!(
                "{}",
                stats.mean_seconds >= 120.0 && stats.mean_seconds <= 240.0
            ),
        ])
        .expect("row width matches header");
    }
    t
}

fn maneuver_long_name(m: RecoveryManeuver) -> &'static str {
    match m {
        RecoveryManeuver::AidedStop => "Aided Stop",
        RecoveryManeuver::CrashStop => "Crash Stop",
        RecoveryManeuver::GentleStop => "Gentle Stop",
        RecoveryManeuver::TakeImmediateExit => "Take Immediate Exit",
        RecoveryManeuver::TakeImmediateExitEscorted => "Take Immediate Exit-Escorted",
        RecoveryManeuver::TakeImmediateExitNormal => "Take Immediate Exit-Normal",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_reproduce_the_paper() {
        let [t1, t2, t3] = tables();
        assert_eq!(t1.len(), 6);
        assert_eq!(t2.len(), 3);
        assert_eq!(t3.len(), 4);
        // Table 1 spot checks.
        assert_eq!(t1.rows()[0][0], "FM1");
        assert_eq!(t1.rows()[0][1], "no brakes");
        assert!(t1.rows()[0][3].contains("AS"));
        assert_eq!(t1.rows()[5][4], "4λ");
        // Table 3 spot checks.
        assert_eq!(t3.rows()[0][0], "DD");
        assert_eq!(t3.rows()[3][1], "Centralized");
    }

    #[test]
    fn duration_table_has_all_maneuvers() {
        let t = maneuver_durations(40, 1);
        assert_eq!(t.len(), 6);
        let abbrs: Vec<&str> = t.rows().iter().map(|r| r[0].as_str()).collect();
        for a in ["AS", "CS", "GS", "TIE", "TIE-E", "TIE-N"] {
            assert!(abbrs.contains(&a), "{a} missing");
        }
    }

    #[test]
    fn tiny_fig10_runs_end_to_end() {
        // Smoke test at miniature scale: structure only.
        let cfg = RunConfig {
            replications: 200,
            paper_precision: false,
            seed: 1,
            threads: 2,
            ..RunConfig::quick()
        };
        let run = fig10(&cfg).unwrap();
        assert_eq!(run.figure.series.len(), 3);
        for s in &run.figure.series {
            assert_eq!(s.points.len(), 5);
            assert_eq!(s.points[0].x, 2.0);
            assert_eq!(s.points[4].x, 10.0);
        }
        // The manifest carries the full provenance of the figure.
        let m = &run.manifest;
        assert_eq!(m.seed, 1);
        assert_eq!(m.threads, 2);
        assert_eq!(m.replications, 3 * 200);
        assert_eq!(m.estimates.len(), 15);
        let snap = m.metrics.as_ref().expect("metrics snapshot attached");
        assert_eq!(snap.replications, 3 * 200);
        let rendered = m.render();
        assert!(rendered.contains("\"schema\":\"ahs-run-manifest/v1\""));
        assert!(rendered.contains("\"lambda\":0.00001"));
    }
}
