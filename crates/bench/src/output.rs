//! Rendering and persisting experiment results.
//!
//! All artifacts go to disk through [`ahs_obs::write_with_retry`]
//! (temp file + rename, with bounded deterministic backoff on
//! transient errors): a crash or interrupt mid-write can never leave
//! a truncated CSV or manifest behind, and a transient ENOSPC/EINTR
//! does not lose an hours-long sweep's results.

use std::path::Path;
use std::process::ExitCode;

use ahs_obs::{write_with_retry, RunManifest, RunOutcome};
use ahs_stats::{format_csv, format_markdown, Table};

use crate::runner::{FigureResult, FigureRun};

/// Renders a figure as a Markdown table: one row per x value, one
/// column per series (with ± half-width).
pub fn figure_to_markdown(fig: &FigureResult) -> String {
    let mut out = format!("### {} — {}\n\n", fig.id, fig.title);
    out.push_str(&format_markdown(&figure_table(fig)));
    out
}

/// Renders a figure as CSV (`x, <label>, <label>_hw, ...`).
pub fn figure_to_csv(fig: &FigureResult) -> String {
    format_csv(&figure_table(fig))
}

fn figure_table(fig: &FigureResult) -> Table {
    let mut header = vec![fig.x_label.clone()];
    for s in &fig.series {
        header.push(s.label.clone());
        header.push(format!("{}_hw", s.label));
    }
    let mut table = Table::new(header);

    // Union of x values across series (they normally coincide).
    let mut xs: Vec<f64> = fig
        .series
        .iter()
        .flat_map(|s| s.points.iter().map(|p| p.x))
        .collect();
    xs.sort_by(|a, b| a.partial_cmp(b).expect("x values are finite"));
    xs.dedup();

    for &x in &xs {
        let mut row = vec![format!("{x}")];
        for s in &fig.series {
            match s.points.iter().find(|p| p.x == x) {
                Some(p) => {
                    row.push(format!("{:.4e}", p.y));
                    row.push(format!("{:.2e}", p.half_width));
                }
                None => {
                    row.push(String::new());
                    row.push(String::new());
                }
            }
        }
        table.push_row(row).expect("row width matches header");
    }
    table
}

/// Writes a figure's CSV atomically under `dir/<id>.csv` and returns
/// the path.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_results(fig: &FigureResult, dir: &Path) -> std::io::Result<std::path::PathBuf> {
    let path = dir.join(format!("{}.csv", fig.id));
    write_with_retry(&path, figure_to_csv(fig).as_bytes())?;
    Ok(path)
}

/// Writes a run manifest under `dir/<model>.manifest.json` and returns
/// the path.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_manifest(manifest: &RunManifest, dir: &Path) -> std::io::Result<std::path::PathBuf> {
    let path = dir.join(format!("{}.manifest.json", manifest.model));
    manifest.write(&path)?;
    Ok(path)
}

/// Standard fig-binary epilogue: maps an interrupted (partial but
/// checkpointed) run to exit code [`ahs_obs::EXIT_INTERRUPTED`] with a
/// resume hint on stderr, and a complete run to success (the shared
/// [`RunOutcome`] policy).
pub fn run_exit_code(run: &FigureRun) -> ExitCode {
    if run.interrupted {
        eprintln!(
            "interrupted: results are partial; rerun with the same flags \
             and --checkpoint-dir to resume"
        );
    }
    RunOutcome::of_interrupted(run.interrupted).exit_code()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{Series, SeriesPoint};

    fn sample_fig() -> FigureResult {
        FigureResult {
            id: "figX".into(),
            title: "test".into(),
            x_label: "t".into(),
            series: vec![Series {
                label: "a".into(),
                points: vec![
                    SeriesPoint {
                        x: 1.0,
                        y: 0.5,
                        half_width: 0.01,
                        samples: 10,
                    },
                    SeriesPoint {
                        x: 2.0,
                        y: 0.75,
                        half_width: 0.02,
                        samples: 10,
                    },
                ],
            }],
        }
    }

    #[test]
    fn markdown_contains_header_and_values() {
        let md = figure_to_markdown(&sample_fig());
        assert!(md.contains("### figX"));
        assert!(md.contains("| t | a | a_hw |"));
        assert!(md.contains("5.0000e-1"));
    }

    #[test]
    fn csv_roundtrip_to_disk() {
        let dir = std::env::temp_dir().join("ahs_bench_test_output");
        let path = write_results(&sample_fig(), &dir).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("t,a,a_hw"));
        assert_eq!(content.lines().count(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }
}
