//! Experiment harness regenerating every table and figure of the
//! DSN 2009 AHS safety paper.
//!
//! Each `figNN` function reproduces the corresponding figure's study:
//! the same parameters, the same sweep, and the same output series
//! (trip duration on the x-axis, unsafety `S(t)` on the y-axis, or
//! platoon capacity `n` on the x-axis for the `S(6h)`-versus-`n`
//! figures). [`tables`] regenerates Tables 1–3 from the typed domain
//! model.
//!
//! Absolute values depend on calibration parameters the paper does not
//! publish (maneuver success probabilities — see DESIGN.md §2,
//! substitution 3), so EXPERIMENTS.md compares *shapes*: orderings,
//! growth factors, and crossovers.
//!
//! Binaries: `fig10` … `fig15`, `tables`, `durations`, and `all`
//! (everything, writing CSV files under `results/`).
//!
//! Every study binary also writes a `results/<id>.manifest.json`
//! provenance record — seed, parameters, stopping rule, git revision,
//! throughput, and the estimates themselves (see
//! `docs/observability.md`) — and accepts `--telemetry PATH` /
//! `--progress` for JSON-lines progress events, plus
//! `--checkpoint-dir DIR` / `--checkpoint-every N` for crash-safe
//! checkpoint/resume (an interrupted run exits with code 75 and a
//! rerun resumes bitwise-identically; see `docs/robustness.md`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod figures;
mod output;
mod runner;

pub use figures::{
    ext_platoons, fig10, fig11, fig12, fig13, fig14, fig15, maneuver_durations, sensitivity, tables,
};
pub use output::{figure_to_csv, figure_to_markdown, run_exit_code, write_manifest, write_results};
pub use runner::{FigureResult, FigureRun, RunConfig, Series, SeriesPoint};
