//! Chaos tier for the serving layer: a deterministic, serial sweep of
//! every `ahs-serve` failpoint (plus the lower-layer points the
//! supervisor's recovery story rides on), proving each injected fault
//! ends in a sanctioned outcome — a typed HTTP error, a *counted*
//! degradation, or a bitwise-identical (possibly resumed) job. Never a
//! hung connection, never a corrupted result.
//!
//! Runs only with the `inject` feature (`cargo test -p ahs-serve
//! --test chaos --features inject`). One `#[test]` because the
//! failpoint registry is process-global; together with the
//! `ahs-obs`/`ahs-des` sweep in `crates/des/tests/chaos.rs` it keeps
//! the catalog 100% covered (that sweep asserts every registered layer
//! has a sweep claiming it).

mod common;

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use ahs_core::{BiasMode, Params, UnsafetyCurve, UnsafetyEvaluator};
use ahs_obs::Json;
use ahs_serve::{ServeConfig, Server};
use ahs_stats::TimeGrid;
use common::*;

/// Arms the registry with `spec`; panics (failing the sweep) on a
/// malformed spec or a name missing from the catalog.
fn arm(spec: &str) {
    ahs_inject::configure_from_spec(spec).expect("chaos spec must parse");
}

/// Closes a scenario: every failpoint it armed must actually have been
/// evaluated, then the registry is cleared and the names marked
/// covered.
fn cover(covered: &mut HashSet<&'static str>, names: &[&'static str]) {
    for name in names {
        assert!(
            ahs_inject::hits(name) > 0,
            "scenario configured failpoint `{name}` but it never fired"
        );
        covered.insert(name);
    }
    ahs_inject::clear();
}

/// Baseline for the cache-bypass scenario, which needs params distinct
/// from the shared workload so the cache actually misses.
fn solo_lambda(lambda: f64, seed: u64, reps: u64, threads: usize) -> UnsafetyCurve {
    let params = Params::builder().n(N).lambda(lambda).build().unwrap();
    let grid = TimeGrid::linspace(HORIZON / POINTS as f64, HORIZON, POINTS);
    UnsafetyEvaluator::new(params)
        .with_seed(seed)
        .with_threads(threads)
        .with_replications(reps)
        .with_bias(BiasMode::None)
        .evaluate(&grid)
        .unwrap()
}

fn lambda_body(lambda: f64, seed: u64, reps: u64, threads: usize) -> String {
    format!(
        r#"{{"n":{N},"lambda":{lambda},"horizon":{HORIZON},"points":{POINTS},"reps":{reps},"seed":{seed},"threads":{threads},"plain":true}}"#
    )
}

fn submit_ok(addr: std::net::SocketAddr, body: &str) -> String {
    let (status, text) = request(addr, "POST", "/v1/jobs", body).expect("submit answered");
    assert_eq!(status, 202, "{text}");
    Json::parse(&text)
        .unwrap()
        .get("id")
        .and_then(Json::as_str)
        .unwrap()
        .to_owned()
}

const WAIT: Duration = Duration::from_secs(120);

#[test]
fn serve_chaos_sweep_covers_every_serve_failpoint() {
    let dir = state_dir("chaos");
    let mut covered: HashSet<&'static str> = HashSet::new();
    ahs_inject::clear();

    let mut config = ServeConfig::new(&dir);
    config.addr = "127.0.0.1:0".to_owned();
    config.workers = 2;
    // Small flush cadence so the mid-run crash scenario has a
    // checkpoint to resume from (flushes land on chunk boundaries).
    config.checkpoint_every = 200;
    let server = Server::start(config, Arc::new(AtomicBool::new(false))).expect("server starts");
    let addr = server.local_addr();

    // --- serve::accept: the injected handoff failure drops the
    // connection immediately — the client sees EOF, never a hang — and
    // the loss is counted.
    arm("serve::accept=1*return(other)");
    assert!(
        request(addr, "GET", "/v1/healthz", "").is_none(),
        "faulted accept must close the connection without a response"
    );
    let health = get_json(addr, "/v1/healthz");
    assert_eq!(health.get("accept_faults").and_then(Json::as_u64), Some(1));
    cover(&mut covered, &["serve::accept"]);

    // --- serve::job::enqueue: admission failure is a typed 503; the
    // job is never half-admitted, and the next submission sails
    // through and finishes bitwise-identical to its solo baseline.
    arm("serve::job::enqueue=1*return(other)");
    let (status, body) = request(addr, "POST", "/v1/jobs", &job_body(51, 600, 2)).unwrap();
    assert_eq!(status, 503, "{body}");
    let health = get_json(addr, "/v1/healthz");
    assert_eq!(health.get("enqueue_faults").and_then(Json::as_u64), Some(1));
    assert_eq!(health.get("accepted").and_then(Json::as_u64), Some(0));
    let name = submit_ok(addr, &job_body(51, 600, 2));
    let doc = wait_for_state(addr, &name, "finished", WAIT);
    assert_eq!(status_bits(&doc), curve_bits(&solo(51, 600, 2)));
    cover(&mut covered, &["serve::job::enqueue"]);

    // --- serve::worker::spawn: the first attempt dies in a crash the
    // supervisor classifies as restartable; the restart is counted in
    // the status document and the finished job is bitwise-identical to
    // a crash-free run.
    arm("serve::worker::spawn=1*panic(spawn-chaos)");
    let name = submit_ok(addr, &job_body(61, 600, 2));
    let doc = wait_for_state(addr, &name, "finished", WAIT);
    assert!(
        doc.get("restarts").and_then(Json::as_u64) >= Some(1),
        "the injected spawn crash must consume a restart"
    );
    assert_eq!(status_bits(&doc), curve_bits(&solo(61, 600, 2)));
    let health = get_json(addr, "/v1/healthz");
    assert!(health.get("worker_restarts").and_then(Json::as_u64) >= Some(1));
    cover(&mut covered, &["serve::worker::spawn"]);

    // --- Mid-run crash + resume: a replication panic with a zero
    // quarantine budget kills the attempt *after* the chunk-1
    // checkpoint flushed (chunk 1000, panic at replication ~1501). The
    // supervisor restarts from the namespaced checkpoint and the
    // resumed job reports exactly the bits of an uninterrupted run,
    // with the resume recorded in its lineage.
    arm("des::replication::body=1500*off->1*panic(mid-run-chaos)");
    let name = submit_ok(addr, &job_body(71, 3000, 1));
    let doc = wait_for_state(addr, &name, "finished", WAIT);
    assert!(
        doc.get("restarts").and_then(Json::as_u64) >= Some(1),
        "the mid-run crash must consume a restart"
    );
    let lineage = doc.get("resume_lineage").and_then(Json::as_array).unwrap();
    assert!(
        !lineage.is_empty(),
        "the resumed attempt must record the checkpoint watermark it started from"
    );
    assert_eq!(
        status_bits(&doc),
        curve_bits(&solo(71, 3000, 1)),
        "resume after a mid-run crash must be bitwise-identical"
    );
    assert_eq!(doc.get("quarantined").and_then(Json::as_u64), Some(0));
    cover(&mut covered, &["des::replication::body"]);

    // --- serve::response::write: a faulted response write drops the
    // connection cleanly (EOF, not a hang), is counted, and leaves the
    // server fully responsive.
    arm("serve::response::write=1*return(broken-pipe)");
    assert!(
        request(addr, "GET", "/v1/jobs", "").is_none(),
        "faulted response write must close the connection without a response"
    );
    let health = get_json(addr, "/v1/healthz");
    assert!(health.get("responses_dropped").and_then(Json::as_u64) >= Some(1));
    cover(&mut covered, &["serve::response::write"]);

    // --- serve::cache::insert: failing to publish a freshly compiled
    // model is degradation, not failure — the job keeps its private
    // copy (bitwise-equivalent by construction), the bypass is
    // counted, and later jobs are unaffected.
    arm("serve::cache::insert=1*return(enospc)");
    let lambda = 6e-3;
    let a = submit_ok(addr, &lambda_body(lambda, 81, 600, 2));
    let b = submit_ok(addr, &lambda_body(lambda, 82, 600, 2));
    let doc_a = wait_for_state(addr, &a, "finished", WAIT);
    let doc_b = wait_for_state(addr, &b, "finished", WAIT);
    assert_eq!(
        status_bits(&doc_a),
        curve_bits(&solo_lambda(lambda, 81, 600, 2))
    );
    assert_eq!(
        status_bits(&doc_b),
        curve_bits(&solo_lambda(lambda, 82, 600, 2))
    );
    let health = get_json(addr, "/v1/healthz");
    assert!(health.get("cache_bypasses").and_then(Json::as_u64) >= Some(1));
    cover(&mut covered, &["serve::cache::insert"]);

    // --- obs::progress::emit through the service: a job whose
    // telemetry sink fails on every event still finishes with exact
    // estimates, and the loss surfaces as `telemetry_dropped` in the
    // job-status response — degradation is visible to clients, not
    // just counted internally.
    arm("obs::progress::emit=return(broken-pipe)");
    let name = submit_ok(addr, &job_body(91, 600, 2));
    let doc = wait_for_state(addr, &name, "finished", WAIT);
    assert!(
        doc.get("telemetry_dropped").and_then(Json::as_u64) > Some(0),
        "dropped telemetry must surface in the status document"
    );
    assert_eq!(status_bits(&doc), curve_bits(&solo(91, 600, 2)));
    cover(&mut covered, &["obs::progress::emit"]);

    // --- The sweep's reason to exist: every serve-layer failpoint was
    // exercised, and nothing was claimed that the catalog lacks.
    let serve_names: HashSet<&'static str> = ahs_inject::catalog()
        .iter()
        .filter(|d| d.layer == "ahs-serve")
        .map(|d| d.name)
        .collect();
    assert!(
        serve_names.len() >= 5,
        "serve catalog shrank: {serve_names:?}"
    );
    let missed: Vec<&&str> = serve_names.difference(&covered).collect();
    assert!(
        missed.is_empty(),
        "serve chaos sweep missed registered failpoint(s): {missed:?}"
    );
    let all: HashSet<&'static str> = ahs_inject::catalog().iter().map(|d| d.name).collect();
    assert!(covered.is_subset(&all));

    // Everything submitted under injection finished; the drain is
    // clean.
    server.stop_flag().store(true, Ordering::Relaxed);
    let report = server.join();
    assert_eq!(report.failed, 0);
    assert_eq!(report.unfinished, 0);
    assert_eq!(report.outcome().code(), 0);
    std::fs::remove_dir_all(&dir).ok();
}
