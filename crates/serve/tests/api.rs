//! HTTP API conformance: typed rejections at the door, explicit load
//! shedding, gated manifests, and status documents that carry every
//! key of the `ahs-serve-job/v1` schema in every phase
//! (`tests/serve-api.schema.json` is the source of truth).

mod common;

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use ahs_obs::Json;
use ahs_serve::{ServeConfig, Server};
use common::*;

fn start_with(mut tweak: impl FnMut(&mut ServeConfig), tag: &str) -> (Server, std::path::PathBuf) {
    let dir = state_dir(tag);
    let mut config = ServeConfig::new(&dir);
    config.addr = "127.0.0.1:0".to_owned();
    tweak(&mut config);
    let server = Server::start(config, Arc::new(AtomicBool::new(false))).expect("server starts");
    (server, dir)
}

/// Like `common::request` but keeps the raw head, for header checks.
fn request_raw(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let raw = format!(
        "{method} {path} HTTP/1.1\r\nhost: ahs-serve\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(raw.as_bytes()).unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    let status: u16 = response.split(' ').nth(1).unwrap().parse().unwrap();
    (status, response)
}

fn shutdown(server: Server) -> ahs_serve::DrainReport {
    server.stop_flag().store(true, Ordering::Relaxed);
    server.join()
}

#[test]
fn rejections_are_typed_and_counted() {
    let (server, dir) = start_with(|_| {}, "api-reject");
    let addr = server.local_addr();

    let (status, body) = request(addr, "POST", "/v1/jobs", "{not json").unwrap();
    assert_eq!(status, 400, "{body}");
    let (status, body) = request(addr, "POST", "/v1/jobs", r#"{"reps":0}"#).unwrap();
    assert_eq!(status, 400, "{body}");
    let (status, body) = request(addr, "POST", "/v1/jobs", r#"{"strategy":"zz"}"#).unwrap();
    assert_eq!(status, 400, "{body}");
    let (status, body) = request(addr, "POST", "/v1/jobs", r#"{"reps":3000000}"#).unwrap();
    assert_eq!(status, 422, "{body}");
    assert!(body.contains("admission policy"), "{body}");

    let (status, _) = request(addr, "GET", "/v1/jobs/job-999999", "").unwrap();
    assert_eq!(status, 404);
    let (status, _) = request(addr, "GET", "/v1/nope", "").unwrap();
    assert_eq!(status, 404);
    let (status, _) = request(addr, "DELETE", "/v1/jobs", "").unwrap();
    assert_eq!(status, 405);

    let health = get_json(addr, "/v1/healthz");
    assert_eq!(
        health.get("schema").and_then(Json::as_str),
        Some("ahs-serve-health/v1")
    );
    assert_eq!(health.get("status").and_then(Json::as_str), Some("ok"));
    assert_eq!(
        health.get("rejected_invalid").and_then(Json::as_u64),
        Some(3)
    );
    assert_eq!(
        health.get("rejected_policy").and_then(Json::as_u64),
        Some(1)
    );
    assert_eq!(health.get("accepted").and_then(Json::as_u64), Some(0));

    let report = shutdown(server);
    assert_eq!(report.outcome().code(), 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn full_queue_sheds_load_with_429_and_retry_after() {
    let (server, dir) = start_with(|c| c.queue_capacity = 0, "api-shed");
    let addr = server.local_addr();

    let (status, response) = request_raw(addr, "POST", "/v1/jobs", &job_body(1, 100, 1));
    assert_eq!(status, 429, "{response}");
    let head = response.to_ascii_lowercase();
    assert!(
        head.contains("retry-after: 1"),
        "429 must carry retry-after: {response}"
    );

    let health = get_json(addr, "/v1/healthz");
    assert_eq!(
        health.get("rejected_overloaded").and_then(Json::as_u64),
        Some(1)
    );
    assert_eq!(health.get("accepted").and_then(Json::as_u64), Some(0));

    let report = shutdown(server);
    assert_eq!(report.outcome().code(), 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn connection_limit_sheds_with_503_and_counts_it() {
    let (server, dir) = start_with(|c| c.max_connections = 1, "api-conn-shed");
    let addr = server.local_addr();

    // Occupy the only permit: connect and send a partial request so
    // the handler thread sits in `read_request` holding the slot.
    let mut holder = TcpStream::connect(addr).unwrap();
    holder.write_all(b"GET /v1/healthz HTTP/1.1\r\n").unwrap();
    std::thread::sleep(Duration::from_millis(100));

    let (status, response) = request_raw(addr, "GET", "/v1/healthz", "");
    assert_eq!(status, 503, "{response}");
    let head = response.to_ascii_lowercase();
    assert!(
        head.contains("retry-after: 1"),
        "503 shed must carry retry-after: {response}"
    );

    // Release the permit and confirm the shed was counted, not hidden.
    drop(holder);
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let health = loop {
        if let Some((200, body)) = request(addr, "GET", "/v1/healthz", "") {
            break Json::parse(&body).unwrap();
        }
        assert!(
            std::time::Instant::now() < deadline,
            "permit never released"
        );
        std::thread::sleep(Duration::from_millis(25));
    };
    assert_eq!(
        health.get("max_connections").and_then(Json::as_u64),
        Some(1)
    );
    assert!(health.get("connections_shed").and_then(Json::as_u64) >= Some(1));
    assert_eq!(
        health.get("connections_active").and_then(Json::as_u64),
        Some(1),
        "the healthz probe itself holds the permit"
    );

    let report = shutdown(server);
    assert_eq!(report.outcome().code(), 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn manifest_is_gated_until_finished_and_drain_exits_75() {
    let (server, dir) = start_with(|_| {}, "api-manifest");
    let addr = server.local_addr();

    // A job big enough to still be in flight when we probe.
    let (status, body) = request(addr, "POST", "/v1/jobs", &job_body(5, 500_000, 1)).unwrap();
    assert_eq!(status, 202, "{body}");
    let name = Json::parse(&body)
        .unwrap()
        .get("id")
        .and_then(Json::as_str)
        .unwrap()
        .to_owned();

    let (status, body) = request(addr, "GET", &format!("/v1/jobs/{name}/manifest"), "").unwrap();
    assert_eq!(status, 409, "manifest must be gated: {body}");

    // Draining with the job unfinished maps to exit 75. A drain also
    // stops admitting: a racing submission sees either the closed
    // listener or an explicit 503 — never a silent acceptance.
    server.stop_flag().store(true, Ordering::Relaxed);
    match request(addr, "POST", "/v1/jobs", &job_body(6, 100, 1)) {
        None => {}
        Some((status, body)) => assert_eq!(status, 503, "{body}"),
    }
    let report = server.join();
    assert_eq!(report.unfinished, 1);
    assert_eq!(report.outcome().code(), 75);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn status_documents_carry_every_schema_key_in_every_phase() {
    let schema_path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/serve-api.schema.json");
    let schema = Json::parse(&std::fs::read_to_string(&schema_path).unwrap()).unwrap();
    let required: Vec<&str> = schema
        .get("required")
        .and_then(Json::as_array)
        .expect("schema lists required keys")
        .iter()
        .filter_map(Json::as_str)
        .collect();
    assert!(required.len() >= 14, "schema lost keys: {required:?}");
    let spec_required: Vec<&str> = schema
        .get("properties")
        .and_then(|p| p.get("spec"))
        .and_then(|s| s.get("required"))
        .and_then(Json::as_array)
        .expect("schema lists required spec keys")
        .iter()
        .filter_map(Json::as_str)
        .collect();

    let check = |doc: &Json, phase: &str| {
        for key in &required {
            assert!(doc.get(key).is_some(), "{phase} document missing `{key}`");
        }
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some("ahs-serve-job/v1")
        );
        let spec = doc.get("spec").expect("spec present");
        for key in &spec_required {
            assert!(spec.get(key).is_some(), "{phase} spec missing `{key}`");
        }
    };

    let (server, dir) = start_with(|_| {}, "api-schema");
    let addr = server.local_addr();

    let (status, body) = request(addr, "POST", "/v1/jobs", &job_body(7, 200, 1)).unwrap();
    assert_eq!(status, 202, "{body}");
    let doc = Json::parse(&body).unwrap();
    check(&doc, "admission");
    let name = doc.get("id").and_then(Json::as_str).unwrap().to_owned();

    let doc = wait_for_state(addr, &name, "finished", Duration::from_secs(60));
    check(&doc, "finished");
    assert!(
        !doc.get("estimates")
            .and_then(Json::as_array)
            .unwrap()
            .is_empty(),
        "finished document must carry estimates"
    );

    // The list endpoint embeds the same documents.
    let list = get_json(addr, "/v1/jobs");
    assert_eq!(
        list.get("schema").and_then(Json::as_str),
        Some("ahs-serve-jobs/v1")
    );
    let jobs = list.get("jobs").and_then(Json::as_array).unwrap();
    assert_eq!(jobs.len(), 1);
    check(&jobs[0], "listed");

    // And the manifest endpoint serves the standard run manifest.
    let (status, manifest) =
        request(addr, "GET", &format!("/v1/jobs/{name}/manifest"), "").unwrap();
    assert_eq!(status, 200);
    let manifest = Json::parse(&manifest).expect("manifest is JSON");
    assert!(manifest.get("schema").is_some());

    let report = shutdown(server);
    assert_eq!(report.finished, 1);
    std::fs::remove_dir_all(&dir).ok();
}
