//! Concurrent-job determinism: jobs evaluated by the server — sharing
//! the model cache and running side by side on the worker pool — must
//! produce estimates bitwise-identical to the same studies run solo,
//! at every thread count; and a server killed mid-job must resume
//! every accepted job bitwise after a restart over the same state
//! directory.

mod common;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ahs_obs::Json;
use ahs_serve::{ServeConfig, Server};
use common::*;

fn start(dir: &std::path::Path) -> Server {
    let mut config = ServeConfig::new(dir);
    config.addr = "127.0.0.1:0".to_owned();
    config.workers = 2;
    Server::start(config, Arc::new(AtomicBool::new(false))).expect("server starts")
}

#[test]
fn concurrent_jobs_match_solo_bitwise_at_1_2_4_threads() {
    let dir = state_dir("determinism");
    let server = start(&dir);
    let addr = server.local_addr();

    // Two jobs per thread count, all sharing one compiled model, all
    // in flight together on two workers.
    let reps = 2_000u64;
    let mut submitted = Vec::new();
    for threads in [1usize, 2, 4] {
        for seed in [11u64, 12] {
            let (status, body) = request(
                addr,
                "POST",
                "/v1/jobs",
                &job_body(seed ^ (threads as u64) << 8, reps, threads),
            )
            .expect("submit answered");
            assert_eq!(status, 202, "{body}");
            let doc = Json::parse(&body).unwrap();
            let name = doc.get("id").and_then(Json::as_str).unwrap().to_owned();
            submitted.push((name, seed ^ (threads as u64) << 8, threads));
        }
    }

    for (name, seed, threads) in &submitted {
        let doc = wait_for_state(addr, name, "finished", Duration::from_secs(120));
        let baseline = solo(*seed, reps, *threads);
        assert_eq!(
            status_bits(&doc),
            curve_bits(&baseline),
            "{name} (threads={threads}) diverged from its solo baseline"
        );
        assert_eq!(
            doc.get("replications").and_then(Json::as_u64),
            Some(baseline.replications())
        );
    }

    // All six jobs shared one compiled model.
    let health = get_json(addr, "/v1/healthz");
    assert_eq!(health.get("cache_models").and_then(Json::as_u64), Some(1));
    let hits = health.get("cache_hits").and_then(Json::as_u64).unwrap();
    assert!(hits >= 4, "expected most lookups to hit the cache: {hits}");

    server.stop_flag().store(true, Ordering::Relaxed);
    let report = server.join();
    assert_eq!(report.finished, 6);
    assert_eq!(report.unfinished, 0);
    assert_eq!(report.outcome().code(), 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn killed_server_resumes_every_job_bitwise() {
    let dir = state_dir("kill-restart");
    // Large enough that both jobs are mid-flight (first checkpoint at
    // 1000 replications) when the plug is pulled, small enough to
    // finish promptly after the restart.
    let reps = 100_000u64;

    let mut config = ServeConfig::new(&dir);
    config.addr = "127.0.0.1:0".to_owned();
    config.workers = 2;
    config.checkpoint_every = 500;
    let stop = Arc::new(AtomicBool::new(false));
    let server = Server::start(config.clone(), stop.clone()).expect("server starts");
    let addr = server.local_addr();

    for seed in [21u64, 22] {
        let (status, body) =
            request(addr, "POST", "/v1/jobs", &job_body(seed, reps, 2)).expect("submit answered");
        assert_eq!(status, 202, "{body}");
    }

    // Wait until both jobs have flushed at least one checkpoint, then
    // pull the plug: every worker drains at its next chunk boundary.
    let deadline = Instant::now() + Duration::from_secs(60);
    let ckpt = |seq: u64| {
        dir.join("jobs")
            .join(format!("job-{seq:06}"))
            .join("checkpoint.json")
    };
    while !(ckpt(1).exists() && ckpt(2).exists()) {
        assert!(Instant::now() < deadline, "jobs never checkpointed");
        std::thread::sleep(Duration::from_millis(2));
    }
    stop.store(true, Ordering::Relaxed);
    let report = server.join();
    assert_eq!(
        report.unfinished, 2,
        "both jobs should have been in flight at the kill"
    );
    assert_eq!(report.outcome().code(), 75);

    // Restart over the same state dir: both jobs are re-enqueued,
    // resume from their namespaced checkpoints, and finish with the
    // exact bits of an uninterrupted solo run.
    let server = start(&dir);
    let addr = server.local_addr();
    for (seq, seed) in [(1u64, 21u64), (2, 22)] {
        let name = format!("job-{seq:06}");
        let doc = wait_for_state(addr, &name, "finished", Duration::from_secs(180));
        let baseline = solo(seed, reps, 2);
        assert_eq!(
            status_bits(&doc),
            curve_bits(&baseline),
            "{name} resumed non-bitwise"
        );
        let lineage = doc
            .get("resume_lineage")
            .and_then(Json::as_array)
            .expect("status has resume_lineage");
        assert!(
            !lineage.is_empty(),
            "{name} should record the checkpoint it resumed from"
        );
    }
    server.stop_flag().store(true, Ordering::Relaxed);
    let report = server.join();
    assert_eq!(report.finished, 2);
    assert_eq!(report.outcome().code(), 0);
    std::fs::remove_dir_all(&dir).ok();
}
