//! Job specifications, admission policy, lifecycle state, and the
//! persisted status document.
//!
//! Every accepted job owns a directory `jobs/job-NNNNNN/` under the
//! server's state dir:
//!
//! * `job.json` — the normalized spec, written once at admission;
//! * `status.json` — the full status document, rewritten atomically at
//!   every phase change (this is what survives a SIGTERM and what the
//!   CI smoke job inspects);
//! * `checkpoint.json` (+ rotated generations) — the study checkpoint,
//!   namespaced per job so concurrent jobs can never clobber each
//!   other;
//! * `telemetry.jsonl` — JSON-lines progress events, appended across
//!   attempts;
//! * `manifest.json` — the standard run manifest, written on finish.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Mutex;

use ahs_core::{Params, Strategy, UnsafetyCurve};
use ahs_des::Watchdog;
use ahs_obs::{write_with_retry, Json};
use ahs_stats::TimeGrid;

/// Schema tag of the job-status document (`status.json` and every
/// job-status HTTP response).
pub const JOB_SCHEMA: &str = "ahs-serve-job/v1";

/// Schema tag of the persisted job spec (`job.json`).
pub const JOB_SPEC_SCHEMA: &str = "ahs-serve-job-spec/v1";

/// Server-side admission limits, applied when a submission is parsed.
///
/// Budgets the CLI exposes per run (`--quarantine-budget`,
/// `--watchdog-*`) become *policy* here: a job may request any
/// quarantine budget up to [`quarantine_cap`](Self::quarantine_cap)
/// and any thread count up to [`max_threads`](Self::max_threads)
/// (clamped, not rejected), while a replication budget beyond
/// [`max_replications`](Self::max_replications) is rejected outright
/// with a 422 — the caller asked for more work than this server is
/// configured to accept.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionPolicy {
    /// Largest acceptable fixed replication budget.
    pub max_replications: u64,
    /// Hard clamp on per-job worker threads.
    pub max_threads: usize,
    /// Largest acceptable per-job quarantine budget.
    pub quarantine_cap: u64,
    /// Watchdog applied to every job (server policy, not requestable).
    pub watchdog: Option<Watchdog>,
}

impl Default for AdmissionPolicy {
    fn default() -> Self {
        AdmissionPolicy {
            max_replications: 2_000_000,
            max_threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            quarantine_cap: 1_000,
            watchdog: None,
        }
    }
}

/// Why a submission was turned away at the door.
#[derive(Debug)]
pub enum SubmitError {
    /// Malformed or invalid spec → 400.
    Invalid(String),
    /// Well-formed but beyond this server's admission policy → 422.
    OverPolicy(String),
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Invalid(reason) => write!(f, "invalid job spec: {reason}"),
            SubmitError::OverPolicy(reason) => write!(f, "rejected by admission policy: {reason}"),
        }
    }
}

/// A validated evaluation request: the same knobs as
/// `ahs evaluate`, normalized against an [`AdmissionPolicy`].
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Full model parameters (n, λ, platoons, strategy).
    pub params: Params,
    /// Master seed.
    pub seed: u64,
    /// Fixed replication budget.
    pub replications: u64,
    /// Longest trip duration, hours.
    pub horizon: f64,
    /// Grid points.
    pub points: usize,
    /// Worker threads for this job's study (clamped by policy).
    pub threads: usize,
    /// Plain Monte Carlo instead of dynamic importance sampling.
    pub plain: bool,
    /// Panicking replications tolerated before the job fails.
    pub quarantine_budget: u64,
}

fn get_u64(doc: &Json, key: &str, default: u64) -> Result<u64, SubmitError> {
    match doc.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_u64()
            .ok_or_else(|| SubmitError::Invalid(format!("`{key}` must be a non-negative integer"))),
    }
}

fn get_f64(doc: &Json, key: &str, default: f64) -> Result<f64, SubmitError> {
    match doc.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_f64()
            .ok_or_else(|| SubmitError::Invalid(format!("`{key}` must be a number"))),
    }
}

impl JobSpec {
    /// Parses and validates a submission (or a persisted `job.json`)
    /// against `policy`.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Invalid`] for malformed fields or parameters the
    /// model itself rejects; [`SubmitError::OverPolicy`] for
    /// well-formed requests beyond the server's admission limits.
    pub fn from_json(doc: &Json, policy: &AdmissionPolicy) -> Result<JobSpec, SubmitError> {
        let strategy = match doc.get("strategy").map(|s| s.as_str()) {
            None => Strategy::Dd,
            Some(Some(s)) => match s.to_ascii_uppercase().as_str() {
                "DD" => Strategy::Dd,
                "DC" => Strategy::Dc,
                "CD" => Strategy::Cd,
                "CC" => Strategy::Cc,
                other => {
                    return Err(SubmitError::Invalid(format!(
                        "unknown strategy `{other}` (use DD/DC/CD/CC)"
                    )))
                }
            },
            Some(None) => return Err(SubmitError::Invalid("`strategy` must be a string".into())),
        };
        let params = Params::builder()
            .n(get_u64(doc, "n", 10)? as usize)
            .lambda(get_f64(doc, "lambda", 1e-5)?)
            .platoons(get_u64(doc, "platoons", 2)? as usize)
            .strategy(strategy)
            .build()
            .map_err(|e| SubmitError::Invalid(e.to_string()))?;

        let horizon = get_f64(doc, "horizon", 10.0)?;
        let points = get_u64(doc, "points", 5)? as usize;
        if !(horizon.is_finite() && horizon > 0.0) || points < 1 {
            return Err(SubmitError::Invalid(
                "need a positive horizon and at least one grid point".into(),
            ));
        }
        let replications = get_u64(doc, "reps", 20_000)?;
        if replications == 0 {
            return Err(SubmitError::Invalid("`reps` must be positive".into()));
        }
        if replications > policy.max_replications {
            return Err(SubmitError::OverPolicy(format!(
                "reps {} exceeds this server's budget of {}",
                replications, policy.max_replications
            )));
        }
        let quarantine_budget = get_u64(doc, "quarantine_budget", 0)?;
        if quarantine_budget > policy.quarantine_cap {
            return Err(SubmitError::OverPolicy(format!(
                "quarantine_budget {} exceeds this server's cap of {}",
                quarantine_budget, policy.quarantine_cap
            )));
        }
        let threads = (get_u64(doc, "threads", 1)? as usize).clamp(1, policy.max_threads.max(1));
        let plain = match doc.get("plain") {
            None => false,
            Some(v) => v
                .as_bool()
                .ok_or_else(|| SubmitError::Invalid("`plain` must be a boolean".into()))?,
        };

        Ok(JobSpec {
            params,
            seed: get_u64(doc, "seed", 2009)?,
            replications,
            horizon,
            points,
            threads,
            plain,
            quarantine_budget,
        })
    }

    /// The normalized spec as JSON — persisted to `job.json` and
    /// embedded in every status document.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("n".to_owned(), (self.params.n as u64).into()),
            ("lambda".to_owned(), self.params.lambda.into()),
            ("platoons".to_owned(), (self.params.platoons as u64).into()),
            (
                "strategy".to_owned(),
                Json::str(self.params.strategy.name()),
            ),
            ("horizon".to_owned(), self.horizon.into()),
            ("points".to_owned(), (self.points as u64).into()),
            ("reps".to_owned(), self.replications.into()),
            ("seed".to_owned(), self.seed.into()),
            ("threads".to_owned(), (self.threads as u64).into()),
            ("plain".to_owned(), self.plain.into()),
            (
                "quarantine_budget".to_owned(),
                self.quarantine_budget.into(),
            ),
        ])
    }

    /// The evaluation grid, derived exactly like `ahs evaluate` does.
    pub fn grid(&self) -> TimeGrid {
        if self.points == 1 {
            TimeGrid::new(vec![self.horizon])
        } else {
            TimeGrid::linspace(self.horizon / self.points as f64, self.horizon, self.points)
        }
    }
}

/// Where a job is in its lifecycle.
#[derive(Debug, Clone)]
pub enum Phase {
    /// Accepted, waiting for a worker.
    Queued,
    /// A supervised worker is evaluating it.
    Running,
    /// The server drained while this job was in flight; its final
    /// checkpoint is on disk and a restart resumes it bitwise.
    Interrupted {
        /// Replications completed before the drain.
        replications: u64,
    },
    /// Evaluation completed; estimates are final.
    Finished(UnsafetyCurve),
    /// Evaluation failed with a typed error (after exhausting the
    /// supervisor's restart budget, where applicable).
    Failed(String),
}

impl Phase {
    /// The wire name of this phase.
    pub fn state(&self) -> &'static str {
        match self {
            Phase::Queued => "queued",
            Phase::Running => "running",
            Phase::Interrupted { .. } => "interrupted",
            Phase::Finished(_) => "finished",
            Phase::Failed(_) => "failed",
        }
    }
}

/// One accepted job: immutable spec plus mutable lifecycle state.
#[derive(Debug)]
pub struct Job {
    /// Monotonic admission sequence number (also the directory name).
    pub seq: u64,
    /// Public id, `job-NNNNNN`.
    pub name: String,
    /// The validated spec.
    pub spec: JobSpec,
    /// This job's state directory.
    pub dir: PathBuf,
    phase: Mutex<Phase>,
    /// Supervisor restarts consumed so far (crash recoveries).
    pub restarts: AtomicU32,
    /// Telemetry events dropped across all attempts.
    pub telemetry_dropped: AtomicU64,
    /// PID of the isolated worker process currently evaluating this
    /// job (0 when none — thread mode, or between attempts).
    pub worker_pid: AtomicU32,
}

impl Job {
    /// A fresh job in [`Phase::Queued`].
    pub fn new(seq: u64, spec: JobSpec, dir: PathBuf) -> Job {
        Job {
            seq,
            name: format!("job-{seq:06}"),
            spec,
            dir,
            phase: Mutex::new(Phase::Queued),
            restarts: AtomicU32::new(0),
            telemetry_dropped: AtomicU64::new(0),
            worker_pid: AtomicU32::new(0),
        }
    }

    /// This job's checkpoint path — namespaced by the job directory,
    /// so two concurrent jobs can never clobber each other's
    /// generations.
    pub fn checkpoint_path(&self) -> PathBuf {
        self.dir.join("checkpoint.json")
    }

    /// Current lifecycle phase (cloned snapshot).
    pub fn phase(&self) -> Phase {
        self.phase_guard().clone()
    }

    /// Replaces the phase and rewrites `status.json` (best-effort,
    /// with retry; a failed write is reported on stderr, never fatal —
    /// the in-memory state and HTTP responses stay authoritative).
    pub fn set_phase(&self, phase: Phase) {
        *self.phase_guard() = phase;
        self.persist_status();
    }

    /// Direct access to the phase slot — recovery restores in-memory
    /// state from disk without re-writing `status.json`.
    pub(crate) fn phase_guard(&self) -> std::sync::MutexGuard<'_, Phase> {
        // A panic between lock and unlock would have happened inside
        // `clone` or a field write; the value is never left torn, so
        // poisoning is recoverable.
        self.phase
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Renders the full status document. Every key of the
    /// `ahs-serve-job/v1` schema is present in *every* phase (with
    /// `null` / empty placeholders), so consumers never need
    /// phase-dependent parsing.
    pub fn status_json(&self) -> Json {
        let phase = self.phase();
        let (replications, converged) = match &phase {
            Phase::Finished(curve) => (curve.replications(), Json::Bool(curve.converged())),
            Phase::Interrupted { replications } => (*replications, Json::Null),
            _ => (0, Json::Null),
        };
        let (quarantined, lineage, fallback, estimates) = match &phase {
            Phase::Finished(curve) => (
                curve.quarantined(),
                curve
                    .resume_lineage()
                    .iter()
                    .map(|w| Json::UInt(*w))
                    .collect(),
                curve
                    .resume_fallback()
                    .map_or(Json::Null, |g| Json::UInt(u64::from(g))),
                curve
                    .points()
                    .iter()
                    .map(|p| {
                        Json::Obj(vec![
                            ("x".to_owned(), p.x.into()),
                            ("y".to_owned(), p.y.into()),
                            ("half_width".to_owned(), p.half_width.into()),
                            ("samples".to_owned(), p.samples.into()),
                        ])
                    })
                    .collect(),
            ),
            _ => (0, Vec::new(), Json::Null, Vec::new()),
        };
        let error = match &phase {
            Phase::Failed(reason) => Json::str(reason.clone()),
            _ => Json::Null,
        };
        Json::Obj(vec![
            ("schema".to_owned(), Json::str(JOB_SCHEMA)),
            ("id".to_owned(), Json::str(self.name.clone())),
            ("seq".to_owned(), self.seq.into()),
            ("state".to_owned(), Json::str(phase.state())),
            ("spec".to_owned(), self.spec.to_json()),
            (
                "restarts".to_owned(),
                u64::from(self.restarts.load(Ordering::Relaxed)).into(),
            ),
            ("quarantined".to_owned(), quarantined.into()),
            (
                "telemetry_dropped".to_owned(),
                self.telemetry_dropped.load(Ordering::Relaxed).into(),
            ),
            (
                "worker_pid".to_owned(),
                match self.worker_pid.load(Ordering::Relaxed) {
                    0 => Json::Null,
                    pid => Json::UInt(u64::from(pid)),
                },
            ),
            ("replications".to_owned(), replications.into()),
            ("converged".to_owned(), converged),
            ("resume_lineage".to_owned(), Json::Arr(lineage)),
            ("resume_fallback".to_owned(), fallback),
            ("estimates".to_owned(), Json::Arr(estimates)),
            ("error".to_owned(), error),
        ])
    }

    /// Records (or clears, with `None`) the isolated worker evaluating
    /// this job, and republishes `status.json` so chaos tooling can
    /// target the live process by PID.
    pub fn set_worker_pid(&self, pid: Option<u32>) {
        self.worker_pid.store(pid.unwrap_or(0), Ordering::Relaxed);
        self.persist_status();
    }

    /// Rewrites `status.json` from the current state.
    pub fn persist_status(&self) {
        let mut text = self.status_json().render();
        text.push('\n');
        let path = self.dir.join("status.json");
        if let Err(e) = write_with_retry(&path, text.as_bytes()) {
            eprintln!("warning: could not persist {}: {e}", path.display());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> AdmissionPolicy {
        AdmissionPolicy::default()
    }

    fn parse(text: &str) -> Result<JobSpec, SubmitError> {
        JobSpec::from_json(&Json::parse(text).unwrap(), &policy())
    }

    #[test]
    fn defaults_fill_in() {
        let spec = parse("{}").unwrap();
        assert_eq!(spec.params.n, 10);
        assert_eq!(spec.seed, 2009);
        assert_eq!(spec.replications, 20_000);
        assert_eq!(spec.threads, 1);
        assert!(!spec.plain);
    }

    #[test]
    fn roundtrips_through_json() {
        let spec =
            parse(r#"{"n":4,"lambda":5e-3,"strategy":"cc","reps":500,"seed":7,"plain":true}"#)
                .unwrap();
        let again = JobSpec::from_json(&spec.to_json(), &policy()).unwrap();
        assert_eq!(again.params, spec.params);
        assert_eq!(again.seed, spec.seed);
        assert_eq!(again.replications, spec.replications);
        assert_eq!(again.plain, spec.plain);
    }

    #[test]
    fn policy_rejections_are_typed() {
        assert!(matches!(
            parse(r#"{"reps":3000000}"#),
            Err(SubmitError::OverPolicy(_))
        ));
        assert!(matches!(
            parse(r#"{"quarantine_budget":100000}"#),
            Err(SubmitError::OverPolicy(_))
        ));
        assert!(matches!(
            parse(r#"{"strategy":"xy"}"#),
            Err(SubmitError::Invalid(_))
        ));
        assert!(matches!(
            parse(r#"{"platoons":1}"#),
            Err(SubmitError::Invalid(_))
        ));
    }

    #[test]
    fn threads_clamp_to_policy() {
        let spec = parse(r#"{"threads":100000}"#).unwrap();
        assert!(spec.threads <= policy().max_threads);
        assert!(spec.threads >= 1);
    }

    #[test]
    fn status_document_has_every_schema_key_in_every_phase() {
        let spec = parse("{}").unwrap();
        let job = Job::new(3, spec, std::env::temp_dir());
        for phase in [
            Phase::Queued,
            Phase::Running,
            Phase::Interrupted { replications: 10 },
            Phase::Failed("boom".into()),
        ] {
            *job.phase_guard() = phase;
            let doc = job.status_json();
            for key in [
                "schema",
                "id",
                "seq",
                "state",
                "spec",
                "restarts",
                "quarantined",
                "telemetry_dropped",
                "worker_pid",
                "replications",
                "converged",
                "resume_lineage",
                "resume_fallback",
                "estimates",
                "error",
            ] {
                assert!(doc.get(key).is_some(), "missing {key}");
            }
        }
        assert_eq!(
            job.status_json().get("state").unwrap().as_str(),
            Some("failed")
        );
    }
}
