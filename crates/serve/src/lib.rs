//! `ahs-serve` — a supervised, chaos-hardened evaluation service.
//!
//! The paper's `S(t)` studies (DSN 2009) become long-running jobs
//! here: a zero-dependency HTTP/1.1 server with a bounded job queue,
//! a shared compiled-model cache keyed by the FNV-1a model
//! fingerprint, and per-job supervision built entirely from the
//! workspace's existing crash-safe primitives. The robustness
//! contract, proven by the chaos tier (`tests/chaos.rs`) and the
//! determinism tier (`tests/determinism.rs`):
//!
//! * **Bitwise determinism under concurrency** — jobs share compiled
//!   models but never replication state; a job's estimates are
//!   bit-identical to the same study run solo at any worker count.
//! * **Supervision** — each job's checkpoints are namespaced into its
//!   own directory; a crashed or watchdog-killed attempt restarts
//!   from the latest good generation (`load_with_fallback`) within a
//!   restart budget, and the resumed result is bitwise-identical to a
//!   crash-free run.
//! * **Admission control** — per-job quarantine/watchdog/replication
//!   budgets are policy at the door (400/422), and a full queue sheds
//!   load with an explicit 429 instead of degrading silently.
//! * **Graceful drain** — SIGTERM stops in-flight jobs at chunk
//!   boundaries with flushed checkpoints; the process exits 75 while
//!   any accepted job is unfinished, and a restart over the same
//!   state directory resumes every one of them bitwise.
//! * **Process isolation** — with [`Isolation::Process`] each job
//!   attempt runs in a re-execed worker process (`ahs serve-worker`)
//!   under self-applied `setrlimit` budgets, heartbeat-supervised, so
//!   a SIGKILL, SIGSEGV, or allocation abort kills one attempt — never
//!   another job, never the server — and restarts from the latest good
//!   checkpoint generation, bitwise. [`Isolation::Thread`] remains the
//!   in-process fallback for platforms without rlimits.
//! * **Chaos-hardened** — the `serve::*` failpoints (accept,
//!   job-enqueue, worker-spawn/exec/heartbeat/reap, response-write,
//!   cache-insert) each degrade to a typed error, a counted
//!   degradation, or a bitwise-identical resumed job — never a hung
//!   connection or a corrupted result.
//!
//! See `docs/serving.md` for the HTTP API and job lifecycle.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod http;
mod job;
mod server;
mod supervisor;
mod worker;

pub use cache::{CacheStats, ModelCache};
pub use job::{AdmissionPolicy, Job, JobSpec, Phase, SubmitError, JOB_SCHEMA, JOB_SPEC_SCHEMA};
pub use server::{DrainReport, ServeConfig, Server};
pub use supervisor::{Isolation, ProcessIsolation};
pub use worker::{run_worker, WorkerOptions, WORKER_EXIT_DRAINED, WORKER_OUTCOME_SCHEMA};
