//! A minimal HTTP/1.1 subset over `std::net` — just enough for the
//! evaluation API, with hard caps and timeouts so a slow or malicious
//! client can never hang a handler thread.
//!
//! No keep-alive: every response carries `connection: close` and the
//! stream is dropped after one exchange. That keeps the server's
//! robustness story trivial to state (a connection is one request) at
//! the cost of one TCP handshake per call, which is noise next to an
//! evaluation job.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Cap on the request line + headers.
const MAX_HEAD_BYTES: usize = 8 * 1024;
/// Cap on the request body (job specs are tiny; this is generous).
pub(crate) const MAX_BODY_BYTES: usize = 64 * 1024;
/// Per-socket read/write timeout: a stalled peer forfeits the
/// connection rather than parking the handler thread.
const IO_TIMEOUT: Duration = Duration::from_secs(5);

/// One parsed request.
pub(crate) struct Request {
    pub method: String,
    pub path: String,
    pub body: Vec<u8>,
}

/// Why a request could not be read.
pub(crate) enum RequestError {
    /// Protocol violation the client should hear about.
    Bad(u16, &'static str),
    /// Socket-level failure or premature close; nothing to say back.
    Io,
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Reads one request, enforcing the head/body caps and timeouts.
pub(crate) fn read_request(stream: &mut TcpStream) -> Result<Request, RequestError> {
    stream.set_read_timeout(Some(IO_TIMEOUT)).ok();
    stream.set_write_timeout(Some(IO_TIMEOUT)).ok();

    let mut buf = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    let head_end = loop {
        if let Some(i) = find_head_end(&buf) {
            break i;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(RequestError::Bad(431, "header section too large"));
        }
        let n = stream.read(&mut chunk).map_err(|_| RequestError::Io)?;
        if n == 0 {
            return Err(RequestError::Io);
        }
        buf.extend_from_slice(&chunk[..n]);
    };

    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| RequestError::Bad(400, "non-UTF-8 request head"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split(' ');
    let method = parts.next().unwrap_or_default().to_owned();
    let path = parts.next().unwrap_or_default().to_owned();
    let version = parts.next().unwrap_or_default();
    if method.is_empty() || path.is_empty() || !version.starts_with("HTTP/1") {
        return Err(RequestError::Bad(400, "malformed request line"));
    }

    let mut content_length = 0usize;
    for line in lines {
        if let Some((key, value)) = line.split_once(':') {
            if key.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| RequestError::Bad(400, "invalid content-length"))?;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(RequestError::Bad(413, "request body too large"));
    }

    let mut body = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk).map_err(|_| RequestError::Io)?;
        if n == 0 {
            return Err(RequestError::Bad(400, "truncated request body"));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);

    Ok(Request { method, path, body })
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Response",
    }
}

/// Writes one JSON response (plus optional extra headers) and flushes.
pub(crate) fn write_response(
    stream: &mut TcpStream,
    status: u16,
    extra_headers: &[(&str, String)],
    body: &str,
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n",
        status,
        reason(status),
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn exchange(raw: &[u8]) -> Result<Request, RequestError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        client.write_all(raw).unwrap();
        client.shutdown(std::net::Shutdown::Write).unwrap();
        let (mut server_side, _) = listener.accept().unwrap();
        read_request(&mut server_side)
    }

    #[test]
    fn parses_post_with_body() {
        let req = exchange(b"POST /v1/jobs HTTP/1.1\r\nContent-Length: 4\r\n\r\n{}ab")
            .ok()
            .expect("valid request parses");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/jobs");
        assert_eq!(req.body, b"{}ab");
    }

    #[test]
    fn parses_get_without_body() {
        let req = exchange(b"GET /v1/healthz HTTP/1.1\r\n\r\n").ok().unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.body, b"");
    }

    #[test]
    fn rejects_malformed_request_line() {
        assert!(matches!(
            exchange(b"NONSENSE\r\n\r\n"),
            Err(RequestError::Bad(400, _))
        ));
    }

    #[test]
    fn rejects_oversized_body_up_front() {
        let raw = format!(
            "POST /v1/jobs HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(
            exchange(raw.as_bytes()),
            Err(RequestError::Bad(413, _))
        ));
    }

    #[test]
    fn rejects_truncated_body() {
        assert!(matches!(
            exchange(b"POST /v1/jobs HTTP/1.1\r\nContent-Length: 10\r\n\r\n{}"),
            Err(RequestError::Bad(400, _))
        ));
    }
}
