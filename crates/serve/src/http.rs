//! A minimal HTTP/1.1 subset over `std::net` — just enough for the
//! evaluation API, with hard caps and timeouts so a slow or malicious
//! client can never hang a handler thread.
//!
//! No keep-alive: every response carries `connection: close` and the
//! stream is dropped after one exchange. That keeps the server's
//! robustness story trivial to state (a connection is one request) at
//! the cost of one TCP handshake per call, which is noise next to an
//! evaluation job.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Cap on the request line + headers.
const MAX_HEAD_BYTES: usize = 8 * 1024;
/// Cap on the request body (job specs are tiny; this is generous).
pub(crate) const MAX_BODY_BYTES: usize = 64 * 1024;
/// Per-socket read/write timeout: a stalled peer forfeits the
/// connection rather than parking the handler thread.
const IO_TIMEOUT: Duration = Duration::from_secs(5);

/// One parsed request.
pub(crate) struct Request {
    pub method: String,
    pub path: String,
    pub body: Vec<u8>,
}

/// Why a request could not be read.
pub(crate) enum RequestError {
    /// Protocol violation the client should hear about.
    Bad(u16, &'static str),
    /// Socket-level failure or premature close; nothing to say back.
    Io,
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Reads one request, enforcing the head/body caps and timeouts.
pub(crate) fn read_request(stream: &mut TcpStream) -> Result<Request, RequestError> {
    stream.set_read_timeout(Some(IO_TIMEOUT)).ok();
    stream.set_write_timeout(Some(IO_TIMEOUT)).ok();

    let mut buf = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    let head_end = loop {
        if let Some(i) = find_head_end(&buf) {
            break i;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(RequestError::Bad(431, "header section too large"));
        }
        let n = stream.read(&mut chunk).map_err(|_| RequestError::Io)?;
        if n == 0 {
            return Err(RequestError::Io);
        }
        buf.extend_from_slice(&chunk[..n]);
    };

    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| RequestError::Bad(400, "non-UTF-8 request head"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split(' ');
    let method = parts.next().unwrap_or_default().to_owned();
    let path = parts.next().unwrap_or_default().to_owned();
    let version = parts.next().unwrap_or_default();
    if method.is_empty() || path.is_empty() || !version.starts_with("HTTP/1") {
        return Err(RequestError::Bad(400, "malformed request line"));
    }

    let mut content_length = 0usize;
    let mut saw_content_length = false;
    for line in lines {
        if let Some((key, value)) = line.split_once(':') {
            if key.eq_ignore_ascii_case("content-length") {
                // Duplicate content-length headers are the classic
                // request-smuggling vector: two parsers disagreeing on
                // which one wins disagree on where the body ends.
                // Reject instead of picking.
                if saw_content_length {
                    return Err(RequestError::Bad(400, "duplicate content-length"));
                }
                saw_content_length = true;
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| RequestError::Bad(400, "invalid content-length"))?;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(RequestError::Bad(413, "request body too large"));
    }

    let mut body = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk).map_err(|_| RequestError::Io)?;
        if n == 0 {
            return Err(RequestError::Bad(400, "truncated request body"));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);

    Ok(Request { method, path, body })
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Response",
    }
}

/// Writes one JSON response (plus optional extra headers) and flushes.
pub(crate) fn write_response(
    stream: &mut TcpStream,
    status: u16,
    extra_headers: &[(&str, String)],
    body: &str,
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n",
        status,
        reason(status),
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn exchange(raw: &[u8]) -> Result<Request, RequestError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        client.write_all(raw).unwrap();
        client.shutdown(std::net::Shutdown::Write).unwrap();
        let (mut server_side, _) = listener.accept().unwrap();
        read_request(&mut server_side)
    }

    #[test]
    fn parses_post_with_body() {
        let req = exchange(b"POST /v1/jobs HTTP/1.1\r\nContent-Length: 4\r\n\r\n{}ab")
            .ok()
            .expect("valid request parses");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/jobs");
        assert_eq!(req.body, b"{}ab");
    }

    #[test]
    fn parses_get_without_body() {
        let req = exchange(b"GET /v1/healthz HTTP/1.1\r\n\r\n").ok().unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.body, b"");
    }

    #[test]
    fn rejects_malformed_request_line() {
        assert!(matches!(
            exchange(b"NONSENSE\r\n\r\n"),
            Err(RequestError::Bad(400, _))
        ));
    }

    #[test]
    fn rejects_oversized_body_up_front() {
        let raw = format!(
            "POST /v1/jobs HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(
            exchange(raw.as_bytes()),
            Err(RequestError::Bad(413, _))
        ));
    }

    #[test]
    fn rejects_truncated_body() {
        assert!(matches!(
            exchange(b"POST /v1/jobs HTTP/1.1\r\nContent-Length: 10\r\n\r\n{}"),
            Err(RequestError::Bad(400, _))
        ));
    }

    #[test]
    fn rejects_duplicate_content_length() {
        // Even when the two values agree: duplicates are the
        // request-smuggling vector, not just disagreeing duplicates.
        assert!(matches!(
            exchange(
                b"POST /v1/jobs HTTP/1.1\r\nContent-Length: 4\r\ncontent-length: 4\r\n\r\n{}ab"
            ),
            Err(RequestError::Bad(400, "duplicate content-length"))
        ));
        assert!(matches!(
            exchange(
                b"POST /v1/jobs HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 2\r\n\r\n{}ab"
            ),
            Err(RequestError::Bad(400, "duplicate content-length"))
        ));
    }

    /// Property fuzz of the parser: for any byte stream — structured
    /// requests with hostile headers, or raw CR/LF soup — delivered
    /// across any write-boundary split, `read_request` returns a
    /// `Request` or a typed `RequestError`. It never panics (a panic
    /// fails the test) and never hangs (EOF ends every read loop, so
    /// the test completing *is* the no-hang assertion).
    mod fuzz {
        use super::*;
        use proptest::prelude::*;

        const METHODS: &[&str] = &["GET", "POST", "DELETE", "get", "PO ST", ""];
        const PATHS: &[&str] = &["/v1/jobs", "/", "/v1/jobs/job-000001", "", "/%00/.."];
        const VERSIONS: &[&str] = &["HTTP/1.1", "HTTP/1.0", "HTTP/2", "http/1.1", ""];
        const HEADER_NAMES: &[&str] = &[
            "content-length",
            "Content-Length",
            "CONTENT-LENGTH",
            "x-filler",
            "accept",
            "",
        ];
        const HEADER_VALUES: &[&str] = &["4", "0", "18446744073709551616", "-1", " 4 ", "4x", ""];

        /// Like `exchange`, but delivers `raw` across the given write
        /// boundaries (modulo the payload length) with a flush at each.
        fn exchange_split(raw: &[u8], cuts: &[usize]) -> Result<Request, RequestError> {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap();
            let mut client = TcpStream::connect(addr).unwrap();
            let mut points: Vec<usize> = cuts.iter().map(|c| c % (raw.len() + 1)).collect();
            points.sort_unstable();
            points.dedup();
            let mut prev = 0;
            for point in points {
                client.write_all(&raw[prev..point]).unwrap();
                client.flush().unwrap();
                prev = point;
            }
            client.write_all(&raw[prev..]).unwrap();
            client.shutdown(std::net::Shutdown::Write).unwrap();
            let (mut server_side, _) = listener.accept().unwrap();
            read_request(&mut server_side)
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            #[test]
            fn structured_requests_parse_or_reject_across_splits(
                method in 0usize..6,
                path in 0usize..5,
                version in 0usize..5,
                headers in prop::collection::vec((0usize..6, 0usize..7), 0..40),
                body in prop::collection::vec(any::<u8>(), 0..64),
                cuts in prop::collection::vec(any::<u64>(), 0..4),
            ) {
                let mut raw = format!(
                    "{} {} {}\r\n",
                    METHODS[method], PATHS[path], VERSIONS[version]
                )
                .into_bytes();
                let mut content_lengths = 0usize;
                for (name, value) in &headers {
                    if HEADER_NAMES[*name].eq_ignore_ascii_case("content-length") {
                        content_lengths += 1;
                    }
                    raw.extend_from_slice(
                        format!("{}: {}\r\n", HEADER_NAMES[*name], HEADER_VALUES[*value])
                            .as_bytes(),
                    );
                }
                raw.extend_from_slice(b"\r\n");
                raw.extend_from_slice(&body);
                let cuts: Vec<usize> = cuts.iter().map(|c| *c as usize).collect();
                let outcome = exchange_split(&raw, &cuts);
                if content_lengths >= 2 {
                    prop_assert!(
                        outcome.is_err(),
                        "duplicate content-length must never parse"
                    );
                }
                if let Ok(request) = outcome {
                    prop_assert!(!request.method.is_empty());
                    prop_assert!(!request.path.is_empty());
                    prop_assert!(request.body.len() <= MAX_BODY_BYTES);
                }
            }

            #[test]
            fn crlf_soup_never_panics_or_hangs(
                soup in prop::collection::vec(
                    prop_oneof![
                        Just(b'\r'),
                        Just(b'\n'),
                        Just(b':'),
                        Just(b' '),
                        Just(b'A'),
                        0u8..=255,
                    ],
                    0..512,
                ),
                cuts in prop::collection::vec(0usize..512, 0..4),
            ) {
                // Any outcome is acceptable; returning at all is the
                // property under test.
                let _ = exchange_split(&soup, &cuts);
            }

            #[test]
            fn pathological_header_counts_hit_the_cap_not_the_heap(
                filler in 0usize..400,
                cuts in 0usize..3,
            ) {
                let mut raw = b"GET /v1/healthz HTTP/1.1\r\n".to_vec();
                for i in 0..filler {
                    raw.extend_from_slice(
                        format!("x-filler-{i:06}: aaaaaaaaaaaaaaaa\r\n").as_bytes(),
                    );
                }
                let head_len = raw.len() + 2;
                raw.extend_from_slice(b"\r\n");
                let outcome = exchange_split(&raw, &[cuts * 777]);
                if head_len > MAX_HEAD_BYTES + 1024 {
                    prop_assert!(outcome.is_err(), "oversized head must be rejected");
                } else if head_len <= MAX_HEAD_BYTES {
                    prop_assert!(outcome.is_ok(), "in-cap head must parse");
                }
            }
        }
    }
}
