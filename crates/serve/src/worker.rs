//! The isolated worker half of process isolation: what runs inside the
//! hidden `ahs serve-worker` mode.
//!
//! The supervisor re-execs the current binary with a job directory; the
//! worker applies `setrlimit` budgets *to itself* (so a runaway
//! allocation or CPU spin dies inside this process, never in the
//! server), heartbeats a file for the supervisor's staleness watch,
//! evaluates the job exactly as a thread-mode attempt would — same
//! [`evaluator_for_spec`] configuration, same checkpoint namespace, so
//! resumes stay bitwise — and reports through two channels:
//!
//! * **exit status**: 0 finished, 75 (`EX_TEMPFAIL`) drained on
//!   SIGTERM, 1 typed failure; anything else is a crash.
//! * **`outcome.json`**: the estimates / error detail the exit status
//!   alone cannot carry, written atomically so the supervisor either
//!   reads a complete document or (correctly) treats the attempt as
//!   crashed.
//!
//! The cache handoff is by *proof*, not by transfer: the parent passes
//! the structural fingerprint of its cached compiled model, and the
//! worker refuses to run if its own compilation disagrees — a changed
//! binary or corrupted spec can never silently evaluate the wrong
//! model against the parent's checkpoint lineage.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ahs_core::{AhsError, CompiledModel, UnsafetyCurve};
use ahs_des::Watchdog;
use ahs_obs::{
    atomic_write, heartbeat_write, interrupt_flag, limit_cpu_seconds, limit_memory_bytes,
    rlimit_supported, Json, ProgressSink,
};

use crate::job::{AdmissionPolicy, JobSpec};
use crate::supervisor::{checkpoint_exists, evaluator_for_spec, restartable};

/// Schema tag of `outcome.json`.
pub const WORKER_OUTCOME_SCHEMA: &str = "ahs-serve-worker-outcome/v1";

/// Exit code for a graceful drain (`EX_TEMPFAIL`), mirrored from the
/// CLI's interrupted-run convention.
pub const WORKER_EXIT_DRAINED: u8 = 75;

/// Everything the `serve-worker` mode needs, parsed from its argv by
/// the binary.
#[derive(Debug, Clone)]
pub struct WorkerOptions {
    /// The job's state directory (holds `job.json`, checkpoints,
    /// telemetry, heartbeat, and the outcome document).
    pub job_dir: PathBuf,
    /// Replications between checkpoint flushes.
    pub checkpoint_every: u64,
    /// Checkpoint generations retained / consulted on resume.
    pub checkpoint_generations: u32,
    /// Heartbeat cadence.
    pub heartbeat_interval: Duration,
    /// `RLIMIT_AS` budget in MiB, applied before evaluation.
    pub mem_limit_mb: Option<u64>,
    /// `RLIMIT_CPU` budget in seconds, applied before evaluation.
    pub cpu_limit_secs: Option<u64>,
    /// Server-policy watchdog forwarded by the supervisor.
    pub watchdog: Option<Watchdog>,
    /// The parent's compiled-model fingerprint; evaluation refuses to
    /// start if this worker's own compilation disagrees.
    pub expect_fingerprint: Option<u64>,
}

/// Runs one isolated job attempt to completion and returns the process
/// exit code (0 finished, 75 drained, 1 typed failure).
pub fn run_worker(options: &WorkerOptions) -> u8 {
    // Self-applied resource budgets, first thing: everything after
    // this line — including spec parsing and model compilation — runs
    // inside the cage. Failure to apply a limit is a warning, not a
    // fatal error: the platform fallback is supervised-but-unbounded.
    if let Some(mb) = options.mem_limit_mb {
        if let Err(e) = limit_memory_bytes(mb.saturating_mul(1024 * 1024)) {
            eprintln!("serve-worker: warning: could not apply --mem-limit: {e}");
        }
    }
    if let Some(secs) = options.cpu_limit_secs {
        if let Err(e) = limit_cpu_seconds(secs) {
            eprintln!("serve-worker: warning: could not apply --cpu-limit: {e}");
        }
    }
    if (options.mem_limit_mb.is_some() || options.cpu_limit_secs.is_some()) && !rlimit_supported() {
        eprintln!("serve-worker: warning: rlimits are not supported on this platform");
    }

    // SIGTERM from the supervisor flips this flag; the evaluator
    // drains at the next chunk boundary with a flushed checkpoint.
    let stop = interrupt_flag();

    let done = Arc::new(AtomicBool::new(false));
    let beat_thread = spawn_heartbeat(
        options.job_dir.join("heartbeat"),
        options.heartbeat_interval,
        done.clone(),
    );

    let start = Instant::now();
    let outcome_path = options.job_dir.join("outcome.json");
    let code = match evaluate(options, &stop) {
        Ok(Evaluated::Finished {
            curve,
            wall_seconds,
            telemetry_dropped,
        }) => {
            write_outcome(
                &outcome_path,
                &finished_outcome(&curve, wall_seconds, telemetry_dropped),
            );
            0
        }
        Ok(Evaluated::Drained { replications }) => {
            write_outcome(
                &outcome_path,
                &drained_outcome(replications, start.elapsed().as_secs_f64()),
            );
            WORKER_EXIT_DRAINED
        }
        Err(error) => {
            write_outcome(
                &outcome_path,
                &failed_outcome(
                    &error.to_string(),
                    error.restartable,
                    start.elapsed().as_secs_f64(),
                ),
            );
            eprintln!("serve-worker: {}", error.message);
            1
        }
    };
    done.store(true, Ordering::Relaxed);
    if let Some(handle) = beat_thread {
        handle.join().ok();
    }
    code
}

/// A typed worker failure plus whether a restart could help.
struct WorkerError {
    message: String,
    restartable: bool,
}

impl WorkerError {
    fn fatal(message: impl Into<String>) -> WorkerError {
        WorkerError {
            message: message.into(),
            restartable: false,
        }
    }
}

impl std::fmt::Display for WorkerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl From<AhsError> for WorkerError {
    fn from(error: AhsError) -> WorkerError {
        WorkerError {
            restartable: restartable(&error),
            message: error.to_string(),
        }
    }
}

enum Evaluated {
    Finished {
        curve: UnsafetyCurve,
        wall_seconds: f64,
        telemetry_dropped: u64,
    },
    Drained {
        replications: u64,
    },
}

fn evaluate(options: &WorkerOptions, stop: &Arc<AtomicBool>) -> Result<Evaluated, WorkerError> {
    let spec_path = options.job_dir.join("job.json");
    let text = std::fs::read_to_string(&spec_path)
        .map_err(|e| WorkerError::fatal(format!("reading {}: {e}", spec_path.display())))?;
    let doc = Json::parse(&text)
        .map_err(|e| WorkerError::fatal(format!("parsing {}: {e}", spec_path.display())))?;
    // The spec on disk was already clamped by the server's admission
    // policy; re-validating against an arbitrary policy here could
    // silently change threads/replications and break bitwise resume.
    let permissive = AdmissionPolicy {
        max_replications: u64::MAX,
        max_threads: usize::MAX,
        quarantine_cap: u64::MAX,
        watchdog: None,
    };
    let spec = JobSpec::from_json(&doc, &permissive)
        .map_err(|e| WorkerError::fatal(format!("invalid {}: {e}", spec_path.display())))?;

    let compiled = CompiledModel::build(&spec.params).map_err(WorkerError::from)?;
    if let Some(expected) = options.expect_fingerprint {
        if compiled.fingerprint() != expected {
            return Err(WorkerError::fatal(format!(
                "model fingerprint mismatch: supervisor expects {expected:016x}, \
                 worker compiled {:016x}",
                compiled.fingerprint()
            )));
        }
    }

    let checkpoint = options.job_dir.join("checkpoint.json");
    let resume = checkpoint_exists(&checkpoint, options.checkpoint_generations);
    let progress = Arc::new(
        ProgressSink::file(&options.job_dir.join("telemetry.jsonl"))
            .map_err(|e| WorkerError::fatal(format!("opening telemetry sink: {e}")))?,
    );
    let eval = evaluator_for_spec(
        &spec,
        &checkpoint,
        options.checkpoint_every,
        options.checkpoint_generations,
        options.watchdog,
        resume,
    )
    .with_interrupt(stop.clone())
    .with_progress(progress.clone());

    let start = Instant::now();
    let curve = eval.evaluate_compiled(&spec.grid(), &compiled)?;
    let wall_seconds = start.elapsed().as_secs_f64();
    if curve.interrupted() {
        return Ok(Evaluated::Drained {
            replications: curve.replications(),
        });
    }
    // The worker writes the manifest itself — the parent's finish path
    // skips it — so provenance is recorded by the process that actually
    // produced the estimates. Built from a fresh non-resume evaluator,
    // as the thread-mode finish path does, so the two modes emit
    // identical manifests.
    let manifest = evaluator_for_spec(
        &spec,
        &checkpoint,
        options.checkpoint_every,
        options.checkpoint_generations,
        options.watchdog,
        false,
    )
    .with_progress(progress.clone())
    .manifest("ahs serve", &curve, wall_seconds);
    let manifest_path = options.job_dir.join("manifest.json");
    if let Err(e) = manifest.write(&manifest_path) {
        eprintln!(
            "serve-worker: warning: could not write {}: {e}",
            manifest_path.display()
        );
    }
    Ok(Evaluated::Finished {
        curve,
        wall_seconds,
        telemetry_dropped: progress.dropped(),
    })
}

fn spawn_heartbeat(
    path: PathBuf,
    interval: Duration,
    done: Arc<AtomicBool>,
) -> Option<std::thread::JoinHandle<()>> {
    std::thread::Builder::new()
        .name("heartbeat".to_owned())
        .spawn(move || {
            let mut beat = 0u64;
            while !done.load(Ordering::Relaxed) {
                // The heartbeat failpoint skips one write — which is
                // exactly what a real stalled IO does — so the chaos
                // tier can exercise the supervisor's staleness watch.
                let skip = matches!(
                    ahs_inject::eval("serve::worker::heartbeat"),
                    Some(ahs_inject::Fault::Error(_))
                );
                if !skip {
                    heartbeat_write(&path, beat).ok();
                    beat += 1;
                }
                std::thread::sleep(interval);
            }
        })
        .ok()
}

// --- the outcome document ---------------------------------------------

fn base_outcome(kind: &str, wall_seconds: f64) -> Vec<(String, Json)> {
    vec![
        ("schema".to_owned(), Json::str(WORKER_OUTCOME_SCHEMA)),
        ("outcome".to_owned(), Json::str(kind)),
        ("error".to_owned(), Json::Null),
        ("wall_seconds".to_owned(), wall_seconds.into()),
        ("telemetry_dropped".to_owned(), 0u64.into()),
        ("replications".to_owned(), 0u64.into()),
        ("converged".to_owned(), Json::Null),
        ("quarantined".to_owned(), 0u64.into()),
        ("resume_lineage".to_owned(), Json::Arr(Vec::new())),
        ("resume_fallback".to_owned(), Json::Null),
        ("estimates".to_owned(), Json::Arr(Vec::new())),
    ]
}

fn set_key(doc: &mut [(String, Json)], key: &str, value: Json) {
    if let Some(slot) = doc.iter_mut().find(|(k, _)| k == key) {
        slot.1 = value;
    }
}

fn finished_outcome(curve: &UnsafetyCurve, wall_seconds: f64, telemetry_dropped: u64) -> Json {
    let mut doc = base_outcome("finished", wall_seconds);
    set_key(&mut doc, "telemetry_dropped", telemetry_dropped.into());
    set_key(&mut doc, "replications", curve.replications().into());
    set_key(&mut doc, "converged", Json::Bool(curve.converged()));
    set_key(&mut doc, "quarantined", curve.quarantined().into());
    set_key(
        &mut doc,
        "resume_lineage",
        Json::Arr(
            curve
                .resume_lineage()
                .iter()
                .map(|w| Json::UInt(*w))
                .collect(),
        ),
    );
    set_key(
        &mut doc,
        "resume_fallback",
        curve
            .resume_fallback()
            .map_or(Json::Null, |g| Json::UInt(u64::from(g))),
    );
    set_key(
        &mut doc,
        "estimates",
        Json::Arr(
            curve
                .points()
                .iter()
                .map(|p| {
                    Json::Obj(vec![
                        ("x".to_owned(), p.x.into()),
                        ("y".to_owned(), p.y.into()),
                        ("half_width".to_owned(), p.half_width.into()),
                        ("samples".to_owned(), p.samples.into()),
                    ])
                })
                .collect(),
        ),
    );
    Json::Obj(doc)
}

fn drained_outcome(replications: u64, wall_seconds: f64) -> Json {
    let mut doc = base_outcome("drained", wall_seconds);
    set_key(&mut doc, "replications", replications.into());
    Json::Obj(doc)
}

fn failed_outcome(message: &str, restartable: bool, wall_seconds: f64) -> Json {
    let mut doc = base_outcome("failed", wall_seconds);
    set_key(
        &mut doc,
        "error",
        Json::Obj(vec![
            ("message".to_owned(), Json::str(message.to_owned())),
            ("restartable".to_owned(), Json::Bool(restartable)),
        ]),
    );
    Json::Obj(doc)
}

fn write_outcome(path: &Path, doc: &Json) {
    let mut text = doc.render();
    text.push('\n');
    // Atomic on purpose: the supervisor must never read a torn
    // document and mistake a drain for a crash (or worse, a crash for
    // a finish).
    if let Err(e) = atomic_write(path, text.as_bytes()) {
        eprintln!(
            "serve-worker: warning: could not write {}: {e}",
            path.display()
        );
    }
}

/// The supervisor-side view of `outcome.json`.
#[derive(Debug)]
pub(crate) struct WorkerOutcome {
    kind: String,
    /// Final estimates (present only for a finished outcome).
    pub curve: Option<UnsafetyCurve>,
    /// Evaluation wall time reported by the worker.
    pub wall_seconds: f64,
    /// Telemetry drops in the worker's sink.
    pub telemetry_dropped: u64,
    /// Replications completed (drain progress).
    pub replications: u64,
    /// Typed failure message.
    pub message: String,
    /// Whether the worker judged its failure worth a restart.
    pub restartable: bool,
}

impl WorkerOutcome {
    /// Parses `path`; `None` on missing/torn/mis-shaped documents —
    /// the supervisor treats that exactly like a crash.
    pub fn read(path: &Path) -> Option<WorkerOutcome> {
        let doc = Json::parse(&std::fs::read_to_string(path).ok()?).ok()?;
        if doc.get("schema").and_then(Json::as_str) != Some(WORKER_OUTCOME_SCHEMA) {
            return None;
        }
        let kind = doc.get("outcome").and_then(Json::as_str)?.to_owned();
        let error = doc.get("error").filter(|e| !matches!(e, Json::Null));
        Some(WorkerOutcome {
            curve: crate::server::curve_from_status(&doc),
            wall_seconds: doc
                .get("wall_seconds")
                .and_then(Json::as_f64)
                .unwrap_or(0.0),
            telemetry_dropped: doc
                .get("telemetry_dropped")
                .and_then(Json::as_u64)
                .unwrap_or(0),
            replications: doc.get("replications").and_then(Json::as_u64).unwrap_or(0),
            message: error
                .and_then(|e| e.get("message"))
                .and_then(Json::as_str)
                .unwrap_or("worker reported an unspecified failure")
                .to_owned(),
            restartable: error
                .and_then(|e| e.get("restartable"))
                .and_then(Json::as_bool)
                .unwrap_or(false),
            kind,
        })
    }

    /// Whether the worker reported final estimates.
    pub fn is_finished(&self) -> bool {
        self.kind == "finished"
    }

    /// Whether the worker reported a typed failure.
    pub fn is_failed(&self) -> bool {
        self.kind == "failed"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("ahs-worker-outcome-{tag}-{}", std::process::id()))
    }

    #[test]
    fn outcome_documents_roundtrip() {
        let path = temp_path("roundtrip");
        write_outcome(&path, &drained_outcome(1234, 0.5));
        let outcome = WorkerOutcome::read(&path).expect("drained outcome must parse");
        assert!(!outcome.is_finished());
        assert!(!outcome.is_failed());
        assert_eq!(outcome.replications, 1234);
        assert!(outcome.curve.is_none(), "a drain carries no estimates");

        write_outcome(&path, &failed_outcome("checkpoint eaten", true, 0.1));
        let outcome = WorkerOutcome::read(&path).expect("failed outcome must parse");
        assert!(outcome.is_failed());
        assert!(outcome.restartable);
        assert_eq!(outcome.message, "checkpoint eaten");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_or_alien_documents_read_as_none() {
        let path = temp_path("torn");
        assert!(WorkerOutcome::read(&path).is_none(), "missing file");
        std::fs::write(&path, b"{\"outcome\": \"finished\"").unwrap();
        assert!(WorkerOutcome::read(&path).is_none(), "torn JSON");
        std::fs::write(
            &path,
            b"{\"schema\": \"other/v1\", \"outcome\": \"finished\"}\n",
        )
        .unwrap();
        assert!(WorkerOutcome::read(&path).is_none(), "alien schema");
        std::fs::remove_file(&path).ok();
    }
}
