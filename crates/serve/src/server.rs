//! The evaluation server: accept loop, bounded queue, worker pool,
//! admission control, and graceful drain.
//!
//! Lifecycle: [`Server::start`] binds the listener, rescans the state
//! directory (re-enqueueing every unfinished job, so a restart resumes
//! exactly where the previous process stopped), and spawns the worker
//! pool plus a non-blocking accept loop. Raising the shutdown flag —
//! the same `Arc<AtomicBool>` handed to every study as its interrupt
//! flag — drains the system: the accept loop closes, running jobs stop
//! at their next chunk boundary and flush a final checkpoint, queued
//! jobs stay queued, and [`Server::join`] reports how many accepted
//! jobs remain unfinished (the caller exits 75 when any do).

use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use ahs_obs::{write_with_retry, Json, RunOutcome};

use crate::cache::ModelCache;
use crate::http::{read_request, write_response, Request, RequestError};
use crate::job::{AdmissionPolicy, Job, JobSpec, Phase, SubmitError};
use crate::supervisor::{run_supervised, Isolation, SupervisorConfig};

/// How often parked threads poll the shutdown flag.
const POLL: Duration = Duration::from_millis(25);

/// Everything [`Server::start`] needs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`host:port`; port 0 picks a free port).
    pub addr: String,
    /// Root of the persisted job state.
    pub state_dir: PathBuf,
    /// Concurrent supervised jobs.
    pub workers: usize,
    /// Jobs allowed to wait in the queue; submissions beyond this are
    /// shed with a 429.
    pub queue_capacity: usize,
    /// Admission limits applied to every submission.
    pub policy: AdmissionPolicy,
    /// Restarts allowed per job before a crash becomes a failure.
    pub restart_budget: u32,
    /// Replications between checkpoint flushes.
    pub checkpoint_every: u64,
    /// Checkpoint generations retained per job.
    pub checkpoint_generations: u32,
    /// Concurrent connection handlers; connections beyond this are
    /// shed with a 503 instead of spawning unbounded threads.
    pub max_connections: usize,
    /// Where job attempts run (in-process threads, or re-execed worker
    /// processes with resource budgets).
    pub isolation: Isolation,
}

impl ServeConfig {
    /// Defaults for serving from `state_dir` on a loopback port.
    pub fn new(state_dir: impl Into<PathBuf>) -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:2009".to_owned(),
            state_dir: state_dir.into(),
            workers: 2,
            queue_capacity: 16,
            policy: AdmissionPolicy::default(),
            restart_budget: 2,
            checkpoint_every: 10_000,
            checkpoint_generations: 2,
            max_connections: 64,
            isolation: Isolation::Thread,
        }
    }
}

/// Load-shedding and degradation counters, surfaced in `/v1/healthz`.
#[derive(Debug, Default)]
pub(crate) struct Counters {
    pub accepted: AtomicU64,
    pub rejected_overloaded: AtomicU64,
    pub rejected_policy: AtomicU64,
    pub rejected_invalid: AtomicU64,
    pub enqueue_faults: AtomicU64,
    pub accept_faults: AtomicU64,
    pub responses_dropped: AtomicU64,
    pub worker_restarts: AtomicU64,
    pub connections_shed: AtomicU64,
}

struct Inner {
    config: ServeConfig,
    jobs: Mutex<Vec<Arc<Job>>>,
    queue: Mutex<VecDeque<Arc<Job>>>,
    queue_signal: Condvar,
    next_seq: AtomicU64,
    stop: Arc<AtomicBool>,
    cache: ModelCache,
    counters: Counters,
    /// Live connection-handler threads, bounded by
    /// `config.max_connections`.
    connections: AtomicUsize,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// What was left when the server drained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainReport {
    /// Jobs that reached their final estimates.
    pub finished: usize,
    /// Jobs that failed with a typed error.
    pub failed: usize,
    /// Accepted jobs still queued/interrupted — every one resumes
    /// bitwise when a server restarts over the same state dir.
    pub unfinished: usize,
}

impl DrainReport {
    /// The process outcome this drain maps to: interrupted (exit 75)
    /// while any accepted job is unfinished, success otherwise.
    #[must_use]
    pub fn outcome(&self) -> RunOutcome {
        RunOutcome::of_interrupted(self.unfinished > 0)
    }
}

/// A running evaluation server.
pub struct Server {
    inner: Arc<Inner>,
    addr: SocketAddr,
    accept_handle: JoinHandle<()>,
    worker_handles: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds, rescans `state_dir` (re-enqueueing unfinished jobs in
    /// admission order), and spawns the accept loop and worker pool.
    /// `stop` is the shutdown flag — typically
    /// [`ahs_obs::interrupt_flag`] so SIGINT/SIGTERM drain the server.
    ///
    /// # Errors
    ///
    /// IO errors binding the listener or creating the state directory.
    pub fn start(config: ServeConfig, stop: Arc<AtomicBool>) -> std::io::Result<Server> {
        let jobs_dir = config.state_dir.join("jobs");
        std::fs::create_dir_all(&jobs_dir)?;
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        let inner = Arc::new(Inner {
            config,
            jobs: Mutex::new(Vec::new()),
            queue: Mutex::new(VecDeque::new()),
            queue_signal: Condvar::new(),
            next_seq: AtomicU64::new(1),
            stop,
            cache: ModelCache::new(),
            counters: Counters::default(),
            connections: AtomicUsize::new(0),
        });
        rescan(&inner, &jobs_dir)?;

        let workers = inner.config.workers.max(1);
        let worker_handles = (0..workers)
            .map(|i| {
                let inner = inner.clone();
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawning worker thread")
            })
            .collect();
        let accept_handle = {
            let inner = inner.clone();
            std::thread::Builder::new()
                .name("serve-accept".to_owned())
                .spawn(move || accept_loop(&inner, &listener))
                .expect("spawning accept thread")
        };

        Ok(Server {
            inner,
            addr,
            accept_handle,
            worker_handles,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shutdown flag; raising it drains the server.
    pub fn stop_flag(&self) -> Arc<AtomicBool> {
        self.inner.stop.clone()
    }

    /// Blocks until the shutdown flag drains every thread, then
    /// reports what was left. In-flight jobs stop at chunk boundaries
    /// with a flushed checkpoint; nothing is lost.
    pub fn join(self) -> DrainReport {
        self.accept_handle.join().ok();
        for handle in self.worker_handles {
            handle.join().ok();
        }
        let (mut finished, mut failed, mut unfinished) = (0, 0, 0);
        for job in lock(&self.inner.jobs).iter() {
            match job.phase() {
                Phase::Finished(_) => finished += 1,
                Phase::Failed(_) => failed += 1,
                _ => unfinished += 1,
            }
        }
        DrainReport {
            finished,
            failed,
            unfinished,
        }
    }
}

/// Reloads persisted jobs after a restart: terminal jobs become
/// records, everything else re-enters the queue in admission order.
fn rescan(inner: &Arc<Inner>, jobs_dir: &std::path::Path) -> std::io::Result<()> {
    let mut recovered: Vec<Arc<Job>> = Vec::new();
    for entry in std::fs::read_dir(jobs_dir)? {
        let dir = entry?.path();
        let spec_path = dir.join("job.json");
        if !spec_path.exists() {
            continue;
        }
        let text = std::fs::read_to_string(&spec_path)?;
        let Ok(doc) = Json::parse(&text) else {
            eprintln!("warning: skipping unreadable {}", spec_path.display());
            continue;
        };
        let seq = doc.get("seq").and_then(Json::as_u64).unwrap_or(0);
        let job = match JobSpec::from_json(&doc, &inner.config.policy) {
            Ok(spec) => Arc::new(Job::new(seq, spec, dir.clone())),
            Err(e) => {
                // A spec this server's policy no longer admits must
                // surface as a typed failure, not vanish.
                let Ok(spec) = JobSpec::from_json(&doc, &AdmissionPolicy::default()) else {
                    eprintln!("warning: skipping unparseable {}", spec_path.display());
                    continue;
                };
                let job = Arc::new(Job::new(seq, spec, dir.clone()));
                job.set_phase(Phase::Failed(format!("rejected on recovery: {e}")));
                recovered.push(job);
                continue;
            }
        };
        // The persisted status decides whether the job is terminal.
        let status = std::fs::read_to_string(dir.join("status.json"))
            .ok()
            .and_then(|t| Json::parse(&t).ok());
        let state = status
            .as_ref()
            .and_then(|s| s.get("state"))
            .and_then(Json::as_str)
            .unwrap_or("queued")
            .to_owned();
        if let Some(status) = &status {
            if let Some(dropped) = status.get("telemetry_dropped").and_then(Json::as_u64) {
                job.telemetry_dropped.store(dropped, Ordering::Relaxed);
            }
            if let Some(restarts) = status.get("restarts").and_then(Json::as_u64) {
                job.restarts.store(restarts as u32, Ordering::Relaxed);
            }
        }
        match (state.as_str(), status) {
            ("finished", Some(status)) => {
                if let Some(curve) = curve_from_status(&status) {
                    *job_phase_for_recovery(&job) = Phase::Finished(curve);
                } else {
                    eprintln!(
                        "warning: {} is marked finished but its estimates are \
                         unreadable; re-running from checkpoint",
                        job.name
                    );
                }
            }
            ("failed", Some(status)) => {
                let reason = status
                    .get("error")
                    .and_then(Json::as_str)
                    .unwrap_or("unknown failure")
                    .to_owned();
                *job_phase_for_recovery(&job) = Phase::Failed(reason);
            }
            _ => {}
        }
        recovered.push(job);
    }
    recovered.sort_by_key(|job| job.seq);
    let max_seq = recovered.iter().map(|job| job.seq).max().unwrap_or(0);
    inner.next_seq.store(max_seq + 1, Ordering::Relaxed);
    let mut queue = lock(&inner.queue);
    let mut jobs = lock(&inner.jobs);
    for job in recovered {
        if matches!(
            job.phase(),
            Phase::Queued | Phase::Running | Phase::Interrupted { .. }
        ) {
            queue.push_back(job.clone());
        }
        jobs.push(job);
    }
    Ok(())
}

/// Direct phase access during recovery, before any worker can race.
fn job_phase_for_recovery(job: &Arc<Job>) -> std::sync::MutexGuard<'_, Phase> {
    // set_phase would also rewrite status.json; recovery only restores
    // in-memory state from what is already on disk.
    job.phase_guard()
}

/// Rebuilds a finished curve from a persisted status document. The
/// estimate floats round-trip bitwise through the shortest-roundtrip
/// JSON rendering, so a restarted server reports the exact bits the
/// original evaluation produced.
pub(crate) fn curve_from_status(status: &Json) -> Option<ahs_core::UnsafetyCurve> {
    let estimates = status.get("estimates")?.as_array()?;
    let points = estimates
        .iter()
        .map(|e| {
            Some(ahs_core::UnsafetyPoint {
                x: e.get("x")?.as_f64()?,
                y: e.get("y")?.as_f64()?,
                half_width: e.get("half_width")?.as_f64()?,
                samples: e.get("samples")?.as_u64()?,
            })
        })
        .collect::<Option<Vec<_>>>()?;
    if points.is_empty() {
        return None;
    }
    Some(ahs_core::UnsafetyCurve::from_parts(
        points,
        status.get("replications")?.as_u64()?,
        status.get("converged")?.as_bool().unwrap_or(false),
        status.get("quarantined")?.as_u64().unwrap_or(0),
        status
            .get("resume_lineage")?
            .as_array()?
            .iter()
            .filter_map(Json::as_u64)
            .collect(),
        status.get("resume_fallback")?.as_u64().map(|g| g as u32),
    ))
}

fn worker_loop(inner: &Arc<Inner>) {
    let config = SupervisorConfig {
        restart_budget: inner.config.restart_budget,
        checkpoint_every: inner.config.checkpoint_every,
        checkpoint_generations: inner.config.checkpoint_generations,
        watchdog: inner.config.policy.watchdog,
        isolation: inner.config.isolation.clone(),
    };
    loop {
        let job = {
            let mut queue = lock(&inner.queue);
            loop {
                if inner.stop.load(Ordering::Relaxed) {
                    // Leave queued jobs queued: they are persisted and
                    // resume on the next server start.
                    return;
                }
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                let (guard, _) = inner
                    .queue_signal
                    .wait_timeout(queue, POLL)
                    .unwrap_or_else(PoisonError::into_inner);
                queue = guard;
            }
        };
        let restarts = run_supervised(&job, &inner.cache, &config, &inner.stop);
        inner
            .counters
            .worker_restarts
            .fetch_add(u64::from(restarts), Ordering::Relaxed);
    }
}

fn accept_loop(inner: &Arc<Inner>, listener: &TcpListener) {
    while !inner.stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => match ConnectionPermit::acquire(inner) {
                Some(permit) => {
                    let inner = inner.clone();
                    std::thread::Builder::new()
                        .name("serve-conn".to_owned())
                        .spawn(move || {
                            let _permit = permit;
                            handle_connection(&inner, stream);
                        })
                        .ok();
                }
                None => shed_connection(inner, stream),
            },
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => std::thread::sleep(POLL),
            Err(_) => std::thread::sleep(POLL),
        }
    }
}

/// A counted slot in the bounded connection-handler pool; dropping it
/// (normal return, panic unwind, or a failed thread spawn) frees the
/// slot.
struct ConnectionPermit {
    inner: Arc<Inner>,
}

impl ConnectionPermit {
    fn acquire(inner: &Arc<Inner>) -> Option<ConnectionPermit> {
        let max = inner.config.max_connections.max(1);
        inner
            .connections
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
                (n < max).then_some(n + 1)
            })
            .ok()
            .map(|_| ConnectionPermit {
                inner: inner.clone(),
            })
    }
}

impl Drop for ConnectionPermit {
    fn drop(&mut self) {
        self.inner.connections.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Sheds a connection over the handler budget: a typed 503 the client
/// can back off on, written inline with a short timeout so a slow
/// reader cannot stall the accept loop.
fn shed_connection(inner: &Arc<Inner>, mut stream: TcpStream) {
    inner
        .counters
        .connections_shed
        .fetch_add(1, Ordering::Relaxed);
    stream
        .set_write_timeout(Some(Duration::from_millis(250)))
        .ok();
    write_response(
        &mut stream,
        503,
        &[("retry-after", "1".to_owned())],
        &error_body("connection limit reached; retry later"),
    )
    .ok();
    // The request was never read; closing now would RST the socket and
    // can discard the 503 before the client sees it. Half-close our
    // side and briefly drain theirs so the response survives — with a
    // hard deadline, since this runs on the accept thread.
    stream.shutdown(std::net::Shutdown::Write).ok();
    stream
        .set_read_timeout(Some(Duration::from_millis(50)))
        .ok();
    let deadline = std::time::Instant::now() + Duration::from_millis(250);
    let mut sink = [0u8; 512];
    while std::time::Instant::now() < deadline {
        match std::io::Read::read(&mut stream, &mut sink) {
            Ok(n) if n > 0 => {}
            _ => break,
        }
    }
}

fn handle_connection(inner: &Arc<Inner>, mut stream: TcpStream) {
    // The accept failpoint models the handoff dying under fault: an
    // injected error closes the connection immediately (the client
    // sees EOF, never a hang) and is counted; a panic kills only this
    // connection thread, with the same observable effect.
    match ahs_inject::eval("serve::accept") {
        Some(ahs_inject::Fault::Error(_)) => {
            inner.counters.accept_faults.fetch_add(1, Ordering::Relaxed);
            return;
        }
        Some(ahs_inject::Fault::Panic(msg)) => {
            inner.counters.accept_faults.fetch_add(1, Ordering::Relaxed);
            panic!("injected accept crash: {msg}");
        }
        Some(ahs_inject::Fault::Delay(ms)) => {
            std::thread::sleep(Duration::from_millis(ms));
        }
        _ => {}
    }

    let request = match read_request(&mut stream) {
        Ok(request) => request,
        Err(RequestError::Bad(status, reason)) => {
            respond(inner, &mut stream, status, &[], &error_body(reason));
            return;
        }
        Err(RequestError::Io) => return,
    };
    let (status, headers, body) = route(inner, &request);
    respond(inner, &mut stream, status, &headers, &body);
}

fn error_body(reason: &str) -> String {
    let mut doc = Json::Obj(vec![("error".to_owned(), Json::str(reason))]).render();
    doc.push('\n');
    doc
}

fn respond(
    inner: &Arc<Inner>,
    stream: &mut TcpStream,
    status: u16,
    headers: &[(&str, String)],
    body: &str,
) {
    // An injected response-write fault drops the connection without a
    // response — the client sees a clean EOF and the loss is counted;
    // the server thread moves on either way.
    match ahs_inject::eval("serve::response::write") {
        Some(ahs_inject::Fault::Error(_)) => {
            inner
                .counters
                .responses_dropped
                .fetch_add(1, Ordering::Relaxed);
            return;
        }
        Some(ahs_inject::Fault::Delay(ms)) => {
            std::thread::sleep(Duration::from_millis(ms));
        }
        _ => {}
    }
    if write_response(stream, status, headers, body).is_err() {
        inner
            .counters
            .responses_dropped
            .fetch_add(1, Ordering::Relaxed);
    }
}

type Routed = (u16, Vec<(&'static str, String)>, String);

fn route(inner: &Arc<Inner>, request: &Request) -> Routed {
    let path = request.path.as_str();
    match (request.method.as_str(), path) {
        ("POST", "/v1/jobs") => submit(inner, &request.body),
        ("GET", "/v1/jobs") => list_jobs(inner),
        ("GET", "/v1/healthz") => (200, Vec::new(), render_line(&health(inner))),
        ("GET", _) if path.starts_with("/v1/jobs/") => job_route(inner, path),
        ("POST" | "GET", _) => (404, Vec::new(), error_body("no such endpoint")),
        _ => (405, Vec::new(), error_body("method not allowed")),
    }
}

fn render_line(doc: &Json) -> String {
    let mut text = doc.render();
    text.push('\n');
    text
}

fn find_job(inner: &Arc<Inner>, name: &str) -> Option<Arc<Job>> {
    lock(&inner.jobs)
        .iter()
        .find(|job| job.name == name)
        .cloned()
}

fn job_route(inner: &Arc<Inner>, path: &str) -> Routed {
    let rest = &path["/v1/jobs/".len()..];
    let (name, tail) = match rest.split_once('/') {
        None => (rest, None),
        Some((name, tail)) => (name, Some(tail)),
    };
    let Some(job) = find_job(inner, name) else {
        return (404, Vec::new(), error_body("no such job"));
    };
    match tail {
        None => (200, Vec::new(), render_line(&job.status_json())),
        Some("manifest") => {
            if !matches!(job.phase(), Phase::Finished(_)) {
                return (409, Vec::new(), error_body("job not finished"));
            }
            match std::fs::read_to_string(job.dir.join("manifest.json")) {
                Ok(text) => (200, Vec::new(), text),
                Err(_) => (500, Vec::new(), error_body("manifest unreadable")),
            }
        }
        Some(_) => (404, Vec::new(), error_body("no such endpoint")),
    }
}

fn list_jobs(inner: &Arc<Inner>) -> Routed {
    let jobs = lock(&inner.jobs)
        .iter()
        .map(|job| job.status_json())
        .collect();
    let doc = Json::Obj(vec![
        ("schema".to_owned(), Json::str("ahs-serve-jobs/v1")),
        ("jobs".to_owned(), Json::Arr(jobs)),
    ]);
    (200, Vec::new(), render_line(&doc))
}

fn health(inner: &Arc<Inner>) -> Json {
    let (mut queued, mut running, mut interrupted, mut finished, mut failed) =
        (0u64, 0u64, 0u64, 0u64, 0u64);
    for job in lock(&inner.jobs).iter() {
        match job.phase() {
            Phase::Queued => queued += 1,
            Phase::Running => running += 1,
            Phase::Interrupted { .. } => interrupted += 1,
            Phase::Finished(_) => finished += 1,
            Phase::Failed(_) => failed += 1,
        }
    }
    let counters = &inner.counters;
    let cache = inner.cache.stats();
    let draining = inner.stop.load(Ordering::Relaxed);
    Json::Obj(vec![
        ("schema".to_owned(), Json::str("ahs-serve-health/v1")),
        (
            "status".to_owned(),
            Json::str(if draining { "draining" } else { "ok" }),
        ),
        ("workers".to_owned(), inner.config.workers.into()),
        (
            "queue_capacity".to_owned(),
            inner.config.queue_capacity.into(),
        ),
        (
            "max_connections".to_owned(),
            inner.config.max_connections.into(),
        ),
        (
            "connections_active".to_owned(),
            inner.connections.load(Ordering::Relaxed).into(),
        ),
        (
            "connections_shed".to_owned(),
            counters.connections_shed.load(Ordering::Relaxed).into(),
        ),
        ("queued".to_owned(), queued.into()),
        ("running".to_owned(), running.into()),
        ("interrupted".to_owned(), interrupted.into()),
        ("finished".to_owned(), finished.into()),
        ("failed".to_owned(), failed.into()),
        (
            "accepted".to_owned(),
            counters.accepted.load(Ordering::Relaxed).into(),
        ),
        (
            "rejected_overloaded".to_owned(),
            counters.rejected_overloaded.load(Ordering::Relaxed).into(),
        ),
        (
            "rejected_policy".to_owned(),
            counters.rejected_policy.load(Ordering::Relaxed).into(),
        ),
        (
            "rejected_invalid".to_owned(),
            counters.rejected_invalid.load(Ordering::Relaxed).into(),
        ),
        (
            "enqueue_faults".to_owned(),
            counters.enqueue_faults.load(Ordering::Relaxed).into(),
        ),
        (
            "accept_faults".to_owned(),
            counters.accept_faults.load(Ordering::Relaxed).into(),
        ),
        (
            "responses_dropped".to_owned(),
            counters.responses_dropped.load(Ordering::Relaxed).into(),
        ),
        (
            "worker_restarts".to_owned(),
            counters.worker_restarts.load(Ordering::Relaxed).into(),
        ),
        ("cache_hits".to_owned(), cache.hits.into()),
        ("cache_misses".to_owned(), cache.misses.into()),
        ("cache_bypasses".to_owned(), cache.bypasses.into()),
        ("cache_models".to_owned(), inner.cache.len().into()),
    ])
}

fn submit(inner: &Arc<Inner>, body: &[u8]) -> Routed {
    let Ok(text) = std::str::from_utf8(body) else {
        inner
            .counters
            .rejected_invalid
            .fetch_add(1, Ordering::Relaxed);
        return (400, Vec::new(), error_body("body must be UTF-8 JSON"));
    };
    let doc = match Json::parse(if text.trim().is_empty() { "{}" } else { text }) {
        Ok(doc) => doc,
        Err(e) => {
            inner
                .counters
                .rejected_invalid
                .fetch_add(1, Ordering::Relaxed);
            return (400, Vec::new(), error_body(&format!("invalid JSON: {e}")));
        }
    };
    let spec = match JobSpec::from_json(&doc, &inner.config.policy) {
        Ok(spec) => spec,
        Err(e @ SubmitError::Invalid(_)) => {
            inner
                .counters
                .rejected_invalid
                .fetch_add(1, Ordering::Relaxed);
            return (400, Vec::new(), error_body(&e.to_string()));
        }
        Err(e @ SubmitError::OverPolicy(_)) => {
            inner
                .counters
                .rejected_policy
                .fetch_add(1, Ordering::Relaxed);
            return (422, Vec::new(), error_body(&e.to_string()));
        }
    };

    if inner.stop.load(Ordering::Relaxed) {
        return (503, Vec::new(), error_body("server is draining"));
    }
    // Load shedding: an explicit, typed rejection the client can back
    // off on — never silent queue growth.
    if lock(&inner.queue).len() >= inner.config.queue_capacity {
        inner
            .counters
            .rejected_overloaded
            .fetch_add(1, Ordering::Relaxed);
        return (
            429,
            vec![("retry-after", "1".to_owned())],
            error_body("job queue is full; retry later"),
        );
    }
    // The enqueue failpoint models the admission step itself failing
    // (queue datastructure, bookkeeping IO): a typed 503, never a
    // half-admitted job.
    match ahs_inject::eval("serve::job::enqueue") {
        Some(ahs_inject::Fault::Error(_)) => {
            inner
                .counters
                .enqueue_faults
                .fetch_add(1, Ordering::Relaxed);
            return (
                503,
                Vec::new(),
                error_body("job admission failed; retry later"),
            );
        }
        Some(ahs_inject::Fault::Delay(ms)) => {
            std::thread::sleep(Duration::from_millis(ms));
        }
        _ => {}
    }

    let seq = inner.next_seq.fetch_add(1, Ordering::Relaxed);
    let dir = inner
        .config
        .state_dir
        .join("jobs")
        .join(format!("job-{seq:06}"));
    if let Err(e) = std::fs::create_dir_all(&dir) {
        return (
            500,
            Vec::new(),
            error_body(&format!("creating job dir: {e}")),
        );
    }
    let job = Arc::new(Job::new(seq, spec, dir.clone()));
    let mut spec_doc = match job.spec.to_json() {
        Json::Obj(fields) => fields,
        _ => unreachable!("spec renders as an object"),
    };
    spec_doc.insert(
        0,
        ("schema".to_owned(), Json::str(crate::job::JOB_SPEC_SCHEMA)),
    );
    spec_doc.insert(1, ("seq".to_owned(), seq.into()));
    let text = render_line(&Json::Obj(spec_doc));
    if let Err(e) = write_with_retry(&dir.join("job.json"), text.as_bytes()) {
        return (
            500,
            Vec::new(),
            error_body(&format!("persisting job spec: {e}")),
        );
    }
    job.persist_status();
    lock(&inner.jobs).push(job.clone());
    lock(&inner.queue).push_back(job.clone());
    inner.queue_signal.notify_one();
    inner.counters.accepted.fetch_add(1, Ordering::Relaxed);
    (202, Vec::new(), render_line(&job.status_json()))
}
