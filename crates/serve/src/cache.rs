//! The shared compiled-model cache.
//!
//! Jobs over the same configuration share one [`CompiledModel`]: the
//! composed SAN sits behind an `Arc`, which is exactly what `Study`
//! stores internally, so sharing costs nothing and changes no bits —
//! replication streams depend only on (seed, chunk, model structure),
//! never on which job compiled the model.
//!
//! The cache is keyed in two hops: an FNV-1a digest of the parameter
//! JSON finds the model *fingerprint* (the same FNV-1a structural
//! fingerprint `ahs-checkpoint/v1` validates on resume), and the
//! fingerprint indexes the store. The `serve::cache::insert` failpoint
//! can fail the publication step; that degrades to a counted cache
//! *bypass* — the job keeps its privately built model, which is
//! bitwise-equivalent — never to a failed job.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use ahs_core::{AhsError, CompiledModel, Params};
use ahs_obs::fnv1a_64;

/// Hit/miss/bypass counts, surfaced in `/v1/healthz`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that compiled a fresh model.
    pub misses: u64,
    /// Fresh models that could not be published (injected or real
    /// insert failure) — the job ran on its private copy.
    pub bypasses: u64,
}

/// A concurrent map from parameter digest to compiled model.
#[derive(Debug, Default)]
pub struct ModelCache {
    /// Parameter digest → model fingerprint.
    index: Mutex<HashMap<u64, u64>>,
    /// Model fingerprint → compiled model.
    models: Mutex<HashMap<u64, Arc<CompiledModel>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    bypasses: AtomicU64,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // Map operations cannot leave a HashMap torn from this module's
    // usage; recover from poisoning instead of wedging the server.
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl ModelCache {
    /// An empty cache.
    pub fn new() -> ModelCache {
        ModelCache::default()
    }

    /// The compiled model for `params`: cached if present, freshly
    /// compiled (and published, failpoint permitting) otherwise.
    ///
    /// # Errors
    ///
    /// Propagates [`AhsError`] from model compilation; cache-layer
    /// failures are degradations, never errors.
    pub fn get_or_build(&self, params: &Params) -> Result<Arc<CompiledModel>, AhsError> {
        let digest = fnv1a_64(params.to_json().render().as_bytes());
        if let Some(fp) = lock(&self.index).get(&digest).copied() {
            if let Some(model) = lock(&self.models).get(&fp).cloned() {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(model);
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let compiled = Arc::new(CompiledModel::build(params)?);
        match ahs_inject::eval("serve::cache::insert") {
            Some(ahs_inject::Fault::Error(_)) => {
                self.bypasses.fetch_add(1, Ordering::Relaxed);
            }
            fault => {
                if let Some(ahs_inject::Fault::Delay(ms)) = fault {
                    std::thread::sleep(std::time::Duration::from_millis(ms));
                }
                lock(&self.index).insert(digest, compiled.fingerprint());
                lock(&self.models).insert(compiled.fingerprint(), compiled.clone());
            }
        }
        Ok(compiled)
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            bypasses: self.bypasses.load(Ordering::Relaxed),
        }
    }

    /// Distinct models currently cached.
    pub fn len(&self) -> usize {
        lock(&self.models).len()
    }

    /// Whether the cache holds no models.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn second_lookup_hits_and_shares() {
        let cache = ModelCache::new();
        let params = Params::builder().lambda(5e-3).n(2).build().unwrap();
        let a = cache.get_or_build(&params).unwrap();
        let b = cache.get_or_build(&params).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second lookup must share the model");
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_params_get_distinct_models() {
        let cache = ModelCache::new();
        let a = cache
            .get_or_build(&Params::builder().lambda(5e-3).n(2).build().unwrap())
            .unwrap();
        let b = cache
            .get_or_build(&Params::builder().lambda(5e-3).n(3).build().unwrap())
            .unwrap();
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_eq!(cache.len(), 2);
    }
}
