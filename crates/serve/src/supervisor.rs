//! Per-job supervision: checkpoint-namespaced attempts, restart from
//! the latest good generation, typed failure classification — at the
//! caller's choice of containment boundary.
//!
//! Two [`Isolation`] modes share one restart loop:
//!
//! * **Thread** (the in-process fallback): each attempt is one
//!   `UnsafetyEvaluator` run under `catch_unwind`. A panic or a
//!   recoverable typed error consumes a restart; anything
//!   `catch_unwind` cannot see (abort, OOM, stack overflow) takes the
//!   whole server with it.
//! * **Process**: each attempt re-execs the current binary as a hidden
//!   `ahs serve-worker`, which applies `setrlimit` budgets to itself,
//!   writes a heartbeat file, evaluates the job from its namespaced
//!   state directory, and reports through an `outcome.json` plus its
//!   exit status. The supervisor maps clean exit / exit 75 / exit 1 /
//!   signals / a stale heartbeat into the same typed restart policy
//!   ([`classify_worker_exit`]) — so *any* death, including SIGKILL and
//!   rlimit-induced aborts, restarts from the latest good checkpoint
//!   generation and stays bitwise-resumable.
//!
//! Unrecoverable causes (bad parameters, checkpoint validation
//! failure, IO that outlived its retries) fail the job with a typed
//! message instead of burning restarts.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, ExitStatus, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ahs_core::{AhsError, BiasMode, UnsafetyCurve, UnsafetyEvaluator};
use ahs_des::{generation_path, SimError, Watchdog};
use ahs_obs::{heartbeat_read, send_sigterm, ProgressSink};

use crate::cache::ModelCache;
use crate::job::{Job, JobSpec, Phase};
use crate::worker::WorkerOutcome;

/// How often the process supervisor polls a child for exit, heartbeat
/// advance, and the drain flag.
const REAP_POLL: Duration = Duration::from_millis(25);

/// Where each job attempt runs.
#[derive(Debug, Clone)]
pub enum Isolation {
    /// In the server's address space, under `catch_unwind`. Cheap, but
    /// an abort kills every tenant at once; kept as the fallback for
    /// platforms without rlimit support.
    Thread,
    /// In a child process re-execed from `worker_exe`, with optional
    /// `setrlimit` budgets — the containment boundary that survives
    /// SIGKILL, SIGSEGV, and allocation aborts.
    Process(ProcessIsolation),
}

/// Knobs for [`Isolation::Process`].
#[derive(Debug, Clone)]
pub struct ProcessIsolation {
    /// Binary to re-exec (normally `std::env::current_exe()`); it must
    /// understand the hidden `serve-worker` mode.
    pub worker_exe: PathBuf,
    /// Address-space cap applied by the worker to itself, in MiB.
    pub mem_limit_mb: Option<u64>,
    /// CPU-time cap applied by the worker to itself, in seconds.
    pub cpu_limit_secs: Option<u64>,
    /// Cadence of the worker's heartbeat file.
    pub heartbeat_interval: Duration,
    /// How long a non-advancing heartbeat is tolerated before the
    /// supervisor declares the worker wedged and kills it.
    pub heartbeat_stale_after: Duration,
    /// Grace between the drain SIGTERM and a hard SIGKILL.
    pub term_grace: Duration,
}

impl ProcessIsolation {
    /// Process isolation via `worker_exe` with default budgets: no
    /// rlimits, 200ms heartbeats declared stale after 30s, 30s of
    /// drain grace.
    pub fn new(worker_exe: impl Into<PathBuf>) -> ProcessIsolation {
        ProcessIsolation {
            worker_exe: worker_exe.into(),
            mem_limit_mb: None,
            cpu_limit_secs: None,
            heartbeat_interval: Duration::from_millis(200),
            heartbeat_stale_after: Duration::from_secs(30),
            term_grace: Duration::from_secs(30),
        }
    }
}

/// Supervision knobs, fixed at server construction.
#[derive(Debug, Clone)]
pub(crate) struct SupervisorConfig {
    /// Restarts allowed per job before a crash becomes a failure.
    pub restart_budget: u32,
    /// Replications between checkpoint flushes.
    pub checkpoint_every: u64,
    /// Checkpoint generations retained / consulted on resume.
    pub checkpoint_generations: u32,
    /// Server-policy watchdog applied to every job.
    pub watchdog: Option<Watchdog>,
    /// Containment boundary for job attempts.
    pub isolation: Isolation,
}

/// How one attempt ended, short of an error.
enum Attempt {
    /// The study ran to completion; the sink rode along so the
    /// manifest can report this attempt's telemetry drops.
    Finished(UnsafetyCurve, f64, Arc<ProgressSink>),
    /// The server's shutdown flag drained the study at a chunk
    /// boundary; the final checkpoint is flushed.
    Drained(UnsafetyCurve),
}

/// The unified verdict on one attempt, across both isolation modes.
enum AttemptEnd {
    /// Final estimates are in hand. `manifest_written` is true when an
    /// isolated worker already wrote `manifest.json` itself.
    Finished {
        curve: UnsafetyCurve,
        wall_seconds: f64,
        progress: Option<Arc<ProgressSink>>,
        manifest_written: bool,
    },
    /// Drained at a chunk boundary with a flushed checkpoint.
    Drained { replications: u64 },
    /// A typed, non-restartable failure.
    Failed { message: String },
    /// A death a resume-from-checkpoint can outrun.
    Crashed { reason: String },
}

/// How an isolated worker process ended, as observed by the parent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum WorkerExit {
    /// Exited on its own with this code.
    Code(i32),
    /// Killed by this signal (9 = SIGKILL, 11 = SIGSEGV, 6 = SIGABRT).
    Signal(i32),
    /// Alive but its heartbeat stopped advancing; the supervisor
    /// killed it.
    HeartbeatStale,
}

/// What the supervisor does about a [`WorkerExit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ExitClass {
    /// Exit 0 — the outcome document carries final estimates.
    Finished,
    /// Exit 75 (`EX_TEMPFAIL`) — graceful drain, checkpoint flushed.
    Drained,
    /// Exit 1 — a typed failure; the outcome document says whether a
    /// restart could help.
    Typed,
    /// Everything else — panic aborts (101), rlimit kills, SIGKILL,
    /// SIGSEGV, stale heartbeats: restart from the latest good
    /// checkpoint generation.
    Crash,
}

/// The exit-status → restart-decision mapping, as a pure function so
/// the supervision policy is unit-testable without spawning anything.
pub(crate) fn classify_worker_exit(exit: WorkerExit) -> ExitClass {
    match exit {
        WorkerExit::Code(0) => ExitClass::Finished,
        WorkerExit::Code(75) => ExitClass::Drained,
        WorkerExit::Code(1) => ExitClass::Typed,
        WorkerExit::Code(_) | WorkerExit::Signal(_) | WorkerExit::HeartbeatStale => {
            ExitClass::Crash
        }
    }
}

fn describe_exit(exit: WorkerExit) -> String {
    match exit {
        WorkerExit::Code(code) => format!("worker process exited with code {code}"),
        WorkerExit::Signal(signal) => format!("worker process killed by signal {signal}"),
        WorkerExit::HeartbeatStale => {
            "worker heartbeat went stale; process killed by the supervisor".to_owned()
        }
    }
}

/// Whether a typed error is worth a restart: only causes that a
/// resume-from-checkpoint can actually outrun. Watchdog kills
/// (`Runaway`) and quarantine overflows are scheduling/injection
/// artifacts that a later attempt may not reproduce; everything else
/// (invalid parameters, checkpoint validation, exhausted IO retries)
/// would fail identically again.
pub(crate) fn restartable(error: &AhsError) -> bool {
    matches!(
        error,
        AhsError::Sim(SimError::Runaway { .. } | SimError::QuarantineOverflow { .. })
    )
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Runs `job` to a terminal phase (`Finished`, `Failed`, or
/// `Interrupted` when `stop` drains it), restarting crashed attempts
/// within the budget. Returns the number of restarts consumed.
pub(crate) fn run_supervised(
    job: &Arc<Job>,
    cache: &ModelCache,
    config: &SupervisorConfig,
    stop: &Arc<AtomicBool>,
) -> u32 {
    job.set_phase(Phase::Running);
    let mut consumed = 0u32;
    loop {
        let end = match &config.isolation {
            Isolation::Thread => thread_attempt(job, cache, config, stop),
            Isolation::Process(isolation) => process_attempt(job, cache, config, isolation, stop),
        };
        let crash_reason = match end {
            AttemptEnd::Finished {
                curve,
                wall_seconds,
                progress,
                manifest_written,
            } => {
                finish(
                    job,
                    config,
                    &curve,
                    wall_seconds,
                    progress,
                    manifest_written,
                );
                return consumed;
            }
            AttemptEnd::Drained { replications } => {
                job.set_phase(Phase::Interrupted { replications });
                return consumed;
            }
            AttemptEnd::Failed { message } => {
                job.set_phase(Phase::Failed(message));
                return consumed;
            }
            AttemptEnd::Crashed { reason } => reason,
        };
        if consumed >= config.restart_budget {
            job.set_phase(Phase::Failed(format!(
                "{crash_reason} (restart budget of {} exhausted)",
                config.restart_budget
            )));
            return consumed;
        }
        consumed += 1;
        job.restarts.fetch_add(1, Ordering::Relaxed);
        eprintln!(
            "supervisor: {} attempt crashed ({crash_reason}); restarting ({consumed}/{})",
            job.name, config.restart_budget
        );
    }
}

fn finish(
    job: &Arc<Job>,
    config: &SupervisorConfig,
    curve: &UnsafetyCurve,
    wall_seconds: f64,
    progress: Option<Arc<ProgressSink>>,
    manifest_written: bool,
) {
    if !manifest_written {
        let mut eval = evaluator_for(job, config, false);
        if let Some(progress) = progress {
            eval = eval.with_progress(progress);
        }
        let manifest = eval.manifest("ahs serve", curve, wall_seconds);
        let path = job.dir.join("manifest.json");
        if let Err(e) = manifest.write(&path) {
            eprintln!("warning: could not write {}: {e}", path.display());
        }
    }
    job.set_phase(Phase::Finished(curve.clone()));
}

/// The evaluator for one attempt over `spec` — exactly the
/// configuration `ahs evaluate` would build for the same spec, with
/// the checkpoint namespaced into the job directory. Shared between
/// thread-mode attempts and the isolated worker so the two modes can
/// never drift apart bitwise.
pub(crate) fn evaluator_for_spec(
    spec: &JobSpec,
    checkpoint: &Path,
    checkpoint_every: u64,
    checkpoint_generations: u32,
    watchdog: Option<Watchdog>,
    resume: bool,
) -> UnsafetyEvaluator {
    let mut eval = UnsafetyEvaluator::new(spec.params.clone())
        .with_seed(spec.seed)
        .with_threads(spec.threads)
        .with_replications(spec.replications)
        .with_checkpoint(checkpoint, checkpoint_every)
        .with_checkpoint_generations(checkpoint_generations)
        .with_quarantine_budget(spec.quarantine_budget);
    if spec.plain {
        eval = eval.with_bias(BiasMode::None);
    }
    if let Some(watchdog) = watchdog {
        eval = eval.with_watchdog(watchdog);
    }
    if resume {
        eval = eval.with_resume(checkpoint);
    }
    eval
}

fn evaluator_for(job: &Job, config: &SupervisorConfig, resume: bool) -> UnsafetyEvaluator {
    evaluator_for_spec(
        &job.spec,
        &job.checkpoint_path(),
        config.checkpoint_every,
        config.checkpoint_generations,
        config.watchdog,
        resume,
    )
}

/// Whether any retained checkpoint generation exists at `base` — the
/// signal that an attempt should resume rather than start fresh.
pub(crate) fn checkpoint_exists(base: &Path, generations: u32) -> bool {
    (0..generations).any(|g| generation_path(base, g).exists())
}

fn thread_attempt(
    job: &Arc<Job>,
    cache: &ModelCache,
    config: &SupervisorConfig,
    stop: &Arc<AtomicBool>,
) -> AttemptEnd {
    match catch_unwind(AssertUnwindSafe(|| run_attempt(job, cache, config, stop))) {
        Ok(Ok(Attempt::Finished(curve, wall_seconds, progress))) => AttemptEnd::Finished {
            curve,
            wall_seconds,
            progress: Some(progress),
            manifest_written: false,
        },
        Ok(Ok(Attempt::Drained(curve))) => AttemptEnd::Drained {
            replications: curve.replications(),
        },
        Ok(Err(error)) if !restartable(&error) => AttemptEnd::Failed {
            message: error.to_string(),
        },
        Ok(Err(error)) => AttemptEnd::Crashed {
            reason: error.to_string(),
        },
        Err(payload) => AttemptEnd::Crashed {
            reason: format!("worker panicked: {}", panic_message(payload.as_ref())),
        },
    }
}

fn run_attempt(
    job: &Arc<Job>,
    cache: &ModelCache,
    config: &SupervisorConfig,
    stop: &Arc<AtomicBool>,
) -> Result<Attempt, AhsError> {
    // The worker-spawn failpoint models a worker dying before (panic)
    // or while (error) picking the job up; a delay models slow starts.
    match ahs_inject::eval("serve::worker::spawn") {
        Some(ahs_inject::Fault::Panic(msg)) => panic!("injected worker-spawn crash: {msg}"),
        Some(fault @ ahs_inject::Fault::Error(_)) => {
            return Err(AhsError::Sim(SimError::Internal {
                context: fault.to_io_error("serve::worker::spawn").map_or_else(
                    || "injected worker-spawn fault".to_owned(),
                    |e| e.to_string(),
                ),
            }));
        }
        Some(ahs_inject::Fault::Delay(ms)) => {
            std::thread::sleep(std::time::Duration::from_millis(ms));
        }
        _ => {}
    }

    let compiled = cache.get_or_build(&job.spec.params)?;
    let progress = Arc::new(
        ProgressSink::file(&job.dir.join("telemetry.jsonl")).map_err(|e| {
            AhsError::Sim(SimError::Internal {
                context: format!("opening telemetry sink: {e}"),
            })
        })?,
    );

    let resume = checkpoint_exists(&job.checkpoint_path(), config.checkpoint_generations);
    let eval = evaluator_for(job, config, resume)
        .with_interrupt(stop.clone())
        .with_progress(progress.clone());

    let start = Instant::now();
    let result = eval.evaluate_compiled(&job.spec.grid(), &compiled);
    job.telemetry_dropped
        .fetch_add(progress.dropped(), Ordering::Relaxed);
    let curve = result?;
    if curve.interrupted() {
        return Ok(Attempt::Drained(curve));
    }
    Ok(Attempt::Finished(
        curve,
        start.elapsed().as_secs_f64(),
        progress,
    ))
}

/// One attempt behind the process boundary: re-exec the worker, watch
/// exit + heartbeat, classify the death.
fn process_attempt(
    job: &Arc<Job>,
    cache: &ModelCache,
    config: &SupervisorConfig,
    isolation: &ProcessIsolation,
    stop: &Arc<AtomicBool>,
) -> AttemptEnd {
    // Same spawn-failpoint semantics as thread mode: panic-shaped
    // faults are restartable crashes, error-shaped ones typed
    // failures. (Never an actual panic here — in process mode there is
    // no catch_unwind above this frame.)
    match ahs_inject::eval("serve::worker::spawn") {
        Some(ahs_inject::Fault::Panic(msg)) => {
            return AttemptEnd::Crashed {
                reason: format!("injected worker-spawn crash: {msg}"),
            };
        }
        Some(fault @ ahs_inject::Fault::Error(_)) => {
            return AttemptEnd::Failed {
                message: fault.to_io_error("serve::worker::spawn").map_or_else(
                    || "injected worker-spawn fault".to_owned(),
                    |e| e.to_string(),
                ),
            };
        }
        Some(ahs_inject::Fault::Delay(ms)) => {
            std::thread::sleep(Duration::from_millis(ms));
        }
        _ => {}
    }
    // The exec failpoint models the re-exec itself failing (missing
    // binary, fork failure): a restartable crash, like a real spawn
    // error below.
    match ahs_inject::eval("serve::worker::exec") {
        Some(ahs_inject::Fault::Error(_) | ahs_inject::Fault::Panic(_)) => {
            return AttemptEnd::Crashed {
                reason: "injected worker-exec fault".to_owned(),
            };
        }
        Some(ahs_inject::Fault::Delay(ms)) => {
            std::thread::sleep(Duration::from_millis(ms));
        }
        _ => {}
    }

    // Cache handoff: the parent keeps the shared compiled-model cache
    // warm (and its counters meaningful); the child re-derives the
    // model from the same spec and proves equivalence against this
    // structural fingerprint before evaluating anything.
    let compiled = match cache.get_or_build(&job.spec.params) {
        Ok(compiled) => compiled,
        Err(error) if restartable(&error) => {
            return AttemptEnd::Crashed {
                reason: error.to_string(),
            };
        }
        Err(error) => {
            return AttemptEnd::Failed {
                message: error.to_string(),
            };
        }
    };

    let outcome_path = job.dir.join("outcome.json");
    let heartbeat_path = job.dir.join("heartbeat");
    std::fs::remove_file(&outcome_path).ok();
    std::fs::remove_file(&heartbeat_path).ok();

    let mut command = Command::new(&isolation.worker_exe);
    command
        .arg("serve-worker")
        .arg("--job-dir")
        .arg(&job.dir)
        .arg("--checkpoint-every")
        .arg(config.checkpoint_every.to_string())
        .arg("--checkpoint-generations")
        .arg(config.checkpoint_generations.to_string())
        .arg("--heartbeat-ms")
        .arg(isolation.heartbeat_interval.as_millis().to_string())
        .arg("--expect-fingerprint")
        .arg(format!("{:016x}", compiled.fingerprint()))
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::inherit());
    if let Some(mb) = isolation.mem_limit_mb {
        command.arg("--mem-limit").arg(mb.to_string());
    }
    if let Some(secs) = isolation.cpu_limit_secs {
        command.arg("--cpu-limit").arg(secs.to_string());
    }
    if let Some(watchdog) = config.watchdog {
        if let Some(events) = watchdog.max_events() {
            command.arg("--watchdog-events").arg(events.to_string());
        }
        if let Some(seconds) = watchdog.max_wall_seconds() {
            command.arg("--watchdog-seconds").arg(seconds.to_string());
        }
    }
    let mut child = match command.spawn() {
        Ok(child) => child,
        Err(e) => {
            return AttemptEnd::Crashed {
                reason: format!("spawning worker process: {e}"),
            };
        }
    };
    job.set_worker_pid(Some(child.id()));
    let (exit, termed) = supervise_child(&mut child, &heartbeat_path, isolation, stop);
    job.set_worker_pid(None);

    // The reap failpoint models losing the worker's outcome document
    // (truncated write, unreadable disk) after a clean-looking exit:
    // the attempt demotes to a restartable crash.
    let reap_fault = match ahs_inject::eval("serve::worker::reap") {
        Some(ahs_inject::Fault::Error(_)) => true,
        Some(ahs_inject::Fault::Delay(ms)) => {
            std::thread::sleep(Duration::from_millis(ms));
            false
        }
        _ => false,
    };
    let outcome = if reap_fault {
        None
    } else {
        WorkerOutcome::read(&outcome_path)
    };

    match classify_worker_exit(exit) {
        ExitClass::Finished => match outcome {
            Some(outcome) if outcome.is_finished() => match outcome.curve {
                Some(curve) => {
                    job.telemetry_dropped
                        .fetch_add(outcome.telemetry_dropped, Ordering::Relaxed);
                    AttemptEnd::Finished {
                        curve,
                        wall_seconds: outcome.wall_seconds,
                        progress: None,
                        manifest_written: true,
                    }
                }
                None => AttemptEnd::Crashed {
                    reason: "worker finished without readable estimates".to_owned(),
                },
            },
            _ => AttemptEnd::Crashed {
                reason: "worker exited 0 without a readable outcome document".to_owned(),
            },
        },
        ExitClass::Drained => {
            if stop.load(Ordering::Relaxed) {
                AttemptEnd::Drained {
                    replications: outcome.map_or(0, |o| o.replications),
                }
            } else {
                // An unsolicited drain is a wedged worker in disguise;
                // the checkpoint it flushed makes the restart cheap.
                AttemptEnd::Crashed {
                    reason: "worker drained without a drain request".to_owned(),
                }
            }
        }
        ExitClass::Typed => match outcome {
            Some(outcome) if outcome.is_failed() => {
                if outcome.restartable {
                    AttemptEnd::Crashed {
                        reason: outcome.message,
                    }
                } else {
                    AttemptEnd::Failed {
                        message: outcome.message,
                    }
                }
            }
            _ => AttemptEnd::Crashed {
                reason: "worker exited 1 without a readable outcome document".to_owned(),
            },
        },
        ExitClass::Crash => {
            if termed || stop.load(Ordering::Relaxed) {
                // The drain raced a death (or our own grace-period
                // SIGKILL landed): the last flushed checkpoint is
                // intact, so the job stays resumable and the restart
                // budget is not charged for the supervisor's own kill.
                AttemptEnd::Drained {
                    replications: outcome.map_or(0, |o| o.replications),
                }
            } else {
                AttemptEnd::Crashed {
                    reason: describe_exit(exit),
                }
            }
        }
    }
}

/// Waits the child out: forwards the drain flag as SIGTERM (SIGKILL
/// after the grace period), watches the heartbeat for advance, and
/// kills a wedged worker. Returns how the child ended and whether a
/// drain was requested of it.
fn supervise_child(
    child: &mut Child,
    heartbeat: &Path,
    isolation: &ProcessIsolation,
    stop: &Arc<AtomicBool>,
) -> (WorkerExit, bool) {
    let mut termed = false;
    let mut kill_deadline: Option<Instant> = None;
    let mut stale = false;
    let mut last_beat: Option<u64> = None;
    let mut last_advance = Instant::now();
    let status = loop {
        if let Ok(Some(status)) = child.try_wait() {
            break status;
        }
        if !termed && stop.load(Ordering::Relaxed) {
            termed = true;
            kill_deadline = Some(Instant::now() + isolation.term_grace);
            // std's Child::kill is SIGKILL; the graceful request needs
            // the obs kill(2) shim. If even that fails, fall through to
            // the hard kill.
            if send_sigterm(child.id()).is_err() {
                child.kill().ok();
            }
        }
        if kill_deadline.is_some_and(|deadline| Instant::now() > deadline) {
            child.kill().ok();
            kill_deadline = None;
        }
        if !termed && !stale {
            let beat = heartbeat_read(heartbeat);
            if beat.is_some() && beat != last_beat {
                last_beat = beat;
                last_advance = Instant::now();
            } else if last_advance.elapsed() > isolation.heartbeat_stale_after {
                stale = true;
                child.kill().ok();
            }
        }
        std::thread::sleep(REAP_POLL);
    };
    let exit = if stale {
        WorkerExit::HeartbeatStale
    } else {
        exit_of_status(&status)
    };
    (exit, termed)
}

fn exit_of_status(status: &ExitStatus) -> WorkerExit {
    if let Some(code) = status.code() {
        return WorkerExit::Code(code);
    }
    #[cfg(unix)]
    {
        use std::os::unix::process::ExitStatusExt;
        if let Some(signal) = status.signal() {
            return WorkerExit::Signal(signal);
        }
    }
    WorkerExit::Signal(-1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_status_to_restart_decision_table() {
        // The satellite contract: every way a worker process can die
        // maps to exactly one supervision decision.
        for (exit, class) in [
            (WorkerExit::Code(0), ExitClass::Finished),
            (WorkerExit::Code(75), ExitClass::Drained),
            (WorkerExit::Code(1), ExitClass::Typed),
            // A Rust panic that unwound to the runtime.
            (WorkerExit::Code(101), ExitClass::Crash),
            // abort() / allocation failure past --mem-limit.
            (WorkerExit::Signal(6), ExitClass::Crash),
            // SIGKILL: uncatchable, invisible to catch_unwind.
            (WorkerExit::Signal(9), ExitClass::Crash),
            // SIGSEGV.
            (WorkerExit::Signal(11), ExitClass::Crash),
            // RLIMIT_CPU exceeded (SIGXCPU).
            (WorkerExit::Signal(24), ExitClass::Crash),
            (WorkerExit::HeartbeatStale, ExitClass::Crash),
        ] {
            assert_eq!(classify_worker_exit(exit), class, "misclassified {exit:?}");
        }
    }

    #[test]
    fn crash_descriptions_name_the_death() {
        assert!(describe_exit(WorkerExit::Code(101)).contains("code 101"));
        assert!(describe_exit(WorkerExit::Signal(9)).contains("signal 9"));
        assert!(describe_exit(WorkerExit::HeartbeatStale).contains("heartbeat"));
    }
}
