//! Per-job supervision: checkpoint-namespaced attempts, restart from
//! the latest good generation, typed failure classification.
//!
//! Each attempt is one `UnsafetyEvaluator` run under `catch_unwind`.
//! When an attempt dies of a *recoverable* cause — a worker panic
//! (including the injected `serve::worker::spawn` crash) or a watchdog
//! kill — the supervisor restarts it, resuming from the job's latest
//! valid checkpoint generation via the same `load_with_fallback` path
//! the CLI uses. Because resumed studies are bitwise-identical to
//! uninterrupted ones, a job that survives any number of crashes
//! reports exactly the estimates of a crash-free run. Unrecoverable
//! causes (bad parameters, checkpoint validation failure, IO that
//! outlived its retries) fail the job with a typed message instead.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use ahs_core::{AhsError, BiasMode, UnsafetyCurve, UnsafetyEvaluator};
use ahs_des::{generation_path, SimError, Watchdog};
use ahs_obs::ProgressSink;

use crate::cache::ModelCache;
use crate::job::{Job, Phase};

/// Supervision knobs, fixed at server construction.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SupervisorConfig {
    /// Restarts allowed per job before a crash becomes a failure.
    pub restart_budget: u32,
    /// Replications between checkpoint flushes.
    pub checkpoint_every: u64,
    /// Checkpoint generations retained / consulted on resume.
    pub checkpoint_generations: u32,
    /// Server-policy watchdog applied to every job.
    pub watchdog: Option<Watchdog>,
}

/// How one attempt ended, short of an error.
enum Attempt {
    /// The study ran to completion; the sink rode along so the
    /// manifest can report this attempt's telemetry drops.
    Finished(UnsafetyCurve, f64, Arc<ProgressSink>),
    /// The server's shutdown flag drained the study at a chunk
    /// boundary; the final checkpoint is flushed.
    Drained(UnsafetyCurve),
}

/// Whether a typed error is worth a restart: only causes that a
/// resume-from-checkpoint can actually outrun. Watchdog kills
/// (`Runaway`) and quarantine overflows are scheduling/injection
/// artifacts that a later attempt may not reproduce; everything else
/// (invalid parameters, checkpoint validation, exhausted IO retries)
/// would fail identically again.
fn restartable(error: &AhsError) -> bool {
    matches!(
        error,
        AhsError::Sim(SimError::Runaway { .. } | SimError::QuarantineOverflow { .. })
    )
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Runs `job` to a terminal phase (`Finished`, `Failed`, or
/// `Interrupted` when `stop` drains it), restarting crashed attempts
/// within the budget. Returns the number of restarts consumed.
pub(crate) fn run_supervised(
    job: &Arc<Job>,
    cache: &ModelCache,
    config: &SupervisorConfig,
    stop: &Arc<AtomicBool>,
) -> u32 {
    job.set_phase(Phase::Running);
    let mut consumed = 0u32;
    loop {
        let outcome = catch_unwind(AssertUnwindSafe(|| run_attempt(job, cache, config, stop)));
        let crash_reason = match outcome {
            Ok(Ok(Attempt::Finished(curve, wall_seconds, progress))) => {
                finish(job, config, &curve, wall_seconds, progress);
                return consumed;
            }
            Ok(Ok(Attempt::Drained(curve))) => {
                job.set_phase(Phase::Interrupted {
                    replications: curve.replications(),
                });
                return consumed;
            }
            Ok(Err(error)) if !restartable(&error) => {
                job.set_phase(Phase::Failed(error.to_string()));
                return consumed;
            }
            Ok(Err(error)) => error.to_string(),
            Err(payload) => format!("worker panicked: {}", panic_message(payload.as_ref())),
        };
        if consumed >= config.restart_budget {
            job.set_phase(Phase::Failed(format!(
                "{crash_reason} (restart budget of {} exhausted)",
                config.restart_budget
            )));
            return consumed;
        }
        consumed += 1;
        job.restarts.fetch_add(1, Ordering::Relaxed);
        eprintln!(
            "supervisor: {} attempt crashed ({crash_reason}); restarting ({consumed}/{})",
            job.name, config.restart_budget
        );
    }
}

fn finish(
    job: &Arc<Job>,
    config: &SupervisorConfig,
    curve: &UnsafetyCurve,
    wall_seconds: f64,
    progress: Arc<ProgressSink>,
) {
    let manifest = evaluator_for(job, config, false)
        .with_progress(progress)
        .manifest("ahs serve", curve, wall_seconds);
    let path = job.dir.join("manifest.json");
    if let Err(e) = manifest.write(&path) {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
    job.set_phase(Phase::Finished(curve.clone()));
}

/// The evaluator for one attempt of `job` — exactly the configuration
/// `ahs evaluate` would build for the same spec, with the checkpoint
/// namespaced into the job directory.
fn evaluator_for(job: &Job, config: &SupervisorConfig, resume: bool) -> UnsafetyEvaluator {
    let checkpoint = job.checkpoint_path();
    let mut eval = UnsafetyEvaluator::new(job.spec.params.clone())
        .with_seed(job.spec.seed)
        .with_threads(job.spec.threads)
        .with_replications(job.spec.replications)
        .with_checkpoint(&checkpoint, config.checkpoint_every)
        .with_checkpoint_generations(config.checkpoint_generations)
        .with_quarantine_budget(job.spec.quarantine_budget);
    if job.spec.plain {
        eval = eval.with_bias(BiasMode::None);
    }
    if let Some(watchdog) = config.watchdog {
        eval = eval.with_watchdog(watchdog);
    }
    if resume {
        eval = eval.with_resume(&checkpoint);
    }
    eval
}

/// Whether any retained checkpoint generation exists for `job` — the
/// signal that this attempt should resume rather than start fresh.
fn has_checkpoint(job: &Job, generations: u32) -> bool {
    let base = job.checkpoint_path();
    (0..generations).any(|g| generation_path(&base, g).exists())
}

fn run_attempt(
    job: &Arc<Job>,
    cache: &ModelCache,
    config: &SupervisorConfig,
    stop: &Arc<AtomicBool>,
) -> Result<Attempt, AhsError> {
    // The worker-spawn failpoint models a worker dying before (panic)
    // or while (error) picking the job up; a delay models slow starts.
    match ahs_inject::eval("serve::worker::spawn") {
        Some(ahs_inject::Fault::Panic(msg)) => panic!("injected worker-spawn crash: {msg}"),
        Some(fault @ ahs_inject::Fault::Error(_)) => {
            return Err(AhsError::Sim(SimError::Internal {
                context: fault.to_io_error("serve::worker::spawn").map_or_else(
                    || "injected worker-spawn fault".to_owned(),
                    |e| e.to_string(),
                ),
            }));
        }
        Some(ahs_inject::Fault::Delay(ms)) => {
            std::thread::sleep(std::time::Duration::from_millis(ms));
        }
        _ => {}
    }

    let compiled = cache.get_or_build(&job.spec.params)?;
    let progress = Arc::new(
        ProgressSink::file(&job.dir.join("telemetry.jsonl")).map_err(|e| {
            AhsError::Sim(SimError::Internal {
                context: format!("opening telemetry sink: {e}"),
            })
        })?,
    );

    let resume = has_checkpoint(job, config.checkpoint_generations);
    let eval = evaluator_for(job, config, resume)
        .with_interrupt(stop.clone())
        .with_progress(progress.clone());

    let start = Instant::now();
    let result = eval.evaluate_compiled(&job.spec.grid(), &compiled);
    job.telemetry_dropped
        .fetch_add(progress.dropped(), Ordering::Relaxed);
    let curve = result?;
    if curve.interrupted() {
        return Ok(Attempt::Drained(curve));
    }
    Ok(Attempt::Finished(
        curve,
        start.elapsed().as_secs_f64(),
        progress,
    ))
}
