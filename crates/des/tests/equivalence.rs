//! Equivalence tier: incremental enablement is a pure optimisation.
//!
//! Every estimator and per-replication outcome must be **bitwise
//! identical** whether the simulators use the dependency-graph-driven
//! incremental cache (the default on sound models) or a full
//! enablement rescan after every firing (the fallback for models whose
//! gates lack `touches` declarations). Three switches are exercised:
//!
//! * the per-simulator `with_full_rescan(true)` builder knob,
//! * the process-wide `ahs_san::set_force_full_rescan` test override,
//! * and the default incremental path on a sound model.
//!
//! The fixture declares gate `touches` honestly, so its dependency
//! graph is sound and the default path really is incremental (the
//! determinism tier's fixture, by contrast, omits them and exercises
//! the automatic fallback).

use ahs_des::{replication_rng, Backend, BiasScheme, EventDrivenSimulator, MarkovSimulator, Study};
use ahs_san::{set_force_full_rescan, Delay, PlaceId, SanBuilder, SanModel};
use ahs_stats::TimeGrid;

const SEED: u64 = 0x051D_E0E5;
const HORIZON: f64 = 8.0;

/// Two repairable components with an instantaneous "system down" latch
/// — like the determinism-tier fixture, but with honest `touches`
/// declarations so the incremental path is the one under test.
fn model() -> (SanModel, PlaceId) {
    let mut b = SanBuilder::new("equiv-fixture");
    let up1 = b.place_with_tokens("up1", 1).unwrap();
    let dn1 = b.place("dn1").unwrap();
    let up2 = b.place_with_tokens("up2", 1).unwrap();
    let dn2 = b.place("dn2").unwrap();
    let ko = b.place("ko").unwrap();
    b.timed_activity("fail1", Delay::exponential(0.8))
        .unwrap()
        .input_place(up1)
        .output_place(dn1)
        .build()
        .unwrap();
    b.timed_activity("repair1", Delay::exponential(2.0))
        .unwrap()
        .input_place(dn1)
        .output_place(up1)
        .build()
        .unwrap();
    b.timed_activity("fail2", Delay::exponential(0.6))
        .unwrap()
        .input_place(up2)
        .output_place(dn2)
        .build()
        .unwrap();
    b.timed_activity("repair2", Delay::exponential(1.5))
        .unwrap()
        .input_place(dn2)
        .output_place(up2)
        .build()
        .unwrap();
    let both_down = b.predicate_gate_touching("both_down", [dn1, dn2, ko], move |m| {
        m.is_marked(dn1) && m.is_marked(dn2) && !m.is_marked(ko)
    });
    b.instant_activity("latch", 10, 1.0)
        .unwrap()
        .input_gate(both_down)
        .output_place(ko)
        .build()
        .unwrap();
    let m = b.build().unwrap();
    assert!(
        m.dependency_graph().is_sound(),
        "fixture must exercise the incremental path"
    );
    (m, ko)
}

/// Bit-level fingerprint of one replication outcome.
fn outcome_bits(o: &ahs_des::RunOutcome) -> (Option<u64>, u64, u64, u64, u64) {
    (
        o.hit_time.map(f64::to_bits),
        o.hit_weight.to_bits(),
        o.end_time.to_bits(),
        o.final_weight.to_bits(),
        o.events,
    )
}

#[test]
fn ssa_replications_match_forced_rescan_bitwise() {
    let (m, ko) = model();
    let inc = MarkovSimulator::new(&m).unwrap();
    let full = MarkovSimulator::new(&m).unwrap().with_full_rescan(true);
    for rep in 0..300 {
        let mut r1 = replication_rng(SEED, rep);
        let mut r2 = replication_rng(SEED, rep);
        let a = inc
            .run_first_passage(|mk| mk.is_marked(ko), HORIZON, &mut r1)
            .unwrap();
        let b = full
            .run_first_passage(|mk| mk.is_marked(ko), HORIZON, &mut r2)
            .unwrap();
        assert_eq!(outcome_bits(&a), outcome_bits(&b), "rep {rep}");
    }
}

#[test]
fn biased_ssa_replications_match_forced_rescan_bitwise() {
    let (m, ko) = model();
    let bias = || {
        BiasScheme::new()
            .with_multiplier(m.find_activity("fail1").unwrap(), 4.0)
            .with_multiplier(m.find_activity("fail2").unwrap(), 4.0)
    };
    let inc = MarkovSimulator::new(&m).unwrap().with_bias(bias());
    let full = MarkovSimulator::new(&m)
        .unwrap()
        .with_bias(bias())
        .with_full_rescan(true);
    for rep in 0..300 {
        let mut r1 = replication_rng(SEED ^ 1, rep);
        let mut r2 = replication_rng(SEED ^ 1, rep);
        let a = inc
            .run_first_passage(|mk| mk.is_marked(ko), HORIZON, &mut r1)
            .unwrap();
        let b = full
            .run_first_passage(|mk| mk.is_marked(ko), HORIZON, &mut r2)
            .unwrap();
        assert_eq!(outcome_bits(&a), outcome_bits(&b), "rep {rep}");
    }
}

#[test]
fn event_driven_replications_match_forced_rescan_bitwise() {
    let (m, ko) = model();
    let inc = EventDrivenSimulator::new(&m);
    let full = EventDrivenSimulator::new(&m).with_full_rescan(true);
    for rep in 0..300 {
        let mut r1 = replication_rng(SEED ^ 2, rep);
        let mut r2 = replication_rng(SEED ^ 2, rep);
        let a = inc
            .run_first_passage(|mk| mk.is_marked(ko), HORIZON, &mut r1)
            .unwrap();
        let b = full
            .run_first_passage(|mk| mk.is_marked(ko), HORIZON, &mut r2)
            .unwrap();
        assert_eq!(outcome_bits(&a), outcome_bits(&b), "rep {rep}");
    }
}

#[test]
fn transient_curves_match_forced_rescan_bitwise() {
    let (m, ko) = model();
    let grid = [1.0, 3.0, HORIZON];
    let ssa_inc = MarkovSimulator::new(&m).unwrap();
    let ssa_full = MarkovSimulator::new(&m).unwrap().with_full_rescan(true);
    let ed_inc = EventDrivenSimulator::new(&m);
    let ed_full = EventDrivenSimulator::new(&m).with_full_rescan(true);
    for rep in 0..100 {
        let mut r1 = replication_rng(SEED ^ 3, rep);
        let mut r2 = replication_rng(SEED ^ 3, rep);
        let a = ssa_inc
            .run_transient(|mk| mk.is_marked(ko), &grid, &mut r1)
            .unwrap();
        let b = ssa_full
            .run_transient(|mk| mk.is_marked(ko), &grid, &mut r2)
            .unwrap();
        assert_eq!(a, b, "ssa rep {rep}");
        let mut r1 = replication_rng(SEED ^ 4, rep);
        let mut r2 = replication_rng(SEED ^ 4, rep);
        let a = ed_inc
            .run_transient(|mk| mk.is_marked(ko), &grid, &mut r1)
            .unwrap();
        let b = ed_full
            .run_transient(|mk| mk.is_marked(ko), &grid, &mut r2)
            .unwrap();
        assert_eq!(a, b, "ed rep {rep}");
    }
}

/// Full estimator pipeline under the process-wide override. A race
/// with a concurrently constructed cache in another test is benign —
/// the override only trades speed, never results — but the comparison
/// itself is meaningful because each Study below runs entirely under
/// one setting.
#[test]
fn study_estimates_match_global_forced_rescan_bitwise() {
    let run = |backend: fn() -> Backend| {
        let (m, ko) = model();
        let grid = TimeGrid::new(vec![2.0, HORIZON]);
        Study::new(m)
            .with_seed(0xE017)
            .with_fixed_replications(3_000)
            .with_chunk(400)
            .with_threads(3)
            .first_passage(move |mk| mk.is_marked(ko), &grid, backend())
            .unwrap()
            .curve
            .points(0.95)
            .iter()
            .map(|p| (p.y.to_bits(), p.half_width.to_bits()))
            .collect::<Vec<_>>()
    };
    for backend in [
        (|| Backend::Markov) as fn() -> Backend,
        || Backend::EventDriven,
        || {
            let (m, _) = model();
            Backend::BiasedMarkov(
                BiasScheme::new()
                    .with_multiplier(m.find_activity("fail1").unwrap(), 4.0)
                    .with_multiplier(m.find_activity("fail2").unwrap(), 4.0),
            )
        },
    ] {
        let incremental = run(backend);
        set_force_full_rescan(true);
        let forced = run(backend);
        set_force_full_rescan(false);
        assert!(
            incremental.iter().any(|&(y, _)| y != 0),
            "event never observed; comparison is vacuous"
        );
        assert_eq!(incremental, forced);
    }
}
