//! Determinism regression tier: the same master seed must produce
//! bitwise-identical estimates regardless of worker thread count.
//!
//! This guards the `split_seed`/`replication_rng` per-replication
//! stream design and the chunk-ordered merge in `Study::run_study`
//! against future parallelism changes.

use std::sync::Arc;

use ahs_des::{Backend, BiasScheme, Study};
use ahs_obs::Metrics;
use ahs_san::{Delay, PlaceId, SanBuilder, SanModel};
use ahs_stats::TimeGrid;

/// A small repairable system with an instantaneous cascade: two
/// components failing/repairing plus an instantaneous "system down"
/// latch once both are down.
fn model() -> (SanModel, PlaceId) {
    let mut b = SanBuilder::new("det-fixture");
    let up1 = b.place_with_tokens("up1", 1).unwrap();
    let dn1 = b.place("dn1").unwrap();
    let up2 = b.place_with_tokens("up2", 1).unwrap();
    let dn2 = b.place("dn2").unwrap();
    let ko = b.place("ko").unwrap();
    b.timed_activity("fail1", Delay::exponential(0.8))
        .unwrap()
        .input_place(up1)
        .output_place(dn1)
        .build()
        .unwrap();
    b.timed_activity("repair1", Delay::exponential(2.0))
        .unwrap()
        .input_place(dn1)
        .output_place(up1)
        .build()
        .unwrap();
    b.timed_activity("fail2", Delay::exponential(0.6))
        .unwrap()
        .input_place(up2)
        .output_place(dn2)
        .build()
        .unwrap();
    let both_down = b.input_gate(
        "both_down",
        move |m| m.is_marked(dn1) && m.is_marked(dn2) && !m.is_marked(ko),
        |_| {},
    );
    b.instant_activity("latch", 10, 1.0)
        .unwrap()
        .input_gate(both_down)
        .output_place(ko)
        .build()
        .unwrap();
    (b.build().unwrap(), ko)
}

fn run_first_passage(threads: usize, backend: Backend) -> Vec<(f64, f64)> {
    let (m, ko) = model();
    let grid = TimeGrid::new(vec![0.5, 1.5, 4.0]);
    let est = Study::new(m)
        .with_seed(0xD5_2009)
        .with_fixed_replications(6_000)
        .with_chunk(500)
        .with_threads(threads)
        .first_passage(move |mk| mk.is_marked(ko), &grid, backend)
        .unwrap();
    assert_eq!(est.replications, 6_000);
    est.curve
        .points(0.95)
        .iter()
        .map(|p| (p.y, p.half_width))
        .collect()
}

#[test]
fn first_passage_is_thread_count_invariant() {
    let baseline = run_first_passage(1, Backend::Markov);
    assert!(baseline.iter().any(|&(y, _)| y > 0.0), "event never seen");
    for threads in [2, 4] {
        let run = run_first_passage(threads, Backend::Markov);
        assert_eq!(
            baseline, run,
            "estimates differ between 1 and {threads} threads"
        );
    }
}

#[test]
fn event_driven_backend_is_thread_count_invariant() {
    let baseline = run_first_passage(1, Backend::EventDriven);
    let four = run_first_passage(4, Backend::EventDriven);
    assert_eq!(baseline, four);
}

#[test]
fn biased_backend_is_thread_count_invariant() {
    let mk = |threads: usize| {
        let (m, ko) = model();
        let fail1 = m.find_activity("fail1").unwrap();
        let fail2 = m.find_activity("fail2").unwrap();
        let bias = BiasScheme::new()
            .with_multiplier(fail1, 3.0)
            .with_multiplier(fail2, 3.0);
        let grid = TimeGrid::new(vec![1.0, 2.0]);
        Study::new(m)
            .with_seed(77)
            .with_fixed_replications(4_000)
            .with_chunk(333)
            .with_threads(threads)
            .first_passage(
                move |mk2| mk2.is_marked(ko),
                &grid,
                Backend::BiasedMarkov(bias),
            )
            .unwrap()
            .curve
            .points(0.95)
            .iter()
            .map(|p| (p.y, p.half_width))
            .collect::<Vec<_>>()
    };
    assert_eq!(mk(1), mk(2));
    assert_eq!(mk(1), mk(4));
}

#[test]
fn transient_is_thread_count_invariant() {
    let run = |threads: usize| {
        let (m, ko) = model();
        let grid = TimeGrid::new(vec![1.0, 3.0]);
        Study::new(m)
            .with_seed(123)
            .with_fixed_replications(3_000)
            .with_threads(threads)
            .transient(move |mk| mk.is_marked(ko), &grid, Backend::Markov)
            .unwrap()
            .curve
            .points(0.95)
            .iter()
            .map(|p| (p.y, p.half_width))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(1), run(4));
}

#[test]
fn metrics_account_for_every_replication() {
    let (m, ko) = model();
    let metrics = Arc::new(Metrics::new());
    let grid = TimeGrid::new(vec![2.0]);
    let est = Study::new(m)
        .with_seed(9)
        .with_fixed_replications(2_000)
        .with_chunk(250)
        .with_threads(2)
        .with_metrics(metrics.clone())
        .first_passage(move |mk| mk.is_marked(ko), &grid, Backend::Markov)
        .unwrap();
    let snap = metrics.snapshot();
    assert_eq!(snap.replications, est.replications);
    assert_eq!(snap.chunk_merges, 8);
    assert_eq!(snap.weight_count, 2_000);
    // Unbiased run: every weight is exactly 1, so ESS == N.
    assert!((snap.effective_sample_size() - 2_000.0).abs() < 1e-6);
    // The instantaneous latch fires in some replications, and only via
    // single-activity stabilizations (no >= 2 cascades in this model).
    assert!(snap.instantaneous_completions > 0);
    assert_eq!(snap.cascades, 0);
    assert!(snap.timed_completions > 0);
    // Both workers reported throughput; totals match.
    assert_eq!(snap.workers.len(), 2);
    let worker_total: u64 = snap.workers.iter().map(|w| w.replications).sum();
    assert_eq!(worker_total, 2_000);
}
