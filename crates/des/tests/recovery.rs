//! Recovery test tier: checkpoint/resume, panic quarantine, and
//! watchdog behaviour of `Study` (see `docs/robustness.md`).
//!
//! The central guarantee exercised here is **bitwise-identical
//! resume**: a study interrupted mid-run and resumed from its
//! checkpoint must produce exactly the same estimator bits as an
//! uninterrupted run, at any worker thread count.

use std::io::Write;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use ahs_des::{generation_path, Backend, SimError, Study, StudyCheckpoint, Watchdog};
use ahs_obs::{Metrics, ProgressSink};
use ahs_san::{Delay, PlaceId, SanBuilder, SanModel};
use ahs_stats::TimeGrid;

/// The determinism-tier fixture: two failing components with a repair
/// loop and an instantaneous "system down" latch.
fn model() -> (SanModel, PlaceId) {
    model_with_rate(0.8)
}

fn model_with_rate(fail1_rate: f64) -> (SanModel, PlaceId) {
    let mut b = SanBuilder::new("recovery-fixture");
    let up1 = b.place_with_tokens("up1", 1).unwrap();
    let dn1 = b.place("dn1").unwrap();
    let up2 = b.place_with_tokens("up2", 1).unwrap();
    let dn2 = b.place("dn2").unwrap();
    let ko = b.place("ko").unwrap();
    b.timed_activity("fail1", Delay::exponential(fail1_rate))
        .unwrap()
        .input_place(up1)
        .output_place(dn1)
        .build()
        .unwrap();
    b.timed_activity("repair1", Delay::exponential(2.0))
        .unwrap()
        .input_place(dn1)
        .output_place(up1)
        .build()
        .unwrap();
    b.timed_activity("fail2", Delay::exponential(0.6))
        .unwrap()
        .input_place(up2)
        .output_place(dn2)
        .build()
        .unwrap();
    let both_down = b.input_gate(
        "both_down",
        move |m| m.is_marked(dn1) && m.is_marked(dn2) && !m.is_marked(ko),
        |_| {},
    );
    b.instant_activity("latch", 10, 1.0)
        .unwrap()
        .input_gate(both_down)
        .output_place(ko)
        .build()
        .unwrap();
    (b.build().unwrap(), ko)
}

fn grid() -> TimeGrid {
    TimeGrid::new(vec![0.5, 1.5, 4.0])
}

fn study(threads: usize, seed: u64) -> (Study, PlaceId) {
    let (m, ko) = model();
    let s = Study::new(m)
        .with_seed(seed)
        .with_fixed_replications(600)
        .with_chunk(100)
        .with_threads(threads);
    (s, ko)
}

fn scratch_dir(test: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("ahs-recovery-{}-{test}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A progress writer that raises an interrupt flag once it has seen a
/// needle (e.g. `chunk_done`) a given number of times — a deterministic
/// stand-in for a SIGINT arriving mid-study.
struct RaiseAfter {
    needle: &'static str,
    remaining: usize,
    flag: Arc<AtomicBool>,
}

impl Write for RaiseAfter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        if let Ok(text) = std::str::from_utf8(buf) {
            let hits = text.matches(self.needle).count();
            self.remaining = self.remaining.saturating_sub(hits);
            if self.remaining == 0 {
                self.flag.store(true, Ordering::SeqCst);
            }
        }
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn interrupted_study_resumes_bitwise_identical_at_any_thread_count() {
    let dir = scratch_dir("resume");
    let (baseline_study, ko) = study(1, 2009);
    let baseline = baseline_study
        .first_passage(move |m| m.is_marked(ko), &grid(), Backend::Markov)
        .unwrap();
    assert_eq!(baseline.replications, 600);
    assert!(baseline.resume_lineage.is_empty());

    for threads in [1_usize, 2, 4] {
        let cp_path = dir.join(format!("study-{threads}.checkpoint.json"));

        // Phase 1: run with checkpoints and an interrupt raised after
        // the second completed chunk ("kill" mid-study).
        let flag = Arc::new(AtomicBool::new(false));
        let sink = Arc::new(ProgressSink::to_writer(Box::new(RaiseAfter {
            needle: "chunk_done",
            remaining: 2,
            flag: flag.clone(),
        })));
        let (s, ko) = study(threads, 2009);
        let first = s
            .with_checkpoint(&cp_path, 100)
            .with_interrupt(flag)
            .with_progress(sink)
            .first_passage(move |m| m.is_marked(ko), &grid(), Backend::Markov)
            .unwrap();
        assert!(
            first.interrupted || first.replications == 600,
            "study neither interrupted nor complete at {threads} threads"
        );

        // The final flush left a loadable, chunk-aligned checkpoint.
        let cp = StudyCheckpoint::load(&cp_path).unwrap();
        assert_eq!(cp.watermark, first.replications);
        assert!(cp.watermark > 0, "no replication survived the interrupt");
        assert!(cp.watermark.is_multiple_of(100) || cp.watermark == 600);

        // Phase 2: resume and run to completion.
        let watermark = cp.watermark;
        let (s, ko) = study(threads, 2009);
        let resumed = s
            .with_resume(cp)
            .first_passage(move |m| m.is_marked(ko), &grid(), Backend::Markov)
            .unwrap();
        assert_eq!(resumed.replications, 600);
        assert!(!resumed.interrupted);
        assert_eq!(resumed.resume_lineage, vec![watermark]);

        // The headline guarantee: estimator state is bit-for-bit the
        // uninterrupted run's, at every thread count.
        assert_eq!(
            resumed.curve.estimators(),
            baseline.curve.estimators(),
            "resumed study diverged from uninterrupted run at {threads} threads"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_latest_checkpoint_falls_back_to_previous_generation_bitwise() {
    let dir = scratch_dir("gen-fallback");
    let (baseline_study, ko) = study(1, 2009);
    let baseline = baseline_study
        .first_passage(move |m| m.is_marked(ko), &grid(), Backend::Markov)
        .unwrap();

    for threads in [1_usize, 2, 4] {
        let cp_path = dir.join(format!("study-{threads}.checkpoint.json"));

        // Interrupt after the third completed chunk so at least two
        // checkpoint generations exist on disk (rotation depth 2 is
        // the default).
        let flag = Arc::new(AtomicBool::new(false));
        let sink = Arc::new(ProgressSink::to_writer(Box::new(RaiseAfter {
            needle: "chunk_done",
            remaining: 3,
            flag: flag.clone(),
        })));
        let (s, ko) = study(threads, 2009);
        s.with_checkpoint(&cp_path, 100)
            .with_interrupt(flag)
            .with_progress(sink)
            .first_passage(move |m| m.is_marked(ko), &grid(), Backend::Markov)
            .unwrap();
        assert!(
            generation_path(&cp_path, 1).exists(),
            "rotation left no fallback generation at {threads} threads"
        );

        // Mangle the latest generation the way a crash mid-sector
        // would: truncate it in half. Plain load must reject it…
        let full = std::fs::read(&cp_path).unwrap();
        std::fs::write(&cp_path, &full[..full.len() / 2]).unwrap();
        assert!(matches!(
            StudyCheckpoint::load(&cp_path),
            Err(SimError::Checkpoint { .. })
        ));

        // …while fallback retreats one generation and the resumed run
        // still lands bit-for-bit on the uninterrupted result.
        let (cp, generation) = StudyCheckpoint::load_with_fallback(&cp_path, 2).unwrap();
        assert!(generation > 0, "fallback should not have used generation 0");
        let (s, ko) = study(threads, 2009);
        let resumed = s
            .with_resume(cp)
            .first_passage(move |m| m.is_marked(ko), &grid(), Backend::Markov)
            .unwrap();
        assert_eq!(resumed.replications, 600);
        assert_eq!(
            resumed.curve.estimators(),
            baseline.curve.estimators(),
            "generation-fallback resume diverged at {threads} threads"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_lineage_accumulates_across_generations() {
    let dir = scratch_dir("lineage");
    let cp_path = dir.join("gen.checkpoint.json");

    // Generation 0: interrupt after the first chunk.
    let flag = Arc::new(AtomicBool::new(false));
    let sink = Arc::new(ProgressSink::to_writer(Box::new(RaiseAfter {
        needle: "chunk_done",
        remaining: 1,
        flag: flag.clone(),
    })));
    let (s, ko) = study(1, 11);
    let gen0 = s
        .with_checkpoint(&cp_path, 100)
        .with_interrupt(flag)
        .with_progress(sink)
        .first_passage(move |m| m.is_marked(ko), &grid(), Backend::Markov)
        .unwrap();
    assert!(gen0.interrupted);
    let w0 = gen0.replications;

    // Generation 1: resume, interrupt again one chunk later.
    let cp = StudyCheckpoint::load(&cp_path).unwrap();
    let flag = Arc::new(AtomicBool::new(false));
    let sink = Arc::new(ProgressSink::to_writer(Box::new(RaiseAfter {
        needle: "chunk_done",
        remaining: 1,
        flag: flag.clone(),
    })));
    let (s, ko) = study(1, 11);
    let gen1 = s
        .with_resume(cp)
        .with_checkpoint(&cp_path, 100)
        .with_interrupt(flag)
        .with_progress(sink)
        .first_passage(move |m| m.is_marked(ko), &grid(), Backend::Markov)
        .unwrap();
    assert_eq!(gen1.resume_lineage, vec![w0]);
    let w1 = gen1.replications;
    assert!(w1 > w0);

    // Generation 2: resume to completion; the lineage names both
    // ancestors, oldest first, and matches the baseline bitwise.
    let cp = StudyCheckpoint::load(&cp_path).unwrap();
    assert_eq!(cp.lineage, vec![w0]);
    let (s, ko) = study(1, 11);
    let gen2 = s
        .with_resume(cp)
        .first_passage(move |m| m.is_marked(ko), &grid(), Backend::Markov)
        .unwrap();
    assert_eq!(gen2.resume_lineage, vec![w0, w1]);
    assert_eq!(gen2.replications, 600);

    let (s, ko) = study(1, 11);
    let baseline = s
        .first_passage(move |m| m.is_marked(ko), &grid(), Backend::Markov)
        .unwrap();
    assert_eq!(gen2.curve.estimators(), baseline.curve.estimators());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn panicking_replication_is_quarantined_without_aborting_the_study() {
    let fired = Arc::new(AtomicBool::new(false));
    let f = fired.clone();
    let metrics = Arc::new(Metrics::new());
    let (m, ko) = model();
    let est = Study::new(m)
        .with_seed(7)
        .with_fixed_replications(400)
        .with_chunk(100)
        .with_threads(2)
        .with_quarantine_budget(1)
        .with_metrics(metrics.clone())
        .first_passage(
            move |mk| {
                if !f.swap(true, Ordering::SeqCst) {
                    panic!("injected predicate panic");
                }
                mk.is_marked(ko)
            },
            &grid(),
            Backend::Markov,
        )
        .unwrap();
    assert_eq!(est.replications, 399, "quarantined rep must be excluded");
    assert_eq!(est.quarantined.len(), 1);
    assert!(
        est.quarantined[0]
            .message
            .contains("injected predicate panic"),
        "payload lost: {:?}",
        est.quarantined[0]
    );
    assert_eq!(metrics.snapshot().quarantined, 1);
    assert!(!est.interrupted);
}

#[test]
fn quarantine_overflow_is_a_typed_error_not_a_hang() {
    let (m, _) = model();
    let err = Study::new(m)
        .with_seed(8)
        .with_fixed_replications(400)
        .with_chunk(100)
        .with_threads(4)
        .with_quarantine_budget(2)
        .first_passage(
            |_: &ahs_san::Marking| -> bool { panic!("always broken") },
            &grid(),
            Backend::Markov,
        )
        .unwrap_err();
    match err {
        SimError::QuarantineOverflow {
            quarantined,
            budget,
            message,
        } => {
            assert_eq!(budget, 2);
            assert!(quarantined > budget);
            assert!(message.contains("always broken"), "{message}");
        }
        other => panic!("expected QuarantineOverflow, got {other:?}"),
    }
}

#[test]
fn watchdog_bounds_runaway_replications() {
    let (m, _) = model();
    // A predicate that never holds over a long horizon: every
    // replication churns events until t = 100, far beyond the budget.
    let long_grid = TimeGrid::new(vec![100.0]);
    let err = Study::new(m)
        .with_seed(9)
        .with_fixed_replications(50)
        .with_chunk(10)
        .with_threads(2)
        .with_watchdog(Watchdog::new().with_max_events(5))
        .first_passage(|_| false, &long_grid, Backend::Markov)
        .unwrap_err();
    match err {
        SimError::Runaway { events, .. } => assert_eq!(events, 6),
        other => panic!("expected Runaway, got {other:?}"),
    }
}

#[test]
fn resume_rejects_mismatched_configuration() {
    let dir = scratch_dir("validate");
    let cp_path = dir.join("study.checkpoint.json");
    let (s, ko) = study(1, 42);
    s.with_checkpoint(&cp_path, 100)
        .first_passage(move |m| m.is_marked(ko), &grid(), Backend::Markov)
        .unwrap();
    let cp = StudyCheckpoint::load(&cp_path).unwrap();

    // Wrong master seed.
    let (s, ko) = study(1, 43);
    let err = s
        .with_resume(cp.clone())
        .first_passage(move |m| m.is_marked(ko), &grid(), Backend::Markov)
        .unwrap_err();
    assert!(
        matches!(&err, SimError::Checkpoint { reason } if reason.contains("seed")),
        "{err}"
    );

    // Wrong chunk size (merge order would differ).
    let (s, ko) = study(1, 42);
    let err = s
        .with_chunk(50)
        .with_resume(cp.clone())
        .first_passage(move |m| m.is_marked(ko), &grid(), Backend::Markov)
        .unwrap_err();
    assert!(
        matches!(&err, SimError::Checkpoint { reason } if reason.contains("chunk")),
        "{err}"
    );

    // Structurally different model (a failure rate changed).
    let (m, ko) = model_with_rate(0.9);
    let err = Study::new(m)
        .with_seed(42)
        .with_fixed_replications(600)
        .with_chunk(100)
        .with_threads(1)
        .with_resume(cp)
        .first_passage(move |m| m.is_marked(ko), &grid(), Backend::Markov)
        .unwrap_err();
    assert!(
        matches!(&err, SimError::Checkpoint { reason } if reason.contains("fingerprint")),
        "{err}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn completed_checkpoint_resumes_to_identical_result_without_new_work() {
    let dir = scratch_dir("complete");
    let cp_path = dir.join("full.checkpoint.json");
    let (s, ko) = study(1, 5);
    let full = s
        .with_checkpoint(&cp_path, 100)
        .first_passage(move |m| m.is_marked(ko), &grid(), Backend::Markov)
        .unwrap();
    assert_eq!(full.replications, 600);

    let cp = StudyCheckpoint::load(&cp_path).unwrap();
    assert_eq!(cp.watermark, 600);
    let metrics = Arc::new(Metrics::new());
    let (s, ko) = study(1, 5);
    let resumed = s
        .with_resume(cp)
        .with_metrics(metrics.clone())
        .first_passage(move |m| m.is_marked(ko), &grid(), Backend::Markov)
        .unwrap();
    assert_eq!(resumed.replications, 600);
    assert_eq!(resumed.curve.estimators(), full.curve.estimators());
    // No replication re-ran.
    assert_eq!(metrics.snapshot().replications, 0);
    std::fs::remove_dir_all(&dir).ok();
}
