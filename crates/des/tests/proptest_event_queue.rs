//! Model-based property test: the lazily-cancelling binary-heap event
//! queue must behave exactly like a naive sorted-list reference
//! implementation under arbitrary schedule/cancel/pop sequences.

use ahs_des::EventQueue;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Schedule { slot: usize, time: f64 },
    Cancel { slot: usize },
    Pop,
}

fn op_strategy(slots: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..slots, 0f64..1000.0).prop_map(|(slot, time)| Op::Schedule { slot, time }),
        (0..slots).prop_map(|slot| Op::Cancel { slot }),
        Just(Op::Pop),
    ]
}

/// Naive reference: a vector of (time, slot) kept sorted on demand.
#[derive(Default)]
struct Reference {
    pending: Vec<(f64, usize)>,
}

impl Reference {
    fn schedule(&mut self, time: f64, slot: usize) {
        self.pending.push((time, slot));
    }
    fn cancel(&mut self, slot: usize) {
        self.pending.retain(|&(_, s)| s != slot);
    }
    fn is_scheduled(&self, slot: usize) -> bool {
        self.pending.iter().any(|&(_, s)| s == slot)
    }
    fn pop(&mut self) -> Option<(f64, usize)> {
        let best = self
            .pending
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                a.0.partial_cmp(&b.0)
                    .expect("finite")
                    .then_with(|| a.1.cmp(&b.1))
            })
            .map(|(i, _)| i)?;
        Some(self.pending.swap_remove(best))
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]
    #[test]
    fn queue_matches_reference(ops in prop::collection::vec(op_strategy(6), 0..120)) {
        let mut queue = EventQueue::new(6);
        let mut reference = Reference::default();
        for op in ops {
            match op {
                Op::Schedule { slot, time } => {
                    // The queue forbids double-scheduling; mirror that.
                    if !reference.is_scheduled(slot) {
                        queue.schedule(time, slot);
                        reference.schedule(time, slot);
                    }
                }
                Op::Cancel { slot } => {
                    queue.cancel(slot);
                    reference.cancel(slot);
                }
                Op::Pop => {
                    let got = queue.pop().map(|e| (e.time, e.activity));
                    let want = reference.pop();
                    prop_assert_eq!(got, want);
                }
            }
            for slot in 0..6 {
                prop_assert_eq!(queue.is_scheduled(slot), reference.is_scheduled(slot));
            }
        }
        // Drain both completely; orders must agree.
        loop {
            let got = queue.pop().map(|e| (e.time, e.activity));
            let want = reference.pop();
            prop_assert_eq!(got, want);
            if want.is_none() {
                break;
            }
        }
    }
}
