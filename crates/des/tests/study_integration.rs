//! Integration tests of the replication study layer: biased transient
//! estimation, state-dependent bias schemes, and reward/splitting
//! interplay on a common model.

use ahs_des::{Backend, BiasScheme, RewardSpec, RewardStudy, SplittingStudy, Study};
use ahs_san::{Delay, PlaceId, SanBuilder, SanModel};
use ahs_stats::TimeGrid;

/// Two-component system; both down = system failure (repairable, so
/// the transient probability is non-monotone in general).
fn two_components(fail: f64, repair: f64) -> (SanModel, Vec<PlaceId>) {
    let mut b = SanBuilder::new("pair");
    let mut downs = Vec::new();
    for i in 0..2 {
        let up = b.place_with_tokens(&format!("up{i}"), 1).unwrap();
        let down = b.place(&format!("down{i}")).unwrap();
        b.timed_activity(&format!("fail{i}"), Delay::exponential(fail))
            .unwrap()
            .input_place(up)
            .output_place(down)
            .build()
            .unwrap();
        b.timed_activity(&format!("repair{i}"), Delay::exponential(repair))
            .unwrap()
            .input_place(down)
            .output_place(up)
            .build()
            .unwrap();
        downs.push(down);
    }
    (b.build().unwrap(), downs)
}

#[test]
fn biased_transient_matches_plain_transient() {
    let (model, downs) = two_components(0.05, 2.0);
    let fails: Vec<_> = (0..2)
        .map(|i| model.find_activity(&format!("fail{i}")).unwrap())
        .collect();
    let d = downs.clone();
    let pred = move |m: &ahs_san::Marking| d.iter().all(|&p| m.is_marked(p));
    let grid = TimeGrid::new(vec![2.0, 6.0, 10.0]);

    let study = Study::new(model)
        .with_seed(31)
        .with_fixed_replications(60_000)
        .with_threads(2);
    let plain = study.transient(&pred, &grid, Backend::Markov).unwrap();
    let biased = study
        .transient(
            &pred,
            &grid,
            Backend::BiasedMarkov(BiasScheme::new().with_multipliers(fails, 8.0)),
        )
        .unwrap();

    for i in 0..grid.len() {
        let a = plain.curve.interval(i, 0.999);
        let b = biased.curve.interval(i, 0.999);
        assert!(
            a.overlaps(&b),
            "t={}: plain {a} vs biased {b}",
            grid.points()[i]
        );
    }
}

#[test]
fn state_dependent_bias_is_unbiased() {
    // Boost the second failure only while the first is down — the
    // miniature of the AHS dynamic scheme — and check against plain MC
    // on the first-passage to both-down.
    let (model, downs) = two_components(0.02, 1.0);
    let fails: Vec<_> = (0..2)
        .map(|i| model.find_activity(&format!("fail{i}")).unwrap())
        .collect();
    let (d0, d1) = (downs[0], downs[1]);
    let scheme = BiasScheme::new()
        .with_multipliers(fails, 5.0)
        .with_state_factor(move |m| {
            if m.is_marked(d0) || m.is_marked(d1) {
                20.0
            } else {
                1.0
            }
        });

    let d = downs.clone();
    let target = move |m: &ahs_san::Marking| d.iter().all(|&p| m.is_marked(p));
    let grid = TimeGrid::new(vec![10.0]);
    let study = Study::new(model)
        .with_seed(32)
        .with_fixed_replications(80_000)
        .with_threads(2);
    let plain = study
        .first_passage(&target, &grid, Backend::Markov)
        .unwrap();
    let dynamic = study
        .first_passage(&target, &grid, Backend::BiasedMarkov(scheme))
        .unwrap();

    let a = plain.curve.interval(0, 0.999);
    let b = dynamic.curve.interval(0, 0.999);
    assert!(a.overlaps(&b), "plain {a} vs dynamic-bias {b}");
    // The dynamic scheme should be the tighter estimator per
    // replication in this rare-ish regime.
    assert!(
        b.half_width() < a.half_width(),
        "expected variance reduction: plain ± {}, dynamic ± {}",
        a.half_width(),
        b.half_width()
    );
}

#[test]
fn reward_and_splitting_coexist_on_one_model() {
    // Same model, three questions: downtime reward, first-passage via
    // splitting, and a transient curve.
    let (model, downs) = two_components(0.3, 1.5);
    let d0 = downs[0];

    let spec = RewardSpec::rate(move |m| f64::from(u8::from(m.is_marked(d0))));
    let reward = RewardStudy::new({
        let (m, _) = two_components(0.3, 1.5);
        m
    })
    .with_seed(33)
    .with_replications(4_000)
    .estimate(&spec, 50.0, Backend::Markov)
    .unwrap();
    // Component-0 unavailability: 0.3/1.8 over [0, 50].
    assert!((reward.mean() / 50.0 - 1.0 / 6.0).abs() < 0.01);

    let d = downs.clone();
    let split = SplittingStudy::new(model)
        .with_seed(34)
        .with_effort(8_000)
        .estimate(
            move |m| d.iter().filter(|&&p| m.is_marked(p)).count(),
            2,
            2.0,
        )
        .unwrap();
    assert!(split.probability > 0.05 && split.probability < 0.6);
    assert_eq!(split.stage_probabilities.len(), 2);
}
