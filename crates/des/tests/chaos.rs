//! Chaos tier: a deterministic sweep of **every** registered failpoint
//! (`ahs_inject::catalog()`), proving that each injected fault ends in
//! one of three sanctioned outcomes — a typed error, a *counted*
//! degradation, or a bitwise-identical resume. Anything else (a hang,
//! an unclassified panic, silent data loss) fails the sweep.
//!
//! Runs only with the `inject` feature (`cargo test -p ahs-des --test
//! chaos --features inject`); the CI `chaos` job gates on it. The whole
//! sweep is a single `#[test]` because the failpoint registry is
//! process-global — scenarios must run serially.

use std::collections::HashSet;
use std::io::ErrorKind;
use std::path::{Path, PathBuf};
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

use ahs_des::{generation_path, Backend, SimError, Study, StudyCheckpoint, Watchdog};
use ahs_obs::{atomic_write, dir_sync_failures, write_with_retry, ProgressSink};
use ahs_san::{Delay, PlaceId, SanBuilder, SanModel};
use ahs_stats::TimeGrid;

/// The recovery-tier fixture: two failing components with a repair
/// loop and an instantaneous "system down" latch.
fn model() -> (SanModel, PlaceId) {
    let mut b = SanBuilder::new("chaos-fixture");
    let up1 = b.place_with_tokens("up1", 1).unwrap();
    let dn1 = b.place("dn1").unwrap();
    let up2 = b.place_with_tokens("up2", 1).unwrap();
    let dn2 = b.place("dn2").unwrap();
    let ko = b.place("ko").unwrap();
    b.timed_activity("fail1", Delay::exponential(0.8))
        .unwrap()
        .input_place(up1)
        .output_place(dn1)
        .build()
        .unwrap();
    b.timed_activity("repair1", Delay::exponential(2.0))
        .unwrap()
        .input_place(dn1)
        .output_place(up1)
        .build()
        .unwrap();
    b.timed_activity("fail2", Delay::exponential(0.6))
        .unwrap()
        .input_place(up2)
        .output_place(dn2)
        .build()
        .unwrap();
    let both_down = b.input_gate(
        "both_down",
        move |m| m.is_marked(dn1) && m.is_marked(dn2) && !m.is_marked(ko),
        |_| {},
    );
    b.instant_activity("latch", 10, 1.0)
        .unwrap()
        .input_gate(both_down)
        .output_place(ko)
        .build()
        .unwrap();
    (b.build().unwrap(), ko)
}

/// A high-rate ping-pong: thousands of events per replication, so the
/// wall-clock watchdog (consulted every 1024 events) gets a say.
fn ping_pong() -> SanModel {
    let mut b = SanBuilder::new("chaos-ping-pong");
    let up = b.place_with_tokens("up", 1).unwrap();
    let down = b.place("down").unwrap();
    b.timed_activity("ping", Delay::exponential(2000.0))
        .unwrap()
        .input_place(up)
        .output_place(down)
        .build()
        .unwrap();
    b.timed_activity("pong", Delay::exponential(2000.0))
        .unwrap()
        .input_place(down)
        .output_place(up)
        .build()
        .unwrap();
    b.build().unwrap()
}

fn grid() -> TimeGrid {
    TimeGrid::new(vec![0.5, 1.5, 4.0])
}

fn study(threads: usize, seed: u64) -> (Study, PlaceId) {
    let (m, ko) = model();
    let s = Study::new(m)
        .with_seed(seed)
        .with_fixed_replications(600)
        .with_chunk(100)
        .with_threads(threads);
    (s, ko)
}

fn run(s: Study, ko: PlaceId) -> Result<ahs_des::CurveEstimate, SimError> {
    s.first_passage(move |m| m.is_marked(ko), &grid(), Backend::Markov)
}

fn scratch_dir(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ahs-chaos-{}-{test}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn assert_no_tmp_orphans(dir: &Path) {
    for entry in std::fs::read_dir(dir).unwrap() {
        let name = entry.unwrap().file_name();
        assert!(
            !name.to_string_lossy().ends_with(".tmp"),
            "orphaned temporary {name:?} left behind in {}",
            dir.display()
        );
    }
}

/// Arms the registry with `spec`; panics (failing the sweep) on a
/// malformed spec or a name missing from the catalog.
fn arm(spec: &str) {
    ahs_inject::configure_from_spec(spec).expect("chaos spec must parse");
}

/// Closes a scenario: every failpoint it armed must actually have
/// fired, then the registry is cleared and the names are marked
/// covered.
fn cover(covered: &mut HashSet<&'static str>, names: &[&'static str]) {
    for name in names {
        assert!(
            ahs_inject::hits(name) > 0,
            "scenario configured failpoint `{name}` but it never fired"
        );
        covered.insert(name);
    }
    ahs_inject::clear();
}

#[test]
fn chaos_sweep_covers_every_registered_failpoint() {
    let dir = scratch_dir("sweep");
    let mut covered: HashSet<&'static str> = HashSet::new();
    ahs_inject::clear();

    // The uninterrupted, un-faulted reference result every resume
    // scenario must reproduce bit for bit.
    let (s, ko) = study(1, 2009);
    let baseline = run(s, ko).unwrap();
    assert_eq!(baseline.replications, 600);

    // --- obs::fsio::create: a permanent error surfaces immediately,
    // untouched by the retry layer, leaving no trace on disk.
    arm("obs::fsio::create=return(permission-denied)");
    let target = dir.join("create.json");
    let err = write_with_retry(&target, b"{}\n").unwrap_err();
    assert_eq!(err.kind(), ErrorKind::PermissionDenied);
    assert_eq!(
        ahs_inject::hits("obs::fsio::create"),
        1,
        "permanent errors must not be retried"
    );
    assert!(!target.exists());
    assert_no_tmp_orphans(&dir);
    cover(&mut covered, &["obs::fsio::create"]);

    // --- obs::fsio::write: a torn write is transient (the crash model
    // of atomic_write); retry republishes the full document.
    arm("obs::fsio::write=1*torn-write(3)");
    let target = dir.join("torn.json");
    write_with_retry(&target, b"{\"v\":1}\n").unwrap();
    assert_eq!(std::fs::read(&target).unwrap(), b"{\"v\":1}\n");
    assert_eq!(ahs_inject::hits("obs::fsio::write"), 2, "one retry");
    assert_no_tmp_orphans(&dir);
    cover(&mut covered, &["obs::fsio::write"]);

    // --- obs::fsio::sync: two transient fsync failures are absorbed
    // within the retry budget.
    arm("obs::fsio::sync=2*return(interrupted)");
    let target = dir.join("sync.json");
    write_with_retry(&target, b"synced\n").unwrap();
    assert_eq!(std::fs::read(&target).unwrap(), b"synced\n");
    assert_eq!(ahs_inject::hits("obs::fsio::sync"), 3);
    cover(&mut covered, &["obs::fsio::sync"]);

    // --- obs::fsio::rename: a failed publication never disturbs the
    // previous contents; the retry then replaces them whole.
    let target = dir.join("rename.json");
    atomic_write(&target, b"old\n").unwrap();
    arm("obs::fsio::rename=1*return(enospc)");
    write_with_retry(&target, b"new\n").unwrap();
    assert_eq!(std::fs::read(&target).unwrap(), b"new\n");
    assert_no_tmp_orphans(&dir);
    cover(&mut covered, &["obs::fsio::rename"]);

    // --- obs::fsio::dir-sync: directory-fsync failure is degradation,
    // not failure — the artifact is published, the counter ticks.
    let before = dir_sync_failures();
    arm("obs::fsio::dir-sync=return(other)");
    let target = dir.join("dirsync.json");
    atomic_write(&target, b"published\n").unwrap();
    assert_eq!(std::fs::read(&target).unwrap(), b"published\n");
    assert!(dir_sync_failures() > before, "degradation must be counted");
    cover(&mut covered, &["obs::fsio::dir-sync"]);

    // --- obs::progress::emit: a study whose telemetry sink fails on
    // every event completes with identical estimates and a nonzero
    // dropped count.
    arm("obs::progress::emit=return(broken-pipe)");
    let sink = Arc::new(ProgressSink::to_writer(Box::new(Vec::new())));
    let (s, ko) = study(2, 2009);
    let est = run(s.with_progress(sink.clone()), ko).unwrap();
    assert_eq!(est.curve.estimators(), baseline.curve.estimators());
    assert!(sink.dropped() > 0, "lost telemetry must be counted");
    cover(&mut covered, &["obs::progress::emit"]);

    // --- des::checkpoint::save: the *last* checkpoint write lands
    // corrupt; generation fallback resumes from the retained previous
    // document, bitwise-identical to the baseline.
    let cp_path = dir.join("save.ckpt.json");
    // 600 reps / chunk 100 at 1 thread: six in-loop flushes plus the
    // final one — corrupt write #7.
    arm("des::checkpoint::save=6*off->corrupt-bytes(16)");
    let (s, ko) = study(1, 2009);
    let est = run(s.with_checkpoint(&cp_path, 100), ko).unwrap();
    assert_eq!(est.replications, 600);
    assert_eq!(ahs_inject::hits("des::checkpoint::save"), 7);
    cover(&mut covered, &["des::checkpoint::save"]);
    assert!(
        matches!(
            StudyCheckpoint::load(&cp_path),
            Err(SimError::Checkpoint { .. })
        ),
        "latest generation should be corrupt"
    );
    let (cp, generation) = StudyCheckpoint::load_with_fallback(&cp_path, 2).unwrap();
    assert_eq!(
        generation, 1,
        "fallback must come from the retained generation"
    );
    assert_eq!(cp.watermark, 600);
    let (s, ko) = study(1, 2009);
    let resumed = run(s.with_resume(cp), ko).unwrap();
    assert_eq!(resumed.curve.estimators(), baseline.curve.estimators());

    // --- des::checkpoint::load: corruption injected on the read path
    // is a typed error, and fallback survives it by reading the next
    // generation.
    let cp_path = dir.join("load.ckpt.json");
    let (s, ko) = study(1, 2009);
    run(s.with_checkpoint(&cp_path, 100), ko).unwrap();
    arm("des::checkpoint::load=1*corrupt-bytes(16)");
    let err = StudyCheckpoint::load(&cp_path).unwrap_err();
    assert!(matches!(err, SimError::Checkpoint { .. }), "{err}");
    arm("des::checkpoint::load=1*corrupt-bytes(16)");
    let (cp, generation) = StudyCheckpoint::load_with_fallback(&cp_path, 2).unwrap();
    assert_eq!(generation, 1);
    assert_eq!(cp.watermark, 600);
    cover(&mut covered, &["des::checkpoint::load"]);

    // --- des::replication::body (panic): exactly one injected panic is
    // quarantined; the study completes one replication short.
    arm("des::replication::body=5*off->1*panic(chaos-panic)");
    let (s, ko) = study(2, 2009);
    let est = run(s.with_quarantine_budget(1), ko).unwrap();
    assert_eq!(est.replications, 599);
    assert_eq!(est.quarantined.len(), 1);
    assert!(est.quarantined[0].message.contains("chaos-panic"));
    cover(&mut covered, &["des::replication::body"]);

    // --- des::replication::body (error): an injected IO-ish failure
    // surfaces as a typed SimError, not a panic or a hang.
    arm("des::replication::body=return(other)");
    let (s, ko) = study(2, 2009);
    let err = run(s, ko).unwrap_err();
    assert!(
        matches!(&err, SimError::Internal { context } if context.contains("injected")),
        "{err}"
    );
    cover(&mut covered, &["des::replication::body"]);

    // --- des::replication::chunk: an injected interrupt at a chunk
    // boundary drains gracefully; resuming from the flushed checkpoint
    // reproduces the baseline bit for bit at 1, 2, and 4 threads.
    for threads in [1_usize, 2, 4] {
        let cp_path = dir.join(format!("interrupt-{threads}.ckpt.json"));
        arm("des::replication::chunk=2*off->1*raise-interrupt");
        let flag = Arc::new(AtomicBool::new(false));
        let (s, ko) = study(threads, 2009);
        let first = run(s.with_checkpoint(&cp_path, 100).with_interrupt(flag), ko).unwrap();
        assert!(
            first.interrupted || first.replications == 600,
            "study neither interrupted nor complete at {threads} threads"
        );
        cover(&mut covered, &["des::replication::chunk"]);

        let cp = StudyCheckpoint::load(&cp_path).unwrap();
        assert!(cp.watermark > 0, "nothing survived the injected interrupt");
        let (s, ko) = study(threads, 2009);
        let resumed = run(s.with_resume(cp), ko).unwrap();
        assert_eq!(resumed.replications, 600);
        assert_eq!(
            resumed.curve.estimators(),
            baseline.curve.estimators(),
            "resume after injected interrupt diverged at {threads} threads"
        );
    }

    // --- des::sim::step (panic): a panic in the simulation inner loop
    // tears down one replication mid-event; quarantine absorbs it.
    arm("des::sim::step=50*off->1*panic(step-chaos)");
    let (s, ko) = study(1, 2009);
    let est = run(s.with_quarantine_budget(1), ko).unwrap();
    assert_eq!(est.replications, 599);
    assert_eq!(est.quarantined.len(), 1);
    assert!(est.quarantined[0].message.contains("step-chaos"));
    cover(&mut covered, &["des::sim::step"]);

    // --- des::sim::step (delay): a stalled inner loop trips the
    // wall-clock watchdog with a typed Runaway instead of hanging the
    // study. The ping-pong model guarantees the ≥1024 events the
    // wall-clock check is amortized over.
    arm("des::sim::step=1*delay(30)");
    let err = Study::new(ping_pong())
        .with_seed(2009)
        .with_fixed_replications(4)
        .with_chunk(2)
        .with_threads(1)
        .with_watchdog(Watchdog::new().with_max_wall_seconds(0.001))
        .first_passage(|_| false, &TimeGrid::new(vec![1.0]), Backend::Markov)
        .unwrap_err();
    assert!(matches!(err, SimError::Runaway { .. }), "{err}");
    cover(&mut covered, &["des::sim::step"]);

    // --- The sweep's reason to exist: nothing in the obs/des layers
    // escaped. The `ahs-serve` points have their own serial sweep
    // (`crates/serve/tests/chaos.rs`); the partition check below keeps
    // the two sweeps jointly exhaustive — a failpoint registered under
    // a new (or typo'd) layer fails here until a sweep claims it.
    let all: HashSet<&'static str> = ahs_inject::catalog()
        .iter()
        .filter(|d| d.layer != "ahs-serve" && d.layer != "ahs-serve-worker")
        .map(|d| d.name)
        .collect();
    let missed: Vec<&&str> = all.difference(&covered).collect();
    assert!(
        missed.is_empty(),
        "chaos sweep missed registered failpoint(s): {missed:?}"
    );
    // And the converse: no scenario claimed a name the catalog lacks.
    assert!(covered.is_subset(&all));
    for d in ahs_inject::catalog() {
        assert!(
            matches!(
                d.layer,
                "ahs-obs" | "ahs-des" | "ahs-serve" | "ahs-serve-worker"
            ),
            "failpoint {} registered under layer {:?}, which no chaos sweep covers",
            d.name,
            d.layer
        );
    }

    std::fs::remove_dir_all(&dir).ok();
}

/// A second, tiny test on purpose: `generation_path` is part of the
/// public resume contract the chaos sweep leans on, so pin it here too
/// (the registry is untouched — safe to run in parallel).
#[test]
fn generation_paths_used_by_fallback_are_stable() {
    let p = Path::new("out/run.ckpt.json");
    assert_eq!(generation_path(p, 0), PathBuf::from("out/run.ckpt.json"));
    assert_eq!(generation_path(p, 1), PathBuf::from("out/run.ckpt.1.json"));
}
