//! Multilevel splitting (fixed-effort) for rare first-passage
//! probabilities.
//!
//! An *independent* rare-event method to cross-validate the
//! importance-sampling estimator: instead of changing the measure,
//! splitting decomposes the rare event into a chain of conditional
//! events through an importance function
//! `level: Marking → 0..=target_level`. Stage `k` runs a fixed effort
//! of paths from (resampled) entry states of level `k`, estimating
//! `p̂ₖ = P(reach level k+1 before the horizon | reached level k)`;
//! the final estimate is `Π p̂ₖ`.
//!
//! The entry-state resampling makes the fixed-effort estimator
//! consistent (not exactly unbiased at finite effort); the reported
//! half-width is the standard per-stage binomial delta-method
//! approximation. For the AHS model a natural importance function is
//! the number of concurrently recovering vehicles, with the top level
//! the marked `KO_total`.

use std::sync::Arc;

use ahs_obs::Metrics;
use ahs_san::{Marking, SanModel};
use rand::rngs::SmallRng;
use rand::Rng;

use crate::error::SimError;
use crate::rng::replication_rng;
use crate::ssa::MarkovSimulator;

/// Result of a splitting study.
#[derive(Debug, Clone, PartialEq)]
pub struct SplittingEstimate {
    /// Estimated probability of reaching the target level by the
    /// horizon.
    pub probability: f64,
    /// Per-stage conditional probabilities `p̂ₖ`.
    pub stage_probabilities: Vec<f64>,
    /// Approximate relative standard error
    /// `sqrt(Σ (1 − p̂ₖ)/(p̂ₖ·Nₖ))` (delta method, treating stages as
    /// independent binomials).
    pub relative_std_error: f64,
    /// Paths run per stage.
    pub effort: u64,
}

impl SplittingEstimate {
    /// Approximate absolute half-width at ~95% confidence.
    pub fn half_width(&self) -> f64 {
        1.96 * self.relative_std_error * self.probability
    }
}

/// Fixed-effort multilevel splitting on a Markovian SAN.
///
/// # Example
///
/// ```
/// use ahs_des::SplittingStudy;
/// use ahs_san::{Delay, SanBuilder};
///
/// // A 3-stage failure chain: reaching the end by t=1 is rare.
/// let mut b = SanBuilder::new("chain");
/// let mut places = vec![b.place_with_tokens("s0", 1)?];
/// for i in 1..=3 {
///     places.push(b.place(&format!("s{i}"))?);
///     b.timed_activity(&format!("step{i}"), Delay::exponential(0.2))?
///         .input_place(places[i - 1])
///         .output_place(places[i])
///         .build()?;
/// }
/// let model = b.build()?;
/// let ps = places.clone();
/// let study = SplittingStudy::new(model).with_seed(5).with_effort(2000);
/// let est = study.estimate(
///     move |m| ps.iter().rposition(|&p| m.is_marked(p)).unwrap_or(0),
///     3,
///     1.0,
/// )?;
/// // Exact: P(Erlang(3, 0.2) <= 1) ≈ 1.1e-3.
/// assert!(est.probability > 2e-4 && est.probability < 5e-3);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct SplittingStudy {
    model: SanModel,
    seed: u64,
    effort: u64,
    metrics: Option<Arc<Metrics>>,
}

impl SplittingStudy {
    /// Creates a study with a default effort of 10 000 paths per
    /// stage.
    pub fn new(model: SanModel) -> Self {
        SplittingStudy {
            model,
            seed: 0x51117,
            effort: 10_000,
            metrics: None,
        }
    }

    /// Sets the master seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the per-stage effort (paths per level).
    ///
    /// # Panics
    ///
    /// Panics if `effort == 0`.
    #[must_use]
    pub fn with_effort(mut self, effort: u64) -> Self {
        assert!(effort > 0, "per-stage effort must be positive");
        self.effort = effort;
        self
    }

    /// Attaches a telemetry sink (per-path tallies plus a replication
    /// count of `effort` per stage).
    #[must_use]
    pub fn with_metrics(mut self, metrics: Arc<Metrics>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// The model under study.
    pub fn model(&self) -> &SanModel {
        &self.model
    }

    /// Estimates `P(level reaches target_level by horizon)` where
    /// `level_of` maps markings to importance levels (the initial
    /// stable marking must map below `target_level`).
    ///
    /// # Errors
    ///
    /// Returns simulation-layer errors ([`SimError`]).
    ///
    /// # Panics
    ///
    /// Panics if `target_level == 0` or the initial marking already
    /// sits at or above the target level.
    pub fn estimate<L>(
        &self,
        level_of: L,
        target_level: usize,
        horizon: f64,
    ) -> Result<SplittingEstimate, SimError>
    where
        L: Fn(&Marking) -> usize,
    {
        assert!(target_level > 0, "target level must be positive");
        let mut sim = MarkovSimulator::new(&self.model)?;
        if let Some(m) = &self.metrics {
            sim = sim.with_metrics(m.clone());
        }
        let mut rng_seq = 0_u64;
        let next_rng = |seed: u64, seq: &mut u64| -> SmallRng {
            *seq += 1;
            replication_rng(seed, *seq)
        };

        // Entry states of the current stage: (marking, entry time).
        let mut entries: Vec<(Marking, f64)> = vec![(self.model.initial_marking().clone(), 0.0)];
        assert!(
            level_of(self.model.initial_marking()) < target_level,
            "initial marking is already at or above the target level"
        );

        let mut stage_probabilities = Vec::new();
        let mut rel_var = 0.0_f64;
        let mut probability = 1.0_f64;

        for stage in 0..target_level {
            let mut next_entries: Vec<(Marking, f64)> = Vec::new();
            let mut successes = 0_u64;
            for _ in 0..self.effort {
                let mut rng = next_rng(self.seed, &mut rng_seq);
                // Resample an entry state uniformly (stage 0 has the
                // single initial state).
                let idx = if entries.len() == 1 {
                    0
                } else {
                    rng.random_range(0..entries.len())
                };
                let (start, t0) = entries[idx].clone();
                let lvl = &level_of;
                let (outcome, final_marking) = sim.run_first_passage_from(
                    start,
                    t0,
                    move |m| lvl(m) > stage,
                    horizon,
                    &mut rng,
                )?;
                if let Some(hit) = outcome.hit_time {
                    successes += 1;
                    next_entries.push((final_marking, hit));
                }
            }
            if let Some(m) = &self.metrics {
                m.add_replications(self.effort);
            }
            let p_hat = successes as f64 / self.effort as f64;
            stage_probabilities.push(p_hat);
            probability *= p_hat;
            if p_hat == 0.0 {
                // Dead stage: the estimate collapses to zero.
                return Ok(SplittingEstimate {
                    probability: 0.0,
                    stage_probabilities,
                    relative_std_error: f64::INFINITY,
                    effort: self.effort,
                });
            }
            rel_var += (1.0 - p_hat) / (p_hat * self.effort as f64);
            entries = next_entries;
        }

        Ok(SplittingEstimate {
            probability,
            stage_probabilities,
            relative_std_error: rel_var.sqrt(),
            effort: self.effort,
        })
    }
}

impl std::fmt::Debug for SplittingStudy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SplittingStudy")
            .field("model", &self.model.name())
            .field("effort", &self.effort)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ahs_san::{Delay, PlaceId, SanBuilder};

    /// A k-stage pure-death chain with per-stage rate `rate`.
    fn chain(k: usize, rate: f64) -> (SanModel, Vec<PlaceId>) {
        let mut b = SanBuilder::new("chain");
        let mut places = vec![b.place_with_tokens("s0", 1).unwrap()];
        for i in 1..=k {
            places.push(b.place(&format!("s{i}")).unwrap());
            b.timed_activity(&format!("step{i}"), Delay::exponential(rate))
                .unwrap()
                .input_place(places[i - 1])
                .output_place(places[i])
                .build()
                .unwrap();
        }
        (b.build().unwrap(), places)
    }

    /// P(Erlang(k, rate) <= t).
    fn erlang_cdf(k: usize, rate: f64, t: f64) -> f64 {
        let x = rate * t;
        let mut term = (-x).exp();
        let mut cum = term;
        for i in 1..k {
            term *= x / i as f64;
            cum += term;
        }
        1.0 - cum
    }

    #[test]
    fn splitting_matches_erlang_tail() {
        let (model, places) = chain(3, 0.3);
        let exact = erlang_cdf(3, 0.3, 1.0);
        assert!(exact < 5e-3, "regime check: {exact}");
        let ps = places.clone();
        let est = SplittingStudy::new(model)
            .with_seed(11)
            .with_effort(8_000)
            .estimate(
                move |m| ps.iter().rposition(|&p| m.is_marked(p)).unwrap_or(0),
                3,
                1.0,
            )
            .unwrap();
        let rel = (est.probability - exact).abs() / exact;
        assert!(
            rel < 0.25,
            "splitting {} vs exact {exact} (rel {rel})",
            est.probability
        );
        assert_eq!(est.stage_probabilities.len(), 3);
        assert!(est.relative_std_error < 0.2);
    }

    #[test]
    fn dead_stage_returns_zero() {
        // Rate so small nothing ever fires within the horizon.
        let (model, places) = chain(2, 1e-12);
        let ps = places.clone();
        let est = SplittingStudy::new(model)
            .with_seed(1)
            .with_effort(200)
            .estimate(
                move |m| ps.iter().rposition(|&p| m.is_marked(p)).unwrap_or(0),
                2,
                1.0,
            )
            .unwrap();
        assert_eq!(est.probability, 0.0);
        assert_eq!(est.relative_std_error, f64::INFINITY);
    }

    #[test]
    fn single_level_equals_plain_mc() {
        let (model, places) = chain(1, 2.0);
        let p1 = places[1];
        let exact = 1.0 - (-2.0_f64).exp();
        let est = SplittingStudy::new(model)
            .with_seed(2)
            .with_effort(20_000)
            .estimate(move |m| usize::from(m.is_marked(p1)), 1, 1.0)
            .unwrap();
        assert!((est.probability - exact).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "target level must be positive")]
    fn zero_target_rejected() {
        let (model, _) = chain(1, 1.0);
        let _ = SplittingStudy::new(model).estimate(|_| 0, 0, 1.0);
    }
}
