//! Deterministic per-replication random-number streams.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Derives an independent 64-bit seed from a master seed and a stream
/// index using the SplitMix64 finalizer. Identical `(master, index)`
/// pairs always yield the same stream, making studies reproducible
/// regardless of how replications are scheduled across threads.
pub fn split_seed(master: u64, index: u64) -> u64 {
    let mut z = master.wrapping_add(0x9E37_79B9_7F4A_7C15_u64.wrapping_mul(index.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The RNG for replication `index` of a study with the given master
/// seed.
pub fn replication_rng(master: u64, index: u64) -> SmallRng {
    SmallRng::seed_from_u64(split_seed(master, index))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn streams_are_deterministic() {
        let mut a = replication_rng(42, 7);
        let mut b = replication_rng(42, 7);
        for _ in 0..16 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_indices_differ() {
        let mut a = replication_rng(42, 0);
        let mut b = replication_rng(42, 1);
        let same = (0..16)
            .filter(|_| a.random::<u64>() == b.random::<u64>())
            .count();
        assert!(same < 2);
    }

    #[test]
    fn different_masters_differ() {
        assert_ne!(split_seed(1, 0), split_seed(2, 0));
        assert_ne!(split_seed(1, 5), split_seed(1, 6));
    }

    #[test]
    fn split_seed_spreads_low_bits() {
        // Consecutive indices should not produce consecutive seeds.
        let s0 = split_seed(0, 0);
        let s1 = split_seed(0, 1);
        assert!(s0.abs_diff(s1) > 1_000_000);
    }
}
