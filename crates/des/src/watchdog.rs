//! Per-replication runtime budgets.
//!
//! `ahs-lint` proves structural properties of a model, but a model can
//! lint clean and still cycle instantaneously *at simulation time*
//! (e.g. a deterministic zero-delay ping-pong that never advances the
//! clock). The default event budget eventually catches such loops, but
//! only after tens of millions of events; a [`Watchdog`] lets a study
//! bound each replication much tighter — by event count, wall-clock
//! time, or both — and fail with a typed [`SimError::Runaway`] instead
//! of burning a core for minutes.
//!
//! The wall-clock budget is consulted only every 1024 events so the hot
//! loop never pays for `Instant::now()` per event.

use std::time::Instant;

use crate::error::SimError;

/// Runtime budgets applied to every replication of a study.
///
/// # Example
///
/// ```
/// use ahs_des::Watchdog;
///
/// let wd = Watchdog::new()
///     .with_max_events(100_000)
///     .with_max_wall_seconds(5.0);
/// assert_eq!(wd.max_events(), Some(100_000));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Watchdog {
    max_events: Option<u64>,
    max_wall_seconds: Option<f64>,
}

impl Watchdog {
    /// A watchdog with no budgets set (never trips).
    pub fn new() -> Self {
        Watchdog::default()
    }

    /// Trip once a single replication executes more than `n` events.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn with_max_events(mut self, n: u64) -> Self {
        assert!(n > 0, "watchdog event budget must be positive");
        self.max_events = Some(n);
        self
    }

    /// Trip once a single replication runs longer than `seconds` of
    /// wall-clock time (checked every 1024 events).
    ///
    /// # Panics
    ///
    /// Panics if `seconds` is not a positive finite number.
    #[must_use]
    pub fn with_max_wall_seconds(mut self, seconds: f64) -> Self {
        assert!(
            seconds.is_finite() && seconds > 0.0,
            "watchdog wall-clock budget must be positive and finite, got {seconds}"
        );
        self.max_wall_seconds = Some(seconds);
        self
    }

    /// The configured event budget, if any.
    pub fn max_events(&self) -> Option<u64> {
        self.max_events
    }

    /// The configured wall-clock budget in seconds, if any.
    pub fn max_wall_seconds(&self) -> Option<f64> {
        self.max_wall_seconds
    }

    /// Whether any budget is configured at all.
    pub fn is_armed(&self) -> bool {
        self.max_events.is_some() || self.max_wall_seconds.is_some()
    }

    /// Starts the per-replication timer.
    pub(crate) fn start(&self) -> WatchdogRun {
        WatchdogRun {
            budget: *self,
            started: Instant::now(),
        }
    }
}

/// The `des::sim::step` chaos hook, evaluated once per simulation
/// event alongside the watchdog check: `delay` stalls the inner loop
/// (what a wall-clock watchdog exists to catch) and `panic` tears a
/// replication down mid-event (what quarantine exists to catch).
/// Compiled to nothing without the `inject` feature.
#[inline]
pub(crate) fn sim_step_failpoint() {
    match ahs_inject::eval("des::sim::step") {
        Some(ahs_inject::Fault::Delay(ms)) => {
            std::thread::sleep(std::time::Duration::from_millis(ms));
        }
        Some(ahs_inject::Fault::Panic(msg)) => {
            panic!("injected panic at des::sim::step: {msg}")
        }
        _ => {}
    }
}

/// A running watchdog for one replication.
#[derive(Debug)]
pub(crate) struct WatchdogRun {
    budget: Watchdog,
    started: Instant,
}

impl WatchdogRun {
    /// Checks the budgets after the `events`-th event. The event cap is
    /// checked on every call; the wall clock only every 1024 events.
    pub(crate) fn check(&self, events: u64) -> Result<(), SimError> {
        if let Some(cap) = self.budget.max_events {
            if events > cap {
                return Err(SimError::Runaway {
                    events,
                    wall_seconds: self.started.elapsed().as_secs_f64(),
                });
            }
        }
        if let Some(cap) = self.budget.max_wall_seconds {
            if events.is_multiple_of(1024) {
                let elapsed = self.started.elapsed().as_secs_f64();
                if elapsed > cap {
                    return Err(SimError::Runaway {
                        events,
                        wall_seconds: elapsed,
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_watchdog_never_trips() {
        let run = Watchdog::new().start();
        for e in [1, 1024, 1 << 40] {
            assert!(run.check(e).is_ok());
        }
        assert!(!Watchdog::new().is_armed());
    }

    #[test]
    fn event_budget_trips_with_typed_error() {
        let run = Watchdog::new().with_max_events(10).start();
        assert!(run.check(10).is_ok());
        match run.check(11) {
            Err(SimError::Runaway { events, .. }) => assert_eq!(events, 11),
            other => panic!("expected Runaway, got {other:?}"),
        }
    }

    #[test]
    fn wall_clock_checked_only_on_multiples_of_1024() {
        let run = Watchdog::new().with_max_wall_seconds(1e-9).start();
        std::thread::sleep(std::time::Duration::from_millis(1));
        // Off-multiple events never consult the clock.
        assert!(run.check(1023).is_ok());
        assert!(matches!(run.check(1024), Err(SimError::Runaway { .. })));
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_event_budget_rejected() {
        let _ = Watchdog::new().with_max_events(0);
    }
}
