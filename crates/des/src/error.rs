//! Error type of the simulation crate.

use ahs_san::SanError;

/// Errors arising during simulation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// The Markov (SSA) backend was asked to run a model containing a
    /// non-exponential timed activity.
    NonMarkovian {
        /// Name of the offending activity.
        activity: String,
    },
    /// A single replication exceeded the event budget — almost always a
    /// model with an unintended self-sustaining loop.
    EventBudgetExceeded {
        /// The budget that was exhausted.
        budget: u64,
    },
    /// A timed activity's sampled rate or delay was invalid at run time.
    InvalidRate {
        /// Name of the offending activity.
        activity: String,
        /// The offending rate.
        rate: f64,
    },
    /// An error bubbled up from the SAN layer (case distributions,
    /// instantaneous livelocks, …).
    San(SanError),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::NonMarkovian { activity } => write!(
                f,
                "activity `{activity}` has a non-exponential delay; use the event-driven backend"
            ),
            SimError::EventBudgetExceeded { budget } => {
                write!(f, "replication exceeded the event budget of {budget}")
            }
            SimError::InvalidRate { activity, rate } => {
                write!(f, "activity `{activity}` produced invalid rate {rate}")
            }
            SimError::San(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::San(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SanError> for SimError {
    fn from(e: SanError) -> Self {
        SimError::San(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = SimError::from(SanError::EmptyModel);
        assert_eq!(e.to_string(), "model has no places or no activities");
        assert!(std::error::Error::source(&e).is_some());
        let e = SimError::EventBudgetExceeded { budget: 10 };
        assert!(e.to_string().contains("10"));
    }
}
