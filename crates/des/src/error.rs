//! Error type of the simulation crate.

use ahs_san::SanError;

/// Errors arising during simulation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// The Markov (SSA) backend was asked to run a model containing a
    /// non-exponential timed activity.
    NonMarkovian {
        /// Name of the offending activity.
        activity: String,
    },
    /// A single replication exceeded the event budget — almost always a
    /// model with an unintended self-sustaining loop.
    EventBudgetExceeded {
        /// The budget that was exhausted.
        budget: u64,
    },
    /// A timed activity's sampled rate or delay was invalid at run time.
    InvalidRate {
        /// Name of the offending activity.
        activity: String,
        /// The offending rate.
        rate: f64,
    },
    /// An error bubbled up from the SAN layer (case distributions,
    /// instantaneous livelocks, …).
    San(SanError),
    /// A replication tripped its watchdog budget (event count or
    /// wall-clock) — the model lints clean but cycles at simulation
    /// time, or a single path is pathologically long.
    Runaway {
        /// Events executed when the watchdog tripped.
        events: u64,
        /// Wall-clock seconds elapsed in the replication when it tripped.
        wall_seconds: f64,
    },
    /// More replications panicked than the quarantine budget allows;
    /// the study aborts rather than silently dropping a growing share
    /// of its sample.
    QuarantineOverflow {
        /// Total quarantined replications, exceeding the budget.
        quarantined: u64,
        /// The configured quarantine budget.
        budget: u64,
        /// Panic message of the replication that overflowed the budget.
        message: String,
    },
    /// A checkpoint could not be written, read, or validated against
    /// the study about to resume from it.
    Checkpoint {
        /// Human-readable reason (schema mismatch, fingerprint drift,
        /// IO failure, …).
        reason: String,
    },
    /// A forced-schedule replay step could not be taken: the scheduled
    /// activity is not fireable (or its case not takeable) in the
    /// marking the preceding steps produced. The trace being replayed
    /// does not describe a path of this model.
    Replay {
        /// Zero-based index of the offending step in the schedule.
        step: usize,
        /// Name of the activity the step tried to fire.
        activity: String,
        /// Why the step could not be taken.
        reason: String,
    },
    /// An internal engine invariant was violated. This indicates a bug
    /// in the simulator, not in the model; it is surfaced as a typed
    /// error instead of a panic so a multi-thousand-replication study
    /// fails cleanly with context.
    Internal {
        /// Which invariant broke.
        context: String,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::NonMarkovian { activity } => write!(
                f,
                "activity `{activity}` has a non-exponential delay; use the event-driven backend"
            ),
            SimError::EventBudgetExceeded { budget } => {
                write!(f, "replication exceeded the event budget of {budget}")
            }
            SimError::InvalidRate { activity, rate } => {
                write!(f, "activity `{activity}` produced invalid rate {rate}")
            }
            SimError::San(e) => write!(f, "{e}"),
            SimError::Runaway {
                events,
                wall_seconds,
            } => write!(
                f,
                "replication watchdog tripped after {events} events / {wall_seconds:.3}s wall-clock"
            ),
            SimError::QuarantineOverflow {
                quarantined,
                budget,
                message,
            } => write!(
                f,
                "{quarantined} replication(s) panicked, exceeding the quarantine budget \
                 of {budget} (last panic: {message})"
            ),
            SimError::Checkpoint { reason } => write!(f, "checkpoint error: {reason}"),
            SimError::Replay {
                step,
                activity,
                reason,
            } => write!(
                f,
                "forced schedule diverges at step {step} (activity `{activity}`): {reason}"
            ),
            SimError::Internal { context } => {
                write!(f, "internal simulator invariant violated: {context}")
            }
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::San(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SanError> for SimError {
    fn from(e: SanError) -> Self {
        SimError::San(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = SimError::from(SanError::EmptyModel);
        assert_eq!(e.to_string(), "model has no places or no activities");
        assert!(std::error::Error::source(&e).is_some());
        let e = SimError::EventBudgetExceeded { budget: 10 };
        assert!(e.to_string().contains("10"));
    }

    #[test]
    fn robustness_variants_display() {
        let e = SimError::Runaway {
            events: 5_000,
            wall_seconds: 1.25,
        };
        assert!(e.to_string().contains("watchdog"), "{e}");
        let e = SimError::QuarantineOverflow {
            quarantined: 3,
            budget: 2,
            message: "boom".into(),
        };
        assert!(e.to_string().contains("quarantine budget"), "{e}");
        assert!(e.to_string().contains("boom"), "{e}");
        let e = SimError::Checkpoint {
            reason: "schema mismatch".into(),
        };
        assert!(e.to_string().contains("schema mismatch"), "{e}");
        let e = SimError::Internal {
            context: "peeked event vanished".into(),
        };
        assert!(e.to_string().contains("invariant"), "{e}");
        let e = SimError::Replay {
            step: 2,
            activity: "to_cs".into(),
            reason: "not enabled".into(),
        };
        assert!(e.to_string().contains("step 2"), "{e}");
        assert!(e.to_string().contains("to_cs"), "{e}");
    }
}
