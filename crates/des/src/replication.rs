//! Independent-replication studies with parallel workers and
//! sequential stopping.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use ahs_obs::{Json, Metrics, ProgressSink};
use ahs_san::{Marking, SanModel};
use ahs_stats::{Curve, StoppingRule, TimeGrid};
use parking_lot::Mutex;

use crate::bias::BiasScheme;
use crate::error::SimError;
use crate::executor::EventDrivenSimulator;
use crate::rng::replication_rng;
use crate::ssa::MarkovSimulator;

/// Which executor a study uses.
#[derive(Debug, Clone)]
pub enum Backend {
    /// Event-queue executor; any delay distribution, no importance
    /// sampling.
    EventDriven,
    /// SSA executor for all-exponential models.
    Markov,
    /// SSA executor with importance sampling.
    BiasedMarkov(BiasScheme),
}

/// Result of a replication study over a time grid.
#[derive(Debug, Clone)]
pub struct CurveEstimate {
    /// The accumulated per-instant estimators.
    pub curve: Curve,
    /// Total replications executed.
    pub replications: u64,
    /// Whether the stopping rule's precision target was reached (as
    /// opposed to hitting the replication cap).
    pub converged: bool,
}

/// A replication study: a model plus sampling configuration.
///
/// Replications are deterministic given the master seed — replication
/// `i` always consumes random stream `i` regardless of thread
/// scheduling, and worker chunks are merged into the final curve in
/// replication order, so a fixed-budget study produces **bitwise
/// identical** estimates for any thread count (the determinism test
/// tier enforces this). Precision-rule studies are deterministic per
/// replication too, but the total replication count may vary slightly
/// with scheduling because the rule fires between chunks.
///
/// The default stopping rule mirrors the paper: at least 10 000
/// replications and a 95% confidence interval within 0.1 relative
/// half-width (checked at the last grid instant), capped at 4 000 000
/// replications.
pub struct Study {
    model: Arc<SanModel>,
    seed: u64,
    confidence: f64,
    rule: StoppingRule,
    threads: usize,
    chunk: u64,
    metrics: Option<Arc<Metrics>>,
    progress: Option<Arc<ProgressSink>>,
}

impl Study {
    /// Creates a study of `model` with the paper's default stopping
    /// rule.
    pub fn new(model: SanModel) -> Self {
        Study {
            model: Arc::new(model),
            seed: 0xA115_5EED, // arbitrary fixed default
            confidence: 0.95,
            rule: StoppingRule::relative_precision(0.95, 0.1)
                .with_min_samples(10_000)
                .with_max_samples(4_000_000),
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            chunk: 1_000,
            metrics: None,
            progress: None,
        }
    }

    /// Sets the master seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the confidence level used for reporting and stopping.
    ///
    /// # Panics
    ///
    /// Panics if `confidence` is not in `(0, 1)`.
    #[must_use]
    pub fn with_confidence(mut self, confidence: f64) -> Self {
        assert!(
            confidence > 0.0 && confidence < 1.0,
            "confidence level must lie strictly between 0 and 1, got {confidence}"
        );
        self.confidence = confidence;
        self
    }

    /// Replaces the stopping rule.
    #[must_use]
    pub fn with_rule(mut self, rule: StoppingRule) -> Self {
        self.rule = rule;
        self
    }

    /// Shortcut for a fixed number of replications.
    #[must_use]
    pub fn with_fixed_replications(mut self, n: u64) -> Self {
        self.rule = StoppingRule::fixed(n);
        self
    }

    /// Sets the number of worker threads (`1` disables parallelism).
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads > 0, "need at least one worker thread");
        self.threads = threads;
        self
    }

    /// Sets how many replications each worker runs between merges.
    ///
    /// # Panics
    ///
    /// Panics if `chunk == 0`.
    #[must_use]
    pub fn with_chunk(mut self, chunk: u64) -> Self {
        assert!(chunk > 0, "chunk size must be positive");
        self.chunk = chunk;
        self
    }

    /// Attaches a telemetry sink shared by all workers (replication
    /// counts, per-run tallies, weight diagnostics, chunk merges,
    /// per-worker throughput).
    #[must_use]
    pub fn with_metrics(mut self, metrics: Arc<Metrics>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Attaches a JSON-lines progress sink; the study emits
    /// `study_started`, `chunk_done`, and `study_finished` events.
    #[must_use]
    pub fn with_progress(mut self, progress: Arc<ProgressSink>) -> Self {
        self.progress = Some(progress);
        self
    }

    /// The model under study.
    pub fn model(&self) -> &SanModel {
        &self.model
    }

    /// Confidence level used for stopping and reporting.
    pub fn confidence(&self) -> f64 {
        self.confidence
    }

    /// Master seed of the study.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The stopping rule in force.
    pub fn rule(&self) -> StoppingRule {
        self.rule
    }

    /// Estimates the first-passage probability curve
    /// `t ↦ P(target reached by t)` over `grid`.
    ///
    /// # Errors
    ///
    /// Returns the first [`SimError`] raised by any replication
    /// (non-Markovian model on an SSA backend, event-budget exhaustion,
    /// invalid rates, SAN-level errors).
    pub fn first_passage<F>(
        &self,
        target: F,
        grid: &TimeGrid,
        backend: Backend,
    ) -> Result<CurveEstimate, SimError>
    where
        F: Fn(&Marking) -> bool + Send + Sync,
    {
        let horizon = grid.horizon();
        self.run_study(grid, backend, |engine, rng, curve| {
            let outcome = match engine {
                Engine::Event(sim) => sim.run_first_passage(&target, horizon, rng)?,
                Engine::Markov(sim) => sim.run_first_passage(&target, horizon, rng)?,
            };
            curve.record_first_passage(
                outcome.hit_time,
                if outcome.hit_time.is_some() {
                    outcome.hit_weight
                } else {
                    1.0
                },
            );
            Ok(())
        })
    }

    /// Estimates the transient probability curve `t ↦ P(pred holds at
    /// t)` over `grid` (for conditions that may toggle off again).
    ///
    /// # Errors
    ///
    /// Same failure modes as [`first_passage`](Study::first_passage).
    pub fn transient<F>(
        &self,
        pred: F,
        grid: &TimeGrid,
        backend: Backend,
    ) -> Result<CurveEstimate, SimError>
    where
        F: Fn(&Marking) -> bool + Send + Sync,
    {
        self.run_study(grid, backend, |engine, rng, curve| {
            let obs = match engine {
                Engine::Event(sim) => sim.run_transient(&pred, grid.points(), rng)?,
                Engine::Markov(sim) => sim.run_transient(&pred, grid.points(), rng)?,
            };
            curve.record_weighted(&obs);
            Ok(())
        })
    }

    fn run_study<W>(
        &self,
        grid: &TimeGrid,
        backend: Backend,
        work: W,
    ) -> Result<CurveEstimate, SimError>
    where
        W: Fn(&Engine<'_>, &mut rand::rngs::SmallRng, &mut Curve) -> Result<(), SimError>
            + Send
            + Sync,
    {
        // `global` feeds the stopping checks; the per-chunk curves in
        // `chunks` are re-merged in replication order at the end so the
        // final estimate is independent of worker scheduling.
        let global = Mutex::new(Curve::new(grid.clone()));
        let chunks: Mutex<Vec<(u64, Curve)>> = Mutex::new(Vec::new());
        let next_rep = AtomicU64::new(0);
        let done = AtomicBool::new(false);
        let failure: Mutex<Option<SimError>> = Mutex::new(None);
        let converged = AtomicBool::new(false);

        if let Some(p) = &self.progress {
            p.emit(
                "study_started",
                vec![
                    ("model", Json::str(self.model.name())),
                    ("seed", self.seed.into()),
                    ("threads", self.threads.into()),
                    ("chunk", self.chunk.into()),
                ],
            );
        }

        let run_worker = || -> () {
            let worker_clock = Instant::now();
            let mut worker_reps = 0_u64;
            let engine = match &backend {
                Backend::EventDriven => {
                    let mut sim = EventDrivenSimulator::new(&self.model);
                    if let Some(m) = &self.metrics {
                        sim = sim.with_metrics(m.clone());
                    }
                    Engine::Event(sim)
                }
                Backend::Markov => match MarkovSimulator::new(&self.model) {
                    Ok(mut sim) => {
                        if let Some(m) = &self.metrics {
                            sim = sim.with_metrics(m.clone());
                        }
                        Engine::Markov(sim)
                    }
                    Err(e) => {
                        *failure.lock() = Some(e);
                        done.store(true, Ordering::SeqCst);
                        return;
                    }
                },
                Backend::BiasedMarkov(bias) => match MarkovSimulator::new(&self.model) {
                    Ok(mut sim) => {
                        sim = sim.with_bias(bias.clone());
                        if let Some(m) = &self.metrics {
                            sim = sim.with_metrics(m.clone());
                        }
                        Engine::Markov(sim)
                    }
                    Err(e) => {
                        *failure.lock() = Some(e);
                        done.store(true, Ordering::SeqCst);
                        return;
                    }
                },
            };
            while !done.load(Ordering::SeqCst) {
                let start = next_rep.fetch_add(self.chunk, Ordering::SeqCst);
                let mut end = start + self.chunk;
                if let Some(max) = self.rule.max_samples() {
                    if start >= max {
                        done.store(true, Ordering::SeqCst);
                        break;
                    }
                    end = end.min(max);
                }
                let mut local = Curve::new(grid.clone());
                for rep in start..end {
                    let mut rng = replication_rng(self.seed, rep);
                    if let Err(e) = work(&engine, &mut rng, &mut local) {
                        let mut f = failure.lock();
                        if f.is_none() {
                            *f = Some(e);
                        }
                        done.store(true, Ordering::SeqCst);
                        return;
                    }
                }
                worker_reps += end - start;
                let mut g = global.lock();
                g.merge(&local);
                let merged_total = g.samples();
                let last = grid.len() - 1;
                let stats = *g.estimator(last).product_stats();
                drop(g);
                chunks.lock().push((start, local));
                if let Some(m) = &self.metrics {
                    m.add_replications(end - start);
                    m.record_chunk_merge();
                }
                if let Some(p) = &self.progress {
                    p.emit(
                        "chunk_done",
                        vec![
                            ("start", start.into()),
                            ("replications", (end - start).into()),
                            ("total", merged_total.into()),
                        ],
                    );
                }
                if self.rule.is_satisfied(&stats) {
                    converged.store(self.rule.precision_reached(&stats), Ordering::SeqCst);
                    done.store(true, Ordering::SeqCst);
                }
            }
            if let Some(m) = &self.metrics {
                m.record_worker(worker_reps, worker_clock.elapsed().as_secs_f64());
            }
        };

        if self.threads <= 1 {
            run_worker();
        } else {
            crossbeam::thread::scope(|s| {
                for _ in 0..self.threads {
                    s.spawn(|_| run_worker());
                }
            })
            .expect("simulation worker panicked");
        }

        if let Some(e) = failure.into_inner() {
            return Err(e);
        }
        // Deterministic re-merge: sort chunks by first replication
        // index and fold in that order. Floating-point merge order is
        // then a pure function of the chunk set, which for fixed-budget
        // rules is itself scheduling-independent.
        let mut chunks = chunks.into_inner();
        chunks.sort_by_key(|&(start, _)| start);
        let mut curve = Curve::new(grid.clone());
        for (_, local) in &chunks {
            curve.merge(local);
        }
        debug_assert_eq!(curve.samples(), global.into_inner().samples());
        let replications = curve.samples();
        let converged = converged.load(Ordering::SeqCst);
        if let Some(p) = &self.progress {
            p.emit(
                "study_finished",
                vec![
                    ("replications", replications.into()),
                    ("converged", converged.into()),
                ],
            );
        }
        Ok(CurveEstimate {
            curve,
            replications,
            converged,
        })
    }
}

impl std::fmt::Debug for Study {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Study")
            .field("model", &self.model.name())
            .field("seed", &self.seed)
            .field("threads", &self.threads)
            .finish_non_exhaustive()
    }
}

enum Engine<'m> {
    Event(EventDrivenSimulator<'m>),
    Markov(MarkovSimulator<'m>),
}

#[cfg(test)]
mod tests {
    use super::*;
    use ahs_san::{Delay, SanBuilder};

    fn single_failure(rate: f64) -> (ahs_san::SanModel, ahs_san::PlaceId) {
        let mut b = SanBuilder::new("single");
        let up = b.place_with_tokens("up", 1).unwrap();
        let down = b.place("down").unwrap();
        b.timed_activity("fail", Delay::exponential(rate))
            .unwrap()
            .input_place(up)
            .output_place(down)
            .build()
            .unwrap();
        (b.build().unwrap(), down)
    }

    #[test]
    fn fixed_replication_study_matches_closed_form() {
        let (model, down) = single_failure(0.3);
        let study = Study::new(model)
            .with_seed(11)
            .with_fixed_replications(20_000)
            .with_threads(2);
        let grid = TimeGrid::new(vec![1.0, 3.0]);
        let est = study
            .first_passage(move |m| m.is_marked(down), &grid, Backend::Markov)
            .unwrap();
        assert!(est.replications >= 20_000);
        let pts = est.curve.points(0.95);
        let p1 = 1.0 - (-0.3_f64).exp();
        let p3 = 1.0 - (-0.9_f64).exp();
        assert!((pts[0].y - p1).abs() < 0.01, "{} vs {p1}", pts[0].y);
        assert!((pts[1].y - p3).abs() < 0.01, "{} vs {p3}", pts[1].y);
    }

    #[test]
    fn precision_rule_stops_and_reports_convergence() {
        let (model, down) = single_failure(1.0);
        let study = Study::new(model)
            .with_seed(13)
            .with_rule(
                StoppingRule::relative_precision(0.95, 0.05)
                    .with_min_samples(1_000)
                    .with_max_samples(200_000),
            )
            .with_threads(1)
            .with_chunk(500);
        let grid = TimeGrid::new(vec![1.0]);
        let est = study
            .first_passage(move |m| m.is_marked(down), &grid, Backend::Markov)
            .unwrap();
        assert!(est.converged, "study did not converge");
        let ci = est.curve.interval(0, 0.95);
        assert!(ci.relative_half_width() <= 0.05 * 1.05);
        assert!(est.replications < 200_000);
    }

    #[test]
    fn event_and_markov_backends_agree() {
        let (model, down) = single_failure(0.5);
        let down2 = down;
        let study = Study::new(model)
            .with_seed(17)
            .with_fixed_replications(15_000)
            .with_threads(2);
        let grid = TimeGrid::new(vec![2.0]);
        let a = study
            .first_passage(move |m| m.is_marked(down), &grid, Backend::Markov)
            .unwrap();
        let b = study
            .first_passage(move |m| m.is_marked(down2), &grid, Backend::EventDriven)
            .unwrap();
        let ia = a.curve.interval(0, 0.99);
        let ib = b.curve.interval(0, 0.99);
        assert!(ia.overlaps(&ib), "{ia} vs {ib}");
    }

    #[test]
    fn biased_study_recovers_rare_probability() {
        let (model, down) = single_failure(1e-5);
        let fail = model.find_activity("fail").unwrap();
        let bias = BiasScheme::new().with_multiplier(fail, 1e4);
        let study = Study::new(model)
            .with_seed(19)
            .with_fixed_replications(40_000)
            .with_threads(2);
        let grid = TimeGrid::new(vec![10.0]);
        let est = study
            .first_passage(
                move |m| m.is_marked(down),
                &grid,
                Backend::BiasedMarkov(bias),
            )
            .unwrap();
        let truth = 1.0 - (-1e-4_f64).exp();
        let y = est.curve.points(0.95)[0].y;
        let rel = (y - truth).abs() / truth;
        assert!(rel < 0.1, "IS study estimate {y} vs truth {truth}");
    }

    #[test]
    fn fixed_budget_is_honored_exactly() {
        let (model, down) = single_failure(1.0);
        let study = Study::new(model)
            .with_seed(5)
            .with_fixed_replications(1_234)
            .with_chunk(1_000)
            .with_threads(2);
        let grid = TimeGrid::new(vec![1.0]);
        let est = study
            .first_passage(move |m| m.is_marked(down), &grid, Backend::Markov)
            .unwrap();
        assert_eq!(est.replications, 1_234);
    }

    #[test]
    fn study_is_reproducible() {
        let (model, down) = single_failure(0.4);
        let grid = TimeGrid::new(vec![1.0]);
        let mk = |model: ahs_san::SanModel| {
            Study::new(model)
                .with_seed(99)
                .with_fixed_replications(5_000)
                .with_threads(4)
        };
        let (m2, _) = single_failure(0.4);
        let a = mk(model)
            .first_passage(move |m| m.is_marked(down), &grid, Backend::Markov)
            .unwrap();
        let b = mk(m2)
            .first_passage(move |m| m.is_marked(down), &grid, Backend::Markov)
            .unwrap();
        assert_eq!(a.curve.points(0.95)[0].y, b.curve.points(0.95)[0].y);
    }

    #[test]
    fn transient_study_on_repairable_component() {
        // Failure 1.0, repair 4.0: P(down at t) -> λ/(λ+μ)(1-e^{-(λ+μ)t}).
        let mut b = SanBuilder::new("repairable");
        let up = b.place_with_tokens("up", 1).unwrap();
        let down = b.place("down").unwrap();
        b.timed_activity("fail", Delay::exponential(1.0))
            .unwrap()
            .input_place(up)
            .output_place(down)
            .build()
            .unwrap();
        b.timed_activity("repair", Delay::exponential(4.0))
            .unwrap()
            .input_place(down)
            .output_place(up)
            .build()
            .unwrap();
        let model = b.build().unwrap();
        let study = Study::new(model)
            .with_seed(23)
            .with_fixed_replications(30_000)
            .with_threads(2);
        let grid = TimeGrid::new(vec![0.2, 1.0, 5.0]);
        let est = study
            .transient(move |m| m.is_marked(down), &grid, Backend::Markov)
            .unwrap();
        for (pt, &t) in est.curve.points(0.95).iter().zip(grid.points()) {
            let truth = 0.2 * (1.0 - (-5.0_f64 * t).exp());
            assert!((pt.y - truth).abs() < 0.015, "t={t}: {} vs {truth}", pt.y);
        }
    }

    #[test]
    fn non_markovian_error_propagates_from_workers() {
        let mut b = SanBuilder::new("det");
        let p = b.place_with_tokens("p", 1).unwrap();
        b.timed_activity("d", Delay::Deterministic(1.0))
            .unwrap()
            .input_place(p)
            .build()
            .unwrap();
        let model = b.build().unwrap();
        let study = Study::new(model)
            .with_fixed_replications(10)
            .with_threads(2);
        let grid = TimeGrid::new(vec![1.0]);
        let err = study
            .first_passage(|_| false, &grid, Backend::Markov)
            .unwrap_err();
        assert!(matches!(err, SimError::NonMarkovian { .. }));
    }
}
