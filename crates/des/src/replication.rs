//! Independent-replication studies with parallel workers, sequential
//! stopping, and fault-tolerant execution.
//!
//! Robustness (see `docs/robustness.md`):
//!
//! * **Checkpoint/resume** — [`Study::with_checkpoint`] periodically
//!   writes an atomic `ahs-checkpoint/v1` snapshot of the merged
//!   replication prefix; [`Study::with_resume`] restarts from one and
//!   produces estimates **bitwise identical** to an uninterrupted run.
//! * **Panic quarantine** — each replication body runs under
//!   `catch_unwind`; a panicking replication is recorded and excluded
//!   instead of tearing down the whole study, up to
//!   [`Study::with_quarantine_budget`].
//! * **Watchdog** — [`Study::with_watchdog`] bounds each replication
//!   by event count and wall-clock time ([`SimError::Runaway`]).
//! * **Graceful interruption** — [`Study::with_interrupt`] polls a
//!   flag (e.g. [`ahs_obs::interrupt_flag`]) at chunk boundaries,
//!   drains in-flight chunks, and flushes a final checkpoint.

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use ahs_obs::{Json, Metrics, ProgressSink, StoppingSpec};
use ahs_san::{Marking, SanModel};
use ahs_stats::{Curve, StoppingRule, TimeGrid};
use parking_lot::Mutex;

use crate::bias::BiasScheme;
use crate::checkpoint::{model_fingerprint, QuarantinedRep, StudyCheckpoint};
use crate::error::SimError;
use crate::executor::EventDrivenSimulator;
use crate::rng::replication_rng;
use crate::ssa::MarkovSimulator;
use crate::watchdog::Watchdog;

/// Which executor a study uses.
#[derive(Debug, Clone)]
pub enum Backend {
    /// Event-queue executor; any delay distribution, no importance
    /// sampling.
    EventDriven,
    /// SSA executor for all-exponential models.
    Markov,
    /// SSA executor with importance sampling.
    BiasedMarkov(BiasScheme),
}

/// Result of a replication study over a time grid.
#[derive(Debug, Clone)]
pub struct CurveEstimate {
    /// The accumulated per-instant estimators.
    pub curve: Curve,
    /// Total replications contributing to the estimates (quarantined
    /// replications are excluded).
    pub replications: u64,
    /// Whether the stopping rule's precision target was reached (as
    /// opposed to hitting the replication cap or being interrupted).
    pub converged: bool,
    /// Whether the study stopped early because its interrupt flag was
    /// raised (SIGINT/SIGTERM or a manual request). When a checkpoint
    /// path is configured the final state was flushed there first.
    pub interrupted: bool,
    /// Replications whose body panicked and was quarantined.
    pub quarantined: Vec<QuarantinedRep>,
    /// Watermarks of the checkpoints this run (transitively) resumed
    /// from, oldest first; empty for a fresh run.
    pub resume_lineage: Vec<u64>,
}

/// How often and where a study checkpoints.
#[derive(Debug, Clone)]
struct CheckpointPlan {
    path: PathBuf,
    every: u64,
}

/// A replication study: a model plus sampling configuration.
///
/// Replications are deterministic given the master seed — replication
/// `i` always consumes random stream `i` regardless of thread
/// scheduling, and worker chunks are merged into the final curve in
/// replication order, so a fixed-budget study produces **bitwise
/// identical** estimates for any thread count (the determinism test
/// tier enforces this). Precision-rule studies are deterministic per
/// replication too, but the total replication count may vary slightly
/// with scheduling because the rule fires between chunks.
///
/// The same two properties make studies resumable: a checkpoint stores
/// the merged estimator state over the completed replication prefix
/// `[0, W)`, and a resumed study replays replications `W..` with
/// identical streams and merge order (the recovery test tier enforces
/// bitwise-identical resume at 1, 2, and 4 threads).
///
/// The default stopping rule mirrors the paper: at least 10 000
/// replications and a 95% confidence interval within 0.1 relative
/// half-width (checked at the last grid instant), capped at 4 000 000
/// replications.
pub struct Study {
    model: Arc<SanModel>,
    seed: u64,
    confidence: f64,
    rule: StoppingRule,
    threads: usize,
    chunk: u64,
    metrics: Option<Arc<Metrics>>,
    progress: Option<Arc<ProgressSink>>,
    watchdog: Option<Watchdog>,
    quarantine_budget: u64,
    checkpoint: Option<CheckpointPlan>,
    checkpoint_generations: u32,
    resume: Option<StudyCheckpoint>,
    interrupt: Option<Arc<AtomicBool>>,
}

impl Study {
    /// Creates a study of `model` — owned, or an `Arc` already shared
    /// with other concurrent studies (a service's model cache hands the
    /// same compiled SAN to every job over the same configuration) —
    /// with the paper's default stopping rule.
    pub fn new(model: impl Into<Arc<SanModel>>) -> Self {
        Study {
            model: model.into(),
            seed: 0xA115_5EED, // arbitrary fixed default
            confidence: 0.95,
            rule: StoppingRule::relative_precision(0.95, 0.1)
                .with_min_samples(10_000)
                .with_max_samples(4_000_000),
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            chunk: 1_000,
            metrics: None,
            progress: None,
            watchdog: None,
            quarantine_budget: 0,
            checkpoint: None,
            checkpoint_generations: 2,
            resume: None,
            interrupt: None,
        }
    }

    /// Sets the master seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the confidence level used for reporting and stopping.
    ///
    /// # Panics
    ///
    /// Panics if `confidence` is not in `(0, 1)`.
    #[must_use]
    pub fn with_confidence(mut self, confidence: f64) -> Self {
        assert!(
            confidence > 0.0 && confidence < 1.0,
            "confidence level must lie strictly between 0 and 1, got {confidence}"
        );
        self.confidence = confidence;
        self
    }

    /// Replaces the stopping rule.
    #[must_use]
    pub fn with_rule(mut self, rule: StoppingRule) -> Self {
        self.rule = rule;
        self
    }

    /// Shortcut for a fixed number of replications.
    #[must_use]
    pub fn with_fixed_replications(mut self, n: u64) -> Self {
        self.rule = StoppingRule::fixed(n);
        self
    }

    /// Sets the number of worker threads (`1` disables parallelism).
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads > 0, "need at least one worker thread");
        self.threads = threads;
        self
    }

    /// Sets how many replications each worker runs between merges.
    ///
    /// # Panics
    ///
    /// Panics if `chunk == 0`.
    #[must_use]
    pub fn with_chunk(mut self, chunk: u64) -> Self {
        assert!(chunk > 0, "chunk size must be positive");
        self.chunk = chunk;
        self
    }

    /// Attaches a telemetry sink shared by all workers (replication
    /// counts, per-run tallies, weight diagnostics, chunk merges,
    /// quarantined replications, per-worker throughput).
    #[must_use]
    pub fn with_metrics(mut self, metrics: Arc<Metrics>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Attaches a JSON-lines progress sink; the study emits
    /// `study_started`, `chunk_done`, `checkpoint_written`,
    /// `replication_quarantined`, and `study_finished` events.
    #[must_use]
    pub fn with_progress(mut self, progress: Arc<ProgressSink>) -> Self {
        self.progress = Some(progress);
        self
    }

    /// Bounds every replication by the given runtime budgets; a
    /// violation fails the study with [`SimError::Runaway`].
    #[must_use]
    pub fn with_watchdog(mut self, watchdog: Watchdog) -> Self {
        self.watchdog = Some(watchdog);
        self
    }

    /// Allows up to `budget` replications to panic: each one is
    /// quarantined (recorded, excluded from the estimates, reported in
    /// metrics and the result) instead of aborting the study. The
    /// default budget is 0 — the first panic surfaces as
    /// [`SimError::QuarantineOverflow`].
    #[must_use]
    pub fn with_quarantine_budget(mut self, budget: u64) -> Self {
        self.quarantine_budget = budget;
        self
    }

    /// Writes an atomic checkpoint to `path` every time at least
    /// `every` further replications have been merged into the
    /// contiguous prefix, plus a final checkpoint when the study ends
    /// (normally or interrupted). Before each write the previous
    /// document is rotated to `<name>.1.<ext>` (and so on, up to
    /// [`Study::with_checkpoint_generations`]), so a checkpoint that
    /// lands corrupt never destroys the last good one.
    ///
    /// # Panics
    ///
    /// Panics if `every == 0`.
    #[must_use]
    pub fn with_checkpoint(mut self, path: impl Into<PathBuf>, every: u64) -> Self {
        assert!(every > 0, "checkpoint interval must be positive");
        self.checkpoint = Some(CheckpointPlan {
            path: path.into(),
            every,
        });
        self
    }

    /// How many checkpoint generations to retain (default 2: the
    /// latest plus one fallback). `1` disables rotation.
    ///
    /// # Panics
    ///
    /// Panics if `generations == 0`.
    #[must_use]
    pub fn with_checkpoint_generations(mut self, generations: u32) -> Self {
        assert!(generations > 0, "need at least one checkpoint generation");
        self.checkpoint_generations = generations;
        self
    }

    /// Resumes from a checkpoint previously written by this study
    /// configuration (validated against seed, chunk size, grid,
    /// stopping rule, and model fingerprint when the study runs).
    #[must_use]
    pub fn with_resume(mut self, checkpoint: StudyCheckpoint) -> Self {
        self.resume = Some(checkpoint);
        self
    }

    /// Polls `flag` at every chunk boundary; once raised, workers
    /// drain their in-flight chunks and the study returns early with
    /// [`CurveEstimate::interrupted`] set (after flushing a final
    /// checkpoint when one is configured). Pair with
    /// [`ahs_obs::interrupt_flag`] for SIGINT/SIGTERM handling.
    #[must_use]
    pub fn with_interrupt(mut self, flag: Arc<AtomicBool>) -> Self {
        self.interrupt = Some(flag);
        self
    }

    /// The model under study.
    pub fn model(&self) -> &SanModel {
        &self.model
    }

    /// Confidence level used for stopping and reporting.
    pub fn confidence(&self) -> f64 {
        self.confidence
    }

    /// Master seed of the study.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Replications per work chunk.
    pub fn chunk(&self) -> u64 {
        self.chunk
    }

    /// The stopping rule in force.
    pub fn rule(&self) -> StoppingRule {
        self.rule
    }

    /// Estimates the first-passage probability curve
    /// `t ↦ P(target reached by t)` over `grid`.
    ///
    /// # Errors
    ///
    /// Returns the first [`SimError`] raised by any replication
    /// (non-Markovian model on an SSA backend, event-budget exhaustion,
    /// watchdog violations, invalid rates, SAN-level errors), a
    /// checkpoint failure, or [`SimError::QuarantineOverflow`] when
    /// more replications panic than the quarantine budget allows.
    pub fn first_passage<F>(
        &self,
        target: F,
        grid: &TimeGrid,
        backend: Backend,
    ) -> Result<CurveEstimate, SimError>
    where
        F: Fn(&Marking) -> bool + Send + Sync,
    {
        let horizon = grid.horizon();
        self.run_study(grid, backend, |engine, rng| {
            let outcome = match engine {
                Engine::Event(sim) => sim.run_first_passage(&target, horizon, rng)?,
                Engine::Markov(sim) => sim.run_first_passage(&target, horizon, rng)?,
            };
            let weight = if outcome.hit_time.is_some() {
                outcome.hit_weight
            } else {
                1.0
            };
            Ok(RepOutcome::FirstPassage(outcome.hit_time, weight))
        })
    }

    /// Estimates the transient probability curve `t ↦ P(pred holds at
    /// t)` over `grid` (for conditions that may toggle off again).
    ///
    /// # Errors
    ///
    /// Same failure modes as [`first_passage`](Study::first_passage).
    pub fn transient<F>(
        &self,
        pred: F,
        grid: &TimeGrid,
        backend: Backend,
    ) -> Result<CurveEstimate, SimError>
    where
        F: Fn(&Marking) -> bool + Send + Sync,
    {
        self.run_study(grid, backend, |engine, rng| {
            let obs = match engine {
                Engine::Event(sim) => sim.run_transient(&pred, grid.points(), rng)?,
                Engine::Markov(sim) => sim.run_transient(&pred, grid.points(), rng)?,
            };
            Ok(RepOutcome::Weighted(obs))
        })
    }

    /// The stopping rule as a serializable spec (for manifests and
    /// checkpoints).
    fn stopping_spec(&self) -> StoppingSpec {
        StoppingSpec {
            confidence: self.rule.confidence(),
            relative_half_width: self.rule.relative_half_width(),
            min_samples: self.rule.min_samples(),
            max_samples: self.rule.max_samples(),
        }
    }

    /// Validates that `cp` was taken from this exact study
    /// configuration, so replaying replications `cp.watermark..`
    /// reproduces the uninterrupted run bit for bit.
    fn validate_resume(
        &self,
        cp: &StudyCheckpoint,
        grid: &TimeGrid,
        fingerprint: u64,
    ) -> Result<(), SimError> {
        let reject = |reason: String| Err(SimError::Checkpoint { reason });
        if cp.seed != self.seed {
            return reject(format!(
                "master seed mismatch: checkpoint {}, study {}",
                cp.seed, self.seed
            ));
        }
        if cp.chunk != self.chunk {
            return reject(format!(
                "chunk size mismatch: checkpoint {}, study {} — merge order would differ",
                cp.chunk, self.chunk
            ));
        }
        if cp.model_fingerprint != fingerprint {
            return reject(format!(
                "model fingerprint mismatch: checkpoint {:#018x}, study {:#018x} \
                 (model `{}` changed since the checkpoint was taken)",
                cp.model_fingerprint,
                fingerprint,
                self.model.name()
            ));
        }
        if cp.curve.grid() != grid {
            return reject(format!(
                "time grid mismatch: checkpoint {:?}, study {:?}",
                cp.curve.grid().points(),
                grid.points()
            ));
        }
        let spec = self.stopping_spec();
        if cp.stopping != spec {
            return reject(format!(
                "stopping rule mismatch: checkpoint {:?}, study {:?}",
                cp.stopping, spec
            ));
        }
        if cp.confidence != self.confidence {
            return reject(format!(
                "confidence mismatch: checkpoint {}, study {}",
                cp.confidence, self.confidence
            ));
        }
        let aligned = cp.watermark.is_multiple_of(self.chunk)
            || self.rule.max_samples() == Some(cp.watermark);
        if !aligned {
            return reject(format!(
                "watermark {} is not a chunk boundary (chunk {})",
                cp.watermark, self.chunk
            ));
        }
        if cp.quarantined.len() as u64 > self.quarantine_budget {
            return reject(format!(
                "checkpoint carries {} quarantined replication(s) but the study's \
                 quarantine budget is {}",
                cp.quarantined.len(),
                self.quarantine_budget
            ));
        }
        Ok(())
    }

    fn run_study<W>(
        &self,
        grid: &TimeGrid,
        backend: Backend,
        work: W,
    ) -> Result<CurveEstimate, SimError>
    where
        W: Fn(&Engine<'_>, &mut rand::rngs::SmallRng) -> Result<RepOutcome, SimError> + Send + Sync,
    {
        // Only checkpointing and resume need the fingerprint; skip the
        // structural dump on plain runs.
        let fingerprint = if self.checkpoint.is_some() || self.resume.is_some() {
            model_fingerprint(&self.model)
        } else {
            0
        };
        let mut initial = Curve::new(grid.clone());
        let mut start_watermark = 0_u64;
        let mut lineage: Vec<u64> = Vec::new();
        let mut initial_quarantined: Vec<QuarantinedRep> = Vec::new();
        if let Some(cp) = &self.resume {
            self.validate_resume(cp, grid, fingerprint)?;
            initial = cp.curve.clone();
            start_watermark = cp.watermark;
            lineage = cp.lineage.clone();
            lineage.push(cp.watermark);
            initial_quarantined = cp.quarantined.clone();
        }
        let lineage = lineage; // frozen; shared by checkpoints and the result

        // `global` feeds the stopping checks (merge order immaterial);
        // `ordered` maintains the contiguous replication prefix merged
        // in start order — the deterministic state that checkpoints
        // snapshot and the final estimate is read from.
        let global = Mutex::new(initial.clone());
        let ordered = Mutex::new(OrderedState {
            prefix: initial,
            prefix_end: start_watermark,
            pending: BTreeMap::new(),
            last_flush: start_watermark,
        });
        let quarantined: Mutex<Vec<QuarantinedRep>> = Mutex::new(initial_quarantined);
        let next_rep = AtomicU64::new(start_watermark);
        let done = AtomicBool::new(false);
        let interrupted = AtomicBool::new(false);
        let failure: Mutex<Option<SimError>> = Mutex::new(None);
        let converged = AtomicBool::new(false);
        let ran_chunks = AtomicBool::new(false);

        let fail = |e: SimError| {
            let mut f = failure.lock();
            if f.is_none() {
                *f = Some(e);
            }
            done.store(true, Ordering::SeqCst);
        };

        let make_checkpoint =
            |curve: Curve, watermark: u64, quarantined: Vec<QuarantinedRep>| StudyCheckpoint {
                seed: self.seed,
                chunk: self.chunk,
                watermark,
                model_name: self.model.name().to_owned(),
                model_fingerprint: fingerprint,
                confidence: self.confidence,
                stopping: self.stopping_spec(),
                curve,
                quarantined,
                lineage: lineage.clone(),
            };

        if let Some(p) = &self.progress {
            p.emit(
                "study_started",
                vec![
                    ("model", Json::str(self.model.name())),
                    ("seed", self.seed.into()),
                    ("threads", self.threads.into()),
                    ("chunk", self.chunk.into()),
                    (
                        "resumed_from",
                        self.resume
                            .as_ref()
                            .map_or(Json::Null, |cp| cp.watermark.into()),
                    ),
                ],
            );
        }

        let run_worker = || {
            let worker_clock = Instant::now();
            let mut worker_reps = 0_u64;
            let engine = match &backend {
                Backend::EventDriven => {
                    let mut sim = EventDrivenSimulator::new(&self.model);
                    if let Some(m) = &self.metrics {
                        sim = sim.with_metrics(m.clone());
                    }
                    if let Some(w) = &self.watchdog {
                        sim = sim.with_watchdog(*w);
                    }
                    Engine::Event(sim)
                }
                Backend::Markov => match MarkovSimulator::new(&self.model) {
                    Ok(mut sim) => {
                        if let Some(m) = &self.metrics {
                            sim = sim.with_metrics(m.clone());
                        }
                        if let Some(w) = &self.watchdog {
                            sim = sim.with_watchdog(*w);
                        }
                        Engine::Markov(sim)
                    }
                    Err(e) => {
                        fail(e);
                        return;
                    }
                },
                Backend::BiasedMarkov(bias) => match MarkovSimulator::new(&self.model) {
                    Ok(mut sim) => {
                        sim = sim.with_bias(bias.clone());
                        if let Some(m) = &self.metrics {
                            sim = sim.with_metrics(m.clone());
                        }
                        if let Some(w) = &self.watchdog {
                            sim = sim.with_watchdog(*w);
                        }
                        Engine::Markov(sim)
                    }
                    Err(e) => {
                        fail(e);
                        return;
                    }
                },
            };
            while !done.load(Ordering::SeqCst) {
                // Chaos hook: `raise-interrupt` simulates SIGINT landing
                // at this chunk boundary, `delay` a stalled worker.
                match ahs_inject::eval("des::replication::chunk") {
                    Some(ahs_inject::Fault::RaiseInterrupt) => {
                        if let Some(flag) = &self.interrupt {
                            flag.store(true, Ordering::SeqCst);
                        } else {
                            interrupted.store(true, Ordering::SeqCst);
                            done.store(true, Ordering::SeqCst);
                        }
                    }
                    Some(ahs_inject::Fault::Delay(ms)) => {
                        std::thread::sleep(std::time::Duration::from_millis(ms));
                    }
                    _ => {}
                }
                if let Some(flag) = &self.interrupt {
                    if flag.load(Ordering::Relaxed) {
                        interrupted.store(true, Ordering::SeqCst);
                        done.store(true, Ordering::SeqCst);
                        break;
                    }
                }
                let start = next_rep.fetch_add(self.chunk, Ordering::SeqCst);
                let mut end = start + self.chunk;
                if let Some(max) = self.rule.max_samples() {
                    if start >= max {
                        done.store(true, Ordering::SeqCst);
                        break;
                    }
                    end = end.min(max);
                }
                let mut local = Curve::new(grid.clone());
                let mut chunk_quarantined = 0_u64;
                for rep in start..end {
                    let mut rng = replication_rng(self.seed, rep);
                    // The engine holds configuration plus a parked
                    // scratch buffer (enablement cache, rate/queue
                    // storage) that each `run_*` call takes at entry
                    // and re-parks on exit. Unwinding out of a
                    // replication at worst *loses* the scratch — the
                    // next run transparently allocates a fresh one —
                    // and never leaves stale state behind, because a
                    // taken scratch is re-primed before use anyway.
                    // Recording happens out here, after validation, so
                    // a panic can never leave `local` half-updated
                    // either.
                    let result = catch_unwind(AssertUnwindSafe(|| {
                        // Chaos hook, deliberately *inside* the unwind
                        // boundary: an injected panic exercises the real
                        // quarantine path, an injected error the typed
                        // failure path.
                        match ahs_inject::eval("des::replication::body") {
                            Some(ahs_inject::Fault::Panic(msg)) => {
                                panic!("injected panic in replication body: {msg}")
                            }
                            Some(ahs_inject::Fault::Error(kind)) => {
                                return Err(SimError::Internal {
                                    context: format!("injected fault in replication body: {kind}"),
                                });
                            }
                            Some(ahs_inject::Fault::Delay(ms)) => {
                                std::thread::sleep(std::time::Duration::from_millis(ms));
                            }
                            _ => {}
                        }
                        work(&engine, &mut rng)
                    }));
                    match result {
                        Ok(Ok(outcome)) => {
                            if let Err(e) = record_outcome(&mut local, outcome) {
                                fail(e);
                                return;
                            }
                        }
                        Ok(Err(e)) => {
                            fail(e);
                            return;
                        }
                        Err(payload) => {
                            let message = panic_message(payload.as_ref());
                            chunk_quarantined += 1;
                            if let Some(m) = &self.metrics {
                                m.record_quarantined();
                            }
                            if let Some(p) = &self.progress {
                                p.emit(
                                    "replication_quarantined",
                                    vec![
                                        ("replication", rep.into()),
                                        ("message", Json::str(message.clone())),
                                    ],
                                );
                            }
                            let total = {
                                let mut q = quarantined.lock();
                                q.push(QuarantinedRep {
                                    replication: rep,
                                    message: message.clone(),
                                });
                                q.len() as u64
                            };
                            if total > self.quarantine_budget {
                                fail(SimError::QuarantineOverflow {
                                    quarantined: total,
                                    budget: self.quarantine_budget,
                                    message,
                                });
                                return;
                            }
                        }
                    }
                }
                let completed = (end - start) - chunk_quarantined;
                worker_reps += completed;
                let mut g = global.lock();
                g.merge(&local);
                let merged_total = g.samples();
                let last = grid.len() - 1;
                let stats = *g.estimator(last).product_stats();
                drop(g);
                // Advance the contiguous prefix and decide whether this
                // merge crossed a checkpoint boundary.
                let flush = {
                    let mut ord = ordered.lock();
                    ord.pending.insert(start, (end, local));
                    loop {
                        let front = ord.pending.keys().next().copied();
                        match front {
                            Some(s) if s == ord.prefix_end => {
                                if let Some((e, c)) = ord.pending.remove(&s) {
                                    ord.prefix.merge(&c);
                                    ord.prefix_end = e;
                                }
                            }
                            _ => break,
                        }
                    }
                    match &self.checkpoint {
                        Some(plan)
                            if ord.prefix_end.saturating_sub(ord.last_flush) >= plan.every =>
                        {
                            ord.last_flush = ord.prefix_end;
                            Some((ord.prefix_end, ord.prefix.clone()))
                        }
                        _ => None,
                    }
                };
                if let (Some((watermark, snapshot)), Some(plan)) = (flush, &self.checkpoint) {
                    let quarantined_below: Vec<QuarantinedRep> = quarantined
                        .lock()
                        .iter()
                        .filter(|r| r.replication < watermark)
                        .cloned()
                        .collect();
                    let cp = make_checkpoint(snapshot, watermark, quarantined_below);
                    if let Err(e) = cp.write_rotated(&plan.path, self.checkpoint_generations) {
                        fail(e);
                        return;
                    }
                    if let Some(p) = &self.progress {
                        p.emit(
                            "checkpoint_written",
                            vec![
                                ("watermark", watermark.into()),
                                ("path", Json::str(plan.path.display().to_string())),
                            ],
                        );
                    }
                }
                ran_chunks.store(true, Ordering::SeqCst);
                if let Some(m) = &self.metrics {
                    m.add_replications(completed);
                    m.record_chunk_merge();
                }
                if let Some(p) = &self.progress {
                    p.emit(
                        "chunk_done",
                        vec![
                            ("start", start.into()),
                            ("replications", completed.into()),
                            ("total", merged_total.into()),
                        ],
                    );
                }
                if self.rule.is_satisfied(&stats) {
                    converged.store(self.rule.precision_reached(&stats), Ordering::SeqCst);
                    done.store(true, Ordering::SeqCst);
                }
            }
            if let Some(m) = &self.metrics {
                m.record_worker(worker_reps, worker_clock.elapsed().as_secs_f64());
            }
        };

        if self.threads <= 1 {
            run_worker();
        } else {
            crossbeam::thread::scope(|s| {
                for _ in 0..self.threads {
                    s.spawn(|_| run_worker());
                }
            })
            .expect("simulation worker panicked");
        }

        if let Some(e) = failure.into_inner() {
            return Err(e);
        }
        let OrderedState {
            prefix: curve,
            prefix_end,
            pending,
            ..
        } = ordered.into_inner();
        // Every grabbed chunk completes before its worker exits, so the
        // chunk set is contiguous whenever no failure occurred.
        debug_assert!(pending.is_empty(), "non-contiguous chunks left pending");
        debug_assert_eq!(curve.samples(), global.into_inner().samples());
        let quarantined = quarantined.into_inner();
        let interrupted = interrupted.load(Ordering::SeqCst);
        let replications = curve.samples();
        let last = grid.len() - 1;
        let stats = *curve.estimator(last).product_stats();
        // A fully-resumed study runs no chunks, so the in-loop check
        // never fires; evaluate the rule on the final state instead.
        let converged = if ran_chunks.load(Ordering::SeqCst) {
            converged.load(Ordering::SeqCst)
        } else {
            self.rule.is_satisfied(&stats) && self.rule.precision_reached(&stats)
        };
        if let Some(plan) = &self.checkpoint {
            let cp = make_checkpoint(curve.clone(), prefix_end, quarantined.clone());
            cp.write_rotated(&plan.path, self.checkpoint_generations)?;
            if let Some(p) = &self.progress {
                p.emit(
                    "checkpoint_written",
                    vec![
                        ("watermark", prefix_end.into()),
                        ("path", Json::str(plan.path.display().to_string())),
                        ("final", true.into()),
                    ],
                );
            }
        }
        if let Some(p) = &self.progress {
            p.emit(
                "study_finished",
                vec![
                    ("replications", replications.into()),
                    ("converged", converged.into()),
                    ("interrupted", interrupted.into()),
                    ("quarantined", (quarantined.len() as u64).into()),
                ],
            );
        }
        Ok(CurveEstimate {
            curve,
            replications,
            converged,
            interrupted,
            quarantined,
            resume_lineage: lineage,
        })
    }
}

impl std::fmt::Debug for Study {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Study")
            .field("model", &self.model.name())
            .field("seed", &self.seed)
            .field("threads", &self.threads)
            .finish_non_exhaustive()
    }
}

/// The contiguous-prefix merge state shared by workers: chunks arrive
/// in any order but are folded into `prefix` strictly by start index,
/// so the floating-point merge order — and therefore the bits of every
/// estimate — is a pure function of the chunk set.
struct OrderedState {
    prefix: Curve,
    /// Replications `[0, prefix_end)` are merged into `prefix`.
    prefix_end: u64,
    /// Out-of-order chunks waiting for their predecessors:
    /// `start -> (end, curve)`.
    pending: BTreeMap<u64, (u64, Curve)>,
    /// Watermark of the last checkpoint flush.
    last_flush: u64,
}

/// What one replication contributes, produced inside `catch_unwind`
/// and recorded outside it so a panic can never half-update a curve.
enum RepOutcome {
    /// First-passage time (`None` = censored at the horizon) and its
    /// likelihood weight.
    FirstPassage(Option<f64>, f64),
    /// One `(value, weight)` observation per grid point.
    Weighted(Vec<(f64, f64)>),
}

/// Validates and records one replication outcome. Validation happens
/// before any estimator is touched, so an engine bug (e.g. an
/// overflowed likelihood ratio) surfaces as a typed error instead of a
/// mid-record panic.
fn record_outcome(curve: &mut Curve, outcome: RepOutcome) -> Result<(), SimError> {
    match outcome {
        RepOutcome::FirstPassage(hit_time, weight) => {
            if !(weight.is_finite() && weight >= 0.0) {
                return Err(SimError::Internal {
                    context: format!("replication produced invalid likelihood weight {weight}"),
                });
            }
            curve.record_first_passage(hit_time, weight);
        }
        RepOutcome::Weighted(obs) => {
            if obs.len() != curve.grid().len() {
                return Err(SimError::Internal {
                    context: format!(
                        "replication produced {} observations for {} grid points",
                        obs.len(),
                        curve.grid().len()
                    ),
                });
            }
            if let Some((_, w)) = obs.iter().find(|(_, w)| !(w.is_finite() && *w >= 0.0)) {
                return Err(SimError::Internal {
                    context: format!("replication produced invalid likelihood weight {w}"),
                });
            }
            curve.record_weighted(&obs);
        }
    }
    Ok(())
}

/// Extracts a human-readable message from a panic payload.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

enum Engine<'m> {
    Event(EventDrivenSimulator<'m>),
    Markov(MarkovSimulator<'m>),
}

#[cfg(test)]
mod tests {
    use super::*;
    use ahs_san::{Delay, SanBuilder};

    fn single_failure(rate: f64) -> (ahs_san::SanModel, ahs_san::PlaceId) {
        let mut b = SanBuilder::new("single");
        let up = b.place_with_tokens("up", 1).unwrap();
        let down = b.place("down").unwrap();
        b.timed_activity("fail", Delay::exponential(rate))
            .unwrap()
            .input_place(up)
            .output_place(down)
            .build()
            .unwrap();
        (b.build().unwrap(), down)
    }

    #[test]
    fn fixed_replication_study_matches_closed_form() {
        let (model, down) = single_failure(0.3);
        let study = Study::new(model)
            .with_seed(11)
            .with_fixed_replications(20_000)
            .with_threads(2);
        let grid = TimeGrid::new(vec![1.0, 3.0]);
        let est = study
            .first_passage(move |m| m.is_marked(down), &grid, Backend::Markov)
            .unwrap();
        assert!(est.replications >= 20_000);
        let pts = est.curve.points(0.95);
        let p1 = 1.0 - (-0.3_f64).exp();
        let p3 = 1.0 - (-0.9_f64).exp();
        assert!((pts[0].y - p1).abs() < 0.01, "{} vs {p1}", pts[0].y);
        assert!((pts[1].y - p3).abs() < 0.01, "{} vs {p3}", pts[1].y);
        assert!(!est.interrupted);
        assert!(est.quarantined.is_empty());
        assert!(est.resume_lineage.is_empty());
    }

    #[test]
    fn precision_rule_stops_and_reports_convergence() {
        let (model, down) = single_failure(1.0);
        let study = Study::new(model)
            .with_seed(13)
            .with_rule(
                StoppingRule::relative_precision(0.95, 0.05)
                    .with_min_samples(1_000)
                    .with_max_samples(200_000),
            )
            .with_threads(1)
            .with_chunk(500);
        let grid = TimeGrid::new(vec![1.0]);
        let est = study
            .first_passage(move |m| m.is_marked(down), &grid, Backend::Markov)
            .unwrap();
        assert!(est.converged, "study did not converge");
        let ci = est.curve.interval(0, 0.95);
        assert!(ci.relative_half_width() <= 0.05 * 1.05);
        assert!(est.replications < 200_000);
    }

    #[test]
    fn event_and_markov_backends_agree() {
        let (model, down) = single_failure(0.5);
        let down2 = down;
        let study = Study::new(model)
            .with_seed(17)
            .with_fixed_replications(15_000)
            .with_threads(2);
        let grid = TimeGrid::new(vec![2.0]);
        let a = study
            .first_passage(move |m| m.is_marked(down), &grid, Backend::Markov)
            .unwrap();
        let b = study
            .first_passage(move |m| m.is_marked(down2), &grid, Backend::EventDriven)
            .unwrap();
        let ia = a.curve.interval(0, 0.99);
        let ib = b.curve.interval(0, 0.99);
        assert!(ia.overlaps(&ib), "{ia} vs {ib}");
    }

    #[test]
    fn biased_study_recovers_rare_probability() {
        let (model, down) = single_failure(1e-5);
        let fail = model.find_activity("fail").unwrap();
        let bias = BiasScheme::new().with_multiplier(fail, 1e4);
        let study = Study::new(model)
            .with_seed(19)
            .with_fixed_replications(40_000)
            .with_threads(2);
        let grid = TimeGrid::new(vec![10.0]);
        let est = study
            .first_passage(
                move |m| m.is_marked(down),
                &grid,
                Backend::BiasedMarkov(bias),
            )
            .unwrap();
        let truth = 1.0 - (-1e-4_f64).exp();
        let y = est.curve.points(0.95)[0].y;
        let rel = (y - truth).abs() / truth;
        assert!(rel < 0.1, "IS study estimate {y} vs truth {truth}");
    }

    #[test]
    fn fixed_budget_is_honored_exactly() {
        let (model, down) = single_failure(1.0);
        let study = Study::new(model)
            .with_seed(5)
            .with_fixed_replications(1_234)
            .with_chunk(1_000)
            .with_threads(2);
        let grid = TimeGrid::new(vec![1.0]);
        let est = study
            .first_passage(move |m| m.is_marked(down), &grid, Backend::Markov)
            .unwrap();
        assert_eq!(est.replications, 1_234);
    }

    #[test]
    fn study_is_reproducible() {
        let (model, down) = single_failure(0.4);
        let grid = TimeGrid::new(vec![1.0]);
        let mk = |model: ahs_san::SanModel| {
            Study::new(model)
                .with_seed(99)
                .with_fixed_replications(5_000)
                .with_threads(4)
        };
        let (m2, _) = single_failure(0.4);
        let a = mk(model)
            .first_passage(move |m| m.is_marked(down), &grid, Backend::Markov)
            .unwrap();
        let b = mk(m2)
            .first_passage(move |m| m.is_marked(down), &grid, Backend::Markov)
            .unwrap();
        assert_eq!(a.curve.points(0.95)[0].y, b.curve.points(0.95)[0].y);
    }

    #[test]
    fn transient_study_on_repairable_component() {
        // Failure 1.0, repair 4.0: P(down at t) -> λ/(λ+μ)(1-e^{-(λ+μ)t}).
        let mut b = SanBuilder::new("repairable");
        let up = b.place_with_tokens("up", 1).unwrap();
        let down = b.place("down").unwrap();
        b.timed_activity("fail", Delay::exponential(1.0))
            .unwrap()
            .input_place(up)
            .output_place(down)
            .build()
            .unwrap();
        b.timed_activity("repair", Delay::exponential(4.0))
            .unwrap()
            .input_place(down)
            .output_place(up)
            .build()
            .unwrap();
        let model = b.build().unwrap();
        let study = Study::new(model)
            .with_seed(23)
            .with_fixed_replications(30_000)
            .with_threads(2);
        let grid = TimeGrid::new(vec![0.2, 1.0, 5.0]);
        let est = study
            .transient(move |m| m.is_marked(down), &grid, Backend::Markov)
            .unwrap();
        for (pt, &t) in est.curve.points(0.95).iter().zip(grid.points()) {
            let truth = 0.2 * (1.0 - (-5.0_f64 * t).exp());
            assert!((pt.y - truth).abs() < 0.015, "t={t}: {} vs {truth}", pt.y);
        }
    }

    #[test]
    fn non_markovian_error_propagates_from_workers() {
        let mut b = SanBuilder::new("det");
        let p = b.place_with_tokens("p", 1).unwrap();
        b.timed_activity("d", Delay::Deterministic(1.0))
            .unwrap()
            .input_place(p)
            .build()
            .unwrap();
        let model = b.build().unwrap();
        let study = Study::new(model)
            .with_fixed_replications(10)
            .with_threads(2);
        let grid = TimeGrid::new(vec![1.0]);
        let err = study
            .first_passage(|_| false, &grid, Backend::Markov)
            .unwrap_err();
        assert!(matches!(err, SimError::NonMarkovian { .. }));
    }

    #[test]
    fn pre_raised_interrupt_stops_before_any_replication() {
        let (model, down) = single_failure(1.0);
        let flag = Arc::new(AtomicBool::new(true));
        let study = Study::new(model)
            .with_seed(7)
            .with_fixed_replications(10_000)
            .with_threads(2)
            .with_interrupt(flag);
        let grid = TimeGrid::new(vec![1.0]);
        let est = study
            .first_passage(move |m| m.is_marked(down), &grid, Backend::Markov)
            .unwrap();
        assert!(est.interrupted);
        assert_eq!(est.replications, 0);
        assert!(!est.converged);
    }
}
