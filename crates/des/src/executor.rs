//! Event-queue execution of SANs with arbitrary delay distributions.

use std::cell::Cell;
use std::sync::Arc;

use ahs_obs::Metrics;
use ahs_san::{ActivityId, EnablementCache, Marking, SanModel, Timing};
use rand::Rng;

use crate::error::SimError;
use crate::event::EventQueue;
use crate::observer::Observer;
use crate::ssa::RunOutcome;
use crate::watchdog::Watchdog;

/// Default per-replication event budget.
const DEFAULT_MAX_EVENTS: u64 = 10_000_000;

/// Classical discrete-event executor.
///
/// Maintains a future-event list of sampled activity completion times.
/// After every firing the schedule is *reconciled* with the new marking:
/// newly enabled activities get a freshly sampled completion, disabled
/// activities are cancelled, and activities that stayed enabled keep
/// their scheduled completion (race / enabling-memory policy — exact for
/// exponential delays and the conventional choice for the general case).
///
/// Unlike [`MarkovSimulator`](crate::MarkovSimulator) this backend
/// supports all [`Delay`](ahs_san::Delay) distributions but offers no
/// importance sampling.
pub struct EventDrivenSimulator<'m> {
    model: &'m SanModel,
    max_events: u64,
    // Run-to-run scratch (enablement cache + event queue), parked here
    // between runs so the hot loop allocates nothing. `Cell` keeps the
    // run methods `&self`; a run that panics simply loses its scratch
    // and the next run rebuilds it.
    scratch: Cell<Option<Box<EdScratch>>>,
    // Diagnostics/testing: disable incremental enablement tracking.
    full_rescan: bool,
    metrics: Option<Arc<Metrics>>,
    watchdog: Option<Watchdog>,
}

/// Per-run mutable state of the event loop, reused across runs. Also
/// borrowed by the forced-schedule replay path (`replay.rs`), which
/// drives the cache without the event queue.
pub(crate) struct EdScratch {
    pub(crate) cache: EnablementCache,
    queue: EventQueue,
    /// Copy of the cache's changed-slot list, taken so the cache can be
    /// read (enabledness) while the list is iterated.
    changed: Vec<u32>,
}

/// Per-run tallies accumulated locally and flushed once per
/// replication, so telemetry never adds per-event atomic traffic.
#[derive(Default)]
struct RunTally {
    timed: u64,
    instantaneous: u64,
    cascaded: bool,
    queue_depth_max: usize,
}

impl<'m> EventDrivenSimulator<'m> {
    /// Creates an executor for `model`.
    pub fn new(model: &'m SanModel) -> Self {
        EventDrivenSimulator {
            model,
            max_events: DEFAULT_MAX_EVENTS,
            scratch: Cell::new(None),
            full_rescan: false,
            metrics: None,
            watchdog: None,
        }
    }

    /// Overrides the per-replication event budget.
    #[must_use]
    pub fn with_max_events(mut self, budget: u64) -> Self {
        self.max_events = budget;
        self
    }

    /// Disables (or re-enables) incremental enablement tracking: with
    /// `true`, every firing reconciles every timed activity exactly
    /// like the pre-cache executor. Results are bitwise identical
    /// either way — this is a diagnostics/testing knob, exercised by
    /// the equivalence test tier.
    #[must_use]
    pub fn with_full_rescan(mut self, on: bool) -> Self {
        self.full_rescan = on;
        // Any parked cache was built under the previous mode.
        self.scratch = Cell::new(None);
        self
    }

    /// Retrieves the parked scratch or builds a fresh one (first run,
    /// or the previous run panicked mid-flight).
    pub(crate) fn take_scratch(&self) -> Box<EdScratch> {
        if let Some(s) = self.scratch.take() {
            return s;
        }
        let mut cache = self.model.new_cache();
        if self.full_rescan {
            cache.force_full_rescan();
        }
        Box::new(EdScratch {
            cache,
            queue: EventQueue::new(self.model.timed_activities().len()),
            changed: Vec::new(),
        })
    }

    /// Parks the scratch for the next run.
    pub(crate) fn park_scratch(&self, s: Box<EdScratch>) {
        self.scratch.set(Some(s));
    }

    /// Attaches a telemetry sink; per-run tallies (completions by
    /// kind, cascades, event-queue depth) are flushed into it once per
    /// replication.
    #[must_use]
    pub fn with_metrics(mut self, metrics: Arc<Metrics>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Arms a per-replication watchdog (event-count and wall-clock
    /// budgets); a violation fails the run with [`SimError::Runaway`]
    /// instead of spinning until the much larger event budget.
    #[must_use]
    pub fn with_watchdog(mut self, watchdog: Watchdog) -> Self {
        self.watchdog = Some(watchdog);
        self
    }

    /// The model being simulated.
    pub fn model(&self) -> &SanModel {
        self.model
    }

    fn flush_run(&self, tally: &RunTally) {
        if let Some(m) = &self.metrics {
            m.record_run(tally.timed, tally.instantaneous, tally.cascaded);
            m.record_weight(1.0);
            m.record_queue_depth(tally.queue_depth_max);
        }
    }

    pub(crate) fn sample_delay<R: Rng + ?Sized>(
        &self,
        a: ActivityId,
        marking: &Marking,
        rng: &mut R,
    ) -> f64 {
        match self.model.activity(a).timing() {
            Timing::Timed(d) => d.sample(marking, rng),
            Timing::Instantaneous { .. } => {
                unreachable!("instantaneous activities complete via stabilization")
            }
        }
    }

    /// Brings the event queue in line with the marking at time `now` by
    /// scanning every timed slot. Queue slots are positions in
    /// `model.timed_activities()`. Used for the initial schedule and in
    /// full-rescan mode.
    fn reconcile_full<R: Rng + ?Sized>(
        &self,
        now: f64,
        marking: &Marking,
        cache: &EnablementCache,
        queue: &mut EventQueue,
        rng: &mut R,
    ) {
        for (slot, &a) in self.model.timed_activities().iter().enumerate() {
            let enabled = cache.is_enabled(a);
            let scheduled = queue.is_scheduled(slot);
            if enabled && !scheduled {
                queue.schedule(now + self.sample_delay(a, marking, rng), slot);
            } else if !enabled && scheduled {
                queue.cancel(slot);
            }
        }
    }

    /// Post-firing schedule reconciliation. In incremental mode only
    /// the slots the enablement cache flagged as changed are visited —
    /// in ascending slot order, so newly enabled activities sample
    /// their delays in exactly the order the full scan would, keeping
    /// RNG consumption (and therefore every estimate) bitwise
    /// identical. The fired slot itself must have been flagged by the
    /// caller (it was popped off the queue, which is a schedule change
    /// the marking cannot reveal).
    fn reconcile_step<R: Rng + ?Sized>(
        &self,
        now: f64,
        marking: &Marking,
        scratch: &mut EdScratch,
        rng: &mut R,
    ) {
        if scratch.cache.is_full_rescan() {
            self.reconcile_full(now, marking, &scratch.cache, &mut scratch.queue, rng);
            scratch.cache.clear_changed_timed();
            return;
        }
        scratch.changed.clear();
        scratch
            .changed
            .extend_from_slice(scratch.cache.changed_timed_sorted());
        scratch.cache.clear_changed_timed();
        for &slot in &scratch.changed {
            let slot = slot as usize;
            let a = self.model.timed_activities()[slot];
            let enabled = scratch.cache.is_enabled(a);
            let scheduled = scratch.queue.is_scheduled(slot);
            if enabled && !scheduled {
                scratch
                    .queue
                    .schedule(now + self.sample_delay(a, marking, rng), slot);
            } else if !enabled && scheduled {
                scratch.queue.cancel(slot);
            }
        }
    }

    /// Runs one replication to `horizon` (or until the observer stops
    /// it), reporting every event. Returns the end time.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EventBudgetExceeded`] or a wrapped
    /// [`SanError`](ahs_san::SanError) from stabilization or case
    /// selection.
    pub fn run<R, O>(&self, horizon: f64, rng: &mut R, observer: &mut O) -> Result<f64, SimError>
    where
        R: Rng + ?Sized,
        O: Observer + ?Sized,
    {
        let (end, tally) = self.run_tallied(horizon, rng, observer)?;
        self.flush_run(&tally);
        Ok(end)
    }

    /// [`run`](EventDrivenSimulator::run) body returning the run's
    /// tallies; callers flush them to the sink exactly once.
    fn run_tallied<R, O>(
        &self,
        horizon: f64,
        rng: &mut R,
        observer: &mut O,
    ) -> Result<(f64, RunTally), SimError>
    where
        R: Rng + ?Sized,
        O: Observer + ?Sized,
    {
        let mut scratch = self.take_scratch();
        let result = self.run_tallied_inner(horizon, rng, observer, &mut scratch);
        self.scratch.set(Some(scratch));
        result
    }

    fn run_tallied_inner<R, O>(
        &self,
        horizon: f64,
        rng: &mut R,
        observer: &mut O,
        scratch: &mut EdScratch,
    ) -> Result<(f64, RunTally), SimError>
    where
        R: Rng + ?Sized,
        O: Observer + ?Sized,
    {
        let mut tally = RunTally::default();
        let mut marking = self.model.initial_marking().clone();
        self.model.prime_cache(&mut scratch.cache, &marking);
        let fired = self
            .model
            .stabilize_cached(&mut marking, rng, &mut scratch.cache)?;
        tally.instantaneous += fired as u64;
        tally.cascaded |= fired >= 2;
        observer.on_start(&marking);
        for &a in scratch.cache.fired() {
            observer.on_event(0.0, a, &marking);
        }

        scratch.queue.clear();
        self.reconcile_full(0.0, &marking, &scratch.cache, &mut scratch.queue, rng);
        scratch.cache.clear_changed_timed();
        tally.queue_depth_max = scratch.queue.live();
        let mut events = 0_u64;
        let mut t = 0.0_f64;
        let watchdog = self.watchdog.map(|w| w.start());

        loop {
            if observer.should_stop(t, &marking) {
                observer.on_end(t, &marking);
                return Ok((t, tally));
            }
            let Some(ev) = scratch.queue.pop() else {
                observer.on_end(horizon, &marking);
                return Ok((horizon, tally));
            };
            if ev.time > horizon {
                observer.on_end(horizon, &marking);
                return Ok((horizon, tally));
            }
            t = ev.time;
            let a = self.model.timed_activities()[ev.activity];
            // The popped slot is no longer scheduled, which the marking
            // alone cannot reveal — flag it for reconciliation.
            scratch.cache.note_timed_changed(ev.activity);
            let case = self
                .model
                .select_case_cached(a, &marking, rng, &mut scratch.cache)?;
            self.model
                .fire_cached(a, case, &mut marking, &mut scratch.cache);
            observer.on_event(t, a, &marking);
            let fired = self
                .model
                .stabilize_cached(&mut marking, rng, &mut scratch.cache)?;
            tally.instantaneous += fired as u64;
            tally.cascaded |= fired >= 2;
            for &ia in scratch.cache.fired() {
                observer.on_event(t, ia, &marking);
            }
            self.reconcile_step(t, &marking, scratch, rng);
            tally.queue_depth_max = tally.queue_depth_max.max(scratch.queue.live());
            events += 1;
            crate::watchdog::sim_step_failpoint();
            tally.timed = events;
            if events > self.max_events {
                return Err(SimError::EventBudgetExceeded {
                    budget: self.max_events,
                });
            }
            if let Some(wd) = &watchdog {
                wd.check(events)?;
            }
        }
    }

    /// Runs one replication until `target` first holds or `horizon` is
    /// reached; weights in the outcome are always `1.0` (no importance
    /// sampling on this backend).
    ///
    /// # Errors
    ///
    /// Same failure modes as [`run`](EventDrivenSimulator::run).
    pub fn run_first_passage<R, F>(
        &self,
        target: F,
        horizon: f64,
        rng: &mut R,
    ) -> Result<RunOutcome, SimError>
    where
        R: Rng + ?Sized,
        F: Fn(&Marking) -> bool,
    {
        struct Fp<F> {
            target: F,
            hit: Option<f64>,
        }
        impl<F: Fn(&Marking) -> bool> Observer for Fp<F> {
            fn on_start(&mut self, marking: &Marking) {
                if (self.target)(marking) {
                    self.hit = Some(0.0);
                }
            }
            fn on_event(&mut self, time: f64, _a: ActivityId, marking: &Marking) {
                if self.hit.is_none() && (self.target)(marking) {
                    self.hit = Some(time);
                }
            }
            fn should_stop(&mut self, _time: f64, _marking: &Marking) -> bool {
                self.hit.is_some()
            }
        }
        let mut fp = Fp { target, hit: None };
        let (end, tally) = self.run_tallied(horizon, rng, &mut fp)?;
        self.flush_run(&tally);
        Ok(RunOutcome {
            hit_time: fp.hit,
            hit_weight: if fp.hit.is_some() { 1.0 } else { 0.0 },
            end_time: end,
            final_weight: 1.0,
            events: tally.timed,
        })
    }

    /// Runs one replication observing `pred` at each grid instant;
    /// weights are always `1.0`. The grid must be strictly increasing.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`run`](EventDrivenSimulator::run).
    pub fn run_transient<R, F>(
        &self,
        pred: F,
        grid: &[f64],
        rng: &mut R,
    ) -> Result<Vec<(f64, f64)>, SimError>
    where
        R: Rng + ?Sized,
        F: Fn(&Marking) -> bool,
    {
        let mut scratch = self.take_scratch();
        let result = self.transient_inner(pred, grid, rng, &mut scratch);
        self.scratch.set(Some(scratch));
        result
    }

    fn transient_inner<R, F>(
        &self,
        pred: F,
        grid: &[f64],
        rng: &mut R,
        scratch: &mut EdScratch,
    ) -> Result<Vec<(f64, f64)>, SimError>
    where
        R: Rng + ?Sized,
        F: Fn(&Marking) -> bool,
    {
        let Some(&horizon) = grid.last() else {
            return Err(SimError::Internal {
                context: "run_transient called with an empty grid".to_owned(),
            });
        };
        let mut out = Vec::with_capacity(grid.len());
        let mut next = 0_usize;

        let mut tally = RunTally::default();
        let mut marking = self.model.initial_marking().clone();
        self.model.prime_cache(&mut scratch.cache, &marking);
        let fired = self
            .model
            .stabilize_cached(&mut marking, rng, &mut scratch.cache)?;
        tally.instantaneous += fired as u64;
        tally.cascaded |= fired >= 2;
        scratch.queue.clear();
        self.reconcile_full(0.0, &marking, &scratch.cache, &mut scratch.queue, rng);
        scratch.cache.clear_changed_timed();
        tally.queue_depth_max = scratch.queue.live();
        let mut events = 0_u64;
        let watchdog = self.watchdog.map(|w| w.start());

        while next < grid.len() {
            let t_next = scratch.queue.peek_time().unwrap_or(f64::INFINITY);
            // Grid instants strictly before the next event see the
            // current marking; an instant tied with an event is also
            // observed pre-fire (right-continuous convention).
            while next < grid.len() && grid[next] <= t_next.min(horizon) {
                out.push((f64::from(u8::from(pred(&marking))), 1.0));
                next += 1;
            }
            if next >= grid.len() || t_next > horizon {
                break;
            }
            let Some(ev) = scratch.queue.pop() else {
                return Err(SimError::Internal {
                    context: "peeked event vanished from the queue".to_owned(),
                });
            };
            let a = self.model.timed_activities()[ev.activity];
            scratch.cache.note_timed_changed(ev.activity);
            let case = self
                .model
                .select_case_cached(a, &marking, rng, &mut scratch.cache)?;
            self.model
                .fire_cached(a, case, &mut marking, &mut scratch.cache);
            let fired = self
                .model
                .stabilize_cached(&mut marking, rng, &mut scratch.cache)?;
            tally.instantaneous += fired as u64;
            tally.cascaded |= fired >= 2;
            self.reconcile_step(ev.time, &marking, scratch, rng);
            tally.queue_depth_max = tally.queue_depth_max.max(scratch.queue.live());
            events += 1;
            crate::watchdog::sim_step_failpoint();
            tally.timed = events;
            if events > self.max_events {
                return Err(SimError::EventBudgetExceeded {
                    budget: self.max_events,
                });
            }
            if let Some(wd) = &watchdog {
                wd.check(events)?;
            }
        }
        // Deadlock before the horizon: remaining instants see the final
        // marking.
        while next < grid.len() {
            out.push((f64::from(u8::from(pred(&marking))), 1.0));
            next += 1;
        }
        debug_assert_eq!(out.len(), grid.len());
        self.flush_run(&tally);
        Ok(out)
    }
}

impl std::fmt::Debug for EventDrivenSimulator<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventDrivenSimulator")
            .field("model", &self.model.name())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::TraceObserver;
    use ahs_san::{Delay, SanBuilder};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn single_failure(rate: f64) -> (ahs_san::SanModel, ahs_san::PlaceId) {
        let mut b = SanBuilder::new("single");
        let up = b.place_with_tokens("up", 1).unwrap();
        let down = b.place("down").unwrap();
        b.timed_activity("fail", Delay::exponential(rate))
            .unwrap()
            .input_place(up)
            .output_place(down)
            .build()
            .unwrap();
        (b.build().unwrap(), down)
    }

    #[test]
    fn first_passage_matches_closed_form() {
        let (model, down) = single_failure(0.5);
        let sim = EventDrivenSimulator::new(&model);
        let mut rng = SmallRng::seed_from_u64(1);
        let n = 20_000;
        let hits = (0..n)
            .filter(|_| {
                sim.run_first_passage(|m| m.is_marked(down), 2.0, &mut rng)
                    .unwrap()
                    .hit_time
                    .is_some()
            })
            .count();
        let p_hat = hits as f64 / f64::from(n);
        let p = 1.0 - (-1.0_f64).exp();
        assert!((p_hat - p).abs() < 0.01, "estimate {p_hat}, truth {p}");
    }

    #[test]
    fn deterministic_delays_fire_exactly_on_time() {
        let mut b = SanBuilder::new("clock");
        let p = b.place_with_tokens("p", 1).unwrap();
        let q = b.place("q").unwrap();
        let r = b.place("r").unwrap();
        b.timed_activity("first", Delay::Deterministic(1.0))
            .unwrap()
            .input_place(p)
            .output_place(q)
            .build()
            .unwrap();
        b.timed_activity("second", Delay::Deterministic(2.5))
            .unwrap()
            .input_place(q)
            .output_place(r)
            .build()
            .unwrap();
        let model = b.build().unwrap();
        let sim = EventDrivenSimulator::new(&model);
        let mut trace = TraceObserver::new(&model);
        let mut rng = SmallRng::seed_from_u64(0);
        sim.run(10.0, &mut rng, &mut trace).unwrap();
        assert_eq!(trace.events().len(), 2);
        assert!((trace.events()[0].0 - 1.0).abs() < 1e-12);
        assert_eq!(trace.events()[0].1, "first");
        assert!((trace.events()[1].0 - 3.5).abs() < 1e-12);
        assert_eq!(trace.events()[1].1, "second");
    }

    #[test]
    fn transient_matches_closed_form() {
        let (model, down) = single_failure(1.0);
        let sim = EventDrivenSimulator::new(&model);
        let mut rng = SmallRng::seed_from_u64(2);
        let grid = [0.5, 1.0, 2.0];
        let mut sums = [0.0_f64; 3];
        let n = 20_000;
        for _ in 0..n {
            let obs = sim
                .run_transient(|m| m.is_marked(down), &grid, &mut rng)
                .unwrap();
            for (i, (v, _)) in obs.iter().enumerate() {
                sums[i] += v;
            }
        }
        for (i, &g) in grid.iter().enumerate() {
            let p_hat = sums[i] / f64::from(n);
            let p = 1.0 - (-g).exp();
            assert!((p_hat - p).abs() < 0.02, "t={g}: {p_hat} vs {p}");
        }
    }

    #[test]
    fn disabled_activity_is_cancelled() {
        // Two activities compete for one token; whichever fires disables
        // the other. With rates 1000 vs 0.001 the fast one wins
        // essentially always; more importantly the run must terminate
        // without the slow activity ever firing on a consumed token.
        let mut b = SanBuilder::new("race");
        let p = b.place_with_tokens("p", 1).unwrap();
        let fast = b.place("fast").unwrap();
        let slow = b.place("slow").unwrap();
        b.timed_activity("f", Delay::exponential(1000.0))
            .unwrap()
            .input_place(p)
            .output_place(fast)
            .build()
            .unwrap();
        b.timed_activity("s", Delay::exponential(0.001))
            .unwrap()
            .input_place(p)
            .output_place(slow)
            .build()
            .unwrap();
        let model = b.build().unwrap();
        let sim = EventDrivenSimulator::new(&model);
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..200 {
            let mut trace = TraceObserver::new(&model);
            sim.run(1e6, &mut rng, &mut trace).unwrap();
            assert_eq!(trace.events().len(), 1, "exactly one of the racers fires");
        }
    }

    #[test]
    fn event_budget_enforced() {
        let mut b = SanBuilder::new("pingpong");
        let p = b.place_with_tokens("p", 1).unwrap();
        let q = b.place("q").unwrap();
        b.timed_activity("pq", Delay::Deterministic(0.5))
            .unwrap()
            .input_place(p)
            .output_place(q)
            .build()
            .unwrap();
        b.timed_activity("qp", Delay::Deterministic(0.5))
            .unwrap()
            .input_place(q)
            .output_place(p)
            .build()
            .unwrap();
        let model = b.build().unwrap();
        let sim = EventDrivenSimulator::new(&model).with_max_events(50);
        let mut rng = SmallRng::seed_from_u64(4);
        assert!(matches!(
            sim.run(1e9, &mut rng, &mut crate::NullObserver),
            Err(SimError::EventBudgetExceeded { budget: 50 })
        ));
    }

    #[test]
    fn watchdog_trips_on_instantaneous_cycle() {
        // A zero-delay ping-pong lints clean structurally but cycles
        // without advancing the clock; the watchdog catches it far
        // below the 10M default event budget.
        let mut b = SanBuilder::new("zeno");
        let p = b.place_with_tokens("p", 1).unwrap();
        let q = b.place("q").unwrap();
        b.timed_activity("pq", Delay::Deterministic(0.0))
            .unwrap()
            .input_place(p)
            .output_place(q)
            .build()
            .unwrap();
        b.timed_activity("qp", Delay::Deterministic(0.0))
            .unwrap()
            .input_place(q)
            .output_place(p)
            .build()
            .unwrap();
        let model = b.build().unwrap();
        let sim =
            EventDrivenSimulator::new(&model).with_watchdog(Watchdog::new().with_max_events(100));
        let mut rng = SmallRng::seed_from_u64(11);
        assert!(matches!(
            sim.run(1.0, &mut rng, &mut crate::NullObserver),
            Err(SimError::Runaway { events: 101, .. })
        ));
    }

    #[test]
    fn erlang_delay_matches_closed_form() {
        // A single Erlang(2, 2.0) activity: P(done by t) is the
        // Erlang CDF 1 - e^{-2t}(1 + 2t).
        let mut b = SanBuilder::new("erlang");
        let p = b.place_with_tokens("p", 1).unwrap();
        let q = b.place("q").unwrap();
        b.timed_activity("step", Delay::Erlang { k: 2, rate: 2.0 })
            .unwrap()
            .input_place(p)
            .output_place(q)
            .build()
            .unwrap();
        let model = b.build().unwrap();
        let sim = EventDrivenSimulator::new(&model);
        let mut rng = SmallRng::seed_from_u64(9);
        let t = 1.0;
        let n = 20_000;
        let hits = (0..n)
            .filter(|_| {
                sim.run_first_passage(|m| m.is_marked(q), t, &mut rng)
                    .unwrap()
                    .hit_time
                    .is_some()
            })
            .count();
        let p_hat = hits as f64 / f64::from(n);
        let exact = 1.0 - (-2.0_f64).exp() * (1.0 + 2.0);
        assert!((p_hat - exact).abs() < 0.012, "{p_hat} vs {exact}");
    }

    #[test]
    fn weibull_reduces_to_exponential_at_shape_one() {
        let mut b = SanBuilder::new("weibull");
        let p = b.place_with_tokens("p", 1).unwrap();
        let q = b.place("q").unwrap();
        b.timed_activity(
            "step",
            Delay::Weibull {
                shape: 1.0,
                scale: 0.5,
            },
        )
        .unwrap()
        .input_place(p)
        .output_place(q)
        .build()
        .unwrap();
        let model = b.build().unwrap();
        let sim = EventDrivenSimulator::new(&model);
        let mut rng = SmallRng::seed_from_u64(10);
        let n = 20_000;
        let hits = (0..n)
            .filter(|_| {
                sim.run_first_passage(|m| m.is_marked(q), 1.0, &mut rng)
                    .unwrap()
                    .hit_time
                    .is_some()
            })
            .count();
        // Scale 0.5 at shape 1 is an exponential with rate 2.
        let exact = 1.0 - (-2.0_f64).exp();
        let p_hat = hits as f64 / f64::from(n);
        assert!((p_hat - exact).abs() < 0.012, "{p_hat} vs {exact}");
    }

    #[test]
    fn agrees_with_markov_backend_on_exponential_model() {
        use crate::ssa::MarkovSimulator;
        let (model, down) = single_failure(0.7);
        let ed = EventDrivenSimulator::new(&model);
        let mk = MarkovSimulator::new(&model).unwrap();
        let mut rng1 = SmallRng::seed_from_u64(5);
        let mut rng2 = SmallRng::seed_from_u64(6);
        let n = 20_000;
        let hits_ed = (0..n)
            .filter(|_| {
                ed.run_first_passage(|m| m.is_marked(down), 1.0, &mut rng1)
                    .unwrap()
                    .hit_time
                    .is_some()
            })
            .count() as f64
            / f64::from(n);
        let hits_mk = (0..n)
            .filter(|_| {
                mk.run_first_passage(|m| m.is_marked(down), 1.0, &mut rng2)
                    .unwrap()
                    .hit_time
                    .is_some()
            })
            .count() as f64
            / f64::from(n);
        assert!(
            (hits_ed - hits_mk).abs() < 0.015,
            "backends disagree: {hits_ed} vs {hits_mk}"
        );
    }
}
