//! Forced-schedule replay: deterministic re-execution of an explicit
//! firing trace through the event-driven executor.
//!
//! The model checker (`ahs-check`) proves properties over the marking
//! graph and, on a violation, emits a counterexample as an ordered list
//! of `(activity, case)` firings. This module is the dynamic half of
//! that story: [`EventDrivenSimulator::run_forced_schedule`] replays
//! such a trace step by step — validating at every step that the firing
//! is genuinely possible under the executor's own enabling semantics
//! (shared [`EnablementCache`](ahs_san::EnablementCache) state, same
//! stabilization discipline) — and returns the marking the trace ends
//! in. A static finding that replays cleanly is confirmed dynamically;
//! a trace that diverges is reported with the exact step and reason.
//!
//! Timed steps advance the clock by a delay sampled from a seeded RNG
//! (the *seeded* forced schedule): the path through state space is
//! forced, the timestamps are a plausible sample, and the whole run is
//! reproducible from the seed.

use ahs_san::{ActivityId, Marking, Timing};

use crate::error::SimError;
use crate::executor::{EdScratch, EventDrivenSimulator};
use crate::rng::replication_rng;

/// One forced firing: an activity and the case branch to take.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayStep {
    /// The activity to fire.
    pub activity: ActivityId,
    /// Index of the case branch to take (0 for single-case activities).
    pub case: usize,
}

/// The result of a successful forced-schedule replay.
#[derive(Debug, Clone)]
pub struct ReplayOutcome {
    /// The marking after the final step.
    pub final_marking: Marking,
    /// Simulated clock after the final step (sum of sampled delays of
    /// the timed steps).
    pub end_time: f64,
    /// Number of timed firings taken.
    pub timed_firings: u64,
    /// Number of instantaneous firings taken.
    pub instantaneous_firings: u64,
    /// The marking after each step, in order (`trail.len() ==
    /// schedule.len()`); the initial marking is not included.
    pub trail: Vec<Marking>,
}

impl EventDrivenSimulator<'_> {
    /// Replays an explicit firing schedule from the initial marking,
    /// validating each step against the executor's enabling semantics:
    /// a timed step requires a stable marking and the activity enabled
    /// (per the shared enablement cache); an instantaneous step
    /// requires the activity among the *top-priority* enabled
    /// instantaneous activities; the chosen case must exist and have
    /// non-zero probability in the current marking.
    ///
    /// No stabilization happens implicitly — instantaneous firings are
    /// explicit steps of the schedule, exactly as the model checker's
    /// micro-step marking graph records them.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Replay`] at the first step that cannot be
    /// taken, identifying the step index, activity, and reason.
    pub fn run_forced_schedule(
        &self,
        schedule: &[ReplayStep],
        seed: u64,
    ) -> Result<ReplayOutcome, SimError> {
        let mut scratch = self.take_scratch();
        let result = self.forced_inner(schedule, seed, &mut scratch);
        self.park_scratch(scratch);
        result
    }

    fn forced_inner(
        &self,
        schedule: &[ReplayStep],
        seed: u64,
        scratch: &mut EdScratch,
    ) -> Result<ReplayOutcome, SimError> {
        let model = self.model();
        let mut rng = replication_rng(seed, 0);
        let mut marking = model.initial_marking().clone();
        model.prime_cache(&mut scratch.cache, &marking);

        let mut t = 0.0_f64;
        let mut timed = 0_u64;
        let mut instantaneous = 0_u64;
        let mut trail = Vec::with_capacity(schedule.len());

        for (i, step) in schedule.iter().enumerate() {
            let act = model.activity(step.activity);
            let fail = |reason: String| SimError::Replay {
                step: i,
                activity: act.name().to_owned(),
                reason,
            };

            match act.timing() {
                Timing::Timed(_) => {
                    if !model.is_stable(&marking) {
                        return Err(fail(
                            "timed firing from an unstable marking (instantaneous \
                             activities are enabled and must fire first)"
                                .to_owned(),
                        ));
                    }
                    if !scratch.cache.is_enabled(step.activity) {
                        return Err(fail("activity is not enabled".to_owned()));
                    }
                }
                Timing::Instantaneous { .. } => {
                    if !model
                        .enabled_instantaneous(&marking)
                        .contains(&step.activity)
                    {
                        return Err(fail(
                            "activity is not among the top-priority enabled \
                             instantaneous activities"
                                .to_owned(),
                        ));
                    }
                }
            }

            let cases = act.cases();
            if step.case >= cases.len() {
                return Err(fail(format!(
                    "case index {} out of range (activity has {} case(s))",
                    step.case,
                    cases.len()
                )));
            }
            let p = cases[step.case].probability(&marking);
            if !(p.is_finite() && p > 0.0) {
                return Err(fail(format!(
                    "case {} has probability {p} in this marking and cannot be taken",
                    step.case
                )));
            }

            if matches!(act.timing(), Timing::Timed(_)) {
                t += self.sample_delay(step.activity, &marking, &mut rng);
                timed += 1;
            } else {
                instantaneous += 1;
            }
            model.fire_cached(step.activity, step.case, &mut marking, &mut scratch.cache);
            trail.push(marking.clone());
        }

        Ok(ReplayOutcome {
            final_marking: marking,
            end_time: t,
            timed_firings: timed,
            instantaneous_firings: instantaneous,
            trail,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ahs_san::{Delay, SanBuilder, SanModel};

    /// p0 --t--> p1 --i--> p2, one token.
    fn chain() -> (SanModel, [ahs_san::PlaceId; 3]) {
        let mut b = SanBuilder::new("chain");
        let p0 = b.place_with_tokens("p0", 1).unwrap();
        let p1 = b.place("p1").unwrap();
        let p2 = b.place("p2").unwrap();
        b.timed_activity("t", Delay::exponential(1.0))
            .unwrap()
            .input_place(p0)
            .output_place(p1)
            .build()
            .unwrap();
        b.instant_activity("i", 0, 1.0)
            .unwrap()
            .input_place(p1)
            .output_place(p2)
            .build()
            .unwrap();
        (b.build().unwrap(), [p0, p1, p2])
    }

    fn activity_id(model: &SanModel, name: &str) -> ActivityId {
        model.find_activity(name).expect("activity exists")
    }

    #[test]
    fn replays_a_valid_trace_to_its_final_marking() {
        let (model, [p0, p1, p2]) = chain();
        let sim = EventDrivenSimulator::new(&model);
        let schedule = [
            ReplayStep {
                activity: activity_id(&model, "t"),
                case: 0,
            },
            ReplayStep {
                activity: activity_id(&model, "i"),
                case: 0,
            },
        ];
        let out = sim.run_forced_schedule(&schedule, 7).unwrap();
        assert!(!out.final_marking.is_marked(p0));
        assert!(!out.final_marking.is_marked(p1));
        assert!(out.final_marking.is_marked(p2));
        assert_eq!(out.timed_firings, 1);
        assert_eq!(out.instantaneous_firings, 1);
        assert!(out.end_time > 0.0);
        assert_eq!(out.trail.len(), 2);
        assert!(out.trail[0].is_marked(p1), "intermediate unstable marking");
    }

    #[test]
    fn same_seed_reproduces_the_clock() {
        let (model, _) = chain();
        let sim = EventDrivenSimulator::new(&model);
        let schedule = [ReplayStep {
            activity: activity_id(&model, "t"),
            case: 0,
        }];
        let a = sim.run_forced_schedule(&schedule, 42).unwrap();
        let b = sim.run_forced_schedule(&schedule, 42).unwrap();
        let c = sim.run_forced_schedule(&schedule, 43).unwrap();
        assert_eq!(a.end_time, b.end_time);
        assert_ne!(a.end_time, c.end_time);
    }

    #[test]
    fn rejects_a_disabled_instantaneous_step() {
        let (model, _) = chain();
        let sim = EventDrivenSimulator::new(&model);
        let schedule = [ReplayStep {
            activity: activity_id(&model, "i"),
            case: 0,
        }];
        let err = sim.run_forced_schedule(&schedule, 0).unwrap_err();
        match err {
            SimError::Replay { step, activity, .. } => {
                assert_eq!(step, 0);
                assert_eq!(activity, "i");
            }
            other => panic!("expected Replay error, got {other:?}"),
        }
    }

    #[test]
    fn rejects_a_timed_step_from_an_unstable_marking() {
        // Two tokens in p0: after the first `t` the marking is unstable
        // (p1 marked, `i` enabled); a second timed step must be refused.
        let mut b = SanBuilder::new("chain2");
        let p0 = b.place_with_tokens("p0", 2).unwrap();
        let p1 = b.place("p1").unwrap();
        let p2 = b.place("p2").unwrap();
        b.timed_activity("t", Delay::exponential(1.0))
            .unwrap()
            .input_place(p0)
            .output_place(p1)
            .build()
            .unwrap();
        b.instant_activity("i", 0, 1.0)
            .unwrap()
            .input_place(p1)
            .output_place(p2)
            .build()
            .unwrap();
        let model = b.build().unwrap();
        let sim = EventDrivenSimulator::new(&model);
        let t = activity_id(&model, "t");
        let schedule = [
            ReplayStep {
                activity: t,
                case: 0,
            },
            ReplayStep {
                activity: t,
                case: 0,
            },
        ];
        let err = sim.run_forced_schedule(&schedule, 0).unwrap_err();
        match err {
            SimError::Replay { step, reason, .. } => {
                assert_eq!(step, 1);
                assert!(reason.contains("unstable"), "{reason}");
            }
            other => panic!("expected Replay error, got {other:?}"),
        }
    }

    #[test]
    fn rejects_an_out_of_range_case() {
        let (model, _) = chain();
        let sim = EventDrivenSimulator::new(&model);
        let schedule = [ReplayStep {
            activity: activity_id(&model, "t"),
            case: 5,
        }];
        let err = sim.run_forced_schedule(&schedule, 0).unwrap_err();
        match err {
            SimError::Replay { reason, .. } => {
                assert!(reason.contains("out of range"), "{reason}");
            }
            other => panic!("expected Replay error, got {other:?}"),
        }
    }

    #[test]
    fn empty_schedule_ends_at_the_initial_marking() {
        let (model, [p0, ..]) = chain();
        let sim = EventDrivenSimulator::new(&model);
        let out = sim.run_forced_schedule(&[], 0).unwrap();
        assert!(out.final_marking.is_marked(p0));
        assert_eq!(out.end_time, 0.0);
        assert!(out.trail.is_empty());
    }
}
