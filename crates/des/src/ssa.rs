//! Gillespie/SSA execution of Markovian SANs with exact
//! likelihood-ratio importance sampling.

use std::cell::Cell;
use std::sync::Arc;

use ahs_obs::Metrics;
use ahs_san::{ActivityId, Delay, EnablementCache, Marking, RateFn, SanModel, Timing};
use rand::Rng;

use crate::bias::BiasScheme;
use crate::error::SimError;
use crate::observer::Observer;
use crate::watchdog::Watchdog;

/// Default per-replication event budget.
const DEFAULT_MAX_EVENTS: u64 = 10_000_000;

/// Outcome of one first-passage replication.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunOutcome {
    /// First time the target predicate held, if within the horizon.
    pub hit_time: Option<f64>,
    /// Likelihood ratio accumulated up to the hit (exactly `1.0` for an
    /// unbiased run). Meaningless when `hit_time` is `None`.
    pub hit_weight: f64,
    /// Time at which the run ended (hit time, or the horizon).
    pub end_time: f64,
    /// Likelihood ratio at the end of the run (diagnostics; its mean
    /// over replications is 1 for a proper change of measure).
    pub final_weight: f64,
    /// Number of activity completions executed (timed only).
    pub events: u64,
}

/// Stochastic-simulation-algorithm executor for all-exponential models.
///
/// At each stable marking the executor computes the enabled timed
/// activities and their exponential rates, samples the sojourn from the
/// total rate and the winner proportionally to rate — the embedded-chain
/// view of the CTMC semantics of a Markovian SAN. Instantaneous
/// activities complete through [`SanModel::stabilize`] without advancing
/// time.
///
/// With a [`BiasScheme`], sampling uses multiplied rates and the
/// executor tracks the exact path likelihood ratio
/// `dP/dQ = Π (rᵢ/r'ᵢ) · exp(-(R-R')τ)` per step (plus the survival
/// factor of the final, event-free interval), yielding unbiased
/// importance-sampling estimates.
pub struct MarkovSimulator<'m> {
    model: &'m SanModel,
    bias: Option<BiasScheme>,
    max_events: u64,
    // The model's timed activity list, cached to iterate without an
    // indirection; all per-slot tables below are index-aligned with it.
    timed: Vec<ActivityId>,
    // Constant exponential rate per timed slot, or `None` for
    // marking-dependent rates (re-evaluated each sweep).
    const_rates: Vec<Option<f64>>,
    // Bias multiplier per timed slot, or `None` when unbiased.
    bias_mult: Vec<Option<f64>>,
    // Run-to-run scratch (enablement cache + rate table), parked here
    // between runs so the hot loop allocates nothing. `Cell` keeps the
    // run methods `&self`; a run that panics simply loses its scratch
    // and the next run rebuilds it.
    scratch: Cell<Option<Box<SsaScratch>>>,
    // Diagnostics/testing: disable incremental enablement tracking.
    full_rescan: bool,
    metrics: Option<Arc<Metrics>>,
    watchdog: Option<Watchdog>,
}

/// Per-run mutable state of the SSA hot loop, reused across runs.
struct SsaScratch {
    cache: EnablementCache,
    rates: Vec<(ActivityId, f64, f64)>,
}

impl<'m> MarkovSimulator<'m> {
    /// Creates an executor for `model`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NonMarkovian`] if any timed activity has a
    /// non-exponential delay.
    pub fn new(model: &'m SanModel) -> Result<Self, SimError> {
        for &a in model.timed_activities() {
            if model.exponential_rate(a, model.initial_marking()).is_none() {
                // Distinguish "not exponential" from marking-dependent
                // rates (which evaluate fine on any marking).
                if !matches!(
                    model.activity(a).timing(),
                    ahs_san::Timing::Timed(d) if d.is_exponential()
                ) {
                    return Err(SimError::NonMarkovian {
                        activity: model.activity(a).name().to_owned(),
                    });
                }
            }
        }
        let const_rates = model
            .timed_activities()
            .iter()
            .map(|&a| match model.activity(a).timing() {
                Timing::Timed(Delay::Exponential(RateFn::Const(r))) => Some(*r),
                _ => None,
            })
            .collect();
        Ok(MarkovSimulator {
            model,
            bias: None,
            max_events: DEFAULT_MAX_EVENTS,
            timed: model.timed_activities().to_vec(),
            const_rates,
            bias_mult: vec![None; model.timed_activities().len()],
            scratch: Cell::new(None),
            full_rescan: false,
            metrics: None,
            watchdog: None,
        })
    }

    /// Attaches an importance-sampling scheme.
    #[must_use]
    pub fn with_bias(mut self, bias: BiasScheme) -> Self {
        self.bias = if bias.is_identity() { None } else { Some(bias) };
        self.bias_mult = match &self.bias {
            Some(b) => self
                .timed
                .iter()
                .map(|&a| b.is_registered(a).then(|| b.multiplier(a)))
                .collect(),
            None => vec![None; self.timed.len()],
        };
        self
    }

    /// Disables (or re-enables) incremental enablement tracking: with
    /// `true`, every step re-evaluates every timed activity exactly
    /// like the pre-cache executor. Results are bitwise identical
    /// either way — this is a diagnostics/testing knob, exercised by
    /// the equivalence test tier.
    #[must_use]
    pub fn with_full_rescan(mut self, on: bool) -> Self {
        self.full_rescan = on;
        // Any parked cache was built under the previous mode.
        self.scratch = Cell::new(None);
        self
    }

    /// Overrides the per-replication event budget.
    #[must_use]
    pub fn with_max_events(mut self, budget: u64) -> Self {
        self.max_events = budget;
        self
    }

    /// Attaches a telemetry sink; per-run tallies (completions by
    /// kind, cascades, likelihood-ratio weights) are flushed into it
    /// once per replication.
    #[must_use]
    pub fn with_metrics(mut self, metrics: Arc<Metrics>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Arms a per-replication watchdog (event-count and wall-clock
    /// budgets); a violation fails the run with [`SimError::Runaway`]
    /// instead of spinning until the much larger event budget.
    #[must_use]
    pub fn with_watchdog(mut self, watchdog: Watchdog) -> Self {
        self.watchdog = Some(watchdog);
        self
    }

    /// The model being simulated.
    pub fn model(&self) -> &SanModel {
        self.model
    }

    /// Flushes one run's local tallies into the attached sink, if any.
    fn flush_run(&self, timed: u64, instantaneous: u64, cascaded: bool, weight: f64) {
        if let Some(m) = &self.metrics {
            m.record_run(timed, instantaneous, cascaded);
            m.record_weight(weight);
        }
    }

    /// Retrieves the parked scratch or builds a fresh one (first run,
    /// or the previous run panicked mid-flight).
    fn take_scratch(&self) -> Box<SsaScratch> {
        if let Some(s) = self.scratch.take() {
            return s;
        }
        let mut cache = self.model.new_cache();
        if self.full_rescan {
            cache.force_full_rescan();
        }
        Box::new(SsaScratch {
            cache,
            rates: Vec::with_capacity(self.timed.len()),
        })
    }

    fn rate_of(&self, a: ActivityId, m: &Marking) -> Result<f64, SimError> {
        // The constructor verified every timed activity is exponential;
        // a `None` here is an engine bug, surfaced as a typed error so
        // a study fails cleanly instead of panicking a worker.
        let r = self
            .model
            .exponential_rate(a, m)
            .ok_or_else(|| SimError::Internal {
                context: format!(
                    "activity `{}` lost its exponential rate after construction",
                    self.model.activity(a).name()
                ),
            })?;
        if !r.is_finite() || r < 0.0 {
            return Err(SimError::InvalidRate {
                activity: self.model.activity(a).name().to_owned(),
                rate: r,
            });
        }
        Ok(r)
    }

    /// Runs one replication until `target` first holds or `horizon` is
    /// reached.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EventBudgetExceeded`], [`SimError::InvalidRate`],
    /// or a wrapped [`SanError`](ahs_san::SanError) from stabilization.
    pub fn run_first_passage<R, F>(
        &self,
        target: F,
        horizon: f64,
        rng: &mut R,
    ) -> Result<RunOutcome, SimError>
    where
        R: Rng + ?Sized,
        F: Fn(&Marking) -> bool,
    {
        self.run_first_passage_from(
            self.model.initial_marking().clone(),
            0.0,
            target,
            horizon,
            rng,
        )
        .map(|(outcome, _)| outcome)
    }

    /// Runs one replication from an explicit starting state `(marking,
    /// t0)` — the primitive behind restart-based methods such as
    /// multilevel splitting. Returns the outcome together with the
    /// final marking (the state at the hit, or at the horizon).
    ///
    /// # Errors
    ///
    /// Same failure modes as
    /// [`run_first_passage`](MarkovSimulator::run_first_passage).
    ///
    /// # Panics
    ///
    /// Panics if `t0 > horizon` or `t0` is negative or non-finite.
    pub fn run_first_passage_from<R, F>(
        &self,
        start: Marking,
        t0: f64,
        target: F,
        horizon: f64,
        rng: &mut R,
    ) -> Result<(RunOutcome, Marking), SimError>
    where
        R: Rng + ?Sized,
        F: Fn(&Marking) -> bool,
    {
        let mut scratch = self.take_scratch();
        let result = self.first_passage_inner(start, t0, target, horizon, rng, &mut scratch);
        self.scratch.set(Some(scratch));
        result
    }

    fn first_passage_inner<R, F>(
        &self,
        start: Marking,
        t0: f64,
        target: F,
        horizon: f64,
        rng: &mut R,
        scratch: &mut SsaScratch,
    ) -> Result<(RunOutcome, Marking), SimError>
    where
        R: Rng + ?Sized,
        F: Fn(&Marking) -> bool,
    {
        assert!(
            t0.is_finite() && t0 >= 0.0 && t0 <= horizon,
            "start time {t0} must lie in [0, {horizon}]"
        );
        let mut marking = start;
        self.model.prime_cache(&mut scratch.cache, &marking);
        let mut instantaneous =
            self.model
                .stabilize_cached(&mut marking, rng, &mut scratch.cache)? as u64;
        let mut cascaded = instantaneous >= 2;
        let mut t = t0;
        let mut log_lr = 0.0_f64;
        let mut events = 0_u64;
        let watchdog = self.watchdog.map(|w| w.start());

        if target(&marking) {
            self.flush_run(0, instantaneous, cascaded, 1.0);
            return Ok((
                RunOutcome {
                    hit_time: Some(t0),
                    hit_weight: 1.0,
                    end_time: t0,
                    final_weight: 1.0,
                    events: 0,
                },
                marking,
            ));
        }

        loop {
            let (total_true, total_biased) =
                self.enabled_rates(&marking, &scratch.cache, &mut scratch.rates)?;
            if total_biased <= 0.0 {
                // Deadlock: nothing can ever happen again.
                let w = log_lr.exp();
                self.flush_run(events, instantaneous, cascaded, w);
                return Ok((
                    RunOutcome {
                        hit_time: None,
                        hit_weight: 0.0,
                        end_time: horizon,
                        final_weight: w,
                        events,
                    },
                    marking,
                ));
            }
            let tau = sample_exp(total_biased, rng);
            if t + tau > horizon {
                // Survival of the final interval under both measures.
                log_lr -= (total_true - total_biased) * (horizon - t);
                let w = log_lr.exp();
                self.flush_run(events, instantaneous, cascaded, w);
                return Ok((
                    RunOutcome {
                        hit_time: None,
                        hit_weight: 0.0,
                        end_time: horizon,
                        final_weight: w,
                        events,
                    },
                    marking,
                ));
            }
            let (a, r_true, r_biased) =
                pick_weighted(&scratch.rates, total_biased, rng).ok_or_else(empty_rate_table)?;
            log_lr += (r_true / r_biased).ln() - (total_true - total_biased) * tau;
            t += tau;

            let case = self
                .model
                .select_case_cached(a, &marking, rng, &mut scratch.cache)?;
            self.model
                .fire_cached(a, case, &mut marking, &mut scratch.cache);
            let fired = self
                .model
                .stabilize_cached(&mut marking, rng, &mut scratch.cache)?;
            instantaneous += fired as u64;
            cascaded |= fired >= 2;
            events += 1;
            crate::watchdog::sim_step_failpoint();
            if events > self.max_events {
                return Err(SimError::EventBudgetExceeded {
                    budget: self.max_events,
                });
            }
            if let Some(wd) = &watchdog {
                wd.check(events)?;
            }
            if target(&marking) {
                let w = log_lr.exp();
                self.flush_run(events, instantaneous, cascaded, w);
                return Ok((
                    RunOutcome {
                        hit_time: Some(t),
                        hit_weight: w,
                        end_time: t,
                        final_weight: w,
                        events,
                    },
                    marking,
                ));
            }
        }
    }

    /// Runs one replication observing `pred` at each grid instant,
    /// returning per-instant `(indicator, likelihood ratio at that
    /// instant)` pairs.
    ///
    /// The grid must be strictly increasing; the run ends at the last
    /// instant.
    ///
    /// # Errors
    ///
    /// Same failure modes as
    /// [`run_first_passage`](MarkovSimulator::run_first_passage).
    pub fn run_transient<R, F>(
        &self,
        pred: F,
        grid: &[f64],
        rng: &mut R,
    ) -> Result<Vec<(f64, f64)>, SimError>
    where
        R: Rng + ?Sized,
        F: Fn(&Marking) -> bool,
    {
        let mut scratch = self.take_scratch();
        let result = self.transient_inner(pred, grid, rng, &mut scratch);
        self.scratch.set(Some(scratch));
        result
    }

    fn transient_inner<R, F>(
        &self,
        pred: F,
        grid: &[f64],
        rng: &mut R,
        scratch: &mut SsaScratch,
    ) -> Result<Vec<(f64, f64)>, SimError>
    where
        R: Rng + ?Sized,
        F: Fn(&Marking) -> bool,
    {
        let Some(&horizon) = grid.last() else {
            return Err(SimError::Internal {
                context: "run_transient called with an empty grid".to_owned(),
            });
        };
        let mut out = Vec::with_capacity(grid.len());
        let mut next = 0_usize;

        let mut marking = self.model.initial_marking().clone();
        self.model.prime_cache(&mut scratch.cache, &marking);
        let mut instantaneous =
            self.model
                .stabilize_cached(&mut marking, rng, &mut scratch.cache)? as u64;
        let mut cascaded = instantaneous >= 2;
        let mut t = 0.0_f64;
        let mut log_lr = 0.0_f64;
        let mut events = 0_u64;
        let watchdog = self.watchdog.map(|w| w.start());

        while next < grid.len() {
            let (total_true, total_biased) =
                self.enabled_rates(&marking, &scratch.cache, &mut scratch.rates)?;
            let t_next_event = if total_biased > 0.0 {
                t + sample_exp(total_biased, rng)
            } else {
                f64::INFINITY
            };

            // Emit every grid instant strictly before the next event.
            while next < grid.len() && grid[next] <= t_next_event.min(horizon) {
                let g = grid[next];
                let lr_at_g = log_lr - (total_true - total_biased) * (g - t);
                out.push((f64::from(u8::from(pred(&marking))), lr_at_g.exp()));
                next += 1;
            }
            if next >= grid.len() || t_next_event > horizon {
                break;
            }

            let (a, r_true, r_biased) =
                pick_weighted(&scratch.rates, total_biased, rng).ok_or_else(empty_rate_table)?;
            let tau = t_next_event - t;
            log_lr += (r_true / r_biased).ln() - (total_true - total_biased) * tau;
            t = t_next_event;

            let case = self
                .model
                .select_case_cached(a, &marking, rng, &mut scratch.cache)?;
            self.model
                .fire_cached(a, case, &mut marking, &mut scratch.cache);
            let fired = self
                .model
                .stabilize_cached(&mut marking, rng, &mut scratch.cache)?;
            instantaneous += fired as u64;
            cascaded |= fired >= 2;
            events += 1;
            crate::watchdog::sim_step_failpoint();
            if events > self.max_events {
                return Err(SimError::EventBudgetExceeded {
                    budget: self.max_events,
                });
            }
            if let Some(wd) = &watchdog {
                wd.check(events)?;
            }
        }
        debug_assert_eq!(out.len(), grid.len());
        // The weight at the final grid instant is the run's
        // likelihood-ratio diagnostic (its mean over replications is 1).
        self.flush_run(
            events,
            instantaneous,
            cascaded,
            out.last().map_or(1.0, |&(_, w)| w),
        );
        Ok(out)
    }

    /// Runs one (unbiased) replication to `horizon`, reporting every
    /// event to `observer`. Ends early if the observer requests a stop
    /// or the model deadlocks.
    ///
    /// # Errors
    ///
    /// Same failure modes as
    /// [`run_first_passage`](MarkovSimulator::run_first_passage).
    pub fn run_with_observer<R, O>(
        &self,
        horizon: f64,
        rng: &mut R,
        observer: &mut O,
    ) -> Result<f64, SimError>
    where
        R: Rng + ?Sized,
        O: Observer + ?Sized,
    {
        let mut scratch = self.take_scratch();
        let result = self.observer_inner(horizon, rng, observer, &mut scratch);
        self.scratch.set(Some(scratch));
        result
    }

    fn observer_inner<R, O>(
        &self,
        horizon: f64,
        rng: &mut R,
        observer: &mut O,
        scratch: &mut SsaScratch,
    ) -> Result<f64, SimError>
    where
        R: Rng + ?Sized,
        O: Observer + ?Sized,
    {
        let mut marking = self.model.initial_marking().clone();
        self.model.prime_cache(&mut scratch.cache, &marking);
        let fired = self
            .model
            .stabilize_cached(&mut marking, rng, &mut scratch.cache)?;
        let mut instantaneous = fired as u64;
        let mut cascaded = fired >= 2;
        observer.on_start(&marking);
        for &a in scratch.cache.fired() {
            observer.on_event(0.0, a, &marking);
        }
        let mut t = 0.0_f64;
        let mut events = 0_u64;
        let watchdog = self.watchdog.map(|w| w.start());

        loop {
            if observer.should_stop(t, &marking) {
                observer.on_end(t, &marking);
                self.flush_run(events, instantaneous, cascaded, 1.0);
                return Ok(t);
            }
            let (_, total) = self.enabled_rates(&marking, &scratch.cache, &mut scratch.rates)?;
            if total <= 0.0 {
                observer.on_end(horizon, &marking);
                self.flush_run(events, instantaneous, cascaded, 1.0);
                return Ok(horizon);
            }
            let tau = sample_exp(total, rng);
            if t + tau > horizon {
                observer.on_end(horizon, &marking);
                self.flush_run(events, instantaneous, cascaded, 1.0);
                return Ok(horizon);
            }
            t += tau;
            let (a, _, _) =
                pick_weighted(&scratch.rates, total, rng).ok_or_else(empty_rate_table)?;
            let case = self
                .model
                .select_case_cached(a, &marking, rng, &mut scratch.cache)?;
            self.model
                .fire_cached(a, case, &mut marking, &mut scratch.cache);
            observer.on_event(t, a, &marking);
            let fired = self
                .model
                .stabilize_cached(&mut marking, rng, &mut scratch.cache)?;
            instantaneous += fired as u64;
            cascaded |= fired >= 2;
            for &ia in scratch.cache.fired() {
                observer.on_event(t, ia, &marking);
            }
            events += 1;
            crate::watchdog::sim_step_failpoint();
            if events > self.max_events {
                return Err(SimError::EventBudgetExceeded {
                    budget: self.max_events,
                });
            }
            if let Some(wd) = &watchdog {
                wd.check(events)?;
            }
        }
    }

    /// Collects `(activity, true rate, biased rate)` for all enabled
    /// timed activities into `rates` (cleared first) and returns the
    /// two totals.
    ///
    /// Enabledness comes from the cache (kept current by the firing
    /// path), so only enabled activities pay for rate evaluation; the
    /// totals are still accumulated by sweeping the timed list in slot
    /// order every step, never updated incrementally, so floating-point
    /// summation order — and therefore every sampled variate — is
    /// bitwise identical to the pre-cache executor.
    fn enabled_rates(
        &self,
        marking: &Marking,
        cache: &EnablementCache,
        rates: &mut Vec<(ActivityId, f64, f64)>,
    ) -> Result<(f64, f64), SimError> {
        rates.clear();
        let mut total_true = 0.0;
        let mut total_biased = 0.0;
        let state_factor = self.bias.as_ref().map_or(1.0, |b| b.state_factor(marking));
        for (slot, &a) in self.timed.iter().enumerate() {
            if !cache.is_enabled(a) {
                continue;
            }
            let r = match self.const_rates[slot] {
                Some(r) => r,
                None => self.rate_of(a, marking)?,
            };
            if r == 0.0 {
                continue;
            }
            let rb = match self.bias_mult[slot] {
                Some(mult) => r * mult * state_factor,
                None => r,
            };
            total_true += r;
            total_biased += rb;
            rates.push((a, r, rb));
        }
        Ok((total_true, total_biased))
    }
}

impl std::fmt::Debug for MarkovSimulator<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MarkovSimulator")
            .field("model", &self.model.name())
            .field("biased", &self.bias.is_some())
            .finish_non_exhaustive()
    }
}

fn sample_exp<R: Rng + ?Sized>(rate: f64, rng: &mut R) -> f64 {
    let u: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    -u.ln() / rate
}

/// Picks an entry proportionally to its biased rate; returns the
/// activity with its true and biased rates.
fn pick_weighted<R: Rng + ?Sized>(
    rates: &[(ActivityId, f64, f64)],
    total_biased: f64,
    rng: &mut R,
) -> Option<(ActivityId, f64, f64)> {
    let mut u: f64 = rng.random::<f64>() * total_biased;
    for &(a, r, rb) in rates {
        if u < rb {
            return Some((a, r, rb));
        }
        u -= rb;
    }
    rates.last().copied()
}

/// Invariant violation: a positive total rate was computed but the rate
/// table turned out to be empty when an activity was drawn from it.
fn empty_rate_table() -> SimError {
    SimError::Internal {
        context: "positive total rate with an empty rate table".to_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ahs_san::{Delay, SanBuilder};
    use ahs_stats::WeightedStats;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Single exponential failure: P(hit by t) = 1 - exp(-λ t).
    fn single_failure(rate: f64) -> (ahs_san::SanModel, ahs_san::PlaceId) {
        let mut b = SanBuilder::new("single");
        let up = b.place_with_tokens("up", 1).unwrap();
        let down = b.place("down").unwrap();
        b.timed_activity("fail", Delay::exponential(rate))
            .unwrap()
            .input_place(up)
            .output_place(down)
            .build()
            .unwrap();
        (b.build().unwrap(), down)
    }

    #[test]
    fn unbiased_first_passage_matches_closed_form() {
        let (model, down) = single_failure(0.5);
        let sim = MarkovSimulator::new(&model).unwrap();
        let mut rng = SmallRng::seed_from_u64(1);
        let horizon = 2.0;
        let n = 20_000;
        let hits = (0..n)
            .filter(|_| {
                sim.run_first_passage(|m| m.is_marked(down), horizon, &mut rng)
                    .unwrap()
                    .hit_time
                    .is_some()
            })
            .count();
        let p_hat = hits as f64 / f64::from(n);
        let p = 1.0 - (-0.5_f64 * 2.0).exp();
        assert!((p_hat - p).abs() < 0.01, "estimate {p_hat}, truth {p}");
    }

    #[test]
    fn biased_estimator_is_unbiased_for_rare_event() {
        // λ = 1e-4 over horizon 1: p ≈ 1e-4. Bias ×1000.
        let (model, down) = single_failure(1e-4);
        let fail = model.find_activity("fail").unwrap();
        let sim = MarkovSimulator::new(&model)
            .unwrap()
            .with_bias(BiasScheme::new().with_multiplier(fail, 1000.0));
        let mut rng = SmallRng::seed_from_u64(2);
        let mut est = WeightedStats::new();
        for _ in 0..20_000 {
            let out = sim
                .run_first_passage(|m| m.is_marked(down), 1.0, &mut rng)
                .unwrap();
            match out.hit_time {
                Some(_) => est.push(1.0, out.hit_weight),
                None => est.push(0.0, 1.0),
            }
        }
        let truth = 1.0 - (-1e-4_f64).exp();
        let rel = (est.mean() - truth).abs() / truth;
        assert!(
            rel < 0.05,
            "IS estimate {} vs truth {truth} (rel err {rel})",
            est.mean()
        );
        // Plain MC with the same effort would see ~2 hits; IS sees many.
        assert!(est.effective_sample_size() > 100.0);
    }

    #[test]
    fn mean_final_weight_is_one_under_bias() {
        let (model, _) = single_failure(0.2);
        let fail = model.find_activity("fail").unwrap();
        let sim = MarkovSimulator::new(&model)
            .unwrap()
            .with_bias(BiasScheme::new().with_multiplier(fail, 10.0));
        let mut rng = SmallRng::seed_from_u64(3);
        let mut mean_w = 0.0;
        let n = 50_000;
        for _ in 0..n {
            let out = sim.run_first_passage(|_| false, 1.0, &mut rng).unwrap();
            mean_w += out.final_weight;
        }
        mean_w /= f64::from(n);
        assert!(
            (mean_w - 1.0).abs() < 0.03,
            "mean likelihood ratio {mean_w} should be 1"
        );
    }

    #[test]
    fn transient_probabilities_match_closed_form() {
        let (model, down) = single_failure(1.0);
        let sim = MarkovSimulator::new(&model).unwrap();
        let mut rng = SmallRng::seed_from_u64(4);
        let grid = [0.5, 1.0, 2.0];
        let mut sums = [0.0_f64; 3];
        let n = 20_000;
        for _ in 0..n {
            let obs = sim
                .run_transient(|m| m.is_marked(down), &grid, &mut rng)
                .unwrap();
            for (i, (v, w)) in obs.iter().enumerate() {
                sums[i] += v * w;
            }
        }
        for (i, &g) in grid.iter().enumerate() {
            let p_hat = sums[i] / f64::from(n);
            let p = 1.0 - (-g).exp();
            assert!(
                (p_hat - p).abs() < 0.02,
                "t={g}: estimate {p_hat}, truth {p}"
            );
        }
    }

    #[test]
    fn biased_transient_matches_closed_form() {
        let (model, down) = single_failure(1e-3);
        let fail = model.find_activity("fail").unwrap();
        let sim = MarkovSimulator::new(&model)
            .unwrap()
            .with_bias(BiasScheme::new().with_multiplier(fail, 200.0));
        let mut rng = SmallRng::seed_from_u64(5);
        let grid = [1.0, 2.0];
        let mut est = [WeightedStats::new(), WeightedStats::new()];
        for _ in 0..30_000 {
            let obs = sim
                .run_transient(|m| m.is_marked(down), &grid, &mut rng)
                .unwrap();
            for (i, (v, w)) in obs.iter().enumerate() {
                est[i].push(*v, *w);
            }
        }
        for (i, &g) in grid.iter().enumerate() {
            let truth = 1.0 - (-1e-3 * g).exp();
            let rel = (est[i].mean() - truth).abs() / truth;
            assert!(
                rel < 0.1,
                "t={g}: IS estimate {} vs truth {truth}",
                est[i].mean()
            );
        }
    }

    #[test]
    fn non_markovian_model_rejected() {
        let mut b = SanBuilder::new("det");
        let p = b.place_with_tokens("p", 1).unwrap();
        b.timed_activity("d", Delay::Deterministic(1.0))
            .unwrap()
            .input_place(p)
            .build()
            .unwrap();
        let model = b.build().unwrap();
        assert!(matches!(
            MarkovSimulator::new(&model),
            Err(SimError::NonMarkovian { .. })
        ));
    }

    #[test]
    fn deadlock_ends_run_cleanly() {
        let (model, down) = single_failure(100.0);
        let sim = MarkovSimulator::new(&model).unwrap();
        let mut rng = SmallRng::seed_from_u64(6);
        // After the failure fires, nothing is enabled; target never
        // holds, so the run must end at the horizon without spinning.
        let out = sim.run_first_passage(|_| false, 1000.0, &mut rng).unwrap();
        assert_eq!(out.hit_time, None);
        assert_eq!(out.end_time, 1000.0);
        assert_eq!(out.events, 1);
        let _ = model.find_place("down").unwrap();
        let _ = down;
    }

    #[test]
    fn event_budget_enforced() {
        // Two places ping-ponging a token at rate 1e3 forever.
        let mut b = SanBuilder::new("pingpong");
        let p = b.place_with_tokens("p", 1).unwrap();
        let q = b.place("q").unwrap();
        b.timed_activity("pq", Delay::exponential(1e3))
            .unwrap()
            .input_place(p)
            .output_place(q)
            .build()
            .unwrap();
        b.timed_activity("qp", Delay::exponential(1e3))
            .unwrap()
            .input_place(q)
            .output_place(p)
            .build()
            .unwrap();
        let model = b.build().unwrap();
        let sim = MarkovSimulator::new(&model).unwrap().with_max_events(100);
        let mut rng = SmallRng::seed_from_u64(7);
        assert!(matches!(
            sim.run_first_passage(|_| false, 1e9, &mut rng),
            Err(SimError::EventBudgetExceeded { budget: 100 })
        ));
    }

    #[test]
    fn immediate_hit_at_time_zero() {
        let (model, _) = single_failure(1.0);
        let sim = MarkovSimulator::new(&model).unwrap();
        let mut rng = SmallRng::seed_from_u64(8);
        let out = sim.run_first_passage(|_| true, 5.0, &mut rng).unwrap();
        assert_eq!(out.hit_time, Some(0.0));
        assert_eq!(out.hit_weight, 1.0);
    }
}
