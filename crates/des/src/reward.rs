//! Möbius-style reward variables: rate and impulse rewards accumulated
//! over a finite horizon.
//!
//! A *rate reward* integrates a marking function over time
//! (`∫₀ᵀ f(X(t)) dt`), e.g. time spent with a vehicle in recovery; an
//! *impulse reward* adds a value on each activity completion
//! (`Σ g(aᵢ)`), e.g. the number of maneuvers attempted. Both are the
//! interval-of-time variables of the Möbius reward formalism, estimated
//! here over independent replications.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use ahs_obs::Metrics;
use ahs_san::{ActivityId, Marking, SanModel};
use ahs_stats::{RunningStats, StoppingRule};

use crate::error::SimError;
use crate::observer::Observer;
use crate::replication::{panic_message, Backend};
use crate::rng::replication_rng;
use crate::ssa::MarkovSimulator;
use crate::watchdog::Watchdog;
use crate::EventDrivenSimulator;

/// Specification of a reward variable accumulated over `[0, horizon]`.
///
/// # Example
///
/// ```
/// use ahs_des::{Backend, RewardSpec, RewardStudy};
/// use ahs_san::{Delay, SanBuilder};
///
/// // Fraction of time a repairable component is down.
/// let mut b = SanBuilder::new("fr");
/// let up = b.place_with_tokens("up", 1)?;
/// let down = b.place("down")?;
/// b.timed_activity("fail", Delay::exponential(1.0))?
///     .input_place(up)
///     .output_place(down)
///     .build()?;
/// b.timed_activity("repair", Delay::exponential(4.0))?
///     .input_place(down)
///     .output_place(up)
///     .build()?;
/// let model = b.build()?;
///
/// let spec = RewardSpec::rate(move |m| f64::from(u8::from(m.is_marked(down))));
/// let est = RewardStudy::new(model)
///     .with_seed(3)
///     .with_replications(4000)
///     .estimate(&spec, 50.0, Backend::Markov)?;
/// // Long-run unavailability is 1/5; over [0, 50] the mean integral is ≈ 10.
/// assert!((est.mean() / 50.0 - 0.2).abs() < 0.02);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct RewardSpec {
    rate: Option<Box<RateFn>>,
    impulse: Option<Box<ImpulseFn>>,
}

/// Rate-reward component: evaluated on the current marking.
type RateFn = dyn Fn(&Marking) -> f64 + Send + Sync;
/// Impulse-reward component: evaluated when an activity fires.
type ImpulseFn = dyn Fn(ActivityId, &Marking) -> f64 + Send + Sync;

impl RewardSpec {
    /// A pure rate reward: `∫ f(X(t)) dt`.
    pub fn rate<F>(f: F) -> Self
    where
        F: Fn(&Marking) -> f64 + Send + Sync + 'static,
    {
        RewardSpec {
            rate: Some(Box::new(f)),
            impulse: None,
        }
    }

    /// A pure impulse reward: `Σ g(activity, marking after firing)`.
    pub fn impulse<G>(g: G) -> Self
    where
        G: Fn(ActivityId, &Marking) -> f64 + Send + Sync + 'static,
    {
        RewardSpec {
            rate: None,
            impulse: Some(Box::new(g)),
        }
    }

    /// Adds a rate component to an impulse reward (or vice versa).
    #[must_use]
    pub fn with_rate<F>(mut self, f: F) -> Self
    where
        F: Fn(&Marking) -> f64 + Send + Sync + 'static,
    {
        self.rate = Some(Box::new(f));
        self
    }

    /// Adds an impulse component.
    #[must_use]
    pub fn with_impulse<G>(mut self, g: G) -> Self
    where
        G: Fn(ActivityId, &Marking) -> f64 + Send + Sync + 'static,
    {
        self.impulse = Some(Box::new(g));
        self
    }
}

impl std::fmt::Debug for RewardSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RewardSpec")
            .field("has_rate", &self.rate.is_some())
            .field("has_impulse", &self.impulse.is_some())
            .finish()
    }
}

/// Observer accumulating one replication's reward.
struct RewardObserver<'s> {
    spec: &'s RewardSpec,
    total: f64,
    last_time: f64,
    last_rate_value: f64,
}

impl<'s> RewardObserver<'s> {
    fn new(spec: &'s RewardSpec) -> Self {
        RewardObserver {
            spec,
            total: 0.0,
            last_time: 0.0,
            last_rate_value: 0.0,
        }
    }
}

impl Observer for RewardObserver<'_> {
    fn on_start(&mut self, marking: &Marking) {
        if let Some(f) = &self.spec.rate {
            self.last_rate_value = f(marking);
        }
    }

    fn on_event(&mut self, time: f64, activity: ActivityId, marking: &Marking) {
        // The marking was constant on [last_time, time).
        self.total += self.last_rate_value * (time - self.last_time);
        self.last_time = time;
        if let Some(f) = &self.spec.rate {
            self.last_rate_value = f(marking);
        }
        if let Some(g) = &self.spec.impulse {
            self.total += g(activity, marking);
        }
    }

    fn on_end(&mut self, time: f64, _marking: &Marking) {
        self.total += self.last_rate_value * (time - self.last_time);
        self.last_time = time;
    }
}

/// Estimates the expectation of a reward variable over independent
/// replications (unbiased backends only — importance sampling is not
/// supported for rewards, since the weights would need to be carried
/// per accumulation interval).
pub struct RewardStudy {
    model: SanModel,
    seed: u64,
    rule: StoppingRule,
    metrics: Option<Arc<Metrics>>,
    quarantine_budget: u64,
    watchdog: Option<Watchdog>,
}

impl RewardStudy {
    /// Creates a study with a default fixed budget of 10 000
    /// replications.
    pub fn new(model: SanModel) -> Self {
        RewardStudy {
            model,
            seed: 0x5EED,
            rule: StoppingRule::fixed(10_000),
            metrics: None,
            quarantine_budget: 0,
            watchdog: None,
        }
    }

    /// Sets the master seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Runs exactly `n` replications.
    #[must_use]
    pub fn with_replications(mut self, n: u64) -> Self {
        self.rule = StoppingRule::fixed(n);
        self
    }

    /// Replaces the stopping rule.
    #[must_use]
    pub fn with_rule(mut self, rule: StoppingRule) -> Self {
        self.rule = rule;
        self
    }

    /// Attaches a telemetry sink (per-run tallies and replication
    /// counts).
    #[must_use]
    pub fn with_metrics(mut self, metrics: Arc<Metrics>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Tolerates up to `budget` panicking replications: a panicking
    /// reward closure (or simulator invariant) quarantines that
    /// replication instead of aborting the study. The default budget is
    /// zero — the first panic surfaces as
    /// [`SimError::QuarantineOverflow`].
    #[must_use]
    pub fn with_quarantine_budget(mut self, budget: u64) -> Self {
        self.quarantine_budget = budget;
        self
    }

    /// Applies per-replication runtime budgets (see [`Watchdog`]).
    #[must_use]
    pub fn with_watchdog(mut self, watchdog: Watchdog) -> Self {
        self.watchdog = Some(watchdog);
        self
    }

    /// The model under study.
    pub fn model(&self) -> &SanModel {
        &self.model
    }

    /// Estimates the expected total reward over `[0, horizon]`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NonMarkovian`] for the Markov backend on a
    /// non-exponential model, or any replication-level failure. A
    /// [`Backend::BiasedMarkov`] backend is rejected as
    /// [`SimError::NonMarkovian`]-adjacent misuse via panic — rewards
    /// require an unbiased measure.
    ///
    /// # Panics
    ///
    /// Panics if `backend` is [`Backend::BiasedMarkov`].
    pub fn estimate(
        &self,
        spec: &RewardSpec,
        horizon: f64,
        backend: Backend,
    ) -> Result<RunningStats, SimError> {
        let mut stats = RunningStats::new();
        match backend {
            Backend::BiasedMarkov(_) => {
                panic!("reward estimation requires an unbiased backend")
            }
            Backend::Markov => {
                let mut sim = MarkovSimulator::new(&self.model)?;
                if let Some(m) = &self.metrics {
                    sim = sim.with_metrics(m.clone());
                }
                if let Some(w) = &self.watchdog {
                    sim = sim.with_watchdog(*w);
                }
                self.run_loop(&mut stats, |rng| {
                    let mut obs = RewardObserver::new(spec);
                    sim.run_with_observer(horizon, rng, &mut obs)?;
                    Ok(obs.total)
                })?;
            }
            Backend::EventDriven => {
                let mut sim = EventDrivenSimulator::new(&self.model);
                if let Some(m) = &self.metrics {
                    sim = sim.with_metrics(m.clone());
                }
                if let Some(w) = &self.watchdog {
                    sim = sim.with_watchdog(*w);
                }
                self.run_loop(&mut stats, |rng| {
                    let mut obs = RewardObserver::new(spec);
                    sim.run(horizon, rng, &mut obs)?;
                    Ok(obs.total)
                })?;
            }
        }
        Ok(stats)
    }

    /// The shared replication loop: one deterministic RNG stream per
    /// replication index, panics quarantined up to the configured
    /// budget, typed errors surfaced immediately.
    fn run_loop<F>(&self, stats: &mut RunningStats, mut one_rep: F) -> Result<(), SimError>
    where
        F: FnMut(&mut rand::rngs::SmallRng) -> Result<f64, SimError>,
    {
        let mut rep = 0u64;
        let mut quarantined = 0u64;
        while !self.rule.is_satisfied(stats) {
            let mut rng = replication_rng(self.seed, rep);
            rep += 1;
            match catch_unwind(AssertUnwindSafe(|| one_rep(&mut rng))) {
                Ok(Ok(total)) => stats.push(total),
                Ok(Err(e)) => return Err(e),
                Err(payload) => {
                    quarantined += 1;
                    if let Some(m) = &self.metrics {
                        m.record_quarantined();
                    }
                    if quarantined > self.quarantine_budget {
                        return Err(SimError::QuarantineOverflow {
                            quarantined,
                            budget: self.quarantine_budget,
                            message: panic_message(&*payload),
                        });
                    }
                }
            }
        }
        if let Some(m) = &self.metrics {
            m.add_replications(rep - quarantined);
        }
        Ok(())
    }
}

impl std::fmt::Debug for RewardStudy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RewardStudy")
            .field("model", &self.model.name())
            .field("seed", &self.seed)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ahs_san::{Delay, SanBuilder};

    fn repairable(fail: f64, repair: f64) -> (SanModel, ahs_san::PlaceId) {
        let mut b = SanBuilder::new("fr");
        let up = b.place_with_tokens("up", 1).unwrap();
        let down = b.place("down").unwrap();
        b.timed_activity("fail", Delay::exponential(fail))
            .unwrap()
            .input_place(up)
            .output_place(down)
            .build()
            .unwrap();
        b.timed_activity("repair", Delay::exponential(repair))
            .unwrap()
            .input_place(down)
            .output_place(up)
            .build()
            .unwrap();
        (b.build().unwrap(), down)
    }

    #[test]
    fn rate_reward_matches_long_run_unavailability() {
        let (model, down) = repairable(1.0, 3.0);
        let spec = RewardSpec::rate(move |m| f64::from(u8::from(m.is_marked(down))));
        let est = RewardStudy::new(model)
            .with_seed(1)
            .with_replications(3_000)
            .estimate(&spec, 100.0, Backend::Markov)
            .unwrap();
        let frac = est.mean() / 100.0;
        assert!((frac - 0.25).abs() < 0.01, "downtime fraction {frac}");
    }

    #[test]
    fn impulse_reward_counts_firings() {
        // Failure rate 2, repair 1000 (instant-ish): failures occur at
        // ~rate 2 per unit time; count them over [0, 10].
        let (model, _) = repairable(2.0, 1000.0);
        let fail = model.find_activity("fail").unwrap();
        let spec = RewardSpec::impulse(move |a, _| f64::from(u8::from(a == fail)));
        let est = RewardStudy::new(model)
            .with_seed(2)
            .with_replications(2_000)
            .estimate(&spec, 10.0, Backend::Markov)
            .unwrap();
        assert!((est.mean() - 20.0).abs() < 0.6, "count {}", est.mean());
    }

    #[test]
    fn combined_rate_and_impulse() {
        let (model, down) = repairable(1.0, 1.0);
        let repair = model.find_activity("repair").unwrap();
        // Cost = downtime + 0.5 per repair.
        let spec = RewardSpec::rate(move |m| f64::from(u8::from(m.is_marked(down))))
            .with_impulse(move |a, _| if a == repair { 0.5 } else { 0.0 });
        let est = RewardStudy::new(model)
            .with_seed(3)
            .with_replications(3_000)
            .estimate(&spec, 50.0, Backend::Markov)
            .unwrap();
        // Downtime ≈ 25; repairs ≈ 0.5/unit time · 50 = 25 → 12.5.
        assert!((est.mean() - 37.5).abs() < 1.5, "cost {}", est.mean());
    }

    #[test]
    fn both_backends_agree() {
        let (model, down) = repairable(0.7, 2.0);
        let spec1 = RewardSpec::rate(move |m| f64::from(u8::from(m.is_marked(down))));
        let study = RewardStudy::new(model)
            .with_seed(4)
            .with_replications(4_000);
        let a = study.estimate(&spec1, 30.0, Backend::Markov).unwrap();
        let b = study.estimate(&spec1, 30.0, Backend::EventDriven).unwrap();
        let ci_a = a.confidence_interval(0.99);
        let ci_b = b.confidence_interval(0.99);
        assert!(ci_a.overlaps(&ci_b), "{ci_a} vs {ci_b}");
    }

    #[test]
    fn stopping_rule_applies() {
        let (model, down) = repairable(1.0, 1.0);
        let spec = RewardSpec::rate(move |m| f64::from(u8::from(m.is_marked(down))));
        let est = RewardStudy::new(model)
            .with_seed(5)
            .with_rule(
                StoppingRule::relative_precision(0.95, 0.05)
                    .with_min_samples(100)
                    .with_max_samples(50_000),
            )
            .estimate(&spec, 20.0, Backend::Markov)
            .unwrap();
        assert!(est.count() >= 100);
        assert!(
            est.confidence_interval(0.95).relative_half_width() <= 0.06,
            "precision not reached: {}",
            est.confidence_interval(0.95)
        );
    }

    #[test]
    fn panicking_reward_closure_is_quarantined() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let (model, down) = repairable(1.0, 1.0);
        let fired = Arc::new(AtomicBool::new(false));
        let f = fired.clone();
        let spec = RewardSpec::rate(move |m| {
            if !f.swap(true, Ordering::SeqCst) {
                panic!("injected reward panic");
            }
            f64::from(u8::from(m.is_marked(down)))
        });
        let metrics = Arc::new(Metrics::new());
        let est = RewardStudy::new(model)
            .with_seed(6)
            .with_replications(200)
            .with_quarantine_budget(1)
            .with_metrics(metrics.clone())
            .estimate(&spec, 10.0, Backend::Markov)
            .unwrap();
        assert_eq!(est.count(), 200, "quarantined rep must not count");
        assert_eq!(metrics.snapshot().quarantined, 1);
    }

    #[test]
    fn quarantine_budget_zero_surfaces_first_panic() {
        let (model, _) = repairable(1.0, 1.0);
        let spec = RewardSpec::rate(|_| panic!("always broken"));
        let err = RewardStudy::new(model)
            .with_seed(7)
            .with_replications(10)
            .estimate(&spec, 1.0, Backend::EventDriven)
            .unwrap_err();
        match err {
            SimError::QuarantineOverflow {
                quarantined,
                budget,
                message,
            } => {
                assert_eq!((quarantined, budget), (1, 0));
                assert!(message.contains("always broken"), "{message}");
            }
            other => panic!("expected QuarantineOverflow, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "unbiased backend")]
    fn biased_backend_rejected() {
        let (model, _) = repairable(1.0, 1.0);
        let spec = RewardSpec::rate(|_| 1.0);
        let _ = RewardStudy::new(model).estimate(
            &spec,
            1.0,
            Backend::BiasedMarkov(crate::BiasScheme::new()),
        );
    }
}
