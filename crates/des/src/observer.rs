//! Run observers for tracing and custom measures.

use ahs_san::{ActivityId, Marking, SanModel};

/// Callbacks invoked by the executors during a single run.
///
/// All executors call `on_start` once, `on_event` after every completed
/// activity (timed and instantaneous) with the post-firing marking, and
/// `on_end` when the run terminates (horizon reached, deadlock, or an
/// observer requested the stop).
pub trait Observer {
    /// Called once with the (stabilized) initial marking.
    fn on_start(&mut self, _marking: &Marking) {}

    /// Called after an activity completes; `marking` is the marking
    /// *after* the firing.
    fn on_event(&mut self, _time: f64, _activity: ActivityId, _marking: &Marking) {}

    /// Return `true` to terminate the run early; polled after every
    /// event once the marking is stable.
    fn should_stop(&mut self, _time: f64, _marking: &Marking) -> bool {
        false
    }

    /// Called when the run ends, with the final time and marking.
    fn on_end(&mut self, _time: f64, _marking: &Marking) {}
}

/// An observer that does nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullObserver;

impl Observer for NullObserver {}

/// Records every event as `(time, activity name)` — a debugging aid.
///
/// # Example
///
/// ```
/// use ahs_des::{EventDrivenSimulator, TraceObserver};
/// use ahs_san::{Delay, SanBuilder};
/// use rand::rngs::SmallRng;
/// use rand::SeedableRng;
///
/// let mut b = SanBuilder::new("m");
/// let p = b.place_with_tokens("p", 1)?;
/// let q = b.place("q")?;
/// b.timed_activity("move", Delay::Deterministic(2.0))?
///     .input_place(p)
///     .output_place(q)
///     .build()?;
/// let model = b.build()?;
///
/// let mut trace = TraceObserver::new(&model);
/// let sim = EventDrivenSimulator::new(&model);
/// let mut rng = SmallRng::seed_from_u64(0);
/// sim.run(10.0, &mut rng, &mut trace)?;
/// assert_eq!(trace.events().len(), 1);
/// assert_eq!(trace.events()[0].1, "move");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct TraceObserver {
    names: Vec<String>,
    events: Vec<(f64, String)>,
}

impl TraceObserver {
    /// Creates a trace observer resolving names against `model`.
    pub fn new(model: &SanModel) -> Self {
        TraceObserver {
            names: model
                .activities()
                .iter()
                .map(|a| a.name().to_owned())
                .collect(),
            events: Vec::new(),
        }
    }

    /// The recorded `(time, activity name)` pairs.
    pub fn events(&self) -> &[(f64, String)] {
        &self.events
    }
}

impl Observer for TraceObserver {
    fn on_event(&mut self, time: f64, activity: ActivityId, _marking: &Marking) {
        self.events
            .push((time, self.names[activity.index()].clone()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_observer_never_stops() {
        let mut o = NullObserver;
        // No marking is needed for the default should_stop; build a tiny one.
        let mut b = ahs_san::SanBuilder::new("m");
        let p = b.place_with_tokens("p", 1).unwrap();
        b.timed_activity("a", ahs_san::Delay::exponential(1.0))
            .unwrap()
            .input_place(p)
            .build()
            .unwrap();
        let model = b.build().unwrap();
        assert!(!o.should_stop(0.0, model.initial_marking()));
    }
}
