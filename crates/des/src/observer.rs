//! Run observers for tracing and custom measures.

use ahs_san::{ActivityId, Marking, SanModel};

/// Callbacks invoked by the executors during a single run.
///
/// All executors call `on_start` once, `on_event` after every completed
/// activity (timed and instantaneous) with the post-firing marking, and
/// `on_end` when the run terminates (horizon reached, deadlock, or an
/// observer requested the stop).
pub trait Observer {
    /// Called once with the (stabilized) initial marking.
    fn on_start(&mut self, _marking: &Marking) {}

    /// Called after an activity completes; `marking` is the marking
    /// *after* the firing.
    fn on_event(&mut self, _time: f64, _activity: ActivityId, _marking: &Marking) {}

    /// Return `true` to terminate the run early; polled after every
    /// event once the marking is stable.
    fn should_stop(&mut self, _time: f64, _marking: &Marking) -> bool {
        false
    }

    /// Called when the run ends, with the final time and marking.
    fn on_end(&mut self, _time: f64, _marking: &Marking) {}
}

/// An observer that does nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullObserver;

impl Observer for NullObserver {}

/// Records every event as `(time, activity name)` — a debugging aid.
///
/// # Example
///
/// ```
/// use ahs_des::{EventDrivenSimulator, TraceObserver};
/// use ahs_san::{Delay, SanBuilder};
/// use rand::rngs::SmallRng;
/// use rand::SeedableRng;
///
/// let mut b = SanBuilder::new("m");
/// let p = b.place_with_tokens("p", 1)?;
/// let q = b.place("q")?;
/// b.timed_activity("move", Delay::Deterministic(2.0))?
///     .input_place(p)
///     .output_place(q)
///     .build()?;
/// let model = b.build()?;
///
/// let mut trace = TraceObserver::new(&model);
/// let sim = EventDrivenSimulator::new(&model);
/// let mut rng = SmallRng::seed_from_u64(0);
/// sim.run(10.0, &mut rng, &mut trace)?;
/// assert_eq!(trace.events().len(), 1);
/// assert_eq!(trace.events()[0].1, "move");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct TraceObserver {
    names: Vec<String>,
    events: Vec<(f64, String)>,
}

impl TraceObserver {
    /// Creates a trace observer resolving names against `model`.
    pub fn new(model: &SanModel) -> Self {
        TraceObserver {
            names: model
                .activities()
                .iter()
                .map(|a| a.name().to_owned())
                .collect(),
            events: Vec::new(),
        }
    }

    /// The recorded `(time, activity name)` pairs.
    pub fn events(&self) -> &[(f64, String)] {
        &self.events
    }
}

impl Observer for TraceObserver {
    fn on_event(&mut self, time: f64, activity: ActivityId, _marking: &Marking) {
        self.events
            .push((time, self.names[activity.index()].clone()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::EventDrivenSimulator;
    use ahs_san::{Delay, SanBuilder};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Chain with an instantaneous step: `a` (timed) enables `boom`
    /// (instantaneous) which enables `b` (timed).
    fn chain_with_instant() -> ahs_san::SanModel {
        let mut b = SanBuilder::new("chain");
        let p = b.place_with_tokens("p", 1).unwrap();
        let q = b.place("q").unwrap();
        let r = b.place("r").unwrap();
        let s = b.place("s").unwrap();
        b.timed_activity("a", Delay::exponential(1.0))
            .unwrap()
            .input_place(p)
            .output_place(q)
            .build()
            .unwrap();
        b.instant_activity("boom", 1, 1.0)
            .unwrap()
            .input_place(q)
            .output_place(r)
            .build()
            .unwrap();
        b.timed_activity("b", Delay::exponential(1.0))
            .unwrap()
            .input_place(r)
            .output_place(s)
            .build()
            .unwrap();
        b.build().unwrap()
    }

    #[test]
    fn trace_times_are_non_decreasing() {
        let model = chain_with_instant();
        let mut trace = TraceObserver::new(&model);
        let sim = EventDrivenSimulator::new(&model);
        let mut rng = SmallRng::seed_from_u64(7);
        sim.run(100.0, &mut rng, &mut trace).unwrap();
        let events = trace.events();
        assert!(!events.is_empty());
        for w in events.windows(2) {
            assert!(
                w[0].0 <= w[1].0,
                "trace times must be non-decreasing: {w:?}"
            );
        }
    }

    #[test]
    fn instantaneous_activity_fires_at_its_trigger_instant() {
        // `boom` is instantaneous: it must be recorded at exactly the
        // same simulated time as the timed completion (`a`) that
        // enabled it, immediately after it in the trace.
        let model = chain_with_instant();
        let mut trace = TraceObserver::new(&model);
        let sim = EventDrivenSimulator::new(&model);
        let mut rng = SmallRng::seed_from_u64(11);
        sim.run(100.0, &mut rng, &mut trace).unwrap();
        let events = trace.events();
        let a_pos = events.iter().position(|(_, n)| n == "a").expect("a fired");
        assert_eq!(events[a_pos + 1].1, "boom");
        assert_eq!(
            events[a_pos].0,
            events[a_pos + 1].0,
            "instantaneous completion must share the enabling instant"
        );
    }

    #[test]
    fn trace_records_every_activity_in_the_chain() {
        let model = chain_with_instant();
        let mut trace = TraceObserver::new(&model);
        let sim = EventDrivenSimulator::new(&model);
        let mut rng = SmallRng::seed_from_u64(3);
        sim.run(1000.0, &mut rng, &mut trace).unwrap();
        let names: Vec<&str> = trace.events().iter().map(|(_, n)| n.as_str()).collect();
        assert_eq!(names, ["a", "boom", "b"]);
    }

    #[test]
    fn null_observer_never_stops() {
        let mut o = NullObserver;
        // No marking is needed for the default should_stop; build a tiny one.
        let mut b = ahs_san::SanBuilder::new("m");
        let p = b.place_with_tokens("p", 1).unwrap();
        b.timed_activity("a", ahs_san::Delay::exponential(1.0))
            .unwrap()
            .input_place(p)
            .build()
            .unwrap();
        let model = b.build().unwrap();
        assert!(!o.should_stop(0.0, model.initial_marking()));
    }
}
