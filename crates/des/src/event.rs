//! Cancellable future-event list.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One scheduled activity completion, identified by the activity's index
/// in its model's activity table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduledEvent {
    /// Completion time.
    pub time: f64,
    /// Index of the activity that completes.
    pub activity: usize,
    /// Generation stamp used for lazy cancellation.
    pub generation: u64,
}

impl Eq for ScheduledEvent {}

impl Ord for ScheduledEvent {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on time (BinaryHeap is a max-heap, so reverse),
        // breaking ties by activity index for determinism.
        other
            .time
            .partial_cmp(&self.time)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.activity.cmp(&self.activity))
            .then_with(|| other.generation.cmp(&self.generation))
    }
}

impl PartialOrd for ScheduledEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A future-event list with lazy cancellation.
///
/// Each activity slot carries a generation counter; cancelling bumps the
/// counter so stale heap entries are discarded when popped. This is the
/// standard O(log n) insert / amortized O(log n) pop structure used by
/// discrete-event simulators.
///
/// # Example
///
/// ```
/// use ahs_des::EventQueue;
///
/// let mut q = EventQueue::new(2);
/// q.schedule(1.5, 0);
/// q.schedule(0.5, 1);
/// q.cancel(1);
/// let ev = q.pop().unwrap();
/// assert_eq!(ev.time, 1.5);
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue {
    heap: BinaryHeap<ScheduledEvent>,
    generations: Vec<u64>,
    scheduled: Vec<bool>,
    live: usize,
}

impl EventQueue {
    /// Creates a queue with `num_activities` activity slots.
    pub fn new(num_activities: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            generations: vec![0; num_activities],
            scheduled: vec![false; num_activities],
            live: 0,
        }
    }

    /// Number of pending (non-cancelled) events, in O(1).
    pub fn live(&self) -> usize {
        self.live
    }

    /// Schedules activity slot `activity` to complete at `time`.
    ///
    /// # Panics
    ///
    /// Panics if the slot is already scheduled (cancel first) or out of
    /// range.
    pub fn schedule(&mut self, time: f64, activity: usize) {
        assert!(
            !self.scheduled[activity],
            "activity {activity} is already scheduled; cancel before rescheduling"
        );
        self.scheduled[activity] = true;
        self.live += 1;
        self.heap.push(ScheduledEvent {
            time,
            activity,
            generation: self.generations[activity],
        });
    }

    /// Cancels the pending completion of `activity`, if any.
    ///
    /// # Panics
    ///
    /// Panics if the slot is out of range.
    pub fn cancel(&mut self, activity: usize) {
        if self.scheduled[activity] {
            self.scheduled[activity] = false;
            self.generations[activity] += 1;
            self.live -= 1;
        }
    }

    /// Whether `activity` has a pending completion.
    pub fn is_scheduled(&self, activity: usize) -> bool {
        self.scheduled[activity]
    }

    /// Pops the earliest non-cancelled event, or `None` when empty.
    pub fn pop(&mut self) -> Option<ScheduledEvent> {
        while let Some(ev) = self.heap.pop() {
            if self.scheduled[ev.activity] && self.generations[ev.activity] == ev.generation {
                self.scheduled[ev.activity] = false;
                self.generations[ev.activity] += 1;
                self.live -= 1;
                return Some(ev);
            }
        }
        None
    }

    /// Time of the earliest pending event without popping it.
    pub fn peek_time(&mut self) -> Option<f64> {
        while let Some(ev) = self.heap.peek() {
            if self.scheduled[ev.activity] && self.generations[ev.activity] == ev.generation {
                return Some(ev.time);
            }
            self.heap.pop();
        }
        None
    }

    /// Drops every pending event; slots can be scheduled again.
    pub fn clear(&mut self) {
        self.heap.clear();
        for g in &mut self.generations {
            *g += 1;
        }
        for s in &mut self.scheduled {
            *s = false;
        }
        self.live = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new(3);
        q.schedule(3.0, 0);
        q.schedule(1.0, 1);
        q.schedule(2.0, 2);
        let times: Vec<f64> = std::iter::from_fn(|| q.pop()).map(|e| e.time).collect();
        assert_eq!(times, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn tie_break_is_deterministic() {
        let mut q = EventQueue::new(2);
        q.schedule(1.0, 1);
        q.schedule(1.0, 0);
        assert_eq!(q.pop().unwrap().activity, 0);
        assert_eq!(q.pop().unwrap().activity, 1);
    }

    #[test]
    fn cancellation_skips_stale_events() {
        let mut q = EventQueue::new(2);
        q.schedule(1.0, 0);
        q.schedule(2.0, 1);
        q.cancel(0);
        assert!(!q.is_scheduled(0));
        assert_eq!(q.pop().unwrap().activity, 1);
        assert!(q.pop().is_none());
    }

    #[test]
    fn reschedule_after_cancel_uses_new_generation() {
        let mut q = EventQueue::new(1);
        q.schedule(5.0, 0);
        q.cancel(0);
        q.schedule(1.0, 0);
        let ev = q.pop().unwrap();
        assert_eq!(ev.time, 1.0);
        assert!(q.pop().is_none());
    }

    #[test]
    #[should_panic(expected = "already scheduled")]
    fn double_schedule_panics() {
        let mut q = EventQueue::new(1);
        q.schedule(1.0, 0);
        q.schedule(2.0, 0);
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new(2);
        q.schedule(1.0, 0);
        q.schedule(2.0, 1);
        q.cancel(0);
        assert_eq!(q.peek_time(), Some(2.0));
        assert_eq!(q.pop().unwrap().activity, 1);
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new(2);
        q.schedule(1.0, 0);
        q.schedule(2.0, 1);
        q.clear();
        assert!(q.pop().is_none());
        assert!(!q.is_scheduled(0));
        q.schedule(4.0, 0);
        assert_eq!(q.pop().unwrap().time, 4.0);
    }

    #[test]
    fn cancel_unscheduled_is_noop() {
        let mut q = EventQueue::new(1);
        q.cancel(0);
        q.schedule(1.0, 0);
        assert_eq!(q.pop().unwrap().time, 1.0);
    }

    #[test]
    fn live_tracks_pending_events() {
        let mut q = EventQueue::new(3);
        assert_eq!(q.live(), 0);
        q.schedule(1.0, 0);
        q.schedule(2.0, 1);
        q.schedule(3.0, 2);
        assert_eq!(q.live(), 3);
        q.cancel(1);
        q.cancel(1); // no-op
        assert_eq!(q.live(), 2);
        q.pop();
        assert_eq!(q.live(), 1);
        q.clear();
        assert_eq!(q.live(), 0);
        q.schedule(4.0, 0);
        assert_eq!(q.live(), 1);
    }
}
