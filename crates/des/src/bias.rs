//! Importance-sampling bias schemes (failure biasing).

use std::collections::HashMap;
use std::sync::Arc;

use ahs_san::{ActivityId, Marking};

/// A change of measure for the Markov (SSA) backend: per-activity rate
/// multipliers, optionally modulated by the current marking.
///
/// With plain Monte Carlo the paper's smallest unsafety levels (around
/// `1e-13`) would require on the order of `1e15` replications. Failure
/// biasing multiplies the rates of selected (failure) activities by a
/// large factor during simulation while the estimator compensates with
/// the exact likelihood ratio, keeping the estimate unbiased — the
/// classical *failure biasing* setup for dependability models.
///
/// A constant boost is a poor measure for transient studies over long
/// horizons: sample paths accumulate many *irrelevant* biased failures
/// whose `1/boost` likelihood factors crush the weights of late hits.
/// [`BiasScheme::with_state_factor`] enables *dynamic* importance
/// sampling: the registered multipliers are additionally scaled by a
/// marking-dependent factor, so the boost can stay moderate in healthy
/// states and spike only where a rare event is one transition away
/// (e.g. while another vehicle's recovery maneuver is in progress).
/// The likelihood-ratio accounting in the simulator is per-state exact
/// either way.
///
/// # Example
///
/// ```
/// use ahs_des::BiasScheme;
/// # use ahs_san::{Delay, SanBuilder};
/// # let mut b = SanBuilder::new("m");
/// # let p = b.place_with_tokens("p", 1).unwrap();
/// # b.timed_activity("fail", Delay::exponential(1e-5)).unwrap().input_place(p).build().unwrap();
/// # let model = b.build().unwrap();
/// let fail = model.find_activity("fail").unwrap();
/// let bias = BiasScheme::new().with_multiplier(fail, 1e3);
/// assert_eq!(bias.multiplier(fail), 1e3);
/// ```
#[derive(Clone, Default)]
pub struct BiasScheme {
    multipliers: HashMap<usize, f64>,
    state_factor: Option<Arc<StateFactorFn>>,
}

/// Marking-dependent bias multiplier applied on top of per-activity ones.
type StateFactorFn = dyn Fn(&Marking) -> f64 + Send + Sync;

impl std::fmt::Debug for BiasScheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BiasScheme")
            .field("multipliers", &self.multipliers.len())
            .field("state_dependent", &self.state_factor.is_some())
            .finish()
    }
}

impl BiasScheme {
    /// Creates an empty (identity) scheme.
    pub fn new() -> Self {
        BiasScheme::default()
    }

    /// Sets the rate multiplier of one activity.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive and finite — a zero multiplier
    /// would make events of positive true probability impossible under
    /// the sampling measure, which breaks the estimator's absolute
    /// continuity requirement.
    pub fn with_multiplier(mut self, activity: ActivityId, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "bias multiplier must be positive and finite, got {factor}"
        );
        self.multipliers.insert(activity.index(), factor);
        self
    }

    /// Sets the same multiplier for several activities.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive and finite.
    pub fn with_multipliers<I>(mut self, activities: I, factor: f64) -> Self
    where
        I: IntoIterator<Item = ActivityId>,
    {
        for a in activities {
            self = self.with_multiplier(a, factor);
        }
        self
    }

    /// Modulates every registered multiplier by a marking-dependent
    /// factor (dynamic importance sampling). The factor applies only
    /// to activities registered through
    /// [`with_multiplier`](BiasScheme::with_multiplier) /
    /// [`with_multipliers`](BiasScheme::with_multipliers);
    /// unregistered activities keep their true rates. The factor must
    /// be positive and finite in every reachable marking.
    #[must_use]
    pub fn with_state_factor<F>(mut self, factor: F) -> Self
    where
        F: Fn(&Marking) -> f64 + Send + Sync + 'static,
    {
        self.state_factor = Some(Arc::new(factor));
        self
    }

    /// The static multiplier of an activity (`1.0` when unbiased),
    /// ignoring any state factor.
    pub fn multiplier(&self, activity: ActivityId) -> f64 {
        self.multipliers
            .get(&activity.index())
            .copied()
            .unwrap_or(1.0)
    }

    /// Evaluates the state factor in `marking` (`1.0` when none is
    /// registered).
    ///
    /// # Panics
    ///
    /// Panics if the factor evaluates to a non-positive or non-finite
    /// value — that would break the estimator's absolute-continuity
    /// requirement.
    pub fn state_factor(&self, marking: &Marking) -> f64 {
        match &self.state_factor {
            None => 1.0,
            Some(f) => {
                let v = f(marking);
                assert!(
                    v.is_finite() && v > 0.0,
                    "state factor must be positive and finite, got {v}"
                );
                v
            }
        }
    }

    /// Effective multiplier of an activity in `marking`.
    pub fn effective_multiplier(&self, activity: ActivityId, marking: &Marking) -> f64 {
        match self.multipliers.get(&activity.index()) {
            None => 1.0,
            Some(base) => base * self.state_factor(marking),
        }
    }

    /// Whether an activity has a registered multiplier (and therefore
    /// participates in the state factor).
    pub fn is_registered(&self, activity: ActivityId) -> bool {
        self.multipliers.contains_key(&activity.index())
    }

    /// Whether the scheme is the identity.
    pub fn is_identity(&self) -> bool {
        self.state_factor.is_none()
            && (self.multipliers.is_empty() || self.multipliers.values().all(|&m| m == 1.0))
    }

    /// Number of activities with a non-default multiplier.
    pub fn len(&self) -> usize {
        self.multipliers.len()
    }

    /// Whether no multipliers are registered.
    pub fn is_empty(&self) -> bool {
        self.multipliers.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ahs_san::{Delay, SanBuilder};

    fn two_activity_model() -> (ahs_san::SanModel, ActivityId, ActivityId) {
        let mut b = SanBuilder::new("m");
        let p = b.place_with_tokens("p", 2).unwrap();
        let a1 = b
            .timed_activity("a1", Delay::exponential(1.0))
            .unwrap()
            .input_place(p)
            .build()
            .unwrap();
        let a2 = b
            .timed_activity("a2", Delay::exponential(1.0))
            .unwrap()
            .input_place(p)
            .build()
            .unwrap();
        (b.build().unwrap(), a1, a2)
    }

    #[test]
    fn default_multiplier_is_one() {
        let (_, a1, a2) = two_activity_model();
        let s = BiasScheme::new().with_multiplier(a1, 50.0);
        assert_eq!(s.multiplier(a1), 50.0);
        assert_eq!(s.multiplier(a2), 1.0);
        assert!(!s.is_identity());
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn identity_detection() {
        let (_, a1, _) = two_activity_model();
        assert!(BiasScheme::new().is_identity());
        assert!(BiasScheme::new().with_multiplier(a1, 1.0).is_identity());
    }

    #[test]
    fn bulk_multipliers() {
        let (_, a1, a2) = two_activity_model();
        let s = BiasScheme::new().with_multipliers([a1, a2], 7.0);
        assert_eq!(s.multiplier(a1), 7.0);
        assert_eq!(s.multiplier(a2), 7.0);
    }

    #[test]
    #[should_panic(expected = "bias multiplier must be positive")]
    fn zero_multiplier_rejected() {
        let (_, a1, _) = two_activity_model();
        let _ = BiasScheme::new().with_multiplier(a1, 0.0);
    }
}
