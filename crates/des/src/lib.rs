//! Simulation engines for stochastic activity networks.
//!
//! Two execution backends, both operating on [`ahs_san::SanModel`]s:
//!
//! * [`EventDrivenSimulator`] — a classical discrete-event executor with
//!   a cancellable event queue; supports every delay distribution.
//! * [`MarkovSimulator`] — a Gillespie/SSA executor for all-exponential
//!   (Markovian) models; supports **importance sampling** through
//!   [`BiasScheme`] rate multipliers with exact likelihood-ratio
//!   accounting, which is what makes the paper's rare unsafety levels
//!   (down to ~1e-13) estimable at all.
//!
//! On top of the executors, [`Study`] runs independent replications —
//! optionally in parallel — until a [`StoppingRule`](ahs_stats::StoppingRule)
//! is satisfied, producing first-passage probability curves such as the
//! paper's unsafety `S(t)`. Two further estimation tools complete the
//! layer: [`SplittingStudy`] (fixed-effort multilevel splitting, an
//! independent rare-event method used for cross-validation) and
//! [`RewardStudy`] (Möbius-style rate/impulse reward variables).
//!
//! # Example
//!
//! ```
//! use ahs_des::{Backend, Study};
//! use ahs_san::{Delay, SanBuilder};
//! use ahs_stats::TimeGrid;
//!
//! // One component failing at rate 0.1/h: S(t) = 1 - exp(-0.1 t).
//! let mut b = SanBuilder::new("single");
//! let up = b.place_with_tokens("up", 1)?;
//! let down = b.place("down")?;
//! b.timed_activity("fail", Delay::exponential(0.1))?
//!     .input_place(up)
//!     .output_place(down)
//!     .build()?;
//! let model = b.build()?;
//!
//! let study = Study::new(model).with_seed(7).with_fixed_replications(4000);
//! let grid = TimeGrid::new(vec![1.0, 5.0, 10.0]);
//! let est = study.first_passage(move |m| m.is_marked(down), &grid, Backend::Markov)?;
//! let s10 = est.curve.points(0.95)[2].y;
//! assert!((s10 - 0.632).abs() < 0.03);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bias;
mod checkpoint;
mod error;
mod event;
mod executor;
mod observer;
mod replay;
mod replication;
mod reward;
mod rng;
mod splitting;
mod ssa;
mod watchdog;

pub use bias::BiasScheme;
pub use checkpoint::{
    generation_path, model_fingerprint, QuarantinedRep, StudyCheckpoint, CHECKPOINT_SCHEMA,
};
pub use error::SimError;
pub use event::{EventQueue, ScheduledEvent};
pub use executor::EventDrivenSimulator;
pub use observer::{NullObserver, Observer, TraceObserver};
pub use replay::{ReplayOutcome, ReplayStep};
pub use replication::{Backend, CurveEstimate, Study};
pub use reward::{RewardSpec, RewardStudy};
pub use rng::{replication_rng, split_seed};
pub use splitting::{SplittingEstimate, SplittingStudy};
pub use ssa::{MarkovSimulator, RunOutcome};
pub use watchdog::Watchdog;
