//! Crash-safe study checkpoints (`ahs-checkpoint/v1`).
//!
//! A replication study is embarrassingly parallel *and* deterministic:
//! replication `i` always draws from `replication_rng(seed, i)` and
//! chunks merge into the result in replication-start order. That makes
//! the whole study resumable from a compact snapshot: the master seed,
//! the completed-replication watermark `W`, and the merged estimator
//! state over replications `[0, W)`. A run resumed from such a
//! checkpoint replays replications `W..` with the same per-replication
//! streams and the same merge order, so its final estimates are
//! **bitwise identical** to an uninterrupted run at any thread count.
//!
//! To guarantee the bitwise part across the serialization boundary, all
//! estimator state is stored as raw IEEE-754 bit patterns (`u64` via
//! `f64::to_bits`) — this also round-trips the ±∞ min/max of empty
//! estimators, which JSON numbers cannot represent. Checkpoints are
//! written atomically (temp file + rename, [`ahs_obs::atomic_write`])
//! so a crash mid-write leaves the previous checkpoint intact.
//!
//! Validation on resume is strict: master seed, chunk size, grid,
//! stopping rule, and a fingerprint of the model structure must all
//! match, otherwise [`SimError::Checkpoint`] explains the drift. See
//! `docs/robustness.md` and `tests/checkpoint.schema.json`.

use std::path::{Path, PathBuf};

use ahs_obs::{write_with_retry, Json, StoppingSpec};
use ahs_san::SanModel;
use ahs_stats::{Curve, RunningStats, TimeGrid, WeightedStats};

use crate::error::SimError;

/// Schema identifier embedded in every checkpoint document.
pub const CHECKPOINT_SCHEMA: &str = "ahs-checkpoint/v1";

/// A replication whose body panicked and was excluded from the
/// estimates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantinedRep {
    /// Deterministic replication index (its RNG stream).
    pub replication: u64,
    /// The panic payload, when it was a string.
    pub message: String,
}

/// A crash-safe snapshot of a running (or finished) study.
#[derive(Debug, Clone)]
pub struct StudyCheckpoint {
    /// Master seed of the study.
    pub seed: u64,
    /// Replications per work chunk (resume requires the same value so
    /// chunk boundaries — and therefore merge order — line up).
    pub chunk: u64,
    /// Replication indices `[0, watermark)` are accounted for
    /// (completed or quarantined) in `curve`.
    pub watermark: u64,
    /// Name of the model under study (informational).
    pub model_name: String,
    /// FNV-1a 64 fingerprint of the model structure; resume refuses a
    /// checkpoint taken from a structurally different model.
    pub model_fingerprint: u64,
    /// Confidence level the study reports at.
    pub confidence: f64,
    /// The stopping rule in force when the checkpoint was taken.
    pub stopping: StoppingSpec,
    /// Merged estimator state over `[0, watermark)`.
    pub curve: Curve,
    /// Replications quarantined so far (all below `watermark`).
    pub quarantined: Vec<QuarantinedRep>,
    /// Watermarks of the checkpoints each prior session resumed from,
    /// oldest first — the resume lineage of this run.
    pub lineage: Vec<u64>,
}

impl StudyCheckpoint {
    /// Serializes the checkpoint as a JSON value.
    pub fn to_json(&self) -> Json {
        let grid = Json::Arr(
            self.curve
                .grid()
                .points()
                .iter()
                .map(|t| Json::Num(*t))
                .collect(),
        );
        let estimators = Json::Arr(
            self.curve
                .estimators()
                .iter()
                .map(estimator_to_json)
                .collect(),
        );
        let quarantined = Json::Arr(
            self.quarantined
                .iter()
                .map(|q| {
                    Json::obj(vec![
                        ("replication", Json::UInt(q.replication)),
                        ("message", Json::str(q.message.clone())),
                    ])
                })
                .collect(),
        );
        let lineage = Json::Arr(self.lineage.iter().map(|w| Json::UInt(*w)).collect());
        Json::obj(vec![
            ("schema", Json::str(CHECKPOINT_SCHEMA)),
            ("seed", Json::UInt(self.seed)),
            ("chunk", Json::UInt(self.chunk)),
            ("watermark", Json::UInt(self.watermark)),
            ("model", Json::str(self.model_name.clone())),
            ("model_fingerprint", Json::UInt(self.model_fingerprint)),
            ("confidence", Json::Num(self.confidence)),
            (
                "stopping",
                Json::obj(vec![
                    ("confidence", Json::Num(self.stopping.confidence)),
                    (
                        "relative_half_width",
                        self.stopping
                            .relative_half_width
                            .map_or(Json::Null, Json::Num),
                    ),
                    ("min_samples", Json::UInt(self.stopping.min_samples)),
                    (
                        "max_samples",
                        self.stopping.max_samples.map_or(Json::Null, Json::UInt),
                    ),
                ]),
            ),
            ("grid", grid),
            ("estimators", estimators),
            ("quarantined", quarantined),
            ("lineage", lineage),
        ])
    }

    /// Writes the checkpoint atomically (temp file + rename) with
    /// bounded retry of transient IO failures; a crash mid-write leaves
    /// any previous checkpoint at `path` intact.
    ///
    /// The `des::checkpoint::save` failpoint lands here: `torn-write`
    /// truncates the document and `corrupt-bytes` damages its header —
    /// both *succeed* on disk, simulating the valid-looking-but-broken
    /// latest generation that [`StudyCheckpoint::load_with_fallback`]
    /// exists to survive.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Checkpoint`] when the file cannot be
    /// written.
    pub fn write(&self, path: &Path) -> Result<(), SimError> {
        let checkpoint_err = |e: std::io::Error| SimError::Checkpoint {
            reason: format!("cannot write {}: {e}", path.display()),
        };
        let mut doc = self.to_json().render();
        doc.push('\n');
        let mut bytes = doc.into_bytes();
        match ahs_inject::fire_io("des::checkpoint::save").map_err(checkpoint_err)? {
            Some(ahs_inject::Fault::TornWrite(n)) => bytes.truncate(n),
            Some(ahs_inject::Fault::CorruptBytes(n)) => ahs_inject::corrupt_prefix(&mut bytes, n),
            _ => {}
        }
        write_with_retry(path, &bytes).map_err(checkpoint_err)
    }

    /// Writes the checkpoint at `path`, first rotating existing
    /// generations (`path` → `<name>.1.<ext>` → `<name>.2.<ext>` …) so
    /// the newest `generations` documents survive. Rotation is
    /// best-effort — a failed rename costs retention depth, never the
    /// checkpoint itself.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Checkpoint`] when the new checkpoint cannot
    /// be written.
    pub fn write_rotated(&self, path: &Path, generations: u32) -> Result<(), SimError> {
        for k in (1..generations).rev() {
            let from = generation_path(path, k - 1);
            if from.exists() {
                std::fs::rename(&from, generation_path(path, k)).ok();
            }
        }
        self.write(path)
    }

    /// Loads and structurally validates a checkpoint written by
    /// [`StudyCheckpoint::write`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Checkpoint`] on IO failure, malformed JSON,
    /// a schema mismatch, or internally inconsistent state.
    pub fn load(path: &Path) -> Result<Self, SimError> {
        let fault =
            ahs_inject::fire_io("des::checkpoint::load").map_err(|e| SimError::Checkpoint {
                reason: format!("cannot read {}: {e}", path.display()),
            })?;
        let mut text = std::fs::read_to_string(path).map_err(|e| SimError::Checkpoint {
            reason: format!("cannot read {}: {e}", path.display()),
        })?;
        if let Some(ahs_inject::Fault::CorruptBytes(n)) = fault {
            let mut bytes = text.into_bytes();
            ahs_inject::corrupt_prefix(&mut bytes, n);
            text = String::from_utf8_lossy(&bytes).into_owned();
        }
        let doc = Json::parse(&text).map_err(|e| SimError::Checkpoint {
            reason: format!("{} is not valid JSON: {e}", path.display()),
        })?;
        Self::from_json(&doc).map_err(|reason| SimError::Checkpoint {
            reason: format!("{}: {reason}", path.display()),
        })
    }

    /// Loads the newest *valid* checkpoint generation: `path` itself
    /// (generation 0), then `<name>.1.<ext>`, … up to
    /// `generations - 1`. Returns the checkpoint and the generation it
    /// came from, so callers can warn (and record `resume_fallback`)
    /// when the latest was corrupt or truncated.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Checkpoint`] listing why every generation
    /// was rejected.
    pub fn load_with_fallback(path: &Path, generations: u32) -> Result<(Self, u32), SimError> {
        let mut reasons = Vec::new();
        for k in 0..generations.max(1) {
            match Self::load(&generation_path(path, k)) {
                Ok(cp) => return Ok((cp, k)),
                Err(e) => reasons.push(format!("generation {k}: {e}")),
            }
        }
        Err(SimError::Checkpoint {
            reason: format!(
                "no valid checkpoint among {} generation(s) of {} — {}",
                generations.max(1),
                path.display(),
                reasons.join("; ")
            ),
        })
    }

    fn from_json(doc: &Json) -> Result<Self, String> {
        let schema = field_str(doc, "schema")?;
        if schema != CHECKPOINT_SCHEMA {
            return Err(format!(
                "schema is `{schema}`, expected `{CHECKPOINT_SCHEMA}`"
            ));
        }
        let seed = field_u64(doc, "seed")?;
        let chunk = field_u64(doc, "chunk")?;
        let watermark = field_u64(doc, "watermark")?;
        let model_name = field_str(doc, "model")?.to_owned();
        let model_fingerprint = field_u64(doc, "model_fingerprint")?;
        let confidence = field_f64(doc, "confidence")?;

        let stopping = doc.get("stopping").ok_or("missing field `stopping`")?;
        let stopping = StoppingSpec {
            confidence: field_f64(stopping, "confidence")?,
            relative_half_width: opt_f64(stopping, "relative_half_width")?,
            min_samples: field_u64(stopping, "min_samples")?,
            max_samples: opt_u64(stopping, "max_samples")?,
        };

        let grid_json = doc
            .get("grid")
            .and_then(Json::as_array)
            .ok_or("missing or non-array field `grid`")?;
        let points: Vec<f64> = grid_json
            .iter()
            .map(|v| v.as_f64().ok_or("non-numeric grid instant"))
            .collect::<Result<_, _>>()?;
        if points.is_empty() {
            return Err("grid is empty".into());
        }
        if points.windows(2).any(|w| w[0] >= w[1])
            || points.iter().any(|t| !t.is_finite() || *t < 0.0)
        {
            return Err("grid is not strictly increasing / finite / non-negative".into());
        }
        let grid = TimeGrid::new(points);

        let est_json = doc
            .get("estimators")
            .and_then(Json::as_array)
            .ok_or("missing or non-array field `estimators`")?;
        if est_json.len() != grid.len() {
            return Err(format!(
                "{} estimators for {} grid points",
                est_json.len(),
                grid.len()
            ));
        }
        let estimators: Vec<WeightedStats> = est_json
            .iter()
            .map(estimator_from_json)
            .collect::<Result<_, _>>()?;
        if estimators
            .iter()
            .any(|e| e.count() != estimators[0].count())
        {
            return Err("estimator sample counts disagree across grid points".into());
        }
        let curve = Curve::from_parts(grid, estimators);

        let quarantined = match doc.get("quarantined").and_then(Json::as_array) {
            None => Vec::new(),
            Some(items) => items
                .iter()
                .map(|q| {
                    Ok(QuarantinedRep {
                        replication: field_u64(q, "replication")?,
                        message: field_str(q, "message")?.to_owned(),
                    })
                })
                .collect::<Result<_, String>>()?,
        };
        if quarantined.iter().any(|q| q.replication >= watermark) {
            return Err("quarantined replication at or beyond the watermark".into());
        }
        if curve.samples() + quarantined.len() as u64 != watermark {
            return Err(format!(
                "{} samples + {} quarantined do not account for watermark {watermark}",
                curve.samples(),
                quarantined.len()
            ));
        }

        let lineage = match doc.get("lineage").and_then(Json::as_array) {
            None => Vec::new(),
            Some(items) => items
                .iter()
                .map(|v| v.as_u64().ok_or("non-integer lineage watermark"))
                .collect::<Result<_, _>>()?,
        };

        Ok(StudyCheckpoint {
            seed,
            chunk,
            watermark,
            model_name,
            model_fingerprint,
            confidence,
            stopping,
            curve,
            quarantined,
            lineage,
        })
    }
}

/// The path of checkpoint generation `k`: generation 0 is `path`
/// itself; older generations insert `.k` before the final extension
/// (`run.ckpt.json` → `run.ckpt.1.json`), or append `.k` when there is
/// none.
pub fn generation_path(path: &Path, generation: u32) -> PathBuf {
    if generation == 0 {
        return path.to_path_buf();
    }
    match path.extension().and_then(|e| e.to_str()) {
        Some(ext) => path.with_extension(format!("{generation}.{ext}")),
        None => {
            let mut name = path.as_os_str().to_os_string();
            name.push(format!(".{generation}"));
            PathBuf::from(name)
        }
    }
}

/// FNV-1a 64 fingerprint of a model's structure: name, places with
/// initial tokens, activities with their timing (including constant
/// delay parameters), arcs, and case distributions. Resuming a
/// checkpoint against a model with a different fingerprint is refused —
/// the replication streams would no longer mean the same thing.
///
/// Marking-dependent rate/probability closures cannot be hashed; they
/// contribute only their presence, so two models differing *only* in
/// the body of such a closure collide. Constant-parameter models (all
/// of the paper's) are fully covered.
pub fn model_fingerprint(model: &SanModel) -> u64 {
    use std::fmt::Write as _;
    let mut dump = String::new();
    let _ = write!(dump, "model:{};", model.name());
    let initial = model.initial_marking();
    for p in model.place_ids() {
        // `value` covers simple and extended (array) places alike;
        // `tokens` would panic on the latter.
        let _ = write!(
            dump,
            "place:{}={:?};",
            model.place_name(p),
            initial.value(p)
        );
    }
    for a in model.activities() {
        let _ = write!(
            dump,
            "act:{}:{:?}:in{:?}:ig{:?};",
            a.name(),
            a.timing(),
            a.input_arcs(),
            a.input_gates()
        );
        for c in a.cases() {
            let _ = write!(
                dump,
                "case:{:?}:out{:?}:og{:?};",
                c.probability_spec(),
                c.output_arcs(),
                c.output_gates()
            );
        }
    }

    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = FNV_OFFSET;
    for byte in dump.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Estimator state as raw bit patterns: exact round-trip for every
/// `f64`, including the ±∞ min/max of an empty estimator.
fn estimator_to_json(e: &WeightedStats) -> Json {
    let p = e.product_stats();
    Json::obj(vec![
        ("count", Json::UInt(p.count())),
        ("mean_bits", Json::UInt(p.mean().to_bits())),
        ("m2_bits", Json::UInt(p.m2().to_bits())),
        ("min_bits", Json::UInt(p.min().to_bits())),
        ("max_bits", Json::UInt(p.max().to_bits())),
        ("weight_sum_bits", Json::UInt(e.weight_sum().to_bits())),
        (
            "weight_sq_sum_bits",
            Json::UInt(e.weight_sq_sum().to_bits()),
        ),
    ])
}

fn estimator_from_json(v: &Json) -> Result<WeightedStats, String> {
    let bits = |key: &str| -> Result<f64, String> { Ok(f64::from_bits(field_u64(v, key)?)) };
    let count = field_u64(v, "count")?;
    let m2 = bits("m2_bits")?;
    if m2 < 0.0 || m2.is_nan() {
        return Err(format!("negative or NaN m2 ({m2}) in estimator state"));
    }
    let product = RunningStats::from_parts(
        count,
        bits("mean_bits")?,
        m2,
        bits("min_bits")?,
        bits("max_bits")?,
    );
    Ok(WeightedStats::from_parts(
        product,
        bits("weight_sum_bits")?,
        bits("weight_sq_sum_bits")?,
    ))
}

fn field_str<'a>(v: &'a Json, key: &str) -> Result<&'a str, String> {
    v.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("missing or non-string field `{key}`"))
}

fn field_u64(v: &Json, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing or non-integer field `{key}`"))
}

fn field_f64(v: &Json, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("missing or non-numeric field `{key}`"))
}

fn opt_f64(v: &Json, key: &str) -> Result<Option<f64>, String> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(x) => x
            .as_f64()
            .map(Some)
            .ok_or_else(|| format!("non-numeric field `{key}`")),
    }
}

fn opt_u64(v: &Json, key: &str) -> Result<Option<u64>, String> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(x) => x
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("non-integer field `{key}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ahs_stats::TimeGrid;

    fn sample_checkpoint() -> StudyCheckpoint {
        let grid = TimeGrid::new(vec![1.0, 2.5, 4.0]);
        let mut curve = Curve::new(grid);
        curve.record_first_passage(Some(0.7), 1.0);
        curve.record_first_passage(None, 1.0);
        curve.record_first_passage(Some(3.0), 0.125);
        StudyCheckpoint {
            seed: 0xDEAD_BEEF,
            chunk: 2,
            watermark: 4,
            model_name: "fixture".into(),
            model_fingerprint: 0x1234_5678_9ABC_DEF0,
            confidence: 0.95,
            stopping: StoppingSpec {
                confidence: 0.95,
                relative_half_width: Some(0.1),
                min_samples: 2,
                max_samples: Some(4),
            },
            curve,
            quarantined: vec![QuarantinedRep {
                replication: 3,
                message: "injected panic".into(),
            }],
            lineage: vec![2],
        }
    }

    #[test]
    fn round_trips_bitwise_through_disk() {
        let cp = sample_checkpoint();
        let dir = std::env::temp_dir().join("ahs-checkpoint-roundtrip");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cp.json");
        cp.write(&path).unwrap();
        let back = StudyCheckpoint::load(&path).unwrap();
        std::fs::remove_file(&path).ok();

        assert_eq!(back.seed, cp.seed);
        assert_eq!(back.chunk, cp.chunk);
        assert_eq!(back.watermark, cp.watermark);
        assert_eq!(back.model_fingerprint, cp.model_fingerprint);
        assert_eq!(back.stopping, cp.stopping);
        assert_eq!(back.quarantined, cp.quarantined);
        assert_eq!(back.lineage, cp.lineage);
        assert_eq!(back.curve.grid(), cp.curve.grid());
        // Bit-for-bit estimator state — resume correctness depends on it.
        assert_eq!(back.curve.estimators(), cp.curve.estimators());
    }

    #[test]
    fn empty_estimators_round_trip_their_infinities() {
        let mut cp = sample_checkpoint();
        cp.curve = Curve::new(cp.curve.grid().clone());
        cp.watermark = 1;
        cp.quarantined = vec![QuarantinedRep {
            replication: 0,
            message: "all quarantined".into(),
        }];
        let doc = cp.to_json().render();
        let back = StudyCheckpoint::from_json(&Json::parse(&doc).unwrap()).unwrap();
        assert_eq!(back.curve.estimators(), cp.curve.estimators());
        assert!(back.curve.estimator(0).product_stats().min().is_infinite());
    }

    #[test]
    fn rejects_wrong_schema_and_inconsistent_state() {
        let cp = sample_checkpoint();
        let mut doc = cp.to_json();
        if let Json::Obj(fields) = &mut doc {
            fields[0].1 = Json::str("ahs-checkpoint/v0");
        }
        assert!(StudyCheckpoint::from_json(&doc).is_err());

        let mut doc = cp.to_json();
        if let Json::Obj(fields) = &mut doc {
            // Watermark no longer accounted for by samples + quarantined.
            fields[3].1 = Json::UInt(40);
        }
        let err = StudyCheckpoint::from_json(&doc).unwrap_err();
        assert!(err.contains("watermark"), "{err}");
    }

    #[test]
    fn load_surfaces_io_and_parse_errors_as_checkpoint_errors() {
        let missing = StudyCheckpoint::load(Path::new("/nonexistent/cp.json"));
        assert!(matches!(missing, Err(SimError::Checkpoint { .. })));

        let dir = std::env::temp_dir().join("ahs-checkpoint-bad");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.json");
        std::fs::write(&path, b"{not json").unwrap();
        let bad = StudyCheckpoint::load(&path);
        std::fs::remove_file(&path).ok();
        match bad {
            Err(SimError::Checkpoint { reason }) => {
                assert!(reason.contains("not valid JSON"), "{reason}");
            }
            other => panic!("expected Checkpoint error, got {other:?}"),
        }
    }

    #[test]
    fn generation_paths_insert_before_the_final_extension() {
        let p = Path::new("out/run.ckpt.json");
        assert_eq!(generation_path(p, 0), PathBuf::from("out/run.ckpt.json"));
        assert_eq!(generation_path(p, 1), PathBuf::from("out/run.ckpt.1.json"));
        assert_eq!(generation_path(p, 2), PathBuf::from("out/run.ckpt.2.json"));
        assert_eq!(
            generation_path(Path::new("bare"), 1),
            PathBuf::from("bare.1")
        );
    }

    #[test]
    fn rotation_retains_previous_generations() {
        let dir =
            std::env::temp_dir().join(format!("ahs-checkpoint-rotate-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let path = dir.join("run.ckpt.json");
        let mut cp = sample_checkpoint();
        cp.write_rotated(&path, 3).unwrap();
        cp.seed = 0xFACE;
        cp.write_rotated(&path, 3).unwrap();
        cp.seed = 0xBEEF;
        cp.write_rotated(&path, 3).unwrap();
        assert_eq!(StudyCheckpoint::load(&path).unwrap().seed, 0xBEEF);
        assert_eq!(
            StudyCheckpoint::load(&generation_path(&path, 1))
                .unwrap()
                .seed,
            0xFACE
        );
        assert_eq!(
            StudyCheckpoint::load(&generation_path(&path, 2))
                .unwrap()
                .seed,
            0xDEAD_BEEF
        );
        // A fourth write with the same depth drops the oldest.
        cp.seed = 1;
        cp.write_rotated(&path, 3).unwrap();
        assert_eq!(
            StudyCheckpoint::load(&generation_path(&path, 2))
                .unwrap()
                .seed,
            0xFACE
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fallback_load_survives_a_corrupt_latest_generation() {
        let dir =
            std::env::temp_dir().join(format!("ahs-checkpoint-fallback-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let path = dir.join("run.ckpt.json");
        let cp = sample_checkpoint();
        cp.write_rotated(&path, 2).unwrap();
        cp.write_rotated(&path, 2).unwrap();

        // Pristine latest: generation 0 wins.
        let (_, generation) = StudyCheckpoint::load_with_fallback(&path, 2).unwrap();
        assert_eq!(generation, 0);

        // Truncate the latest mid-document: fall back to generation 1,
        // bitwise-equal to what was checkpointed.
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        let (back, generation) = StudyCheckpoint::load_with_fallback(&path, 2).unwrap();
        assert_eq!(generation, 1);
        assert_eq!(back.curve.estimators(), cp.curve.estimators());

        // Corrupt *both* generations: a typed error naming each reason.
        std::fs::write(generation_path(&path, 1), b"{broken").unwrap();
        let err = StudyCheckpoint::load_with_fallback(&path, 2).unwrap_err();
        match err {
            SimError::Checkpoint { reason } => {
                assert!(reason.contains("generation 0"), "{reason}");
                assert!(reason.contains("generation 1"), "{reason}");
            }
            other => panic!("expected Checkpoint error, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fingerprint_distinguishes_models() {
        use ahs_san::{Delay, SanBuilder};
        let build = |rate: f64| {
            let mut b = SanBuilder::new("fp");
            let up = b.place_with_tokens("up", 1).unwrap();
            let down = b.place("down").unwrap();
            b.timed_activity("fail", Delay::exponential(rate))
                .unwrap()
                .input_place(up)
                .output_place(down)
                .build()
                .unwrap();
            b.build().unwrap()
        };
        let a = build(1.0);
        assert_eq!(model_fingerprint(&a), model_fingerprint(&build(1.0)));
        assert_ne!(model_fingerprint(&a), model_fingerprint(&build(2.0)));
    }
}
