//! Breadth-first state-space exploration.

use std::collections::HashMap;
use std::hash::Hash;

use crate::error::CtmcError;
use crate::sparse::SparseMatrix;

/// A continuous-time Markov model described by its transition function.
///
/// `transitions` returns rate-weighted successors; several entries may
/// lead to the same state (they are summed). Self-loops are permitted
/// and ignored (they do not change the CTMC's law).
pub trait MarkovModel {
    /// The state type.
    type State: Clone + Eq + Hash;

    /// The initial probability distribution (must sum to 1).
    fn initial_states(&self) -> Vec<(Self::State, f64)>;

    /// Outgoing transitions of `state` as `(successor, rate)` pairs.
    fn transitions(&self, state: &Self::State) -> Vec<(Self::State, f64)>;
}

/// An explored, indexed state space with its generator in sparse form.
#[derive(Debug, Clone)]
pub struct StateSpace<S> {
    states: Vec<S>,
    initial: Vec<f64>,
    /// Off-diagonal generator rates, row = source state.
    rates: SparseMatrix,
    /// Total exit rate per state.
    exit_rates: Vec<f64>,
}

impl<S: Clone + Eq + Hash> StateSpace<S> {
    /// Explores the reachable state space of `model`, up to
    /// `max_states` states.
    ///
    /// # Errors
    ///
    /// Returns [`CtmcError::StateSpaceTooLarge`] when the budget is
    /// exceeded and [`CtmcError::InvalidRate`] on a negative or
    /// non-finite rate.
    pub fn explore<M>(model: &M, max_states: usize) -> Result<Self, CtmcError>
    where
        M: MarkovModel<State = S>,
    {
        let mut index: HashMap<S, usize> = HashMap::new();
        let mut states: Vec<S> = Vec::new();
        let mut initial_pairs: Vec<(usize, f64)> = Vec::new();

        let intern = |s: S, states: &mut Vec<S>, index: &mut HashMap<S, usize>| -> usize {
            if let Some(&i) = index.get(&s) {
                return i;
            }
            let i = states.len();
            index.insert(s.clone(), i);
            states.push(s);
            i
        };

        for (s, p) in model.initial_states() {
            let i = intern(s, &mut states, &mut index);
            initial_pairs.push((i, p));
        }

        let mut triplets: Vec<(usize, usize, f64)> = Vec::new();
        let mut frontier = 0usize;
        while frontier < states.len() {
            if states.len() > max_states {
                return Err(CtmcError::StateSpaceTooLarge { budget: max_states });
            }
            let state = states[frontier].clone();
            for (succ, rate) in model.transitions(&state) {
                if !rate.is_finite() || rate < 0.0 {
                    return Err(CtmcError::InvalidRate { rate });
                }
                if rate == 0.0 {
                    continue;
                }
                let j = intern(succ, &mut states, &mut index);
                if j != frontier {
                    triplets.push((frontier, j, rate));
                }
            }
            frontier += 1;
        }
        if states.len() > max_states {
            return Err(CtmcError::StateSpaceTooLarge { budget: max_states });
        }

        let n = states.len();
        let rates = SparseMatrix::from_triplets(n, triplets);
        let exit_rates = rates.row_sums();
        let mut initial = vec![0.0; n];
        for (i, p) in initial_pairs {
            initial[i] += p;
        }
        Ok(StateSpace {
            states,
            initial,
            rates,
            exit_rates,
        })
    }

    /// Explores the reachable state space like
    /// [`StateSpace::explore`], but *truncates* instead of failing when
    /// the budget is exceeded: successors that would create a state
    /// beyond `max_states` are dropped, and the returned flag reports
    /// whether exploration was `complete` (`true`) or truncated
    /// (`false`).
    ///
    /// A truncated space is a sound under-approximation of
    /// reachability: every state in it is genuinely reachable, but
    /// transitions out of the kept set (and anything beyond) are
    /// absent. This is the form the `ahs-lint` reachability passes
    /// consume — a partial answer with an explicit "incomplete" marker
    /// beats an all-or-nothing error for diagnostics.
    ///
    /// # Errors
    ///
    /// Returns [`CtmcError::InvalidRate`] on a negative or non-finite
    /// rate.
    pub fn explore_truncated<M>(model: &M, max_states: usize) -> Result<(Self, bool), CtmcError>
    where
        M: MarkovModel<State = S>,
    {
        let mut index: HashMap<S, usize> = HashMap::new();
        let mut states: Vec<S> = Vec::new();
        let mut initial_pairs: Vec<(usize, f64)> = Vec::new();
        let mut complete = true;

        for (s, p) in model.initial_states() {
            let i = match index.get(&s) {
                Some(&i) => i,
                None if states.len() < max_states => {
                    let i = states.len();
                    index.insert(s.clone(), i);
                    states.push(s);
                    i
                }
                None => {
                    complete = false;
                    continue;
                }
            };
            initial_pairs.push((i, p));
        }

        let mut triplets: Vec<(usize, usize, f64)> = Vec::new();
        let mut frontier = 0usize;
        while frontier < states.len() {
            let state = states[frontier].clone();
            for (succ, rate) in model.transitions(&state) {
                if !rate.is_finite() || rate < 0.0 {
                    return Err(CtmcError::InvalidRate { rate });
                }
                if rate == 0.0 {
                    continue;
                }
                let j = match index.get(&succ) {
                    Some(&j) => j,
                    None if states.len() < max_states => {
                        let j = states.len();
                        index.insert(succ.clone(), j);
                        states.push(succ);
                        j
                    }
                    None => {
                        complete = false;
                        continue;
                    }
                };
                if j != frontier {
                    triplets.push((frontier, j, rate));
                }
            }
            frontier += 1;
        }

        let n = states.len();
        let rates = SparseMatrix::from_triplets(n, triplets);
        let exit_rates = rates.row_sums();
        let mut initial = vec![0.0; n];
        for (i, p) in initial_pairs {
            initial[i] += p;
        }
        Ok((
            StateSpace {
                states,
                initial,
                rates,
                exit_rates,
            },
            complete,
        ))
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Whether the space is empty (never true after exploration).
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// The states, in exploration order.
    pub fn states(&self) -> &[S] {
        &self.states
    }

    /// The initial distribution, index-aligned with
    /// [`states`](StateSpace::states).
    pub fn initial(&self) -> &[f64] {
        &self.initial
    }

    /// Off-diagonal rate matrix.
    pub fn rates(&self) -> &SparseMatrix {
        &self.rates
    }

    /// Exit rate of each state.
    pub fn exit_rates(&self) -> &[f64] {
        &self.exit_rates
    }

    /// Iterates over every off-diagonal transition as
    /// `(source, target, rate)` index triples, row by row. This is the
    /// transition *structure* of the generator — the form external
    /// tools (the `ahs-check` cross-validation) compare against an
    /// independently explored graph.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.len()).flat_map(move |r| self.rates.row(r).map(move |(c, v)| (r, c, v)))
    }

    /// Largest exit rate (the uniformization constant is slightly above
    /// this).
    pub fn max_exit_rate(&self) -> f64 {
        self.exit_rates.iter().copied().fold(0.0, f64::max)
    }

    /// Sums a distribution over the states satisfying `pred`.
    pub fn probability<F>(&self, distribution: &[f64], pred: F) -> f64
    where
        F: Fn(&S) -> bool,
    {
        self.states
            .iter()
            .zip(distribution.iter())
            .filter(|(s, _)| pred(s))
            .map(|(_, p)| p)
            .sum()
    }

    /// Returns a copy of the space where every state satisfying `pred`
    /// is made absorbing (outgoing rates removed). The transient mass in
    /// those states is then the first-passage probability — the form of
    /// the paper's unsafety measure.
    pub fn absorbing<F>(&self, pred: F) -> Self
    where
        F: Fn(&S) -> bool,
    {
        let n = self.len();
        let absorb: Vec<bool> = self.states.iter().map(pred).collect();
        let triplets = (0..n)
            .filter(|&r| !absorb[r])
            .flat_map(|r| self.rates.row(r).map(move |(c, v)| (r, c, v)))
            .collect::<Vec<_>>();
        let rates = SparseMatrix::from_triplets(n, triplets);
        let exit_rates = rates.row_sums();
        StateSpace {
            states: self.states.clone(),
            initial: self.initial.clone(),
            rates,
            exit_rates,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Birth-death chain on 0..=cap with birth rate λ, death rate μ.
    struct BirthDeath {
        cap: u32,
        lambda: f64,
        mu: f64,
    }

    impl MarkovModel for BirthDeath {
        type State = u32;
        fn initial_states(&self) -> Vec<(u32, f64)> {
            vec![(0, 1.0)]
        }
        fn transitions(&self, s: &u32) -> Vec<(u32, f64)> {
            let mut out = Vec::new();
            if *s < self.cap {
                out.push((s + 1, self.lambda));
            }
            if *s > 0 {
                out.push((s - 1, self.mu));
            }
            out
        }
    }

    #[test]
    fn explores_full_chain() {
        let m = BirthDeath {
            cap: 5,
            lambda: 1.0,
            mu: 2.0,
        };
        let space = StateSpace::explore(&m, 100).unwrap();
        assert_eq!(space.len(), 6);
        assert_eq!(space.initial()[0], 1.0);
        // Interior states have exit rate λ+μ.
        let idx2 = space.states().iter().position(|&s| s == 2).unwrap();
        assert!((space.exit_rates()[idx2] - 3.0).abs() < 1e-12);
        assert!((space.max_exit_rate() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn budget_enforced() {
        let m = BirthDeath {
            cap: 1000,
            lambda: 1.0,
            mu: 1.0,
        };
        assert!(matches!(
            StateSpace::explore(&m, 10),
            Err(CtmcError::StateSpaceTooLarge { budget: 10 })
        ));
    }

    #[test]
    fn absorbing_removes_outflow() {
        let m = BirthDeath {
            cap: 3,
            lambda: 1.0,
            mu: 1.0,
        };
        let space = StateSpace::explore(&m, 100).unwrap();
        let abs = space.absorbing(|&s| s == 3);
        let idx3 = abs.states().iter().position(|&s| s == 3).unwrap();
        assert_eq!(abs.exit_rates()[idx3], 0.0);
        // Other states untouched.
        let idx1 = abs.states().iter().position(|&s| s == 1).unwrap();
        assert!((abs.exit_rates()[idx1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn self_loops_are_dropped() {
        struct Loopy;
        impl MarkovModel for Loopy {
            type State = u8;
            fn initial_states(&self) -> Vec<(u8, f64)> {
                vec![(0, 1.0)]
            }
            fn transitions(&self, s: &u8) -> Vec<(u8, f64)> {
                if *s == 0 {
                    vec![(0, 5.0), (1, 1.0)]
                } else {
                    vec![]
                }
            }
        }
        let space = StateSpace::explore(&Loopy, 10).unwrap();
        assert_eq!(space.len(), 2);
        assert!((space.exit_rates()[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn invalid_rate_rejected() {
        struct Bad;
        impl MarkovModel for Bad {
            type State = u8;
            fn initial_states(&self) -> Vec<(u8, f64)> {
                vec![(0, 1.0)]
            }
            fn transitions(&self, _: &u8) -> Vec<(u8, f64)> {
                vec![(1, -3.0)]
            }
        }
        assert!(matches!(
            StateSpace::explore(&Bad, 10),
            Err(CtmcError::InvalidRate { .. })
        ));
    }
}
