//! Transient solution by uniformization.

use std::hash::Hash;

use crate::explore::StateSpace;
use crate::sparse::SparseMatrix;

/// Computes normalized Poisson(λ) weights over a truncated support
/// `[left, left + weights.len())`, Fox–Glynn style: the recurrence is
/// anchored at the mode so that no intermediate value under- or
/// overflows, then normalized to sum to one.
///
/// Returns `(left, weights)`. The truncation discards total mass below
/// roughly `tol`.
///
/// # Panics
///
/// Panics if `lambda` is negative or non-finite, or `tol` is not in
/// `(0, 1)`.
pub fn poisson_weights(lambda: f64, tol: f64) -> (usize, Vec<f64>) {
    assert!(
        lambda.is_finite() && lambda >= 0.0,
        "lambda must be non-negative"
    );
    assert!(tol > 0.0 && tol < 1.0, "tolerance must be in (0, 1)");
    if lambda == 0.0 {
        return (0, vec![1.0]);
    }
    let mode = lambda.floor() as usize;

    // Unnormalized weights anchored at w[mode] = 1.
    // Going right: w_{k+1} = w_k * λ / (k+1); left: w_{k-1} = w_k * k / λ.
    // Expand until the edge weight is below `cut` relative to the mode.
    let cut = tol * 1e-4;
    let mut right = vec![1.0_f64];
    let mut k = mode;
    loop {
        let w = right.last().copied().expect("non-empty");
        let next = w * lambda / (k + 1) as f64;
        if next < cut && k > mode + (4.0 * lambda.sqrt()) as usize {
            break;
        }
        right.push(next);
        k += 1;
        if k > mode + 10_000_000 {
            break; // hard stop; unreachable for sane inputs
        }
    }
    let mut left_side = Vec::new();
    let mut w = 1.0_f64;
    let mut k = mode;
    while k > 0 {
        w *= k as f64 / lambda;
        if w < cut && (mode - k) as f64 > 4.0 * lambda.sqrt() {
            break;
        }
        left_side.push(w);
        k -= 1;
    }
    let left = k;
    let mut weights: Vec<f64> = left_side.into_iter().rev().collect();
    weights.extend(right);
    let total: f64 = weights.iter().sum();
    for w in &mut weights {
        *w /= total;
    }
    (left, weights)
}

/// Computes the transient distribution `π(t)` of an explored CTMC by
/// uniformization:
/// `π(t) = Σ_k Poisson(qt; k) · π(0) Pᵏ` with `P = I + Q/q`.
///
/// Accurate to roughly `tol` in total variation. Cost is
/// `O(nnz · (qt + sqrt(qt)))`.
///
/// # Panics
///
/// Panics if `t` is negative or non-finite, or `tol` is not in `(0, 1)`.
pub fn transient_distribution<S: Clone + Eq + Hash>(
    space: &StateSpace<S>,
    t: f64,
    tol: f64,
) -> Vec<f64> {
    assert!(t.is_finite() && t >= 0.0, "time must be non-negative");
    let n = space.len();
    if t == 0.0 {
        return space.initial().to_vec();
    }
    let q = space.max_exit_rate() * 1.02 + 1e-12;
    let p = uniformized_matrix(space, q);

    let (left, weights) = poisson_weights(q * t, tol);
    let mut vec = space.initial().to_vec();
    let mut scratch = vec![0.0; n];
    let mut result = vec![0.0; n];

    // Advance to the left truncation point.
    for _ in 0..left {
        p.vec_mul(&vec, &mut scratch);
        std::mem::swap(&mut vec, &mut scratch);
    }
    for (i, w) in weights.iter().enumerate() {
        for (r, v) in result.iter_mut().zip(vec.iter()) {
            *r += w * v;
        }
        if i + 1 < weights.len() {
            p.vec_mul(&vec, &mut scratch);
            std::mem::swap(&mut vec, &mut scratch);
        }
    }
    result
}

/// Builds `P = I + Q/q` for the explored space.
pub(crate) fn uniformized_matrix<S: Clone + Eq + Hash>(
    space: &StateSpace<S>,
    q: f64,
) -> SparseMatrix {
    let n = space.len();
    let mut triplets = Vec::with_capacity(space.rates().nnz() + n);
    for r in 0..n {
        let diag = 1.0 - space.exit_rates()[r] / q;
        triplets.push((r, r, diag));
        for (c, v) in space.rates().row(r) {
            triplets.push((r, c, v / q));
        }
    }
    SparseMatrix::from_triplets(n, triplets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::MarkovModel;

    struct TwoState {
        fail: f64,
        repair: f64,
    }
    impl MarkovModel for TwoState {
        type State = bool;
        fn initial_states(&self) -> Vec<(bool, f64)> {
            vec![(true, 1.0)]
        }
        fn transitions(&self, s: &bool) -> Vec<(bool, f64)> {
            if *s {
                vec![(false, self.fail)]
            } else {
                vec![(true, self.repair)]
            }
        }
    }

    #[test]
    fn poisson_weights_sum_to_one_and_match_direct() {
        for &lam in &[0.1, 1.0, 7.3, 50.0, 2000.0] {
            let (left, w) = poisson_weights(lam, 1e-12);
            let sum: f64 = w.iter().sum();
            assert!((sum - 1.0).abs() < 1e-12, "λ={lam}");
            if lam <= 10.0 {
                // Compare a few entries with the direct formula.
                for (i, &wi) in w.iter().enumerate() {
                    let k = left + i;
                    let direct = (-lam + (k as f64) * lam.ln() - ln_factorial(k)).exp();
                    assert!(
                        (wi - direct).abs() < 1e-9,
                        "λ={lam} k={k}: {wi} vs {direct}"
                    );
                }
            }
        }
    }

    fn ln_factorial(k: usize) -> f64 {
        (1..=k).map(|i| (i as f64).ln()).sum()
    }

    #[test]
    fn poisson_zero_lambda() {
        let (left, w) = poisson_weights(0.0, 1e-10);
        assert_eq!(left, 0);
        assert_eq!(w, vec![1.0]);
    }

    #[test]
    fn two_state_availability_matches_closed_form() {
        let (lam, mu) = (1.0, 4.0);
        let m = TwoState {
            fail: lam,
            repair: mu,
        };
        let space = crate::StateSpace::explore(&m, 10).unwrap();
        for &t in &[0.0, 0.1, 0.5, 2.0, 10.0] {
            let pi = transient_distribution(&space, t, 1e-12);
            let p_down = space.probability(&pi, |s| !*s);
            let exact = lam / (lam + mu) * (1.0 - (-(lam + mu) * t).exp());
            assert!((p_down - exact).abs() < 1e-9, "t={t}: {p_down} vs {exact}");
            let total: f64 = pi.iter().sum();
            assert!((total - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn large_qt_does_not_underflow() {
        // Rates of 500/h over t=10 → qt ≈ 5100, where naive e^{-qt}
        // underflows to zero.
        let m = TwoState {
            fail: 500.0,
            repair: 500.0,
        };
        let space = crate::StateSpace::explore(&m, 10).unwrap();
        let pi = transient_distribution(&space, 10.0, 1e-10);
        let p_down = space.probability(&pi, |s| !*s);
        assert!((p_down - 0.5).abs() < 1e-6, "p_down={p_down}");
    }

    #[test]
    fn first_passage_via_absorbing_chain() {
        // Pure failure chain: up -> down at rate λ; absorbing at down.
        let m = TwoState {
            fail: 0.3,
            repair: 100.0,
        };
        let space = crate::StateSpace::explore(&m, 10).unwrap();
        let abs = space.absorbing(|s| !*s);
        let pi = transient_distribution(&abs, 2.0, 1e-12);
        let p_hit = abs.probability(&pi, |s| !*s);
        let exact = 1.0 - (-0.3_f64 * 2.0).exp();
        assert!((p_hit - exact).abs() < 1e-9, "{p_hit} vs {exact}");
    }
}
