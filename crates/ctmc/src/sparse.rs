//! Compressed-sparse-row matrices for CTMC generators.

/// A CSR sparse matrix of `f64` entries.
///
/// Used to store uniformized transition-probability matrices; the only
/// operations the solvers need are row iteration and `xᵀ·M` products.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseMatrix {
    n: usize,
    row_ptr: Vec<usize>,
    cols: Vec<usize>,
    vals: Vec<f64>,
}

impl SparseMatrix {
    /// Builds an `n × n` matrix from `(row, col, value)` triplets.
    /// Duplicate coordinates are summed; explicit zeros are dropped.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of range.
    pub fn from_triplets(
        n: usize,
        triplets: impl IntoIterator<Item = (usize, usize, f64)>,
    ) -> Self {
        let mut per_row: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
        for (r, c, v) in triplets {
            assert!(r < n && c < n, "triplet ({r}, {c}) out of range for n={n}");
            if v != 0.0 {
                per_row[r].push((c, v));
            }
        }
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut cols = Vec::new();
        let mut vals = Vec::new();
        row_ptr.push(0);
        for row in &mut per_row {
            row.sort_unstable_by_key(|(c, _)| *c);
            let mut last: Option<usize> = None;
            for &(c, v) in row.iter() {
                if last == Some(c) {
                    *vals.last_mut().expect("entry exists") += v;
                } else {
                    cols.push(c);
                    vals.push(v);
                    last = Some(c);
                }
            }
            row_ptr.push(cols.len());
        }
        SparseMatrix {
            n,
            row_ptr,
            cols,
            vals,
        }
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Iterates the `(col, value)` entries of one row.
    ///
    /// # Panics
    ///
    /// Panics if `row >= n`.
    pub fn row(&self, row: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let lo = self.row_ptr[row];
        let hi = self.row_ptr[row + 1];
        self.cols[lo..hi]
            .iter()
            .copied()
            .zip(self.vals[lo..hi].iter().copied())
    }

    /// Computes `out = xᵀ · M` (row-vector times matrix), the kernel of
    /// forward transient/steady-state iteration.
    ///
    /// # Panics
    ///
    /// Panics if dimensions disagree.
    pub fn vec_mul(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.n, "input length mismatch");
        assert_eq!(out.len(), self.n, "output length mismatch");
        out.fill(0.0);
        for (r, &xr) in x.iter().enumerate() {
            if xr == 0.0 {
                continue;
            }
            for (c, v) in self.row(r) {
                out[c] += xr * v;
            }
        }
    }

    /// Sum of each row (diagnostic: rows of a stochastic matrix sum to
    /// 1).
    pub fn row_sums(&self) -> Vec<f64> {
        (0..self.n)
            .map(|r| self.row(r).map(|(_, v)| v).sum())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triplets_build_and_dedupe() {
        let m = SparseMatrix::from_triplets(
            3,
            vec![(0, 1, 2.0), (0, 1, 3.0), (2, 0, 1.0), (1, 1, 0.0)],
        );
        assert_eq!(m.n(), 3);
        assert_eq!(m.nnz(), 2);
        let row0: Vec<_> = m.row(0).collect();
        assert_eq!(row0, vec![(1, 5.0)]);
        assert!(m.row(1).next().is_none());
    }

    #[test]
    fn vec_mul_matches_dense() {
        // M = [[0, 1], [2, 3]] as triplets.
        let m = SparseMatrix::from_triplets(2, vec![(0, 1, 1.0), (1, 0, 2.0), (1, 1, 3.0)]);
        let x = [5.0, 7.0];
        let mut out = [0.0; 2];
        m.vec_mul(&x, &mut out);
        // xM = [5*0 + 7*2, 5*1 + 7*3] = [14, 26]
        assert_eq!(out, [14.0, 26.0]);
    }

    #[test]
    fn row_sums() {
        let m = SparseMatrix::from_triplets(2, vec![(0, 0, 0.5), (0, 1, 0.5), (1, 1, 1.0)]);
        assert_eq!(m.row_sums(), vec![1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range() {
        SparseMatrix::from_triplets(2, vec![(2, 0, 1.0)]);
    }
}
