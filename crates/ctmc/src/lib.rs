//! Continuous-time Markov chain solvers.
//!
//! The paper solves its SAN models by simulation only; this crate adds a
//! numerical path — state-space exploration plus uniformization — used
//! throughout the workspace to *validate* the simulation engines on
//! models small enough to enumerate (the full 2n-vehicle AHS model is
//! far too large, which is exactly why the paper simulates).
//!
//! * [`MarkovModel`] — anything that can enumerate rate-weighted
//!   successor states; [`SanMarkovModel`] adapts an all-exponential
//!   [`SanModel`](ahs_san::SanModel).
//! * [`StateSpace`] — breadth-first exploration into a sparse generator
//!   matrix, with optional absorbing predicates for first-passage
//!   measures.
//! * [`transient_distribution`] — uniformization (Fox–Glynn-style
//!   normalized Poisson weights) for `π(t)`.
//! * [`steady_state`] — power iteration on the uniformized chain.
//!
//! # Example
//!
//! ```
//! use ahs_ctmc::{transient_distribution, MarkovModel, StateSpace};
//!
//! /// Two-state failure/repair component.
//! struct Component;
//! impl MarkovModel for Component {
//!     type State = bool; // up?
//!     fn initial_states(&self) -> Vec<(bool, f64)> {
//!         vec![(true, 1.0)]
//!     }
//!     fn transitions(&self, s: &bool) -> Vec<(bool, f64)> {
//!         if *s { vec![(false, 1.0)] } else { vec![(true, 4.0)] }
//!     }
//! }
//!
//! let space = StateSpace::explore(&Component, 10)?;
//! let pi = transient_distribution(&space, 0.5, 1e-12);
//! let p_down = space.probability(&pi, |s| !*s);
//! let exact = 0.2 * (1.0 - (-5.0_f64 * 0.5).exp());
//! assert!((p_down - exact).abs() < 1e-9);
//! # Ok::<(), ahs_ctmc::CtmcError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod explore;
mod hitting;
mod san_adapter;
mod sparse;
mod steady;
mod transient;

pub use error::CtmcError;
pub use explore::{MarkovModel, StateSpace};
pub use hitting::{expected_hitting_time, expected_hitting_time_from_start};
pub use san_adapter::SanMarkovModel;
pub use sparse::SparseMatrix;
pub use steady::steady_state;
pub use transient::{poisson_weights, transient_distribution};
