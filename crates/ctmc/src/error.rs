//! Error type of the CTMC crate.

use ahs_san::SanError;

/// Errors arising during state-space generation or numerical solution.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CtmcError {
    /// Exploration exceeded the state budget; the model is too large
    /// for numerical solution (use the simulators instead).
    StateSpaceTooLarge {
        /// The budget that was exceeded.
        budget: usize,
    },
    /// The SAN adapter was given a model with non-exponential timed
    /// activities.
    NonMarkovian {
        /// Name of the offending activity.
        activity: String,
    },
    /// A transition rate was negative or non-finite.
    InvalidRate {
        /// The offending rate.
        rate: f64,
    },
    /// An iterative solver failed to converge.
    NotConverged {
        /// Iterations performed.
        iterations: usize,
        /// Residual at the last iteration.
        residual: f64,
    },
    /// An error bubbled up from the SAN layer.
    San(SanError),
}

impl std::fmt::Display for CtmcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CtmcError::StateSpaceTooLarge { budget } => {
                write!(f, "state space exceeds the budget of {budget} states")
            }
            CtmcError::NonMarkovian { activity } => write!(
                f,
                "activity `{activity}` has a non-exponential delay; CTMC solution requires a Markovian model"
            ),
            CtmcError::InvalidRate { rate } => write!(f, "invalid transition rate {rate}"),
            CtmcError::NotConverged {
                iterations,
                residual,
            } => write!(
                f,
                "solver did not converge after {iterations} iterations (residual {residual:.3e})"
            ),
            CtmcError::San(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CtmcError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CtmcError::San(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SanError> for CtmcError {
    fn from(e: SanError) -> Self {
        CtmcError::San(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        let e = CtmcError::StateSpaceTooLarge { budget: 5 };
        assert!(e.to_string().contains('5'));
        let e: CtmcError = SanError::EmptyModel.into();
        assert!(std::error::Error::source(&e).is_some());
    }
}
