//! Expected hitting times (mean time to absorption).

use std::hash::Hash;

use crate::error::CtmcError;
use crate::explore::StateSpace;

/// Computes the expected time to first reach a `target` state from
/// each state of the chain, by Gauss–Seidel iteration on the
/// first-step equations
/// `h(s) = (1 + Σ_{s'} q(s,s') h(s')) / q(s)` with `h(target) = 0`.
///
/// States that cannot reach the target (including deadlocks outside
/// it) get `h = +inf`. For the AHS model this is the *mean time to
/// unsafety* — the MTTF-style counterpart of the paper's `S(t)`.
///
/// # Errors
///
/// Returns [`CtmcError::NotConverged`] if the sweep residual stays
/// above `tol` after `max_iter` iterations.
///
/// # Example
///
/// ```
/// use ahs_ctmc::{expected_hitting_time, MarkovModel, StateSpace};
///
/// struct TwoStep;
/// impl MarkovModel for TwoStep {
///     type State = u8;
///     fn initial_states(&self) -> Vec<(u8, f64)> {
///         vec![(0, 1.0)]
///     }
///     fn transitions(&self, s: &u8) -> Vec<(u8, f64)> {
///         match s {
///             0 => vec![(1, 2.0)],
///             1 => vec![(2, 4.0)],
///             _ => vec![],
///         }
///     }
/// }
/// let space = StateSpace::explore(&TwoStep, 10)?;
/// let h = expected_hitting_time(&space, |s| *s == 2, 1e-12, 10_000)?;
/// let i0 = space.states().iter().position(|&s| s == 0).unwrap();
/// assert!((h[i0] - (0.5 + 0.25)).abs() < 1e-9);
/// # Ok::<(), ahs_ctmc::CtmcError>(())
/// ```
pub fn expected_hitting_time<S, F>(
    space: &StateSpace<S>,
    target: F,
    tol: f64,
    max_iter: usize,
) -> Result<Vec<f64>, CtmcError>
where
    S: Clone + Eq + Hash,
    F: Fn(&S) -> bool,
{
    let n = space.len();
    let is_target: Vec<bool> = space.states().iter().map(target).collect();

    // Identify states that can reach the target (backward reachability
    // over the rate graph); the rest have infinite hitting time.
    let mut reaches = is_target.clone();
    loop {
        let mut changed = false;
        for s in 0..n {
            if reaches[s] {
                continue;
            }
            if space.rates().row(s).any(|(succ, _)| reaches[succ]) {
                reaches[s] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    let mut h = vec![0.0_f64; n];
    for s in 0..n {
        if !reaches[s] {
            h[s] = f64::INFINITY;
        }
    }
    let mut residual = f64::INFINITY;
    for _ in 0..max_iter {
        residual = 0.0;
        for s in 0..n {
            if is_target[s] || !reaches[s] {
                continue;
            }
            let q = space.exit_rates()[s];
            if q <= 0.0 {
                h[s] = f64::INFINITY;
                continue;
            }
            let mut acc = 1.0;
            let mut finite = true;
            for (succ, rate) in space.rates().row(s) {
                if h[succ].is_infinite() {
                    // Mass escaping to a non-reaching state makes the
                    // conditional mean infinite only if the escape has
                    // positive rate; hitting-time equations then have
                    // no finite solution for s either.
                    finite = false;
                    break;
                }
                acc += rate * h[succ];
            }
            let new = if finite { acc / q } else { f64::INFINITY };
            if new.is_finite() && h[s].is_finite() {
                residual = residual.max((new - h[s]).abs());
            } else if new.is_finite() != h[s].is_finite() {
                residual = f64::INFINITY;
            }
            h[s] = new;
        }
        if residual < tol {
            return Ok(h);
        }
    }
    Err(CtmcError::NotConverged {
        iterations: max_iter,
        residual,
    })
}

/// Expected hitting time from the chain's initial distribution.
///
/// # Errors
///
/// Same failure modes as [`expected_hitting_time`].
pub fn expected_hitting_time_from_start<S, F>(
    space: &StateSpace<S>,
    target: F,
    tol: f64,
    max_iter: usize,
) -> Result<f64, CtmcError>
where
    S: Clone + Eq + Hash,
    F: Fn(&S) -> bool,
{
    let h = expected_hitting_time(space, target, tol, max_iter)?;
    Ok(space
        .initial()
        .iter()
        .zip(h.iter())
        .filter(|(p, _)| **p > 0.0)
        .map(|(p, hi)| p * hi)
        .sum())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::MarkovModel;

    struct FailRepair {
        fail: f64,
        repair: f64,
        components: u32,
    }

    /// State = number of failed components; system dies when all fail.
    impl MarkovModel for FailRepair {
        type State = u32;
        fn initial_states(&self) -> Vec<(u32, f64)> {
            vec![(0, 1.0)]
        }
        fn transitions(&self, s: &u32) -> Vec<(u32, f64)> {
            let mut out = Vec::new();
            if *s < self.components {
                out.push((s + 1, self.fail * (self.components - s) as f64));
            }
            if *s > 0 && *s < self.components {
                out.push((s - 1, self.repair * *s as f64));
            }
            out
        }
    }

    #[test]
    fn single_component_mttf_is_inverse_rate() {
        let m = FailRepair {
            fail: 0.25,
            repair: 1.0,
            components: 1,
        };
        let space = crate::StateSpace::explore(&m, 10).unwrap();
        let mttf = expected_hitting_time_from_start(&space, |&s| s == 1, 1e-12, 100_000).unwrap();
        assert!((mttf - 4.0).abs() < 1e-9);
    }

    #[test]
    fn repair_extends_the_mttf() {
        let no_repair = FailRepair {
            fail: 1.0,
            repair: 0.0,
            components: 2,
        };
        let with_repair = FailRepair {
            fail: 1.0,
            repair: 5.0,
            components: 2,
        };
        let s1 = crate::StateSpace::explore(&no_repair, 10).unwrap();
        let s2 = crate::StateSpace::explore(&with_repair, 10).unwrap();
        let t1 = expected_hitting_time_from_start(&s1, |&s| s == 2, 1e-12, 100_000).unwrap();
        let t2 = expected_hitting_time_from_start(&s2, |&s| s == 2, 1e-12, 100_000).unwrap();
        // No repair: 1/(2λ) + 1/λ = 1.5.
        assert!((t1 - 1.5).abs() < 1e-9);
        // Closed form with repair: (3λ + μ) / (2λ²) = (3 + 5) / 2 = 4.
        assert!((t2 - 4.0).abs() < 1e-9, "got {t2}");
        assert!(t2 > t1);
    }

    #[test]
    fn unreachable_target_is_infinite() {
        struct Isolated;
        impl MarkovModel for Isolated {
            type State = u8;
            fn initial_states(&self) -> Vec<(u8, f64)> {
                vec![(0, 1.0)]
            }
            fn transitions(&self, s: &u8) -> Vec<(u8, f64)> {
                if *s == 0 {
                    vec![(1, 1.0)]
                } else {
                    vec![]
                }
            }
        }
        let space = crate::StateSpace::explore(&Isolated, 10).unwrap();
        let h = expected_hitting_time(&space, |&s| s == 9, 1e-12, 1000).unwrap();
        assert!(h.iter().all(|x| x.is_infinite()));
    }
}
