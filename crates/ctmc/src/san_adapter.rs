//! Adapting a Markovian SAN to the [`MarkovModel`] interface.

use ahs_san::{Marking, SanModel};

use crate::error::CtmcError;
use crate::explore::MarkovModel;

/// Views an all-exponential [`SanModel`] as a CTMC over *stable*
/// markings.
///
/// Each enabled timed activity contributes, for every completion case
/// and every stable marking reachable from the fired marking through
/// instantaneous activities, a transition with rate
/// `rate · P(case) · P(instantaneous path)` — the exact embedded CTMC of
/// the SAN's execution semantics.
///
/// # Example
///
/// ```
/// use ahs_ctmc::{transient_distribution, SanMarkovModel, StateSpace};
/// use ahs_san::{Delay, SanBuilder};
///
/// let mut b = SanBuilder::new("fr");
/// let up = b.place_with_tokens("up", 1)?;
/// let down = b.place("down")?;
/// b.timed_activity("fail", Delay::exponential(1.0))?
///     .input_place(up)
///     .output_place(down)
///     .build()?;
/// b.timed_activity("repair", Delay::exponential(4.0))?
///     .input_place(down)
///     .output_place(up)
///     .build()?;
/// let model = b.build()?;
///
/// let adapter = SanMarkovModel::new(&model)?;
/// let space = StateSpace::explore(&adapter, 100)?;
/// assert_eq!(space.len(), 2);
/// let pi = transient_distribution(&space, 0.5, 1e-12);
/// let p_down = space.probability(&pi, |m| m.is_marked(down));
/// assert!((p_down - 0.2 * (1.0 - (-5.0_f64 * 0.5).exp())).abs() < 1e-9);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct SanMarkovModel<'m> {
    model: &'m SanModel,
}

impl<'m> SanMarkovModel<'m> {
    /// Wraps `model`.
    ///
    /// # Errors
    ///
    /// Returns [`CtmcError::NonMarkovian`] if any timed activity has a
    /// non-exponential delay.
    pub fn new(model: &'m SanModel) -> Result<Self, CtmcError> {
        for &a in model.timed_activities() {
            if !matches!(
                model.activity(a).timing(),
                ahs_san::Timing::Timed(d) if d.is_exponential()
            ) {
                return Err(CtmcError::NonMarkovian {
                    activity: model.activity(a).name().to_owned(),
                });
            }
        }
        Ok(SanMarkovModel { model })
    }

    /// The wrapped model.
    pub fn model(&self) -> &SanModel {
        self.model
    }
}

impl MarkovModel for SanMarkovModel<'_> {
    type State = Marking;

    fn initial_states(&self) -> Vec<(Marking, f64)> {
        self.model
            .stable_successors(self.model.initial_marking())
            .expect("initial stabilization failed; validate the model first")
    }

    fn transitions(&self, state: &Marking) -> Vec<(Marking, f64)> {
        let mut out = Vec::new();
        for &a in self.model.timed_activities() {
            if !self.model.is_enabled(a, state) {
                continue;
            }
            let rate = self
                .model
                .exponential_rate(a, state)
                .expect("constructor verified exponential delays");
            if rate <= 0.0 {
                continue;
            }
            let probs = self
                .model
                .case_probabilities(a, state)
                .expect("case distribution must be valid in reachable markings");
            for (case, p_case) in probs.iter().enumerate() {
                if *p_case == 0.0 {
                    continue;
                }
                let mut fired = state.clone();
                self.model.fire(a, case, &mut fired);
                let stables = self
                    .model
                    .stable_successors(&fired)
                    .expect("instantaneous stabilization must terminate");
                for (m, p_path) in stables {
                    out.push((m, rate * p_case * p_path));
                }
            }
        }
        out
    }
}

impl std::fmt::Debug for SanMarkovModel<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SanMarkovModel")
            .field("model", &self.model.name())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transient_distribution;
    use crate::StateSpace;
    use ahs_san::{Delay, SanBuilder};

    #[test]
    fn rejects_non_markovian() {
        let mut b = SanBuilder::new("det");
        let p = b.place_with_tokens("p", 1).unwrap();
        b.timed_activity("d", Delay::Deterministic(1.0))
            .unwrap()
            .input_place(p)
            .build()
            .unwrap();
        let model = b.build().unwrap();
        assert!(matches!(
            SanMarkovModel::new(&model),
            Err(CtmcError::NonMarkovian { .. })
        ));
    }

    #[test]
    fn instantaneous_cascades_fold_into_rates() {
        // up --fail(λ)--> staging --instant (cases ½/½)--> a | b
        let mut b = SanBuilder::new("cascade");
        let up = b.place_with_tokens("up", 1).unwrap();
        let staging = b.place("staging").unwrap();
        let pa = b.place("a").unwrap();
        let pb = b.place("b").unwrap();
        b.timed_activity("fail", Delay::exponential(2.0))
            .unwrap()
            .input_place(up)
            .output_place(staging)
            .build()
            .unwrap();
        b.instant_activity("route", 0, 1.0)
            .unwrap()
            .input_place(staging)
            .case(0.5)
            .output_place(pa)
            .case(0.5)
            .output_place(pb)
            .build()
            .unwrap();
        let model = b.build().unwrap();
        let adapter = SanMarkovModel::new(&model).unwrap();
        let space = StateSpace::explore(&adapter, 100).unwrap();
        // Stable states: {up}, {a}, {b} — staging never appears.
        assert_eq!(space.len(), 3);
        for m in space.states() {
            assert!(!m.is_marked(staging));
        }
        let pi = transient_distribution(&space, 100.0, 1e-12);
        let p_a = space.probability(&pi, |m| m.is_marked(pa));
        let p_b = space.probability(&pi, |m| m.is_marked(pb));
        assert!((p_a - 0.5).abs() < 1e-9);
        assert!((p_b - 0.5).abs() < 1e-9);
    }

    #[test]
    fn marking_dependent_rates_enter_generator() {
        // Two tokens drain from `pool` with rate = tokens (M/M/∞-style).
        let mut b = SanBuilder::new("drain");
        let pool = b.place_with_tokens("pool", 2).unwrap();
        let done = b.place("done").unwrap();
        b.timed_activity(
            "drain",
            Delay::exponential_fn(move |m| m.tokens(pool) as f64),
        )
        .unwrap()
        .input_place(pool)
        .output_place(done)
        .build()
        .unwrap();
        let model = b.build().unwrap();
        let adapter = SanMarkovModel::new(&model).unwrap();
        let space = StateSpace::explore(&adapter, 10).unwrap();
        assert_eq!(space.len(), 3);
        // Exit rate of the 2-token state is 2, of the 1-token state 1.
        let i2 = space
            .states()
            .iter()
            .position(|m| m.tokens(pool) == 2)
            .unwrap();
        let i1 = space
            .states()
            .iter()
            .position(|m| m.tokens(pool) == 1)
            .unwrap();
        assert!((space.exit_rates()[i2] - 2.0).abs() < 1e-12);
        assert!((space.exit_rates()[i1] - 1.0).abs() < 1e-12);
    }
}
