//! Steady-state solution by power iteration on the uniformized chain.

use std::hash::Hash;

use crate::error::CtmcError;
use crate::explore::StateSpace;
use crate::transient::uniformized_matrix;

/// Computes the steady-state distribution of an irreducible explored
/// CTMC by power iteration on `P = I + Q/q` (which shares Q's stationary
/// vector and, with `q` strictly above the largest exit rate, is
/// aperiodic).
///
/// # Errors
///
/// Returns [`CtmcError::NotConverged`] if the L1 change between
/// iterates stays above `tol` after `max_iter` sweeps. Reducible chains
/// converge to a stationary vector that depends on the initial
/// distribution — callers wanting first-passage measures should use
/// [`StateSpace::absorbing`] with
/// [`transient_distribution`](crate::transient_distribution) instead.
pub fn steady_state<S: Clone + Eq + Hash>(
    space: &StateSpace<S>,
    tol: f64,
    max_iter: usize,
) -> Result<Vec<f64>, CtmcError> {
    let n = space.len();
    let q = space.max_exit_rate() * 1.02 + 1e-12;
    let p = uniformized_matrix(space, q);

    let mut pi = vec![1.0 / n as f64; n];
    let mut next = vec![0.0; n];
    let mut residual = f64::INFINITY;
    for _ in 0..max_iter {
        p.vec_mul(&pi, &mut next);
        let norm: f64 = next.iter().sum();
        for v in &mut next {
            *v /= norm;
        }
        residual = pi.iter().zip(next.iter()).map(|(a, b)| (a - b).abs()).sum();
        std::mem::swap(&mut pi, &mut next);
        if residual < tol {
            return Ok(pi);
        }
    }
    Err(CtmcError::NotConverged {
        iterations: max_iter,
        residual,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::MarkovModel;

    /// M/M/1/K queue: arrivals λ, service μ, capacity K.
    struct Mm1k {
        lambda: f64,
        mu: f64,
        k: u32,
    }
    impl MarkovModel for Mm1k {
        type State = u32;
        fn initial_states(&self) -> Vec<(u32, f64)> {
            vec![(0, 1.0)]
        }
        fn transitions(&self, s: &u32) -> Vec<(u32, f64)> {
            let mut out = Vec::new();
            if *s < self.k {
                out.push((s + 1, self.lambda));
            }
            if *s > 0 {
                out.push((s - 1, self.mu));
            }
            out
        }
    }

    #[test]
    fn mm1k_matches_closed_form() {
        let (lambda, mu, k) = (2.0, 3.0, 5u32);
        let rho: f64 = lambda / mu;
        let m = Mm1k { lambda, mu, k };
        let space = crate::StateSpace::explore(&m, 100).unwrap();
        let pi = steady_state(&space, 1e-12, 100_000).unwrap();
        let norm: f64 = (0..=k).map(|i| rho.powi(i as i32)).sum();
        for (i, s) in space.states().iter().enumerate() {
            let exact = rho.powi(*s as i32) / norm;
            assert!(
                (pi[i] - exact).abs() < 1e-8,
                "state {s}: {} vs {exact}",
                pi[i]
            );
        }
    }

    #[test]
    fn balanced_two_state_is_half_half() {
        struct Sym;
        impl MarkovModel for Sym {
            type State = bool;
            fn initial_states(&self) -> Vec<(bool, f64)> {
                vec![(true, 1.0)]
            }
            fn transitions(&self, s: &bool) -> Vec<(bool, f64)> {
                vec![(!*s, 7.0)]
            }
        }
        let space = crate::StateSpace::explore(&Sym, 4).unwrap();
        let pi = steady_state(&space, 1e-13, 10_000).unwrap();
        assert!((pi[0] - 0.5).abs() < 1e-9);
        assert!((pi[1] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn non_convergence_reported() {
        let m = Mm1k {
            lambda: 1.0,
            mu: 3.0,
            k: 50,
        };
        let space = crate::StateSpace::explore(&m, 100).unwrap();
        // One iteration cannot converge on a 51-state chain.
        assert!(matches!(
            steady_state(&space, 1e-15, 1),
            Err(CtmcError::NotConverged { .. })
        ));
    }
}
