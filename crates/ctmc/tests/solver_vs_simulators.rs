//! Cross-validation: the uniformization solver against both simulation
//! backends (plain and importance-sampled) on models small enough to
//! enumerate. This is validation step 2 of DESIGN.md.

use ahs_ctmc::{transient_distribution, SanMarkovModel, StateSpace};
use ahs_des::{Backend, BiasScheme, Study};
use ahs_san::{Delay, PlaceId, SanBuilder, SanModel};
use ahs_stats::TimeGrid;

/// A 3-component repairable system that fails catastrophically when all
/// three components are simultaneously down — a miniature of the AHS
/// "multiple concurrent failures" structure.
fn triple_system(fail: f64, repair: f64) -> (SanModel, Vec<PlaceId>, PlaceId) {
    let mut b = SanBuilder::new("triple");
    let mut downs = Vec::new();
    let ko = b.shared_place("ko").unwrap();
    for i in 0..3 {
        let up = b.place_with_tokens(&format!("up{i}"), 1).unwrap();
        let down = b.place(&format!("down{i}")).unwrap();
        b.timed_activity(&format!("fail{i}"), Delay::exponential(fail))
            .unwrap()
            .input_place(up)
            .output_place(down)
            .build()
            .unwrap();
        b.timed_activity(&format!("repair{i}"), Delay::exponential(repair))
            .unwrap()
            .input_place(down)
            .output_place(up)
            .build()
            .unwrap();
        downs.push(down);
    }
    // Instantaneous detection of the catastrophic condition.
    let d = downs.clone();
    let all_down = b.input_gate(
        "all_down",
        move |m| d.iter().all(|&p| m.is_marked(p)) && !m.is_marked(ko),
        |_| {},
    );
    b.instant_activity("to_ko", 10, 1.0)
        .unwrap()
        .input_gate(all_down)
        .output_place(ko)
        .build()
        .unwrap();
    (b.build().unwrap(), downs, ko)
}

#[test]
fn ctmc_matches_plain_simulation_on_triple_system() {
    let (model, _, ko) = triple_system(0.8, 2.0);
    let adapter = SanMarkovModel::new(&model).unwrap();
    let space = StateSpace::explore(&adapter, 1000).unwrap();
    // ko is absorbing by construction (no outgoing activity consumes it,
    // and to_ko is inhibited once marked), so the transient mass in
    // ko-marked states is the first-passage probability.
    let grid = TimeGrid::new(vec![0.5, 1.0, 2.0]);
    let numeric: Vec<f64> = grid
        .points()
        .iter()
        .map(|&t| {
            let pi = transient_distribution(&space, t, 1e-12);
            space.probability(&pi, |m| m.is_marked(ko))
        })
        .collect();

    let study = Study::new(model)
        .with_seed(101)
        .with_fixed_replications(60_000)
        .with_threads(4);
    let est = study
        .first_passage(move |m| m.is_marked(ko), &grid, Backend::Markov)
        .unwrap();

    for (i, pt) in est.curve.points(0.999).iter().enumerate() {
        assert!(
            (pt.y - numeric[i]).abs() <= pt.half_width.max(2e-3),
            "t={}: simulation {} vs numeric {}",
            pt.x,
            pt.y,
            numeric[i]
        );
    }
}

#[test]
fn ctmc_matches_importance_sampling_in_rare_regime() {
    // Rare regime: fail 0.01, repair 10 → all-three-down is ~1e-7-ish.
    let (model, _, ko) = triple_system(0.01, 10.0);
    let fails: Vec<_> = (0..3)
        .map(|i| model.find_activity(&format!("fail{i}")).unwrap())
        .collect();
    let adapter = SanMarkovModel::new(&model).unwrap();
    let space = StateSpace::explore(&adapter, 1000).unwrap();
    let grid = TimeGrid::new(vec![5.0]);
    let pi = transient_distribution(&space, 5.0, 1e-13);
    let numeric = space.probability(&pi, |m| m.is_marked(ko));
    assert!(numeric > 1e-9 && numeric < 1e-3, "regime check: {numeric}");

    let bias = BiasScheme::new().with_multipliers(fails, 30.0);
    let study = Study::new(model)
        .with_seed(202)
        .with_fixed_replications(150_000)
        .with_threads(4);
    let est = study
        .first_passage(move |m| m.is_marked(ko), &grid, Backend::BiasedMarkov(bias))
        .unwrap();
    let pt = &est.curve.points(0.999)[0];
    let rel = (pt.y - numeric).abs() / numeric;
    assert!(
        rel < 0.25 || (pt.y - numeric).abs() <= pt.half_width,
        "IS {} vs numeric {numeric} (rel {rel})",
        pt.y
    );
}

#[test]
fn event_driven_backend_matches_ctmc_too() {
    let (model, _, ko) = triple_system(1.0, 1.5);
    let adapter = SanMarkovModel::new(&model).unwrap();
    let space = StateSpace::explore(&adapter, 1000).unwrap();
    let grid = TimeGrid::new(vec![1.0]);
    let pi = transient_distribution(&space, 1.0, 1e-12);
    let numeric = space.probability(&pi, |m| m.is_marked(ko));

    let study = Study::new(model)
        .with_seed(303)
        .with_fixed_replications(40_000)
        .with_threads(4);
    let est = study
        .first_passage(move |m| m.is_marked(ko), &grid, Backend::EventDriven)
        .unwrap();
    let pt = &est.curve.points(0.999)[0];
    assert!(
        (pt.y - numeric).abs() <= pt.half_width.max(3e-3),
        "event-driven {} vs numeric {numeric}",
        pt.y
    );
}

#[test]
fn state_space_size_is_as_expected() {
    // 3 components × up/down, plus the ko flag; to_ko collapses the
    // all-down+unflagged state instantly, so: 2^3 states with ko=0 minus
    // the vanishing one, plus reachable ko=1 states (all-down flagged,
    // and its repair successors).
    let (model, _, _) = triple_system(1.0, 1.0);
    let adapter = SanMarkovModel::new(&model).unwrap();
    let space = StateSpace::explore(&adapter, 1000).unwrap();
    assert!(space.len() >= 8 && space.len() <= 16, "got {}", space.len());
}
