//! Statistical conformance tier: the DES *transient* estimator against
//! the exact uniformization solution, judged at 99% confidence.
//!
//! Unlike `solver_vs_simulators.rs` (first-passage probabilities into an
//! absorbing condition), these tests check the instantaneous state
//! probability `P(condition holds at t)` for non-monotone conditions —
//! the estimator that backs Möbius-style instant-of-time reward
//! variables. Each simulated point must land within its own 99%
//! confidence half-width of the numeric answer (plus a small absolute
//! floor for near-zero probabilities).

use ahs_ctmc::{transient_distribution, SanMarkovModel, StateSpace};
use ahs_des::{Backend, Study};
use ahs_san::{Delay, PlaceId, SanBuilder, SanModel};
use ahs_stats::TimeGrid;

/// A 2-component repairable system with asymmetric rates, no absorbing
/// state: every condition stays non-monotone in time.
fn repairable_pair() -> (SanModel, Vec<PlaceId>) {
    let mut b = SanBuilder::new("pair");
    let mut downs = Vec::new();
    for (i, (fail, repair)) in [(0.7, 1.5), (0.4, 2.5)].iter().enumerate() {
        let up = b.place_with_tokens(&format!("up{i}"), 1).unwrap();
        let down = b.place(&format!("down{i}")).unwrap();
        b.timed_activity(&format!("fail{i}"), Delay::exponential(*fail))
            .unwrap()
            .input_place(up)
            .output_place(down)
            .build()
            .unwrap();
        b.timed_activity(&format!("repair{i}"), Delay::exponential(*repair))
            .unwrap()
            .input_place(down)
            .output_place(up)
            .build()
            .unwrap();
        downs.push(down);
    }
    (b.build().unwrap(), downs)
}

/// Exact `P(condition at t)` for each grid point via uniformization.
fn numeric_transient(
    model: &SanModel,
    grid: &TimeGrid,
    condition: impl Fn(&ahs_san::Marking) -> bool,
) -> Vec<f64> {
    let adapter = SanMarkovModel::new(model).unwrap();
    let space = StateSpace::explore(&adapter, 1000).unwrap();
    grid.points()
        .iter()
        .map(|&t| {
            let pi = transient_distribution(&space, t, 1e-12);
            space.probability(&pi, &condition)
        })
        .collect()
}

fn assert_conformance(simulated: &[(f64, f64, f64)], numeric: &[f64]) {
    for (&(x, y, hw), &exact) in simulated.iter().zip(numeric.iter()) {
        assert!(
            (y - exact).abs() <= hw.max(2e-3),
            "t={x}: simulated {y} ± {hw} vs exact {exact}"
        );
    }
}

fn simulate_transient(
    model: SanModel,
    downs: &[PlaceId],
    grid: &TimeGrid,
    which: usize,
    backend: Backend,
    seed: u64,
) -> Vec<(f64, f64, f64)> {
    let down = downs[which];
    Study::new(model)
        .with_seed(seed)
        .with_fixed_replications(50_000)
        .with_threads(2)
        .transient(move |m| m.is_marked(down), grid, backend)
        .unwrap()
        .curve
        .points(0.99)
        .iter()
        .map(|p| (p.x, p.y, p.half_width))
        .collect()
}

#[test]
fn transient_markov_backend_matches_uniformization_at_99() {
    let (model, downs) = repairable_pair();
    let grid = TimeGrid::new(vec![0.25, 1.0, 3.0, 8.0]);
    let d0 = downs[0];
    let numeric = numeric_transient(&model, &grid, |m| m.is_marked(d0));
    // The late grid points are effectively steady state; the early ones
    // are still in the transient ramp — both regimes must agree.
    assert!(numeric[0] < numeric[3], "ramp regime check: {numeric:?}");
    let simulated = simulate_transient(model, &downs, &grid, 0, Backend::Markov, 0xC0_99);
    assert_conformance(&simulated, &numeric);
}

#[test]
fn transient_event_driven_backend_matches_uniformization_at_99() {
    let (model, downs) = repairable_pair();
    let grid = TimeGrid::new(vec![0.5, 2.0, 6.0]);
    let d1 = downs[1];
    let numeric = numeric_transient(&model, &grid, |m| m.is_marked(d1));
    let simulated = simulate_transient(model, &downs, &grid, 1, Backend::EventDriven, 0xC1_99);
    assert_conformance(&simulated, &numeric);
}

#[test]
fn transient_joint_condition_matches_uniformization_at_99() {
    // Joint condition over both components: exercises the product state
    // space rather than a single marginal.
    let (model, downs) = repairable_pair();
    let grid = TimeGrid::new(vec![1.0, 5.0]);
    let (d0, d1) = (downs[0], downs[1]);
    let numeric = numeric_transient(&model, &grid, |m| m.is_marked(d0) && m.is_marked(d1));
    let both = move |m: &ahs_san::Marking| m.is_marked(d0) && m.is_marked(d1);
    let simulated: Vec<(f64, f64, f64)> = Study::new(model)
        .with_seed(0xC2_99)
        .with_fixed_replications(50_000)
        .with_threads(2)
        .transient(both, &grid, Backend::Markov)
        .unwrap()
        .curve
        .points(0.99)
        .iter()
        .map(|p| (p.x, p.y, p.half_width))
        .collect();
    assert_conformance(&simulated, &numeric);
}
