//! Steady-state solution of SAN-derived CTMCs, cross-checked against
//! closed forms and long-horizon transient solutions.

use ahs_ctmc::{steady_state, transient_distribution, SanMarkovModel, StateSpace};
use ahs_san::{Delay, SanBuilder};

/// k independent repairable components (failure λ, repair μ):
/// steady-state P(j down) is binomial with p = λ/(λ+μ).
#[test]
fn independent_components_binomial_steady_state() {
    let (lambda, mu, k) = (1.0, 3.0, 3usize);
    let mut b = SanBuilder::new("multi");
    let mut downs = Vec::new();
    for i in 0..k {
        let up = b.place_with_tokens(&format!("up{i}"), 1).unwrap();
        let down = b.place(&format!("down{i}")).unwrap();
        b.timed_activity(&format!("fail{i}"), Delay::exponential(lambda))
            .unwrap()
            .input_place(up)
            .output_place(down)
            .build()
            .unwrap();
        b.timed_activity(&format!("repair{i}"), Delay::exponential(mu))
            .unwrap()
            .input_place(down)
            .output_place(up)
            .build()
            .unwrap();
        downs.push(down);
    }
    let model = b.build().unwrap();
    let adapter = SanMarkovModel::new(&model).unwrap();
    let space = StateSpace::explore(&adapter, 100).unwrap();
    assert_eq!(space.len(), 8);

    let pi = steady_state(&space, 1e-12, 200_000).unwrap();
    let p = lambda / (lambda + mu);
    for j in 0..=k {
        let measured: f64 = space
            .states()
            .iter()
            .zip(pi.iter())
            .filter(|(m, _)| downs.iter().filter(|&&d| m.is_marked(d)).count() == j)
            .map(|(_, pr)| pr)
            .sum();
        let binom = choose(k, j) as f64 * p.powi(j as i32) * (1.0 - p).powi((k - j) as i32);
        assert!(
            (measured - binom).abs() < 1e-8,
            "P({j} down): {measured} vs binomial {binom}"
        );
    }
}

fn choose(n: usize, k: usize) -> u64 {
    (1..=k).fold(1u64, |acc, i| acc * (n - k + i) as u64 / i as u64)
}

/// Steady state must equal the long-horizon transient distribution.
#[test]
fn steady_state_is_transient_limit() {
    let mut b = SanBuilder::new("cyclic");
    // Three-phase cycle with distinct rates.
    let p0 = b.place_with_tokens("a", 1).unwrap();
    let p1 = b.place("b").unwrap();
    let p2 = b.place("c").unwrap();
    for (name, from, to, rate) in [
        ("ab", p0, p1, 1.0),
        ("bc", p1, p2, 2.0),
        ("ca", p2, p0, 4.0),
    ] {
        b.timed_activity(name, Delay::exponential(rate))
            .unwrap()
            .input_place(from)
            .output_place(to)
            .build()
            .unwrap();
    }
    let model = b.build().unwrap();
    let adapter = SanMarkovModel::new(&model).unwrap();
    let space = StateSpace::explore(&adapter, 10).unwrap();

    let pi_ss = steady_state(&space, 1e-13, 100_000).unwrap();
    let pi_t = transient_distribution(&space, 200.0, 1e-12);
    for (a, b) in pi_ss.iter().zip(pi_t.iter()) {
        assert!((a - b).abs() < 1e-8, "steady {a} vs transient-limit {b}");
    }
    // Sojourn-proportional occupancy: π_i ∝ 1/rate_i.
    let expect = [4.0 / 7.0, 2.0 / 7.0, 1.0 / 7.0];
    for (i, &place) in [p0, p1, p2].iter().enumerate() {
        let measured = space.probability(&pi_ss, |m| m.is_marked(place));
        assert!(
            (measured - expect[i]).abs() < 1e-8,
            "phase {i}: {measured} vs {}",
            expect[i]
        );
    }
}
