//! Cross-validation of the checker against the CTMC generator, and
//! regression pins on the paper models' reachable-state counts.
//!
//! The checker and `ahs-ctmc` explore the same SAN through independent
//! code paths; agreement on the stable-state set and the transition
//! support is a mutual audit of both engines. The pinned counts turn
//! any accidental semantic change (a case branch skipped, a marking
//! canonicalisation bug) into a loud test failure.

use ahs_check::{cross_validate, CheckConfig, Checker, StateGraph};
use ahs_core::{AhsModel, Params, Strategy};
use ahs_san::SanModel;

/// Micro-step reachable states of every n = 1 strategy model
/// (cross-checked against `ahs-lint --max-states` exploration).
const MICRO_STATES_N1: usize = 209;

/// Micro-step reachable states at n = 2 (every strategy agrees; the
/// strategies differ in rates and case probabilities, not in support).
const MICRO_STATES_N2: usize = 153_753;

fn paper_model(n: usize, strategy: Strategy) -> SanModel {
    let params = Params::builder().n(n).strategy(strategy).build().unwrap();
    let (san, _) = AhsModel::build(&params).unwrap().into_san();
    san
}

const STRATEGIES: [Strategy; 4] = [Strategy::Dd, Strategy::Dc, Strategy::Cd, Strategy::Cc];

#[test]
fn fixture_chain_cross_validates_against_ctmc() {
    let model = ahs_check::fixtures::escalation_chain();
    let graph = StateGraph::explore(&model, 1 << 10, None).unwrap();
    let cross = cross_validate(&model, &graph, 1 << 10).unwrap();
    assert!(cross.matches(), "{cross:?}");
    // {v_OK}, {CS_active}, {v_KO} are the stable markings; the
    // transition support is OK→CS, CS→OK, CS→KO.
    assert_eq!(cross.checker_stable_states, 3);
    assert_eq!(cross.ctmc_states, 3);
    assert_eq!(cross.checker_transition_pairs, 3);
    assert_eq!(cross.ctmc_transition_pairs, 3);
}

#[test]
fn cross_validation_rejects_truncated_graphs() {
    let model = ahs_check::fixtures::unbounded_counter();
    let graph = StateGraph::explore(&model, 20, None).unwrap();
    assert!(!graph.complete());
    assert!(cross_validate(&model, &graph, 1 << 10).is_err());
}

#[test]
fn paper_models_n1_cross_validate_against_ctmc() {
    // Decentralised/decentralised and centralised/centralised span the
    // strategy space's corners; dd/cc differ in both coordination
    // layers.
    for strategy in [Strategy::Dd, Strategy::Cc] {
        let model = paper_model(1, strategy);
        let graph = StateGraph::explore(&model, 1 << 14, None).unwrap();
        assert!(graph.complete());
        let cross = cross_validate(&model, &graph, 1 << 14).unwrap();
        assert!(
            cross.matches(),
            "strategy {strategy:?} disagrees with ahs-ctmc: {cross:?}"
        );
        assert_eq!(cross.checker_stable_states, cross.ctmc_states);
    }
}

#[test]
fn paper_models_n1_state_counts_are_pinned() {
    let mut digests = Vec::new();
    for strategy in STRATEGIES {
        let model = paper_model(1, strategy);
        let graph = StateGraph::explore(&model, 1 << 14, None).unwrap();
        assert!(graph.complete());
        assert_eq!(
            graph.len(),
            MICRO_STATES_N1,
            "strategy {strategy:?} reachable-state count changed"
        );
        digests.push(graph.state_set_digest());
    }
    // The four strategies share place structure and differ only in
    // rates/probabilities, so their reachable *sets* coincide too.
    assert!(digests.windows(2).all(|w| w[0] == w[1]));
}

#[test]
fn paper_models_proved_clean_at_n1() {
    for strategy in STRATEGIES {
        let model = paper_model(1, strategy);
        let outcome = Checker::with_config(CheckConfig {
            max_states: 1 << 14,
            ..CheckConfig::ahs()
        })
        .check(&model)
        .unwrap();
        assert!(
            outcome.proved(),
            "strategy {strategy:?} violations: {:?}",
            outcome.violations
        );
    }
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "large graph; run under --release (CI model-check job)"
)]
fn paper_model_n2_state_count_is_pinned() {
    let model = paper_model(2, Strategy::Dd);
    let graph = StateGraph::explore(&model, 300_000, None).unwrap();
    assert!(graph.complete());
    assert_eq!(graph.len(), MICRO_STATES_N2);
}
