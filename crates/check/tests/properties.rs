//! Property-layer integration tests on the fixture models: each broken
//! fixture trips exactly the property it was built to trip, and every
//! state-anchored counterexample replays through the DES executor.

use ahs_check::{
    fixtures, property_status, report_json, CheckConfig, Checker, PropertyKind, PropertyStatus,
    REPORT_SCHEMA,
};
use ahs_obs::Json;

fn ahs_checker() -> Checker {
    Checker::with_config(CheckConfig::ahs())
}

#[test]
fn clean_chain_proves_all_properties() {
    let model = fixtures::escalation_chain();
    let outcome = ahs_checker().check(&model).unwrap();
    assert!(outcome.proved(), "violations: {:?}", outcome.violations);
    assert!(outcome.graph.complete());
    // {v_OK}, {FM_active} (unstable), {CS_active}, {v_KO}.
    assert_eq!(outcome.graph.len(), 4);
    assert_eq!(outcome.graph.stable_count(), 3);
    assert_eq!(outcome.graph.terminals().count(), 1);
    assert!(outcome.dead_activities.is_empty());
    for p in PropertyKind::all() {
        assert_eq!(
            property_status(&outcome, ahs_checker().config(), p),
            PropertyStatus::Proved,
            "property {}",
            p.name()
        );
    }
}

#[test]
fn broken_escalation_trips_absorption_with_replayable_trace() {
    let model = fixtures::broken_escalation();
    let outcome = ahs_checker().check(&model).unwrap();
    assert!(!outcome.proved());
    let v = outcome
        .violations
        .iter()
        .find(|v| v.property == PropertyKind::Absorption)
        .expect("dropping the escalation arc must produce an absorption violation");
    // The token vanishes: the bad terminal is the empty marking, two
    // firings from the start.
    assert_eq!(v.subject, "<empty marking>");
    let names: Vec<&str> = v.trace.iter().map(|s| s.activity_name.as_str()).collect();
    assert_eq!(names, ["fail", "escalate"]);
    assert_eq!(v.trace[1].case, 0, "the escalate branch is case 0");
    assert_eq!(
        v.replay_confirmed,
        Some(true),
        "the DES executor must reach the same violating marking"
    );
    // Downstream of the vanished token, `crash` and `recover` are dead.
    let mut dead = outcome.dead_activities.clone();
    dead.sort();
    assert_eq!(dead, ["crash", "recover"]);
}

#[test]
fn broken_livelock_trips_escalation_everywhere() {
    let model = fixtures::broken_livelock();
    let outcome = ahs_checker().check(&model).unwrap();
    assert!(!outcome.proved());
    let escalation: Vec<_> = outcome
        .violations
        .iter()
        .filter(|v| v.property == PropertyKind::Escalation)
        .collect();
    // No state reaches `v_KO`: all three reachable states violate.
    assert_eq!(escalation.len(), 3);
    assert!(escalation.iter().all(|v| v.replay_confirmed == Some(true)));
    // There is no bad *terminal* — the model loops forever — so
    // absorption itself holds.
    assert!(!outcome
        .violations
        .iter()
        .any(|v| v.property == PropertyKind::Absorption));
}

#[test]
fn unbounded_counter_trips_boundedness_despite_truncation() {
    let model = fixtures::unbounded_counter();
    let config = CheckConfig {
        max_states: 50,
        capacity: 10,
        ..CheckConfig::default()
    };
    let outcome = Checker::with_config(config.clone()).check(&model).unwrap();
    assert!(!outcome.graph.complete(), "the counter grows forever");
    let v = outcome
        .violations
        .iter()
        .find(|v| v.property == PropertyKind::Boundedness)
        .expect("counter must exceed capacity 10 within 50 states");
    assert_eq!(v.subject, "counter");
    assert_eq!(v.replay_confirmed, Some(true));
    assert!(outcome.max_tokens > 10);
    // On a truncated graph the absence properties are inconclusive, not
    // proved.
    assert_eq!(
        property_status(&outcome, &config, PropertyKind::Absorption),
        PropertyStatus::Inconclusive
    );
    assert!(outcome.dead_activities.is_empty());
}

#[test]
fn escalation_is_skipped_without_an_allowlist() {
    let model = fixtures::broken_livelock();
    let config = CheckConfig::default();
    let outcome = Checker::with_config(config.clone()).check(&model).unwrap();
    assert_eq!(
        property_status(&outcome, &config, PropertyKind::Escalation),
        PropertyStatus::Skipped
    );
    assert!(!outcome
        .violations
        .iter()
        .any(|v| v.property == PropertyKind::Escalation));
}

#[test]
fn report_json_roundtrips_with_schema_fields() {
    let model = fixtures::broken_escalation();
    let checker = ahs_checker();
    let outcome = checker.check(&model).unwrap();
    let json = report_json(&outcome, checker.config(), None);
    let parsed = Json::parse(&json.render()).unwrap();
    assert_eq!(
        parsed.get("schema").and_then(Json::as_str),
        Some(REPORT_SCHEMA)
    );
    assert_eq!(parsed.get("proved").and_then(Json::as_bool), Some(false));
    assert_eq!(parsed.get("complete").and_then(Json::as_bool), Some(true));
    let props = match parsed.get("properties") {
        Some(Json::Arr(a)) => a,
        other => panic!("properties must be an array, got {other:?}"),
    };
    assert_eq!(props.len(), 4);
    let absorption = props
        .iter()
        .find(|p| p.get("name").and_then(Json::as_str) == Some("absorption"))
        .unwrap();
    assert_eq!(
        absorption.get("status").and_then(Json::as_str),
        Some("violated")
    );
    let violations = match parsed.get("violations") {
        Some(Json::Arr(a)) => a,
        other => panic!("violations must be an array, got {other:?}"),
    };
    assert!(!violations.is_empty());
    assert_eq!(
        violations[0]
            .get("replay_confirmed")
            .and_then(Json::as_bool),
        Some(true)
    );
}
