//! Rendering a check outcome as text and as `ahs-check-report/v1` JSON.

use ahs_obs::Json;

use crate::crosscheck::CrossCheck;
use crate::properties::PropertyKind;
use crate::{CheckConfig, CheckOutcome};

/// Schema identifier of the JSON report.
pub const REPORT_SCHEMA: &str = "ahs-check-report/v1";

/// Per-property verdict, derived from completeness and the violation
/// list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PropertyStatus {
    /// The property holds over the whole reachable graph.
    Proved,
    /// At least one violation was found (sound even when truncated).
    Violated,
    /// The graph was truncated; absence of a violation proves nothing.
    Inconclusive,
    /// The property was not applicable (empty sink allowlist).
    Skipped,
}

impl PropertyStatus {
    /// Stable name used in reports and JSON.
    pub fn name(self) -> &'static str {
        match self {
            PropertyStatus::Proved => "proved",
            PropertyStatus::Violated => "violated",
            PropertyStatus::Inconclusive => "inconclusive",
            PropertyStatus::Skipped => "skipped",
        }
    }
}

/// The verdict for one property of an outcome.
pub fn property_status(
    outcome: &CheckOutcome,
    config: &CheckConfig,
    property: PropertyKind,
) -> PropertyStatus {
    let violated = outcome.violations.iter().any(|v| v.property == property);
    if violated {
        return PropertyStatus::Violated;
    }
    if property == PropertyKind::Escalation && config.absorbing_allowlist.is_empty() {
        return PropertyStatus::Skipped;
    }
    if outcome.graph.complete() {
        PropertyStatus::Proved
    } else {
        PropertyStatus::Inconclusive
    }
}

/// Builds the `ahs-check-report/v1` JSON document.
pub fn report_json(
    outcome: &CheckOutcome,
    config: &CheckConfig,
    cross: Option<&CrossCheck>,
) -> Json {
    let graph = &outcome.graph;
    let properties = PropertyKind::all()
        .into_iter()
        .map(|p| {
            let count = outcome
                .violations
                .iter()
                .filter(|v| v.property == p)
                .count();
            Json::obj(vec![
                ("name", Json::str(p.name())),
                (
                    "status",
                    Json::str(property_status(outcome, config, p).name()),
                ),
                ("violations", Json::UInt(count as u64)),
            ])
        })
        .collect();
    let violations = outcome
        .violations
        .iter()
        .map(|v| {
            let trace = v
                .trace
                .iter()
                .map(|s| {
                    Json::obj(vec![
                        ("activity", Json::str(s.activity_name.clone())),
                        ("case", Json::UInt(s.case as u64)),
                    ])
                })
                .collect();
            Json::obj(vec![
                ("property", Json::str(v.property.name())),
                ("subject", Json::str(v.subject.clone())),
                ("message", Json::str(v.message.clone())),
                (
                    "state",
                    match v.state {
                        Some(i) => Json::UInt(i as u64),
                        None => Json::Null,
                    },
                ),
                ("trace", Json::Arr(trace)),
                (
                    "replay_confirmed",
                    match v.replay_confirmed {
                        Some(b) => Json::Bool(b),
                        None => Json::Null,
                    },
                ),
            ])
        })
        .collect();
    let mut fields = vec![
        ("schema", Json::str(REPORT_SCHEMA)),
        ("model", Json::str(outcome.model.clone())),
        (
            "config",
            Json::obj(vec![
                ("max_states", Json::UInt(config.max_states as u64)),
                ("capacity", Json::UInt(config.capacity)),
                (
                    "allowlist",
                    Json::Arr(
                        config
                            .absorbing_allowlist
                            .iter()
                            .map(|p| Json::str(p.clone()))
                            .collect(),
                    ),
                ),
            ]),
        ),
        ("complete", Json::Bool(graph.complete())),
        ("proved", Json::Bool(outcome.proved())),
        ("states", Json::UInt(graph.len() as u64)),
        ("stable_states", Json::UInt(graph.stable_count() as u64)),
        ("edges", Json::UInt(graph.num_edges() as u64)),
        (
            "terminal_states",
            Json::UInt(graph.terminals().count() as u64),
        ),
        (
            "state_digest",
            Json::str(format!("{:016x}", graph.state_set_digest())),
        ),
        ("max_tokens_observed", Json::UInt(outcome.max_tokens)),
        ("properties", Json::Arr(properties)),
        ("violations", Json::Arr(violations)),
    ];
    fields.push((
        "cross_check",
        match cross {
            None => Json::Null,
            Some(c) => Json::obj(vec![
                (
                    "checker_stable_states",
                    Json::UInt(c.checker_stable_states as u64),
                ),
                ("ctmc_states", Json::UInt(c.ctmc_states as u64)),
                ("state_sets_match", Json::Bool(c.state_sets_match)),
                (
                    "checker_transition_pairs",
                    Json::UInt(c.checker_transition_pairs as u64),
                ),
                (
                    "ctmc_transition_pairs",
                    Json::UInt(c.ctmc_transition_pairs as u64),
                ),
                ("transitions_match", Json::Bool(c.transitions_match)),
            ]),
        },
    ));
    Json::Obj(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

/// Human-readable multi-line summary of an outcome.
pub fn render_text(
    outcome: &CheckOutcome,
    config: &CheckConfig,
    cross: Option<&CrossCheck>,
) -> String {
    let graph = &outcome.graph;
    let mut s = String::new();
    s.push_str(&format!(
        "model {}: {} states ({} stable, {} terminal), {} transitions{}\n",
        outcome.model,
        graph.len(),
        graph.stable_count(),
        graph.terminals().count(),
        graph.num_edges(),
        if graph.complete() {
            ""
        } else {
            " [TRUNCATED at budget]"
        },
    ));
    for p in PropertyKind::all() {
        let status = property_status(outcome, config, p);
        s.push_str(&format!("  {:<14} {}\n", p.name(), status.name()));
    }
    if let Some(c) = cross {
        s.push_str(&format!(
            "  cross-check    {} (ctmc: {} states / {} transitions, checker: {} / {})\n",
            if c.matches() { "match" } else { "MISMATCH" },
            c.ctmc_states,
            c.ctmc_transition_pairs,
            c.checker_stable_states,
            c.checker_transition_pairs,
        ));
    }
    for v in &outcome.violations {
        s.push_str(&format!(
            "  violation[{}] {}: {}\n",
            v.property.name(),
            v.subject,
            v.message
        ));
        if !v.trace.is_empty() {
            let path: Vec<String> = v
                .trace
                .iter()
                .map(|t| {
                    if t.case == 0 {
                        t.activity_name.clone()
                    } else {
                        format!("{}#{}", t.activity_name, t.case)
                    }
                })
                .collect();
            s.push_str(&format!("    trace: {}\n", path.join(" -> ")));
        }
        match v.replay_confirmed {
            Some(true) => s.push_str("    replay: confirmed by the DES executor\n"),
            Some(false) => s.push_str("    replay: DIVERGED in the DES executor\n"),
            None => {}
        }
    }
    s
}
