//! Cross-validation of the checker's exploration against the CTMC
//! generator.
//!
//! `ahs-ctmc`'s [`StateSpace`] explorer and this crate's
//! [`StateGraph`] walk the same model through two *independent* code
//! paths: the CTMC adapter folds instantaneous cascades into
//! probability-weighted stable→stable rates, while the checker records
//! every micro step. On a Markovian model with strictly positive rates
//! they must agree on (a) the set of stable markings and (b) the
//! stable→stable transition support — the checker derives the latter
//! by following each timed edge through the instantaneous closure to
//! the stable markings it can end in. A mismatch means one of the two
//! engines mis-implements the shared SAN semantics; agreement is a
//! strong mutual audit.
//!
//! Caveat: the CTMC explorer drops transitions whose rate evaluates to
//! zero in the source marking, while the checker (which abstracts
//! probabilities and rates to their support) keeps them. The paper's
//! models have strictly positive rates everywhere — the `delay-sanity`
//! lint pass guards this — so the comparison is exact.

use std::collections::HashSet;

use ahs_ctmc::{SanMarkovModel, StateSpace};
use ahs_san::{Marking, SanModel};

use crate::graph::StateGraph;
use crate::CheckError;

/// The outcome of a cross-validation run.
#[derive(Debug, Clone)]
pub struct CrossCheck {
    /// Stable markings in the checker's graph.
    pub checker_stable_states: usize,
    /// States in the CTMC exploration (stable by construction).
    pub ctmc_states: usize,
    /// Whether the two stable-marking sets are identical.
    pub state_sets_match: bool,
    /// Distinct stable→stable transition pairs derived from the
    /// checker's micro-step graph (self-loops excluded, as the CTMC
    /// drops them).
    pub checker_transition_pairs: usize,
    /// Distinct transition pairs in the CTMC generator.
    pub ctmc_transition_pairs: usize,
    /// Whether the two transition-pair sets are identical.
    pub transitions_match: bool,
}

impl CrossCheck {
    /// Whether state sets and transition structure both agree.
    pub fn matches(&self) -> bool {
        self.state_sets_match && self.transitions_match
    }
}

/// Cross-validates a *complete* checker graph against an independent
/// CTMC exploration of the same model.
///
/// # Errors
///
/// Returns [`CheckError::IncompleteGraph`] when the graph was
/// truncated (set comparison would be meaningless) and
/// [`CheckError::Ctmc`] when the CTMC side cannot explore the model
/// (non-Markovian delays, budget exceeded, invalid rates).
pub fn cross_validate(
    model: &SanModel,
    graph: &StateGraph,
    max_states: usize,
) -> Result<CrossCheck, CheckError> {
    if !graph.complete() {
        return Err(CheckError::IncompleteGraph {
            states: graph.len(),
        });
    }
    let adapter = SanMarkovModel::new(model).map_err(CheckError::Ctmc)?;
    let space = StateSpace::explore(&adapter, max_states).map_err(CheckError::Ctmc)?;

    let checker_stable: HashSet<&Marking> = (0..graph.len())
        .filter(|&i| graph.is_stable(i))
        .map(|i| graph.marking(i))
        .collect();
    let ctmc_states: HashSet<&Marking> = space.states().iter().collect();
    let state_sets_match = checker_stable == ctmc_states;

    // Stable→stable support derived from the micro-step graph: follow
    // each timed edge of a stable state through the instantaneous
    // closure to every stable marking it can end in.
    let mut checker_pairs: HashSet<(&Marking, &Marking)> = HashSet::new();
    let mut closure: Vec<u32> = Vec::new();
    let mut seen: HashSet<u32> = HashSet::new();
    for i in 0..graph.len() {
        if !graph.is_stable(i) {
            continue;
        }
        for e in graph.successors(i) {
            closure.clear();
            seen.clear();
            closure.push(e.target);
            seen.insert(e.target);
            let mut head = 0;
            while head < closure.len() {
                let j = closure[head] as usize;
                head += 1;
                if graph.is_stable(j) {
                    if j != i {
                        checker_pairs.insert((graph.marking(i), graph.marking(j)));
                    }
                    continue;
                }
                for e2 in graph.successors(j) {
                    if seen.insert(e2.target) {
                        closure.push(e2.target);
                    }
                }
            }
        }
    }

    let ctmc_pairs: HashSet<(&Marking, &Marking)> = space
        .edges()
        .map(|(r, c, _)| (&space.states()[r], &space.states()[c]))
        .collect();

    Ok(CrossCheck {
        checker_stable_states: checker_stable.len(),
        ctmc_states: ctmc_states.len(),
        state_sets_match,
        checker_transition_pairs: checker_pairs.len(),
        ctmc_transition_pairs: ctmc_pairs.len(),
        transitions_match: checker_pairs == ctmc_pairs,
    })
}
