//! `ahs-check` — exhaustive small-state model checking for SAN models.
//!
//! The simulation (`ahs-des`) and numerical (`ahs-ctmc`) layers answer
//! *quantitative* questions about the paper's escalation-chain models;
//! this crate answers the *qualitative* ones by brute force. It
//! explores every reachable marking of a model — each timed firing and
//! each instantaneous case branch, probabilities abstracted to their
//! support — and proves four properties over the complete graph:
//!
//! 1. **absorption**: every absorbing state is an allowlisted sink,
//! 2. **escalation soundness**: every state can still reach a sink,
//! 3. **dead-activity exactness**: every activity fires somewhere,
//! 4. **boundedness**: simple places stay within a token capacity.
//!
//! When a property fails, the checker emits the shortest firing trace
//! from the initial marking and replays it through the DES executor's
//! forced-schedule hook ([`ahs_des::EventDrivenSimulator::run_forced_schedule`]),
//! confirming that the counterexample is real executable behaviour and
//! not an artifact of the explorer.
//!
//! ```
//! use ahs_check::{CheckConfig, Checker};
//!
//! let model = ahs_check::fixtures::escalation_chain();
//! let outcome = Checker::with_config(CheckConfig::ahs())
//!     .check(&model)
//!     .unwrap();
//! assert!(outcome.proved());
//!
//! let broken = ahs_check::fixtures::broken_escalation();
//! let outcome = Checker::with_config(CheckConfig::ahs())
//!     .check(&broken)
//!     .unwrap();
//! assert!(!outcome.proved());
//! assert_eq!(outcome.violations[0].replay_confirmed, Some(true));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::AtomicBool;

use ahs_des::{EventDrivenSimulator, ReplayStep};
use ahs_san::SanModel;

mod crosscheck;
pub mod fixtures;
mod graph;
mod properties;
mod report;

pub use crosscheck::{cross_validate, CrossCheck};
pub use graph::{Edge, StateGraph, TraceStep};
pub use properties::{exact_dead_set, max_tokens_observed, PropertyKind, Violation};
pub use report::{property_status, render_text, report_json, PropertyStatus, REPORT_SCHEMA};

/// Seed for counterexample replays. The value is irrelevant — forced
/// schedules only consume randomness for timed delays — but fixing it
/// keeps replay outcomes byte-for-byte reproducible.
const REPLAY_SEED: u64 = 0x5EED_CE11;

/// Errors from exploration and cross-validation.
#[derive(Debug)]
pub enum CheckError {
    /// Exploration was interrupted via the cooperative interrupt flag.
    Interrupted {
        /// States explored before the interrupt was observed.
        states: usize,
    },
    /// An operation that needs the *complete* reachable graph was given
    /// a truncated one.
    IncompleteGraph {
        /// States in the truncated graph.
        states: usize,
    },
    /// The CTMC side of a cross-validation failed.
    Ctmc(ahs_ctmc::CtmcError),
}

impl std::fmt::Display for CheckError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckError::Interrupted { states } => {
                write!(f, "exploration interrupted after {states} states")
            }
            CheckError::IncompleteGraph { states } => write!(
                f,
                "state graph was truncated at {states} states; the operation \
                 requires a complete graph (raise the state budget)"
            ),
            CheckError::Ctmc(e) => write!(f, "ctmc cross-validation failed: {e}"),
        }
    }
}

impl std::error::Error for CheckError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckError::Ctmc(e) => Some(e),
            _ => None,
        }
    }
}

/// Checker configuration.
#[derive(Debug, Clone)]
pub struct CheckConfig {
    /// State budget; exploration truncates (soundly) past it.
    pub max_states: usize,
    /// Token capacity bound for the boundedness property.
    pub capacity: u64,
    /// Name patterns of *intended* absorbing sinks (substring match on
    /// place names, same convention as `ahs-lint`).
    pub absorbing_allowlist: Vec<String>,
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig {
            max_states: 1 << 19,
            capacity: 64,
            absorbing_allowlist: Vec::new(),
        }
    }
}

impl CheckConfig {
    /// The preset for the paper's AHS models: system-level and
    /// vehicle-level KO sinks are the intended absorbers.
    pub fn ahs() -> Self {
        CheckConfig {
            absorbing_allowlist: vec!["v_KO".to_owned(), "KO_total".to_owned()],
            ..CheckConfig::default()
        }
    }
}

/// The exhaustive model checker.
#[derive(Debug, Clone, Default)]
pub struct Checker {
    config: CheckConfig,
}

impl Checker {
    /// A checker with the default configuration.
    pub fn new() -> Self {
        Checker::default()
    }

    /// A checker with an explicit configuration.
    pub fn with_config(config: CheckConfig) -> Self {
        Checker { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &CheckConfig {
        &self.config
    }

    /// Explores the model, evaluates every property, and replays each
    /// state-anchored counterexample through the DES executor.
    ///
    /// # Errors
    ///
    /// Exploration itself cannot fail short of an interrupt; see
    /// [`Checker::check_interruptible`].
    pub fn check(&self, model: &SanModel) -> Result<CheckOutcome, CheckError> {
        self.check_interruptible(model, None)
    }

    /// Like [`Checker::check`], but polls `interrupt` during
    /// exploration and returns [`CheckError::Interrupted`] once it is
    /// set.
    pub fn check_interruptible(
        &self,
        model: &SanModel,
        interrupt: Option<&AtomicBool>,
    ) -> Result<CheckOutcome, CheckError> {
        let graph = StateGraph::explore(model, self.config.max_states, interrupt)?;
        let mut violations = properties::evaluate(model, &graph, &self.config);
        confirm_violations(model, &graph, &mut violations);
        let max_tokens = properties::max_tokens_observed(model, &graph);
        let dead_activities = if graph.complete() {
            properties::exact_dead_set(model, &graph)
        } else {
            Vec::new()
        };
        Ok(CheckOutcome {
            model: model.name().to_owned(),
            graph,
            violations,
            dead_activities,
            max_tokens,
        })
    }
}

/// Everything a check run produced.
#[derive(Debug)]
pub struct CheckOutcome {
    /// Name of the checked model.
    pub model: String,
    /// The explored state graph.
    pub graph: StateGraph,
    /// All property violations, replay-confirmed where possible.
    pub violations: Vec<Violation>,
    /// The exact dead-activity set (empty when the graph is truncated —
    /// absence of firings proves nothing then).
    pub dead_activities: Vec<String>,
    /// Largest simple-place token count observed.
    pub max_tokens: u64,
}

impl CheckOutcome {
    /// Whether every property was *proved*: the graph is complete and
    /// no property produced a violation. A clean run over a truncated
    /// graph is not a proof.
    pub fn proved(&self) -> bool {
        self.graph.complete() && self.violations.is_empty()
    }
}

/// Replays the counterexample trace of a state-anchored violation
/// through the DES executor's forced-schedule hook and reports whether
/// the executor reaches the same violating marking.
///
/// Returns `None` when the violation carries no state anchor (nothing
/// to replay).
pub fn replay_counterexample(
    model: &SanModel,
    graph: &StateGraph,
    violation: &Violation,
) -> Option<bool> {
    let state = violation.state?;
    let schedule: Vec<ReplayStep> = violation
        .trace
        .iter()
        .map(|s| ReplayStep {
            activity: s.activity,
            case: s.case,
        })
        .collect();
    let sim = EventDrivenSimulator::new(model);
    match sim.run_forced_schedule(&schedule, REPLAY_SEED) {
        Ok(outcome) => Some(&outcome.final_marking == graph.marking(state)),
        Err(_) => Some(false),
    }
}

/// Sets [`Violation::replay_confirmed`] on every state-anchored
/// violation in place.
pub fn confirm_violations(model: &SanModel, graph: &StateGraph, violations: &mut [Violation]) {
    for v in violations.iter_mut() {
        v.replay_confirmed = replay_counterexample(model, graph, v);
    }
}
