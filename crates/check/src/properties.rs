//! The property layer: what the checker proves about a marking graph.
//!
//! Four properties, mirroring the dependability argument of the paper's
//! escalation-chain models:
//!
//! 1. **absorption** — every reachable terminal (absorbing) state marks
//!    a place covered by the allowlist of *intended* sinks (`v_KO`,
//!    `KO_total`, recovery-complete states). Any other terminal state
//!    is a deadlock.
//! 2. **escalation soundness** — every reachable state has *some* path
//!    to an allowed terminal: no livelock can strand an escalation
//!    chain short of its declared sinks. Skipped when the allowlist is
//!    empty (no sinks are declared).
//! 3. **dead-activity exactness** — every declared activity fires on at
//!    least one edge of the complete graph; the exact-proof upgrade of
//!    the linter's bounded `dead` pass.
//! 4. **boundedness** — no simple place ever exceeds the configured
//!    token capacity.
//!
//! Properties 1–3 are only evaluated on a *complete* graph (absence
//! arguments need the whole reachable set). Boundedness violations are
//! sound even on a truncated graph — every visited state is genuinely
//! reachable — so property 4 always runs.
//!
//! Each state-anchored violation carries the shortest firing trace from
//! the initial marking (the BFS tree path): the minimal counterexample,
//! ready for forced-schedule replay through the DES executor.

use std::collections::HashSet;

use ahs_san::{Marking, PlaceId, PlaceValue, SanModel};

use crate::graph::{StateGraph, TraceStep};
use crate::CheckConfig;

/// Cap on reported violations per property, so one systemic defect
/// does not flood the report.
const MAX_PER_PROPERTY: usize = 8;

/// The four checked properties.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PropertyKind {
    /// Every terminal state is an allowlisted sink.
    Absorption,
    /// Every state can reach an allowlisted sink.
    Escalation,
    /// Every activity fires somewhere in the reachable graph.
    DeadActivity,
    /// Every simple place stays within the token capacity.
    Boundedness,
}

impl PropertyKind {
    /// Stable name used in reports and JSON.
    pub fn name(self) -> &'static str {
        match self {
            PropertyKind::Absorption => "absorption",
            PropertyKind::Escalation => "escalation",
            PropertyKind::DeadActivity => "dead-activity",
            PropertyKind::Boundedness => "boundedness",
        }
    }

    /// All properties, in report order.
    pub fn all() -> [PropertyKind; 4] {
        [
            PropertyKind::Absorption,
            PropertyKind::Escalation,
            PropertyKind::DeadActivity,
            PropertyKind::Boundedness,
        ]
    }
}

/// One property violation, with its minimal counterexample when the
/// violation is anchored to a reachable state.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Which property failed.
    pub property: PropertyKind,
    /// What failed: a marking summary, activity name, or place name.
    pub subject: String,
    /// Why it failed.
    pub message: String,
    /// Index of the violating state in the graph, when state-anchored.
    pub state: Option<usize>,
    /// Shortest firing trace from the initial marking to the violating
    /// state (empty both for the initial state and for violations that
    /// are not state-anchored).
    pub trace: Vec<TraceStep>,
    /// Whether a forced-schedule replay through the DES executor
    /// confirmed the counterexample (`None` until attempted or when
    /// there is nothing to replay).
    pub replay_confirmed: Option<bool>,
}

/// Evaluates every property against the explored graph.
pub fn evaluate(model: &SanModel, graph: &StateGraph, config: &CheckConfig) -> Vec<Violation> {
    let mut out = Vec::new();
    out.extend(boundedness(model, graph, config));
    if graph.complete() {
        out.extend(absorption(model, graph, config));
        out.extend(escalation(model, graph, config));
        out.extend(dead_activities(model, graph));
    }
    out
}

/// Whether the marking marks a place whose name contains an allowlist
/// pattern (same convention as the linter's absorbing pass).
fn is_allowlisted(model: &SanModel, m: &Marking, config: &CheckConfig) -> bool {
    config.absorbing_allowlist.iter().any(|pattern| {
        model
            .place_ids()
            .any(|p| m.is_marked(p) && model.place_name(p).contains(pattern.as_str()))
    })
}

/// A short human-readable summary of a marking: the marked places.
pub(crate) fn describe_marking(model: &SanModel, m: &Marking) -> String {
    let mut names: Vec<&str> = model
        .place_ids()
        .filter(|&p| m.is_marked(p))
        .map(|p| model.place_name(p))
        .collect();
    if names.is_empty() {
        return "<empty marking>".to_owned();
    }
    let extra = names.len().saturating_sub(6);
    names.truncate(6);
    let mut s = format!("{{{}}}", names.join(", "));
    if extra > 0 {
        s.push_str(&format!(" (+{extra} more)"));
    }
    s
}

fn anchored(
    property: PropertyKind,
    model: &SanModel,
    graph: &StateGraph,
    state: usize,
    message: String,
) -> Violation {
    Violation {
        property,
        subject: describe_marking(model, graph.marking(state)),
        message,
        state: Some(state),
        trace: graph.trace_to(model, state),
        replay_confirmed: None,
    }
}

fn absorption(model: &SanModel, graph: &StateGraph, config: &CheckConfig) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut suppressed = 0usize;
    for i in graph.terminals() {
        if is_allowlisted(model, graph.marking(i), config) {
            continue;
        }
        if out.len() == MAX_PER_PROPERTY {
            suppressed += 1;
            continue;
        }
        out.push(anchored(
            PropertyKind::Absorption,
            model,
            graph,
            i,
            "reachable absorbing state not covered by the sink allowlist".to_owned(),
        ));
    }
    note_suppressed(&mut out, suppressed);
    out
}

/// Backward reachability from the allowed terminals: every state not in
/// the backward-reachable set can never reach an allowed sink.
fn escalation(model: &SanModel, graph: &StateGraph, config: &CheckConfig) -> Vec<Violation> {
    if config.absorbing_allowlist.is_empty() {
        return Vec::new();
    }
    let n = graph.len();
    // Reverse adjacency.
    let mut rev: Vec<Vec<u32>> = vec![Vec::new(); n];
    for i in 0..n {
        for e in graph.successors(i) {
            rev[e.target as usize].push(i as u32);
        }
    }
    let mut reaches = vec![false; n];
    let mut queue: Vec<u32> = graph
        .terminals()
        .filter(|&i| is_allowlisted(model, graph.marking(i), config))
        .map(|i| i as u32)
        .collect();
    for &i in &queue {
        reaches[i as usize] = true;
    }
    let mut head = 0;
    while head < queue.len() {
        let i = queue[head] as usize;
        head += 1;
        for &p in &rev[i] {
            if !reaches[p as usize] {
                reaches[p as usize] = true;
                queue.push(p);
            }
        }
    }
    let mut out = Vec::new();
    let mut suppressed = 0usize;
    for (i, ok) in reaches.iter().enumerate() {
        if *ok {
            continue;
        }
        if out.len() == MAX_PER_PROPERTY {
            suppressed += 1;
            continue;
        }
        out.push(anchored(
            PropertyKind::Escalation,
            model,
            graph,
            i,
            "no path from this state reaches an allowlisted sink (escalation \
             chain can be stranded here forever)"
                .to_owned(),
        ));
    }
    note_suppressed(&mut out, suppressed);
    out
}

/// The exact dead set: activities appearing on no edge of the complete
/// graph.
pub fn exact_dead_set(model: &SanModel, graph: &StateGraph) -> Vec<String> {
    let mut fired: HashSet<usize> = HashSet::new();
    for i in 0..graph.len() {
        for e in graph.successors(i) {
            fired.insert(e.activity.index());
        }
    }
    (0..model.num_activities())
        .filter(|i| !fired.contains(i))
        .map(|i| model.activities()[i].name().to_owned())
        .collect()
}

fn dead_activities(model: &SanModel, graph: &StateGraph) -> Vec<Violation> {
    exact_dead_set(model, graph)
        .into_iter()
        .map(|name| Violation {
            property: PropertyKind::DeadActivity,
            subject: name,
            message: "activity fires in no reachable marking (exact: the whole \
                      reachable graph was explored)"
                .to_owned(),
            state: None,
            trace: Vec::new(),
            replay_confirmed: None,
        })
        .collect()
}

fn boundedness(model: &SanModel, graph: &StateGraph, config: &CheckConfig) -> Vec<Violation> {
    // Classify places once off the initial marking (PlaceDecl kinds are
    // not public; the value discriminant is).
    let simple: Vec<PlaceId> = model
        .place_ids()
        .filter(|&p| matches!(model.initial_marking().value(p), PlaceValue::Tokens(_)))
        .collect();
    let mut out = Vec::new();
    let mut suppressed = 0usize;
    for i in 0..graph.len() {
        let m = graph.marking(i);
        for &p in &simple {
            let t = m.tokens(p);
            if t <= config.capacity {
                continue;
            }
            if out.len() == MAX_PER_PROPERTY {
                suppressed += 1;
                continue;
            }
            let mut v = anchored(
                PropertyKind::Boundedness,
                model,
                graph,
                i,
                format!(
                    "place `{}` holds {t} tokens, exceeding the capacity bound {}",
                    model.place_name(p),
                    config.capacity
                ),
            );
            v.subject = model.place_name(p).to_owned();
            out.push(v);
        }
    }
    note_suppressed(&mut out, suppressed);
    out
}

/// Largest simple-place token count observed anywhere in the graph.
pub fn max_tokens_observed(model: &SanModel, graph: &StateGraph) -> u64 {
    let simple: Vec<PlaceId> = model
        .place_ids()
        .filter(|&p| matches!(model.initial_marking().value(p), PlaceValue::Tokens(_)))
        .collect();
    let mut max = 0;
    for m in graph.markings() {
        for &p in &simple {
            max = max.max(m.tokens(p));
        }
    }
    max
}

fn note_suppressed(out: &mut [Violation], suppressed: usize) {
    if suppressed > 0 {
        if let Some(last) = out.last_mut() {
            last.message
                .push_str(&format!(" ({suppressed} further violation(s) suppressed)"));
        }
    }
}
